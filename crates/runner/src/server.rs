//! Centralized batch-alignment server (§IV-G, §VI).
//!
//! The paper: "in environments with a centralized server handling
//! multiple queries, it may be more efficient to accumulate several
//! queries before beginning the computation". This module implements
//! that deployment: clients submit queries over a bounded channel; the
//! server accumulates up to `batch_size` queries (or until `max_wait`
//! expires), then processes the whole batch against the shared,
//! pre-batched database, amortizing database traffic across queries.
//!
//! ## Failure model
//!
//! The serving layer never panics on the request path; every failure
//! is a typed [`ServeError`]:
//!
//! * the job queue is **bounded** (`queue_depth`): [`ServerClient::query`]
//!   applies backpressure by blocking, [`ServerClient::try_query`] sheds
//!   load with [`ServeError::QueueFull`];
//! * [`ServerClient::query_with_deadline`] bounds enqueue + compute +
//!   reply with one deadline and returns
//!   [`ServeError::DeadlineExceeded`] when it expires — it never blocks
//!   indefinitely, and the server skips jobs whose deadline has already
//!   passed instead of computing dead answers;
//! * a panicking worker is isolated with `catch_unwind` and the job is
//!   retried **once** on the scalar reference engine (exact scores,
//!   degraded throughput); only a double fault surfaces as
//!   [`ServeError::WorkerPanicked`];
//! * queries are validated on submit ([`ServeError::InvalidQuery`]);
//! * after [`BatchServer::shutdown`], outstanding clients get
//!   [`ServeError::ShutDown`] instead of a panic.
//!
//! All of it is observable through [`ServerStats`] /
//! [`crate::metrics::ServeCounters`] and deterministically testable via
//! [`FaultPlan`].
//!
//! ## Exposition
//!
//! Beyond the flat counters, every server records end-to-end query
//! latency into an HDR histogram (`swsimd_query_latency_seconds`,
//! labelled `scenario="server"` plus a per-server `instance`), tracks
//! the live queue depth as a gauge, and mirrors its counters into the
//! process-global [`swsimd_obs`] registry. Scrape them with
//! [`BatchServer::prometheus_text`] (Prometheus text format) or
//! [`BatchServer::json_snapshot`]; [`BatchServer::health_line`] gives
//! a one-line human-readable summary, which the worker also emits
//! periodically as a `server_health` trace event when
//! [`ServerConfig::health_period`] is set. Shed, timeout, panic and
//! degraded-retry decisions additionally emit structured trace events
//! when a [`swsimd_obs`] sink is installed.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crossbeam::channel::{
    bounded, Receiver, RecvTimeoutError, SendTimeoutError, Sender, TrySendError,
};
use swsimd_core::{validate_encoded, AlignError, Aligner, AlignerBuilder, EngineKind, Hit};
use swsimd_obs::{Counter, Gauge, Histogram};
use swsimd_seq::{BatchedDatabase, Database};

use crate::fault::FaultPlan;
use crate::metrics::{self, ServeCounters, Snapshot};
use crate::shadow::{ShadowConfig, ShadowVerifier};

/// A typed serving failure. Every client-facing entry point returns
/// `Result<_, ServeError>`; the serving layer itself never panics on
/// the request path.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ServeError {
    /// The server has shut down (or did so before answering).
    ShutDown,
    /// The deadline passed before enqueue, compute, or reply finished.
    DeadlineExceeded,
    /// The bounded job queue is full (`try_query` only — load shed).
    QueueFull,
    /// A worker panicked and the degraded retry failed too.
    WorkerPanicked,
    /// The query is not a valid encoded sequence.
    InvalidQuery(AlignError),
    /// The query exceeds the server's admission quota
    /// ([`ServerConfig::max_query_len`]).
    QueryTooLarge {
        /// Residues in the rejected query.
        len: usize,
        /// The configured admission limit.
        limit: usize,
    },
    /// The requested engine cannot serve: missing on this CPU, or
    /// demoted by the kernel trust breaker. Surfaced instead of a
    /// silent fallback so operators see the degradation.
    EngineUnavailable {
        /// The engine the server was configured for.
        requested: EngineKind,
        /// Why it cannot be dispatched.
        reason: &'static str,
    },
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::ShutDown => write!(f, "server is shut down"),
            ServeError::DeadlineExceeded => write!(f, "deadline exceeded"),
            ServeError::QueueFull => write!(f, "job queue full (load shed)"),
            ServeError::WorkerPanicked => {
                write!(f, "worker panicked and degraded retry failed")
            }
            ServeError::InvalidQuery(e) => write!(f, "invalid query: {e}"),
            ServeError::QueryTooLarge { len, limit } => {
                write!(f, "query of {len} residues exceeds admission limit {limit}")
            }
            ServeError::EngineUnavailable { requested, reason } => {
                write!(f, "engine {} unavailable: {reason}", requested.name())
            }
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::InvalidQuery(e) => Some(e),
            _ => None,
        }
    }
}

impl From<AlignError> for ServeError {
    fn from(e: AlignError) -> Self {
        match e {
            AlignError::EngineUnavailable { requested, reason } => {
                ServeError::EngineUnavailable { requested, reason }
            }
            other => ServeError::InvalidQuery(other),
        }
    }
}

/// A submitted query awaiting results.
/// One query's outcome, sent back over its private reply channel.
type Reply = Result<Vec<Hit>, ServeError>;

struct Job {
    query: Vec<u8>,
    reply: Sender<Reply>,
    top_k: usize,
    /// Client-imposed deadline; the server skips jobs that expire in
    /// the queue instead of computing answers nobody is waiting for.
    deadline: Option<Instant>,
    /// When the client built the job — the start of the end-to-end
    /// latency measurement recorded when the reply is computed.
    submitted: Instant,
}

/// Registry-backed instruments for one server instance: the latency
/// histogram, the live queue-depth gauge, and counter mirrors of
/// [`ServeCounters`] so a scrape sees the same ledger. Each server
/// gets a unique `instance` label so concurrent servers (and tests)
/// record into disjoint series of the process-global registry.
struct ServerObs {
    latency: Arc<Histogram>,
    queue_depth: Arc<Gauge>,
    queries: Arc<Counter>,
    batches: Arc<Counter>,
    full_batches: Arc<Counter>,
    timeouts: Arc<Counter>,
    shed: Arc<Counter>,
    worker_panics: Arc<Counter>,
    retries: Arc<Counter>,
    journal_replays: Arc<Counter>,
    records_quarantined: Arc<Counter>,
    corrupt_images: Arc<Counter>,
    shadow_checks: Arc<Counter>,
    shadow_mismatches: Arc<Counter>,
    backend_demotions: Arc<Counter>,
    selftest_failures: Arc<Counter>,
}

impl ServerObs {
    fn new() -> Arc<Self> {
        static NEXT_INSTANCE: AtomicU64 = AtomicU64::new(0);
        let id = NEXT_INSTANCE.fetch_add(1, Relaxed).to_string();
        let r = swsimd_obs::global();
        let labels: &[(&str, &str)] = &[("instance", &id)];
        let counter = |name: &str, help: &'static str| r.counter(name, help, labels);
        Arc::new(Self {
            latency: r.histogram_scaled(
                metrics::QUERY_LATENCY_METRIC,
                "End-to-end query latency (enqueue to reply), by scenario.",
                1e-9,
                &[("scenario", "server"), ("instance", &id)],
            ),
            queue_depth: r.gauge(
                "swsimd_queue_depth",
                "Jobs waiting in the bounded server queue.",
                labels,
            ),
            queries: counter(
                "swsimd_server_queries_total",
                "Queries served (a reply was computed).",
            ),
            batches: counter("swsimd_server_batches_total", "Batches processed."),
            full_batches: counter(
                "swsimd_server_full_batches_total",
                "Batches that filled to batch_size before the wait expired.",
            ),
            timeouts: counter(
                "swsimd_server_timeouts_total",
                "Queries that hit their deadline before a result arrived.",
            ),
            shed: counter(
                "swsimd_server_shed_total",
                "Queries shed because the job queue was full.",
            ),
            worker_panics: counter(
                "swsimd_server_worker_panics_total",
                "Worker panics isolated on the request path.",
            ),
            retries: counter(
                "swsimd_server_retries_total",
                "Degraded retries run on the scalar reference engine.",
            ),
            journal_replays: counter(
                "swsimd_server_journal_replays_total",
                "Searches resumed from a journal instead of recomputed.",
            ),
            records_quarantined: counter(
                "swsimd_server_records_quarantined_total",
                "Malformed ingest records quarantined (skip-record policy).",
            ),
            corrupt_images: counter(
                "swsimd_server_corrupt_images_total",
                "Database images rejected for failed integrity checks.",
            ),
            shadow_checks: counter(
                "swsimd_server_shadow_checks_total",
                "Served hits recomputed on the scalar reference by shadow verification.",
            ),
            shadow_mismatches: counter(
                "swsimd_server_shadow_mismatches_total",
                "Shadow-verified hits whose served score disagreed with the reference.",
            ),
            backend_demotions: counter(
                "swsimd_server_backend_demotions_total",
                "Circuit-breaker openings: a backend crossed its strike threshold.",
            ),
            selftest_failures: counter(
                "swsimd_server_selftest_failures_total",
                "Backends that failed the boot self-test battery.",
            ),
        })
    }
}

/// One-line human-readable health summary: the counter [`Snapshot`]
/// plus live queue depth and latency quantiles in milliseconds.
fn health_line(counters: &ServeCounters, obs: &ServerObs) -> String {
    let s: Snapshot = counters.snapshot();
    let l = obs.latency.snapshot();
    format!(
        "[server] {s} depth={} p50_ms={:.2} p95_ms={:.2} p99_ms={:.2}",
        obs.queue_depth.get(),
        l.p50 as f64 / 1e6,
        l.p95 as f64 / 1e6,
        l.p99 as f64 / 1e6,
    )
}

/// Channel protocol: jobs, or an explicit shutdown marker (needed
/// because outstanding `ServerClient` clones keep the channel
/// connected, so disconnect alone cannot signal shutdown).
enum Msg {
    Job(Job),
    Shutdown,
}

/// Handle for submitting queries to a running server.
#[derive(Clone)]
pub struct ServerClient {
    tx: Sender<Msg>,
    counters: Arc<ServeCounters>,
    obs: Arc<ServerObs>,
    max_query_len: usize,
}

impl ServerClient {
    fn make_job(
        &self,
        query: Vec<u8>,
        top_k: usize,
        deadline: Option<Instant>,
    ) -> Result<(Job, Receiver<Reply>), ServeError> {
        if query.len() > self.max_query_len {
            swsimd_obs::event!(
                "query_rejected_too_large",
                "len" => query.len(),
                "limit" => self.max_query_len
            );
            return Err(ServeError::QueryTooLarge {
                len: query.len(),
                limit: self.max_query_len,
            });
        }
        validate_encoded(&query)?;
        let (reply_tx, reply_rx) = bounded(1);
        Ok((
            Job {
                query,
                reply: reply_tx,
                top_k,
                deadline,
                submitted: Instant::now(),
            },
            reply_rx,
        ))
    }

    /// Submit an encoded query; blocks until the batch containing it is
    /// processed and returns the top `top_k` hits (all if 0). When the
    /// bounded job queue is full this applies backpressure by blocking
    /// (use [`ServerClient::try_query`] to shed instead).
    pub fn query(&self, query: Vec<u8>, top_k: usize) -> Result<Vec<Hit>, ServeError> {
        let (job, reply_rx) = self.make_job(query, top_k, None)?;
        self.tx
            .send(Msg::Job(job))
            .map_err(|_| ServeError::ShutDown)?;
        self.obs.queue_depth.inc();
        match reply_rx.recv() {
            Ok(result) => result,
            Err(_) => Err(ServeError::ShutDown),
        }
    }

    /// Like [`ServerClient::query`], but never blocks past `timeout`:
    /// the deadline covers enqueue, compute, and reply. On expiry the
    /// call returns [`ServeError::DeadlineExceeded`] and the server
    /// discards the job if it is still queued.
    pub fn query_with_deadline(
        &self,
        query: Vec<u8>,
        top_k: usize,
        timeout: Duration,
    ) -> Result<Vec<Hit>, ServeError> {
        let deadline = Instant::now() + timeout;
        let (job, reply_rx) = self.make_job(query, top_k, Some(deadline))?;
        let remaining = deadline.saturating_duration_since(Instant::now());
        match self.tx.send_timeout(Msg::Job(job), remaining) {
            Ok(()) => self.obs.queue_depth.inc(),
            Err(SendTimeoutError::Timeout(_)) => {
                self.timed_out("enqueue");
                return Err(ServeError::DeadlineExceeded);
            }
            Err(SendTimeoutError::Disconnected(_)) => return Err(ServeError::ShutDown),
        }
        let remaining = deadline.saturating_duration_since(Instant::now());
        match reply_rx.recv_timeout(remaining) {
            Ok(result) => result,
            Err(RecvTimeoutError::Timeout) => {
                self.timed_out("reply");
                Err(ServeError::DeadlineExceeded)
            }
            // The worker dropped the job: either it observed the
            // expired deadline, or the server shut down.
            Err(RecvTimeoutError::Disconnected) => {
                if Instant::now() >= deadline {
                    self.timed_out("queue");
                    Err(ServeError::DeadlineExceeded)
                } else {
                    Err(ServeError::ShutDown)
                }
            }
        }
    }

    /// Ledger + trace bookkeeping for one observed deadline expiry.
    fn timed_out(&self, stage: &'static str) {
        ServeCounters::bump(&self.counters.timeouts);
        self.obs.timeouts.inc();
        swsimd_obs::event!("deadline_exceeded", "stage" => stage);
    }

    /// Non-blocking admission: if the bounded job queue is full the
    /// query is shed immediately with [`ServeError::QueueFull`]
    /// (recorded in [`ServerStats::shed`]) instead of growing memory
    /// or latency without bound. Once admitted, blocks for the reply.
    pub fn try_query(&self, query: Vec<u8>, top_k: usize) -> Result<Vec<Hit>, ServeError> {
        let (job, reply_rx) = self.make_job(query, top_k, None)?;
        match self.tx.try_send(Msg::Job(job)) {
            Ok(()) => self.obs.queue_depth.inc(),
            Err(TrySendError::Full(_)) => {
                ServeCounters::bump(&self.counters.shed);
                self.obs.shed.inc();
                swsimd_obs::event!("load_shed", "depth" => self.obs.queue_depth.get());
                return Err(ServeError::QueueFull);
            }
            Err(TrySendError::Disconnected(_)) => return Err(ServeError::ShutDown),
        }
        match reply_rx.recv() {
            Ok(result) => result,
            Err(_) => Err(ServeError::ShutDown),
        }
    }
}

/// Server configuration.
#[derive(Clone)]
pub struct ServerConfig {
    /// Queries accumulated before a batch is processed.
    pub batch_size: usize,
    /// Maximum time the first query in a batch waits for company.
    pub max_wait: Duration,
    /// Bound on queued jobs: `query` blocks (backpressure) and
    /// `try_query` sheds when this many jobs are already waiting.
    pub queue_depth: usize,
    /// Fault-injection schedule (inert by default; see [`FaultPlan`]).
    pub fault_plan: FaultPlan,
    /// When set, the worker emits a `server_health` trace event with a
    /// human-readable [`health_line`]-style summary at most this often
    /// (checked after each batch). `None` (the default) disables it.
    pub health_period: Option<Duration>,
    /// Admission quota: queries longer than this many residues are
    /// rejected at submit time with [`ServeError::QueryTooLarge`]
    /// before any buffering — the serving-side arm of the ingestion
    /// memory budget (`swsimd_seq::IngestQuota`).
    pub max_query_len: usize,
    /// Sampled shadow verification of served hits against the scalar
    /// reference (off by default; see [`ShadowConfig`]).
    pub shadow: ShadowConfig,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            batch_size: 8,
            max_wait: Duration::from_millis(20),
            queue_depth: 1024,
            fault_plan: FaultPlan::default(),
            health_period: None,
            max_query_len: usize::MAX,
            shadow: ShadowConfig::default(),
        }
    }
}

/// Statistics the server keeps about its batching and degradation
/// behaviour — an alias for [`crate::metrics::Snapshot`], which owns
/// the field set and the single-line `Display` form (see
/// [`crate::metrics::ServeCounters`] for the live, shared ledger).
pub type ServerStats = Snapshot;

/// A running batch server. Dropping the handle shuts the worker down
/// after it drains pending queries.
pub struct BatchServer {
    client_tx: Sender<Msg>,
    worker: Option<std::thread::JoinHandle<()>>,
    counters: Arc<ServeCounters>,
    obs: Arc<ServerObs>,
    max_query_len: usize,
}

impl BatchServer {
    /// Start a server over `db` with per-batch processing by an aligner
    /// built from `make_aligner`.
    ///
    /// Runs the boot-time kernel self-test battery (cached
    /// process-wide) before serving: a backend that fails is marked
    /// unavailable in the trust ladder and the count is surfaced in
    /// [`ServerStats::selftest_failures`]. A server configured for an
    /// unusable engine still starts (dispatch walks down the ladder) —
    /// use [`BatchServer::try_start`] to fail fast instead.
    pub fn start<F>(db: Arc<Database>, cfg: ServerConfig, make_aligner: F) -> Self
    where
        F: Fn() -> AlignerBuilder + Send + 'static,
    {
        let (tx, rx): (Sender<Msg>, Receiver<Msg>) = bounded(cfg.queue_depth.max(1));
        let counters = Arc::new(ServeCounters::default());
        let obs = ServerObs::new();
        let failed = swsimd_core::selftest::boot().failed_engines().len() as u64;
        if failed > 0 {
            counters.selftest_failures.fetch_add(failed, Relaxed);
            obs.selftest_failures.add(failed);
        }
        let max_query_len = cfg.max_query_len;
        let worker_counters = counters.clone();
        let worker_obs = obs.clone();
        let worker = std::thread::spawn(move || {
            let mut ctx = WorkerCtx::new(db, &cfg, make_aligner, worker_counters, worker_obs);
            let mut pending: Vec<Job> = Vec::with_capacity(cfg.batch_size);
            let mut shutting_down = false;
            let mut last_health = Instant::now();

            while !shutting_down {
                // Wait for the first job of a batch.
                match rx.recv() {
                    Ok(Msg::Job(job)) => {
                        ctx.obs.queue_depth.dec();
                        pending.push(job);
                    }
                    Ok(Msg::Shutdown) | Err(_) => break,
                }
                // Accumulate until full, the wait budget expires, or a
                // shutdown arrives (the batch still completes).
                let deadline = Instant::now() + cfg.max_wait;
                while pending.len() < cfg.batch_size.max(1) {
                    let now = Instant::now();
                    if now >= deadline {
                        break;
                    }
                    match rx.recv_timeout(deadline - now) {
                        Ok(Msg::Job(job)) => {
                            ctx.obs.queue_depth.dec();
                            pending.push(job);
                        }
                        Ok(Msg::Shutdown) | Err(RecvTimeoutError::Disconnected) => {
                            shutting_down = true;
                            break;
                        }
                        Err(RecvTimeoutError::Timeout) => break,
                    }
                }
                ctx.process_batch(&mut pending);
                if let Some(period) = cfg.health_period {
                    if last_health.elapsed() >= period {
                        last_health = Instant::now();
                        swsimd_obs::event!(
                            "server_health",
                            "line" => health_line(&ctx.counters, &ctx.obs)
                        );
                    }
                }
            }
            // Drain jobs that raced with the shutdown marker.
            while let Ok(Msg::Job(job)) = rx.try_recv() {
                ctx.obs.queue_depth.dec();
                pending.push(job);
            }
            ctx.process_batch(&mut pending);
        });
        Self {
            client_tx: tx,
            worker: Some(worker),
            counters,
            obs,
            max_query_len,
        }
    }

    /// Like [`BatchServer::start`], but refuses to start when the
    /// configured engine cannot actually serve — missing on this CPU
    /// or demoted by the kernel trust breaker — returning the typed
    /// [`ServeError::EngineUnavailable`] instead of silently falling
    /// back to a weaker ISA.
    pub fn try_start<F>(
        db: Arc<Database>,
        cfg: ServerConfig,
        make_aligner: F,
    ) -> Result<Self, ServeError>
    where
        F: Fn() -> AlignerBuilder + Send + 'static,
    {
        swsimd_core::selftest::boot();
        make_aligner().try_build()?;
        Ok(Self::start(db, cfg, make_aligner))
    }

    /// A client handle (cloneable, usable from many threads).
    pub fn client(&self) -> ServerClient {
        ServerClient {
            tx: self.client_tx.clone(),
            counters: self.counters.clone(),
            obs: self.obs.clone(),
            max_query_len: self.max_query_len,
        }
    }

    /// Record a journal-replay recovery into the ledger and the
    /// registry mirror. Called by boot/recovery paths that resume a
    /// search from a journal before (or while) serving.
    pub fn note_journal_replay(&self) {
        ServeCounters::bump(&self.counters.journal_replays);
        self.obs.journal_replays.inc();
    }

    /// Record `n` quarantined ingest records (e.g. from the
    /// `IngestReport` of the database load that booted this server).
    pub fn note_records_quarantined(&self, n: u64) {
        self.counters
            .records_quarantined
            .fetch_add(n, std::sync::atomic::Ordering::Relaxed);
        self.obs.records_quarantined.add(n);
    }

    /// Record a database image rejected for failed integrity checks.
    pub fn note_corrupt_image(&self) {
        ServeCounters::bump(&self.counters.corrupt_images);
        self.obs.corrupt_images.inc();
    }

    /// Live snapshot of the serving counters.
    pub fn stats(&self) -> ServerStats {
        self.counters.snapshot()
    }

    /// Prometheus text-format scrape of the process-global registry:
    /// this server's latency summary, queue depth and counters, plus
    /// any scenario histograms recorded elsewhere in the process.
    pub fn prometheus_text(&self) -> String {
        swsimd_obs::global().prometheus_text()
    }

    /// JSON rendering of the same registry contents as
    /// [`BatchServer::prometheus_text`], for programmatic scraping.
    pub fn json_snapshot(&self) -> String {
        swsimd_obs::global().json()
    }

    /// One-line human-readable health summary (counters, queue depth,
    /// latency quantiles in milliseconds).
    pub fn health_line(&self) -> String {
        health_line(&self.counters, &self.obs)
    }

    /// Point-in-time snapshot of this server's end-to-end query
    /// latency distribution (nanosecond values).
    pub fn latency(&self) -> swsimd_obs::HistogramSnapshot {
        self.obs.latency.snapshot()
    }

    /// Live depth of the bounded job queue.
    pub fn queue_depth(&self) -> i64 {
        self.obs.queue_depth.get()
    }

    /// Shut down: stop accepting, drain, and return the final stats.
    /// Outstanding [`ServerClient`] clones get [`ServeError::ShutDown`]
    /// on later use.
    pub fn shutdown(mut self) -> ServerStats {
        let _ = self.client_tx.send(Msg::Shutdown);
        if let Some(worker) = self.worker.take() {
            // A worker that died outside its isolation harness cannot
            // corrupt the stats snapshot; ignore the join payload.
            let _ = worker.join();
        }
        self.counters.snapshot()
    }
}

impl Drop for BatchServer {
    fn drop(&mut self) {
        let _ = self.client_tx.send(Msg::Shutdown);
        if let Some(w) = self.worker.take() {
            let _ = w.join();
        }
    }
}

/// Worker-side state: the configured fast-path aligner plus a lazily
/// built scalar-engine fallback for degraded retries.
struct WorkerCtx<F> {
    db: Arc<Database>,
    make_aligner: F,
    aligner: Aligner,
    batched: BatchedDatabase,
    /// Scalar reference aligner + batches, built on first degraded
    /// retry (most servers never pay for it).
    fallback: Option<(Aligner, BatchedDatabase)>,
    plan: FaultPlan,
    shadow: ShadowVerifier,
    batch_size: usize,
    counters: Arc<ServeCounters>,
    obs: Arc<ServerObs>,
}

impl<F: Fn() -> AlignerBuilder> WorkerCtx<F> {
    fn new(
        db: Arc<Database>,
        cfg: &ServerConfig,
        make_aligner: F,
        counters: Arc<ServeCounters>,
        obs: Arc<ServerObs>,
    ) -> Self {
        let aligner: Aligner = make_aligner().build();
        let batched =
            BatchedDatabase::build(&db, swsimd_core::batch::lanes_for(aligner.engine()), true);
        Self {
            db,
            make_aligner,
            aligner,
            batched,
            fallback: None,
            plan: cfg.fault_plan.clone(),
            shadow: ShadowVerifier::new(cfg.shadow),
            batch_size: cfg.batch_size,
            counters,
            obs,
        }
    }

    fn process_batch(&mut self, pending: &mut Vec<Job>) {
        if pending.is_empty() {
            return;
        }
        let _batch = swsimd_obs::span!("server_batch", "jobs" => pending.len());
        ServeCounters::bump(&self.counters.batches);
        self.obs.batches.inc();
        if pending.len() >= self.batch_size {
            ServeCounters::bump(&self.counters.full_batches);
            self.obs.full_batches.inc();
        }
        for (slot, job) in pending.drain(..).enumerate() {
            // Don't compute answers nobody is waiting for: the client
            // observed this same deadline and has already returned.
            if job.deadline.is_some_and(|d| Instant::now() >= d) {
                swsimd_obs::event!("job_expired_in_queue", "slot" => slot);
                continue;
            }
            ServeCounters::bump(&self.counters.queries);
            self.obs.queries.inc();
            let result = self.run_job(slot, &job.query, job.top_k);
            self.obs.latency.record_duration(job.submitted.elapsed());
            // A disappeared client is not an error.
            let _ = job.reply.send(result);
        }
    }

    /// One job with isolation: fast path under `catch_unwind` +
    /// hit-count validation, then a single degraded retry on the
    /// scalar reference engine. `slot` is the job's index within its
    /// batch — the unit [`FaultPlan`] targets for the server.
    fn run_job(&mut self, slot: usize, query: &[u8], top_k: usize) -> Result<Vec<Hit>, ServeError> {
        let expected = self.db.len();
        let fast = catch_unwind(AssertUnwindSafe(|| {
            self.plan.before_partition(slot);
            let mut hits = self.aligner.search_batched(query, &self.db, &self.batched);
            self.plan.corrupt_hits(slot, &mut hits);
            self.plan.skew_hits(slot, &mut hits);
            hits
        }));
        let panicked = fast.is_err();
        if let Ok(mut hits) = fast {
            if hits.len() == expected {
                let out = self
                    .shadow
                    .verify_hits(query, &self.db, &mut hits, &self.make_aligner);
                if out.checks > 0 {
                    self.counters.shadow_checks.fetch_add(out.checks, Relaxed);
                    self.obs.shadow_checks.add(out.checks);
                    self.counters
                        .shadow_mismatches
                        .fetch_add(out.mismatches, Relaxed);
                    self.obs.shadow_mismatches.add(out.mismatches);
                    self.counters
                        .backend_demotions
                        .fetch_add(out.demotions, Relaxed);
                    self.obs.backend_demotions.add(out.demotions);
                }
                return Ok(finish_hits(hits, top_k));
            }
        }

        // The fast path panicked or returned a malformed result:
        // isolate it, record it, and recompute this job on the scalar
        // reference engine (exact scores, degraded throughput).
        if panicked {
            ServeCounters::bump(&self.counters.worker_panics);
            self.obs.worker_panics.inc();
            swsimd_obs::event!("worker_panic", "slot" => slot);
            // A kernel panic is a strike against the backend that
            // computed it; enough strikes open the trust breaker.
            let engine = swsimd_core::trust::effective_engine(self.aligner.engine());
            if swsimd_core::trust::global().record_strike(engine) {
                ServeCounters::bump(&self.counters.backend_demotions);
                self.obs.backend_demotions.inc();
            }
        }
        ServeCounters::bump(&self.counters.degraded_batches);
        ServeCounters::bump(&self.counters.retries);
        self.obs.retries.inc();
        swsimd_obs::event!(
            "degraded_retry",
            "slot" => slot,
            "panicked" => panicked,
            "engine" => "scalar"
        );

        if self.fallback.is_none() {
            let built = catch_unwind(AssertUnwindSafe(|| {
                let aligner = (self.make_aligner)().engine(EngineKind::Scalar).build();
                let batched = BatchedDatabase::build(
                    &self.db,
                    swsimd_core::batch::lanes_for(aligner.engine()),
                    true,
                );
                (aligner, batched)
            }));
            match built {
                Ok(fb) => self.fallback = Some(fb),
                Err(_) => return Err(ServeError::WorkerPanicked),
            }
        }
        let db = &self.db;
        let retry = self.fallback.as_mut().and_then(|(aligner, batched)| {
            catch_unwind(AssertUnwindSafe(|| {
                aligner.search_batched(query, db, batched)
            }))
            .ok()
        });
        match retry {
            Some(hits) if hits.len() == expected => Ok(finish_hits(hits, top_k)),
            // Double fault: the reference engine failed too.
            _ => Err(ServeError::WorkerPanicked),
        }
    }
}

/// Sort best-first (stable tie-break on database index) and truncate.
fn finish_hits(mut hits: Vec<Hit>, top_k: usize) -> Vec<Hit> {
    hits.sort_by(|a, b| b.score.cmp(&a.score).then(a.db_index.cmp(&b.db_index)));
    if top_k > 0 {
        hits.truncate(top_k);
    }
    hits
}

#[cfg(test)]
mod tests {
    use super::*;
    use swsimd_matrices::{blosum62, Alphabet};
    use swsimd_seq::{generate_database, generate_exact, SynthConfig};

    fn tiny_db() -> Arc<Database> {
        Arc::new(generate_database(&SynthConfig {
            n_seqs: 24,
            max_len: 100,
            median_len: 50.0,
            ..Default::default()
        }))
    }

    fn enc(len: usize, seed: u64) -> Vec<u8> {
        Alphabet::protein().encode(&generate_exact(len, seed).seq)
    }

    #[test]
    fn serves_queries_correctly() {
        let db = tiny_db();
        let server = BatchServer::start(db.clone(), ServerConfig::default(), || {
            Aligner::builder().matrix(blosum62())
        });
        let client = server.client();
        let q = enc(30, 7);
        let hits = client.query(q.clone(), 3).expect("server is up");
        assert_eq!(hits.len(), 3);

        // Compare against a direct search.
        let mut direct = Aligner::builder().matrix(blosum62()).build();
        let want = direct.search(&q, &db, 3);
        assert_eq!(hits, want);
        let stats = server.shutdown();
        assert_eq!(stats.queries, 1);
    }

    #[test]
    fn batches_accumulate_from_concurrent_clients() {
        let db = tiny_db();
        let server = BatchServer::start(
            db,
            ServerConfig {
                batch_size: 4,
                max_wait: Duration::from_millis(200),
                ..Default::default()
            },
            || Aligner::builder().matrix(blosum62()),
        );
        let client = server.client();
        std::thread::scope(|scope| {
            for i in 0..8 {
                let c = client.clone();
                scope.spawn(move || {
                    let hits = c.query(enc(25, i), 1).expect("server is up");
                    assert_eq!(hits.len(), 1);
                });
            }
        });
        let stats = server.shutdown();
        assert_eq!(stats.queries, 8);
        assert!(
            stats.batches <= 4,
            "8 concurrent queries should batch: {stats:?}"
        );
    }

    #[test]
    fn timeout_flushes_partial_batch() {
        let db = tiny_db();
        let server = BatchServer::start(
            db,
            ServerConfig {
                batch_size: 64,
                max_wait: Duration::from_millis(10),
                ..Default::default()
            },
            || Aligner::builder().matrix(blosum62()),
        );
        let client = server.client();
        // Would wait forever without the timeout.
        let hits = client.query(enc(20, 3), 2).expect("server is up");
        assert_eq!(hits.len(), 2);
        let stats = server.shutdown();
        assert_eq!(stats.full_batches, 0);
    }

    #[test]
    fn shutdown_drains_pending() {
        let db = tiny_db();
        let server = BatchServer::start(db, ServerConfig::default(), || {
            Aligner::builder().matrix(blosum62())
        });
        let client = server.client();
        let h = std::thread::spawn(move || client.query(enc(15, 1), 1));
        std::thread::sleep(Duration::from_millis(5));
        let stats = server.shutdown();
        let hits = h
            .join()
            .expect("client thread")
            .expect("drained before shutdown");
        assert_eq!(hits.len(), 1);
        assert_eq!(stats.queries, 1);
    }

    #[test]
    fn query_after_shutdown_is_typed_error() {
        let db = tiny_db();
        let server = BatchServer::start(db, ServerConfig::default(), || {
            Aligner::builder().matrix(blosum62())
        });
        let client = server.client();
        let _ = server.shutdown();
        assert_eq!(client.query(enc(10, 2), 1), Err(ServeError::ShutDown));
        assert_eq!(client.try_query(enc(10, 2), 1), Err(ServeError::ShutDown));
        assert_eq!(
            client.query_with_deadline(enc(10, 2), 1, Duration::from_millis(50)),
            Err(ServeError::ShutDown)
        );
    }

    #[test]
    fn invalid_query_is_rejected_at_the_boundary() {
        let db = tiny_db();
        let server = BatchServer::start(db, ServerConfig::default(), || {
            Aligner::builder().matrix(blosum62())
        });
        let client = server.client();
        let bad = vec![1u8, 200, 3];
        match client.query(bad, 1) {
            Err(ServeError::InvalidQuery(AlignError::InvalidResidue { position, value })) => {
                assert_eq!((position, value), (1, 200));
            }
            other => panic!("expected InvalidQuery, got {other:?}"),
        }
        let stats = server.shutdown();
        assert_eq!(stats.queries, 0, "invalid queries never reach the worker");
    }

    #[test]
    fn oversized_query_rejected_at_admission() {
        let db = tiny_db();
        let server = BatchServer::start(
            db,
            ServerConfig {
                max_query_len: 16,
                ..Default::default()
            },
            || Aligner::builder().matrix(blosum62()),
        );
        let client = server.client();
        match client.query(enc(64, 3), 1) {
            Err(ServeError::QueryTooLarge { len, limit }) => {
                assert_eq!((len, limit), (64, 16));
            }
            other => panic!("expected QueryTooLarge, got {other:?}"),
        }
        // All entry points share the admission path.
        assert!(matches!(
            client.try_query(enc(64, 4), 1),
            Err(ServeError::QueryTooLarge { .. })
        ));
        assert!(matches!(
            client.query_with_deadline(enc(64, 5), 1, Duration::from_millis(50)),
            Err(ServeError::QueryTooLarge { .. })
        ));
        // A query inside the quota still works.
        let hits = client.query(enc(10, 6), 1).expect("within quota");
        assert_eq!(hits.len(), 1);
        let stats = server.shutdown();
        assert_eq!(stats.queries, 1, "oversized queries never reach the worker");
    }

    #[test]
    fn recovery_counters_surface_in_exposition() {
        let db = tiny_db();
        let server = BatchServer::start(db, ServerConfig::default(), || {
            Aligner::builder().matrix(blosum62())
        });
        server.note_journal_replay();
        server.note_records_quarantined(3);
        server.note_corrupt_image();
        let stats = server.stats();
        assert_eq!(stats.journal_replays, 1);
        assert_eq!(stats.records_quarantined, 3);
        assert_eq!(stats.corrupt_images, 1);
        let line = server.health_line();
        assert!(line.contains("journal_replays=1"), "{line}");
        assert!(line.contains("records_quarantined=3"), "{line}");
        assert!(line.contains("corrupt_images=1"), "{line}");
        let text = server.prometheus_text();
        assert!(
            text.contains("swsimd_server_journal_replays_total"),
            "{text}"
        );
        assert!(
            text.contains("swsimd_server_records_quarantined_total"),
            "{text}"
        );
        assert!(
            text.contains("swsimd_server_corrupt_images_total"),
            "{text}"
        );
        let _ = server.shutdown();
    }

    #[test]
    fn worker_panic_degrades_to_exact_answer() {
        let db = tiny_db();
        let q = enc(30, 7);
        let mut direct = Aligner::builder().matrix(blosum62()).build();
        let want = direct.search(&q, &db, 5);

        let server = BatchServer::start(
            db.clone(),
            ServerConfig {
                fault_plan: FaultPlan::new().panic_at(0, 1),
                ..Default::default()
            },
            || Aligner::builder().matrix(blosum62()),
        );
        let client = server.client();
        let hits = client.query(q.clone(), 5).expect("degraded, not dead");
        assert_eq!(hits, want, "scalar retry stays exact");
        // Second query: fault budget exhausted, fast path again.
        let hits2 = client.query(q, 5).expect("server is up");
        assert_eq!(hits2, want);
        let stats = server.shutdown();
        assert_eq!(stats.worker_panics, 1);
        assert_eq!(stats.degraded_batches, 1);
        assert_eq!(stats.retries, 1);
        assert_eq!(stats.queries, 2);
    }

    #[test]
    fn poisoned_batch_is_validated_and_recomputed() {
        let db = tiny_db();
        let q = enc(25, 9);
        let mut direct = Aligner::builder().matrix(blosum62()).build();
        let want = direct.search(&q, &db, 0);

        let server = BatchServer::start(
            db,
            ServerConfig {
                fault_plan: FaultPlan::new().poison_at(0, 1),
                ..Default::default()
            },
            || Aligner::builder().matrix(blosum62()),
        );
        let client = server.client();
        let hits = client.query(q, 0).expect("degraded, not dead");
        assert_eq!(hits, want);
        let stats = server.shutdown();
        assert_eq!(stats.worker_panics, 0, "poison is not a panic");
        assert_eq!(stats.degraded_batches, 1);
        assert_eq!(stats.retries, 1);
    }

    #[test]
    fn shadow_verification_catches_wrong_scores_and_surfaces_counters() {
        use crate::shadow::OnMismatch;
        let db = tiny_db();
        let q = enc(30, 7);
        let mut direct = Aligner::builder().matrix(blosum62()).build();
        let want = direct.search(&q, &db, 0);

        let server = BatchServer::start(
            db.clone(),
            ServerConfig {
                // Skew the top hit of the first job — count-preserving,
                // so only shadow verification can catch it. Record mode
                // keeps this unit test independent of the global trust
                // ladder (breaker behavior is covered end-to-end).
                fault_plan: FaultPlan::new().wrong_score_at(0, 1),
                shadow: ShadowConfig {
                    sample_rate: 1.0,
                    on_mismatch: OnMismatch::Record,
                },
                ..Default::default()
            },
            || Aligner::builder().matrix(blosum62()),
        );
        let client = server.client();
        let hits = client.query(q.clone(), 0).expect("server is up");
        assert_eq!(hits, want, "mismatching score repaired before reply");
        let line = server.health_line();
        assert!(line.contains("shadow_checks=24"), "{line}");
        assert!(line.contains("shadow_mismatches=1"), "{line}");
        let text = server.prometheus_text();
        assert!(text.contains("swsimd_server_shadow_checks_total"), "{text}");
        assert!(
            text.contains("swsimd_server_shadow_mismatches_total"),
            "{text}"
        );
        let stats = server.shutdown();
        assert_eq!(stats.shadow_checks, 24, "every hit verified at rate 1");
        assert_eq!(stats.shadow_mismatches, 1);
        assert_eq!(
            stats.degraded_batches, 0,
            "skew evades structural validation; only shadow caught it"
        );
    }

    #[test]
    fn try_start_rejects_unavailable_engine_with_typed_error() {
        let db = tiny_db();
        // Scalar is always usable.
        let ok = BatchServer::try_start(db.clone(), ServerConfig::default(), || {
            Aligner::builder()
                .matrix(blosum62())
                .engine(EngineKind::Scalar)
        });
        assert!(ok.is_ok());
        let _ = ok.unwrap().shutdown();
        // An engine the CPU lacks is a typed refusal, not a fallback.
        if let Some(&missing) = EngineKind::ALL.iter().find(|e| !e.is_available()) {
            match BatchServer::try_start(db, ServerConfig::default(), move || {
                Aligner::builder().matrix(blosum62()).engine(missing)
            }) {
                Err(ServeError::EngineUnavailable { requested, .. }) => {
                    assert_eq!(requested, missing);
                }
                other => panic!("expected EngineUnavailable, got {:?}", other.is_ok()),
            }
        }
    }

    #[test]
    fn deadline_expiry_returns_typed_error_in_bounded_time() {
        let db = tiny_db();
        let server = BatchServer::start(
            db,
            ServerConfig {
                batch_size: 1,
                max_wait: Duration::from_millis(1),
                // Every job in slot 0 stalls well past the deadline.
                fault_plan: FaultPlan::new().delay_at(0, Duration::from_millis(300)),
                ..Default::default()
            },
            || Aligner::builder().matrix(blosum62()),
        );
        let client = server.client();
        let start = Instant::now();
        let r = client.query_with_deadline(enc(20, 4), 1, Duration::from_millis(30));
        let elapsed = start.elapsed();
        assert_eq!(r, Err(ServeError::DeadlineExceeded));
        assert!(
            elapsed < Duration::from_millis(250),
            "deadline must bound the call, took {elapsed:?}"
        );
        let stats = server.shutdown();
        assert!(stats.timeouts >= 1, "{stats:?}");
    }

    #[test]
    fn full_queue_sheds_with_typed_error() {
        let db = tiny_db();
        let server = BatchServer::start(
            db,
            ServerConfig {
                batch_size: 1,
                max_wait: Duration::from_millis(1),
                queue_depth: 1,
                // Keep the worker busy so the queue backs up.
                fault_plan: FaultPlan::new().delay_at(0, Duration::from_millis(100)),
                ..Default::default()
            },
            || Aligner::builder().matrix(blosum62()),
        );
        let client = server.client();
        // Background clients keep the worker and the 1-slot queue busy.
        let bg: Vec<_> = (0..3)
            .map(|i| {
                let c = client.clone();
                std::thread::spawn(move || c.query(enc(15, i), 1))
            })
            .collect();
        // With a full queue, try_query must shed rather than block.
        let mut shed = false;
        for i in 0..50 {
            match client.try_query(enc(15, 100 + i), 1) {
                Err(ServeError::QueueFull) => {
                    shed = true;
                    break;
                }
                Ok(_) => {}
                Err(e) => panic!("unexpected error {e:?}"),
            }
        }
        assert!(shed, "try_query never shed under sustained load");
        for h in bg {
            let _ = h.join().expect("client thread");
        }
        let stats = server.shutdown();
        assert!(stats.shed >= 1, "{stats:?}");
    }

    #[test]
    fn exposition_scrapes_latency_and_counters() {
        let db = tiny_db();
        let server = BatchServer::start(db, ServerConfig::default(), || {
            Aligner::builder().matrix(blosum62())
        });
        let client = server.client();
        for i in 0..3 {
            client.query(enc(20, i), 1).expect("server is up");
        }
        let lat = server.latency();
        assert_eq!(lat.count, 3);
        assert!(lat.p99 >= lat.p50);
        assert_eq!(server.queue_depth(), 0, "all jobs drained");

        let text = server.prometheus_text();
        assert!(
            text.contains("# TYPE swsimd_query_latency_seconds summary"),
            "{text}"
        );
        assert!(text.contains("quantile=\"0.99\""), "{text}");
        assert!(text.contains("swsimd_server_queries_total"), "{text}");
        assert!(text.contains("swsimd_queue_depth"), "{text}");

        let json = server.json_snapshot();
        assert!(json.contains("\"swsimd_query_latency_seconds\""), "{json}");
        assert!(json.contains("\"p99\""), "{json}");

        let line = server.health_line();
        assert!(line.contains("queries=3"), "{line}");
        assert!(line.contains("p99_ms="), "{line}");
    }

    #[cfg(feature = "trace")]
    #[test]
    fn periodic_health_event_is_emitted() {
        let rec = swsimd_obs::Recorder::install();
        let db = tiny_db();
        let server = BatchServer::start(
            db,
            ServerConfig {
                health_period: Some(Duration::ZERO),
                ..Default::default()
            },
            || Aligner::builder().matrix(blosum62()),
        );
        let client = server.client();
        client.query(enc(12, 6), 1).expect("server is up");
        let _ = server.shutdown();
        let events = rec.events();
        assert!(
            events.iter().any(|e| e.name == "server_health"),
            "no health event in {events:?}"
        );
    }

    #[test]
    fn live_stats_snapshot() {
        let db = tiny_db();
        let server = BatchServer::start(db, ServerConfig::default(), || {
            Aligner::builder().matrix(blosum62())
        });
        let client = server.client();
        client.query(enc(12, 5), 1).expect("server is up");
        let live = server.stats();
        assert_eq!(live.queries, 1);
        let final_stats = server.shutdown();
        assert_eq!(final_stats.queries, 1);
    }
}
