//! Centralized batch-alignment server (§IV-G, §VI).
//!
//! The paper: "in environments with a centralized server handling
//! multiple queries, it may be more efficient to accumulate several
//! queries before beginning the computation". This module implements
//! that deployment: clients submit queries over a bounded channel; the
//! server accumulates up to `batch_size` queries (or until `max_wait`
//! expires), then processes the whole batch against the shared,
//! pre-batched database, amortizing database traffic across queries.
//!
//! ## Failure model
//!
//! The serving layer never panics on the request path; every failure
//! is a typed [`ServeError`]:
//!
//! * the job queue is **bounded** (`queue_depth`) and partitioned into
//!   bounded per-tenant fair-share lanes scheduled by deficit
//!   round-robin ([`ServerConfig::qos`]): a full lane sheds with
//!   [`ServeError::QueueFull`] (carrying a `retry_after_ms` hint) and
//!   a tenant's token bucket refuses excess cost with
//!   [`ServeError::RateLimited`], so one hot tenant cannot starve the
//!   rest; [`ServerClient::query`] still applies backpressure by
//!   blocking while its lane has room;
//! * under sustained queue delay the brownout controller
//!   ([`ServerConfig::brownout`]) cheapens work stepwise instead of
//!   refusing it — each step is declared as a typed [`Fidelity`] on
//!   the result, never applied silently;
//! * [`ServerClient::query_with_deadline`] bounds enqueue + compute +
//!   reply with one deadline and returns
//!   [`ServeError::DeadlineExceeded`] when it expires — it never blocks
//!   indefinitely, and the server skips jobs whose deadline has already
//!   passed instead of computing dead answers;
//! * a panicking worker is isolated with `catch_unwind` and the job is
//!   retried **once** on the scalar reference engine (exact scores,
//!   degraded throughput); only a double fault surfaces as
//!   [`ServeError::WorkerPanicked`];
//! * queries are validated on submit ([`ServeError::InvalidQuery`]);
//! * after [`BatchServer::shutdown`], outstanding clients get
//!   [`ServeError::ShutDown`] instead of a panic.
//!
//! All of it is observable through [`ServerStats`] /
//! [`crate::metrics::ServeCounters`] and deterministically testable via
//! [`FaultPlan`].
//!
//! ## Exposition
//!
//! Beyond the flat counters, every server records end-to-end query
//! latency into an HDR histogram (`swsimd_query_latency_seconds`,
//! labelled `scenario="server"` plus a per-server `instance`), tracks
//! the live queue depth as a gauge, and mirrors its counters into the
//! process-global [`swsimd_obs`] registry. Scrape them with
//! [`BatchServer::prometheus_text`] (Prometheus text format) or
//! [`BatchServer::json_snapshot`]; [`BatchServer::health_line`] gives
//! a one-line human-readable summary, which the worker also emits
//! periodically as a `server_health` trace event when
//! [`ServerConfig::health_period`] is set. Shed, timeout, panic and
//! degraded-retry decisions additionally emit structured trace events
//! when a [`swsimd_obs`] sink is installed.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{
    AtomicBool, AtomicU64, AtomicU8,
    Ordering::{Acquire, Relaxed, Release},
};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use crossbeam::channel::{
    bounded, Receiver, RecvTimeoutError, SendTimeoutError, Sender, TrySendError,
};
use swsimd_core::{
    validate_encoded, AlignError, Aligner, AlignerBuilder, CancelReason, CancelToken, EngineKind,
    Hit, MemBudget,
};
use swsimd_obs::flight::{AuditRecord, Stage, StageTiming};
use swsimd_obs::trace::TraceCtx;
use swsimd_obs::{Counter, Gauge, Histogram};
use swsimd_seq::{BatchedDatabase, Database};

use crate::fault::FaultPlan;
use crate::metrics::{self, ServeCounters, Snapshot};
use crate::qos::{
    tenant_label, Brownout, BrownoutConfig, Drr, Fidelity, QosConfig, QosShared, TenantShared,
};
use crate::shadow::{ShadowConfig, ShadowVerifier};

/// A typed serving failure. Every client-facing entry point returns
/// `Result<_, ServeError>`; the serving layer itself never panics on
/// the request path.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ServeError {
    /// The server has shut down (or did so before answering).
    ShutDown,
    /// The deadline passed before enqueue, compute, or reply finished.
    DeadlineExceeded,
    /// The tenant's bounded fair-share lane is full (load shed).
    QueueFull {
        /// Hint: how long until the lane has likely drained, derived
        /// from the worker's queue-delay EWMA. Milliseconds, ≥ 1; `0`
        /// when the hint could not be computed (e.g. decoded from an
        /// old peer that predates hints).
        retry_after_ms: u64,
    },
    /// The tenant's token bucket refused the query's cost at admission
    /// (fair-share rate limiting).
    RateLimited {
        /// Hint: how long until the bucket holds enough tokens.
        /// Milliseconds, ≥ 1 (`0` only from hint-less old peers).
        retry_after_ms: u64,
    },
    /// A worker panicked and the degraded retry failed too.
    WorkerPanicked,
    /// The query is not a valid encoded sequence.
    InvalidQuery(AlignError),
    /// The query exceeds the server's admission quota
    /// ([`ServerConfig::max_query_len`]).
    QueryTooLarge {
        /// Residues in the rejected query.
        len: usize,
        /// The configured admission limit.
        limit: usize,
    },
    /// The requested engine cannot serve: missing on this CPU, or
    /// demoted by the kernel trust breaker. Surfaced instead of a
    /// silent fallback so operators see the degradation.
    EngineUnavailable {
        /// The engine the server was configured for.
        requested: EngineKind,
        /// Why it cannot be dispatched.
        reason: &'static str,
    },
    /// The query's estimated cost (`|query| × database residues`)
    /// exceeds the server's admission ceiling
    /// ([`ServerConfig::max_cost`]).
    CostTooHigh {
        /// Estimated DP cells for this query.
        cost: u64,
        /// The configured admission ceiling.
        limit: u64,
    },
    /// A DP buffer allocation exceeded the per-query memory budget
    /// ([`ServerConfig::mem_budget`]).
    BudgetExceeded {
        /// Bytes the job needed to reserve.
        requested: u64,
        /// The configured budget.
        limit: u64,
    },
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::ShutDown => write!(f, "server is shut down"),
            ServeError::DeadlineExceeded => write!(f, "deadline exceeded"),
            ServeError::QueueFull { retry_after_ms } => {
                write!(f, "job queue full (load shed; retry in {retry_after_ms}ms)")
            }
            ServeError::RateLimited { retry_after_ms } => {
                write!(f, "rate limited (retry in {retry_after_ms}ms)")
            }
            ServeError::WorkerPanicked => {
                write!(f, "worker panicked and degraded retry failed")
            }
            ServeError::InvalidQuery(e) => write!(f, "invalid query: {e}"),
            ServeError::QueryTooLarge { len, limit } => {
                write!(f, "query of {len} residues exceeds admission limit {limit}")
            }
            ServeError::EngineUnavailable { requested, reason } => {
                write!(f, "engine {} unavailable: {reason}", requested.name())
            }
            ServeError::CostTooHigh { cost, limit } => {
                write!(
                    f,
                    "estimated cost {cost} cells exceeds admission ceiling {limit}"
                )
            }
            ServeError::BudgetExceeded { requested, limit } => {
                write!(f, "needed {requested} bytes, per-query budget is {limit}")
            }
        }
    }
}

/// Map a mid-compute cancellation to the client-facing error the
/// serving contract promises: deadline/client-drop cancellations look
/// like [`ServeError::DeadlineExceeded`], shutdown like
/// [`ServeError::ShutDown`]. A watchdog reap never reaches clients
/// directly (the job is retried on scalar first); if the retry path is
/// unavailable it degenerates to [`ServeError::WorkerPanicked`].
fn cancel_to_serve(reason: CancelReason) -> ServeError {
    match reason {
        CancelReason::Deadline | CancelReason::ClientDrop => ServeError::DeadlineExceeded,
        CancelReason::Shutdown => ServeError::ShutDown,
        CancelReason::Watchdog => ServeError::WorkerPanicked,
        CancelReason::Memory => ServeError::BudgetExceeded {
            requested: 0,
            limit: 0,
        },
    }
}

impl ServeError {
    /// The backoff hint carried by overload rejections
    /// ([`ServeError::QueueFull`], [`ServeError::RateLimited`]), if
    /// any — clients should wait this long before retrying instead of
    /// following a generic exponential schedule.
    pub fn retry_after_ms(&self) -> Option<u64> {
        match self {
            ServeError::QueueFull { retry_after_ms }
            | ServeError::RateLimited { retry_after_ms } => Some(*retry_after_ms),
            _ => None,
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::InvalidQuery(e) => Some(e),
            _ => None,
        }
    }
}

impl From<AlignError> for ServeError {
    fn from(e: AlignError) -> Self {
        match e {
            AlignError::EngineUnavailable { requested, reason } => {
                ServeError::EngineUnavailable { requested, reason }
            }
            AlignError::Cancelled { reason } => cancel_to_serve(reason),
            AlignError::BudgetExceeded { requested, limit } => {
                ServeError::BudgetExceeded { requested, limit }
            }
            other => ServeError::InvalidQuery(other),
        }
    }
}

/// Job lifecycle phases, shared between client and worker so a
/// deadline expiry is attributed to the stage the job was actually in
/// (`queue` → `compute` → `reply`) rather than guessed from timing.
const PHASE_QUEUED: u8 = 0;
const PHASE_COMPUTING: u8 = 1;
const PHASE_REPLIED: u8 = 2;

fn stage_of(phase: &AtomicU8) -> &'static str {
    match phase.load(Acquire) {
        PHASE_COMPUTING => "compute",
        PHASE_REPLIED => "reply",
        _ => "queue",
    }
}

/// A completed query's results plus the worker-side attribution the
/// serving tier stitches into traces and flight-recorder records:
/// where the time went (queue vs. kernel) and which engine computed it
/// (`"scalar"` after a degraded retry, whatever the aligner dispatched
/// otherwise).
#[derive(Clone, Debug)]
pub struct QueryOutcome {
    /// Ranked hits.
    pub hits: Vec<Hit>,
    /// Time the job waited in the queue before compute started.
    pub queue_ns: u64,
    /// Kernel + ranking compute time.
    pub compute_ns: u64,
    /// Engine that produced the served answer.
    pub engine: &'static str,
    /// Degraded scalar retries taken before the answer was produced.
    pub retries: u32,
    /// Which work the brownout controller suspended while computing
    /// this (always exact-score) answer. [`Fidelity::Full`] outside
    /// overload.
    pub fidelity: Fidelity,
}

/// One query's outcome, sent back over its private reply channel.
type Reply = Result<QueryOutcome, ServeError>;

struct Job {
    query: Vec<u8>,
    reply: Sender<Reply>,
    top_k: usize,
    /// Propagated trace context: the worker adopts it around compute
    /// so kernel spans parent under the submitter's (possibly remote)
    /// request span, and flight-recorder records carry the trace id.
    trace: TraceCtx,
    /// Client-imposed deadline; the server skips jobs that expire in
    /// the queue instead of computing answers nobody is waiting for.
    deadline: Option<Instant>,
    /// When the client built the job — the start of the end-to-end
    /// latency measurement recorded when the reply is computed.
    submitted: Instant,
    /// Cancellation token governing this job's compute: a child of the
    /// server's shutdown token with the job deadline baked in, so an
    /// expired deadline cancels mid-kernel at the next check period.
    cancel: CancelToken,
    /// Lifecycle phase ([`PHASE_QUEUED`] → [`PHASE_COMPUTING`] →
    /// [`PHASE_REPLIED`]), shared with the client for correct expiry
    /// stage attribution.
    phase: Arc<AtomicU8>,
    /// The admitting tenant's shared QoS state: its fair-share lane
    /// occupancy (incremented at admission, decremented when the
    /// worker dequeues the job) and labelled metric series.
    tenant: Arc<TenantShared>,
    /// Estimated cost in DP cells (`|query| × Σ|db|`) — the currency
    /// both the token bucket and the DRR scheduler charge in.
    cost: u64,
}

/// Registry-backed instruments for one server instance: the latency
/// histogram, the live queue-depth gauge, and counter mirrors of
/// [`ServeCounters`] so a scrape sees the same ledger. Each server
/// gets a unique `instance` label so concurrent servers (and tests)
/// record into disjoint series of the process-global registry.
struct ServerObs {
    /// This server's unique `instance` label value, reused for the
    /// per-tenant metric families minted on demand by [`QosShared`].
    instance: String,
    latency: Arc<Histogram>,
    queue_depth: Arc<Gauge>,
    brownout_level: Arc<Gauge>,
    queries: Arc<Counter>,
    batches: Arc<Counter>,
    full_batches: Arc<Counter>,
    timeouts: Arc<Counter>,
    shed: Arc<Counter>,
    rate_limited: Arc<Counter>,
    worker_panics: Arc<Counter>,
    retries: Arc<Counter>,
    journal_replays: Arc<Counter>,
    records_quarantined: Arc<Counter>,
    corrupt_images: Arc<Counter>,
    shadow_checks: Arc<Counter>,
    shadow_mismatches: Arc<Counter>,
    backend_demotions: Arc<Counter>,
    selftest_failures: Arc<Counter>,
    cost_rejected: Arc<Counter>,
    budget_rejected: Arc<Counter>,
    watchdog_fires: Arc<Counter>,
    /// One labelled series per [`CancelReason`], in
    /// [`CancelReason::ALL`] order.
    cancelled: [Arc<Counter>; 5],
    mem_budget_limit: Arc<Gauge>,
    mem_budget_used: Arc<Gauge>,
}

impl ServerObs {
    fn new() -> Arc<Self> {
        static NEXT_INSTANCE: AtomicU64 = AtomicU64::new(0);
        let id = NEXT_INSTANCE.fetch_add(1, Relaxed).to_string();
        let r = swsimd_obs::global();
        let labels: &[(&str, &str)] = &[("instance", &id)];
        let counter = |name: &str, help: &'static str| r.counter(name, help, labels);
        Arc::new(Self {
            latency: r.histogram_scaled(
                metrics::QUERY_LATENCY_METRIC,
                "End-to-end query latency (enqueue to reply), by scenario.",
                1e-9,
                &[("scenario", "server"), ("instance", &id)],
            ),
            queue_depth: r.gauge(
                "swsimd_queue_depth",
                "Jobs waiting in the bounded server queue.",
                labels,
            ),
            brownout_level: r.gauge(
                "swsimd_brownout_level",
                "Current brownout degradation level (0 = full fidelity).",
                labels,
            ),
            queries: counter(
                "swsimd_server_queries_total",
                "Queries served (a reply was computed).",
            ),
            batches: counter("swsimd_server_batches_total", "Batches processed."),
            full_batches: counter(
                "swsimd_server_full_batches_total",
                "Batches that filled to batch_size before the wait expired.",
            ),
            timeouts: counter(
                "swsimd_server_timeouts_total",
                "Queries that hit their deadline before a result arrived.",
            ),
            shed: counter(
                "swsimd_server_shed_total",
                "Queries shed because the job queue was full.",
            ),
            rate_limited: counter(
                "swsimd_server_rate_limited_total",
                "Queries refused at admission by a tenant's token bucket.",
            ),
            worker_panics: counter(
                "swsimd_server_worker_panics_total",
                "Worker panics isolated on the request path.",
            ),
            retries: counter(
                "swsimd_server_retries_total",
                "Degraded retries run on the scalar reference engine.",
            ),
            journal_replays: counter(
                "swsimd_server_journal_replays_total",
                "Searches resumed from a journal instead of recomputed.",
            ),
            records_quarantined: counter(
                "swsimd_server_records_quarantined_total",
                "Malformed ingest records quarantined (skip-record policy).",
            ),
            corrupt_images: counter(
                "swsimd_server_corrupt_images_total",
                "Database images rejected for failed integrity checks.",
            ),
            shadow_checks: counter(
                "swsimd_server_shadow_checks_total",
                "Served hits recomputed on the scalar reference by shadow verification.",
            ),
            shadow_mismatches: counter(
                "swsimd_server_shadow_mismatches_total",
                "Shadow-verified hits whose served score disagreed with the reference.",
            ),
            backend_demotions: counter(
                "swsimd_server_backend_demotions_total",
                "Circuit-breaker openings: a backend crossed its strike threshold.",
            ),
            selftest_failures: counter(
                "swsimd_server_selftest_failures_total",
                "Backends that failed the boot self-test battery.",
            ),
            cost_rejected: counter(
                "swsimd_server_cost_rejected_total",
                "Queries rejected at admission for excessive estimated cost.",
            ),
            budget_rejected: counter(
                "swsimd_server_budget_rejected_total",
                "Queries rejected by the per-query memory budget.",
            ),
            watchdog_fires: counter(
                "swsimd_server_watchdog_fires_total",
                "Wedged workers reaped by the stall watchdog.",
            ),
            cancelled: CancelReason::ALL.map(|reason| {
                r.counter(
                    "swsimd_server_cancelled_total",
                    "Work cancelled mid-flight, by reason.",
                    &[("instance", &id), ("reason", reason.as_str())],
                )
            }),
            mem_budget_limit: r.gauge(
                "swsimd_mem_budget_limit_bytes",
                "Configured per-query memory budget (0 = unlimited).",
                labels,
            ),
            mem_budget_used: r.gauge(
                "swsimd_mem_budget_used_bytes",
                "DP/traceback bytes currently reserved against the budget.",
                labels,
            ),
            instance: id.clone(),
        })
    }

    /// The labelled `swsimd_server_cancelled_total` series for `reason`.
    fn cancelled_counter(&self, reason: CancelReason) -> &Counter {
        let idx = CancelReason::ALL
            .iter()
            .position(|r| *r == reason)
            .expect("ALL covers every reason");
        &self.cancelled[idx]
    }
}

/// One-line human-readable health summary: the counter [`Snapshot`]
/// plus live queue depth and latency quantiles in milliseconds.
fn health_line(counters: &ServeCounters, obs: &ServerObs) -> String {
    let s: Snapshot = counters.snapshot();
    let l = obs.latency.snapshot();
    format!(
        "[server] {s} depth={} p50_ms={:.2} p95_ms={:.2} p99_ms={:.2}",
        obs.queue_depth.get(),
        l.p50 as f64 / 1e6,
        l.p95 as f64 / 1e6,
        l.p99 as f64 / 1e6,
    )
}

/// Channel protocol: jobs, or an explicit shutdown marker (needed
/// because outstanding `ServerClient` clones keep the channel
/// connected, so disconnect alone cannot signal shutdown).
enum Msg {
    Job(Job),
    Shutdown,
}

/// Handle for submitting queries to a running server.
#[derive(Clone)]
pub struct ServerClient {
    tx: Sender<Msg>,
    counters: Arc<ServeCounters>,
    obs: Arc<ServerObs>,
    max_query_len: usize,
    /// Cost-admission ceiling (estimated DP cells), if configured.
    max_cost: Option<u64>,
    /// Total residues in the served database — the other factor of the
    /// `|query| × Σ|db|` cost model.
    db_residues: u64,
    /// Deadline applied by [`ServerClient::query`] when the caller did
    /// not pick one.
    default_timeout: Option<Duration>,
    /// Parent of every job token; cancelled with
    /// [`CancelReason::Shutdown`] when the server stops.
    server_cancel: CancelToken,
    /// Shared multi-tenant admission state (lanes, buckets, hints).
    qos: Arc<QosShared>,
}

impl ServerClient {
    fn make_job(
        &self,
        tenant: &str,
        query: Vec<u8>,
        top_k: usize,
        deadline: Option<Instant>,
        trace: TraceCtx,
    ) -> Result<(Job, Receiver<Reply>), ServeError> {
        if query.len() > self.max_query_len {
            swsimd_obs::event!(
                "query_rejected_too_large",
                "len" => query.len(),
                "limit" => self.max_query_len
            );
            return Err(ServeError::QueryTooLarge {
                len: query.len(),
                limit: self.max_query_len,
            });
        }
        // Cost-based admission: reject work that would monopolize the
        // worker before it is ever buffered. The estimate is exact in
        // cells (`|q| × Σ|db|`); the ceiling is calibrated against
        // measured CUPS by the operator.
        let cost = query.len() as u64 * self.db_residues;
        if let Some(limit) = self.max_cost {
            if cost > limit {
                ServeCounters::bump(&self.counters.cost_rejected);
                self.obs.cost_rejected.inc();
                swsimd_obs::event!(
                    "query_rejected_cost",
                    "cost" => cost,
                    "limit" => limit
                );
                return Err(ServeError::CostTooHigh { cost, limit });
            }
        }
        // Token-bucket rate admission: charge the query's cost against
        // the tenant's bucket before it is ever buffered; a refusal
        // carries the refill time as the retry hint.
        let shared = self.qos.tenant(tenant);
        if let Some(bucket) = &shared.bucket {
            let take = bucket
                .lock()
                .expect("token bucket lock")
                .try_take(cost, Instant::now());
            if let Err(retry_after_ms) = take {
                ServeCounters::bump(&self.counters.rate_limited);
                self.obs.rate_limited.inc();
                shared.rate_limited.inc();
                swsimd_obs::event!(
                    "query_rate_limited",
                    "tenant" => tenant_label(&shared.name).to_string(),
                    "cost" => cost,
                    "retry_after_ms" => retry_after_ms
                );
                return Err(ServeError::RateLimited { retry_after_ms });
            }
        }
        validate_encoded(&query)?;
        // Fair-share lane admission: each tenant owns a bounded slice
        // of the queue, so one hot tenant saturating its lane sheds
        // its own traffic instead of starving everyone else's.
        let lane_depth = self.qos.lane_depth();
        let admitted = shared
            .queued
            .fetch_update(Relaxed, Relaxed, |q| (q < lane_depth).then_some(q + 1));
        if admitted.is_err() {
            let retry_after_ms = self.qos.retry_hint_ms();
            ServeCounters::bump(&self.counters.shed);
            self.obs.shed.inc();
            shared.shed.inc();
            swsimd_obs::event!(
                "load_shed",
                "tenant" => tenant_label(&shared.name).to_string(),
                "lane_depth" => lane_depth,
                "retry_after_ms" => retry_after_ms
            );
            return Err(ServeError::QueueFull { retry_after_ms });
        }
        shared.queue_depth.inc();
        let (reply_tx, reply_rx) = bounded(1);
        Ok((
            Job {
                query,
                reply: reply_tx,
                top_k,
                trace,
                deadline,
                submitted: Instant::now(),
                cancel: self.server_cancel.child_with_deadline(deadline),
                phase: Arc::new(AtomicU8::new(PHASE_QUEUED)),
                tenant: shared,
                cost,
            },
            reply_rx,
        ))
    }

    /// Undo a lane admission for a job that never reached the queue
    /// (enqueue failed or timed out after [`ServerClient::make_job`]).
    fn release_admission(&self, job: &Job) {
        job.tenant.queued.fetch_sub(1, Relaxed);
        job.tenant.queue_depth.dec();
    }

    /// Submit an encoded query without blocking for the reply. The
    /// returned [`PendingQuery`] is polled in steps, so a network
    /// front end can interleave waiting with connection-liveness
    /// checks and cancel the job (`CancelReason::ClientDrop`) the
    /// moment the requesting socket disconnects.
    pub fn submit(
        &self,
        query: Vec<u8>,
        top_k: usize,
        deadline: Option<Instant>,
    ) -> Result<PendingQuery, ServeError> {
        self.submit_traced(query, top_k, deadline, TraceCtx::default())
    }

    /// [`ServerClient::submit`] with a distributed-trace context: the
    /// worker adopts `trace` around the kernel, so compute spans parent
    /// under the remote caller's request span and the flight-recorder
    /// audit record carries its trace id.
    pub fn submit_traced(
        &self,
        query: Vec<u8>,
        top_k: usize,
        deadline: Option<Instant>,
        trace: TraceCtx,
    ) -> Result<PendingQuery, ServeError> {
        self.submit_traced_for("", query, top_k, deadline, trace)
    }

    /// [`ServerClient::submit_traced`] on behalf of `tenant`: the job
    /// is admitted through the tenant's token bucket and bounded
    /// fair-share lane, and scheduled by deficit round-robin against
    /// other tenants' lanes. The empty name is the anonymous/default
    /// tenant.
    pub fn submit_traced_for(
        &self,
        tenant: &str,
        query: Vec<u8>,
        top_k: usize,
        deadline: Option<Instant>,
        trace: TraceCtx,
    ) -> Result<PendingQuery, ServeError> {
        let (job, reply_rx) = self.make_job(tenant, query, top_k, deadline, trace)?;
        let token = job.cancel.clone();
        if let Err(send_err) = self.tx.send(Msg::Job(job)) {
            if let Msg::Job(job) = send_err.0 {
                self.release_admission(&job);
            }
            return Err(ServeError::ShutDown);
        }
        self.obs.queue_depth.inc();
        Ok(PendingQuery {
            reply_rx,
            token,
            deadline,
        })
    }

    /// Submit an encoded query; blocks until the batch containing it is
    /// processed and returns the top `top_k` hits (all if 0). When the
    /// underlying transport queue is full this applies backpressure by
    /// blocking, but a full per-tenant lane sheds immediately with
    /// [`ServeError::QueueFull`] — a tenant cannot buffer more than
    /// its lane bound no matter which entry point it uses. When the
    /// server has a [`ServerConfig::default_timeout`], the call is
    /// routed through the same deadline machinery as
    /// [`ServerClient::query_with_deadline`].
    pub fn query(&self, query: Vec<u8>, top_k: usize) -> Result<Vec<Hit>, ServeError> {
        self.query_for("", query, top_k)
    }

    /// [`ServerClient::query`] on behalf of `tenant` (see
    /// [`ServerClient::submit_traced_for`] for the admission rules).
    pub fn query_for(
        &self,
        tenant: &str,
        query: Vec<u8>,
        top_k: usize,
    ) -> Result<Vec<Hit>, ServeError> {
        if let Some(timeout) = self.default_timeout {
            return self.query_with_deadline_for(tenant, query, top_k, timeout);
        }
        let (job, reply_rx) = self.make_job(tenant, query, top_k, None, TraceCtx::default())?;
        if let Err(send_err) = self.tx.send(Msg::Job(job)) {
            if let Msg::Job(job) = send_err.0 {
                self.release_admission(&job);
            }
            return Err(ServeError::ShutDown);
        }
        self.obs.queue_depth.inc();
        match reply_rx.recv() {
            Ok(result) => result.map(|o| o.hits),
            Err(_) => Err(ServeError::ShutDown),
        }
    }

    /// Like [`ServerClient::query`], but never blocks past `timeout`:
    /// the deadline covers enqueue, compute, and reply. On expiry the
    /// call returns [`ServeError::DeadlineExceeded`], cancels the
    /// job's token so in-flight compute stops at the next kernel check
    /// period, and the server discards the job if it is still queued.
    pub fn query_with_deadline(
        &self,
        query: Vec<u8>,
        top_k: usize,
        timeout: Duration,
    ) -> Result<Vec<Hit>, ServeError> {
        self.query_with_deadline_for("", query, top_k, timeout)
    }

    /// [`ServerClient::query_with_deadline`] on behalf of `tenant`
    /// (see [`ServerClient::submit_traced_for`] for the admission
    /// rules).
    pub fn query_with_deadline_for(
        &self,
        tenant: &str,
        query: Vec<u8>,
        top_k: usize,
        timeout: Duration,
    ) -> Result<Vec<Hit>, ServeError> {
        let deadline = Instant::now() + timeout;
        let (job, reply_rx) =
            self.make_job(tenant, query, top_k, Some(deadline), TraceCtx::default())?;
        let token = job.cancel.clone();
        let phase = job.phase.clone();
        let remaining = deadline.saturating_duration_since(Instant::now());
        match self.tx.send_timeout(Msg::Job(job), remaining) {
            Ok(()) => self.obs.queue_depth.inc(),
            Err(SendTimeoutError::Timeout(msg)) => {
                if let Msg::Job(job) = msg {
                    self.release_admission(&job);
                }
                self.timed_out("enqueue");
                return Err(ServeError::DeadlineExceeded);
            }
            Err(SendTimeoutError::Disconnected(msg)) => {
                if let Msg::Job(job) = msg {
                    self.release_admission(&job);
                }
                return Err(ServeError::ShutDown);
            }
        }
        let remaining = deadline.saturating_duration_since(Instant::now());
        match reply_rx.recv_timeout(remaining) {
            Ok(result) => result.map(|o| o.hits),
            Err(RecvTimeoutError::Timeout) => {
                // Stop paying for an answer nobody will read. The
                // expiry is charged to the stage the job is actually
                // in, not assumed from which channel op timed out.
                token.cancel(CancelReason::Deadline);
                self.timed_out(stage_of(&phase));
                Err(ServeError::DeadlineExceeded)
            }
            // The worker dropped the job: either it observed the
            // expired deadline, or the server shut down.
            Err(RecvTimeoutError::Disconnected) => {
                if Instant::now() >= deadline {
                    token.cancel(CancelReason::Deadline);
                    self.timed_out(stage_of(&phase));
                    Err(ServeError::DeadlineExceeded)
                } else {
                    Err(ServeError::ShutDown)
                }
            }
        }
    }

    /// Ledger + trace bookkeeping for one observed deadline expiry.
    fn timed_out(&self, stage: &'static str) {
        ServeCounters::bump(&self.counters.timeouts);
        self.obs.timeouts.inc();
        swsimd_obs::event!("deadline_exceeded", "stage" => stage);
    }

    /// Non-blocking admission: if the tenant's bounded lane (or the
    /// underlying job queue) is full the query is shed immediately
    /// with [`ServeError::QueueFull`] (recorded in
    /// [`ServerStats::shed`]) instead of growing memory or latency
    /// without bound. Once admitted, blocks for the reply.
    pub fn try_query(&self, query: Vec<u8>, top_k: usize) -> Result<Vec<Hit>, ServeError> {
        self.try_query_for("", query, top_k)
    }

    /// [`ServerClient::try_query`] on behalf of `tenant` (see
    /// [`ServerClient::submit_traced_for`] for the admission rules).
    pub fn try_query_for(
        &self,
        tenant: &str,
        query: Vec<u8>,
        top_k: usize,
    ) -> Result<Vec<Hit>, ServeError> {
        let (job, reply_rx) = self.make_job(tenant, query, top_k, None, TraceCtx::default())?;
        match self.tx.try_send(Msg::Job(job)) {
            Ok(()) => self.obs.queue_depth.inc(),
            Err(TrySendError::Full(msg)) => {
                let retry_after_ms = self.qos.retry_hint_ms();
                if let Msg::Job(job) = msg {
                    self.release_admission(&job);
                    job.tenant.shed.inc();
                }
                ServeCounters::bump(&self.counters.shed);
                self.obs.shed.inc();
                swsimd_obs::event!("load_shed", "depth" => self.obs.queue_depth.get());
                return Err(ServeError::QueueFull { retry_after_ms });
            }
            Err(TrySendError::Disconnected(msg)) => {
                if let Msg::Job(job) = msg {
                    self.release_admission(&job);
                }
                return Err(ServeError::ShutDown);
            }
        }
        match reply_rx.recv() {
            Ok(result) => result.map(|o| o.hits),
            Err(_) => Err(ServeError::ShutDown),
        }
    }
}

/// Server configuration.
#[derive(Clone)]
pub struct ServerConfig {
    /// Queries accumulated before a batch is processed.
    pub batch_size: usize,
    /// Maximum time the first query in a batch waits for company.
    pub max_wait: Duration,
    /// Bound on queued jobs: `query` blocks (backpressure) and
    /// `try_query` sheds when this many jobs are already waiting.
    pub queue_depth: usize,
    /// Fault-injection schedule (inert by default; see [`FaultPlan`]).
    pub fault_plan: FaultPlan,
    /// When set, the worker emits a `server_health` trace event with a
    /// human-readable [`health_line`]-style summary at most this often
    /// (checked after each batch). `None` (the default) disables it.
    pub health_period: Option<Duration>,
    /// Admission quota: queries longer than this many residues are
    /// rejected at submit time with [`ServeError::QueryTooLarge`]
    /// before any buffering — the serving-side arm of the ingestion
    /// memory budget (`swsimd_seq::IngestQuota`).
    pub max_query_len: usize,
    /// Sampled shadow verification of served hits against the scalar
    /// reference (off by default; see [`ShadowConfig`]).
    pub shadow: ShadowConfig,
    /// Deadline applied to plain [`ServerClient::query`] calls. `None`
    /// (the default) preserves the historical block-forever behaviour;
    /// `Some(t)` routes every query through the same deadline
    /// machinery as [`ServerClient::query_with_deadline`].
    pub default_timeout: Option<Duration>,
    /// Cost-based admission ceiling in estimated DP cells
    /// (`|query| × Σ|db|`). Queries above it are rejected with
    /// [`ServeError::CostTooHigh`] before buffering. `None` disables.
    pub max_cost: Option<u64>,
    /// Per-query memory budget in bytes for DP working buffers.
    /// Reservations above it fail with [`ServeError::BudgetExceeded`].
    /// `None` disables accounting.
    pub mem_budget: Option<u64>,
    /// Stall watchdog: a worker whose kernel heartbeat stops advancing
    /// for this long is cancelled ([`CancelReason::Watchdog`]), a
    /// trust-ladder strike is filed against the effective engine, and
    /// the job is retried on the scalar reference. `None` disables.
    pub stall_timeout: Option<Duration>,
    /// Multi-tenant fair-share scheduling and token-bucket admission
    /// (tenant weights, lane bounds, rate limits). The default is a
    /// single anonymous lane sized to `queue_depth`, which preserves
    /// the historical FIFO behaviour.
    pub qos: QosConfig,
    /// Brownout degradation watermarks: under sustained queue delay
    /// the worker suspends work stepwise (shadow sampling → stage
    /// detail → deadline headroom) instead of shedding, declaring each
    /// step as a typed [`Fidelity`] on results. `None` disables.
    pub brownout: Option<BrownoutConfig>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            batch_size: 8,
            max_wait: Duration::from_millis(20),
            queue_depth: 1024,
            fault_plan: FaultPlan::default(),
            health_period: None,
            max_query_len: usize::MAX,
            shadow: ShadowConfig::default(),
            default_timeout: None,
            max_cost: None,
            mem_budget: None,
            stall_timeout: None,
            qos: QosConfig::default(),
            brownout: None,
        }
    }
}

/// Statistics the server keeps about its batching and degradation
/// behaviour — an alias for [`crate::metrics::Snapshot`], which owns
/// the field set and the single-line `Display` form (see
/// [`crate::metrics::ServeCounters`] for the live, shared ledger).
pub type ServerStats = Snapshot;

/// Shared slot the worker publishes its in-flight job's cancel token
/// into, so the stall watchdog can observe kernel heartbeats from
/// outside the (possibly wedged) worker thread. `gen` disambiguates
/// successive jobs so a stale heartbeat reading from job N is never
/// charged against job N+1.
struct WorkerWatch {
    gen: AtomicU64,
    current: Mutex<Option<CancelToken>>,
    stop: AtomicBool,
}

impl WorkerWatch {
    fn new() -> Arc<Self> {
        Arc::new(Self {
            gen: AtomicU64::new(0),
            current: Mutex::new(None),
            stop: AtomicBool::new(false),
        })
    }

    /// Publish `token` as the job under observation.
    fn begin(&self, token: &CancelToken) {
        *self.current.lock().expect("watch lock") = Some(token.clone());
        self.gen.fetch_add(1, Release);
    }

    /// Clear the slot: compute finished (or failed) normally.
    fn end(&self) {
        *self.current.lock().expect("watch lock") = None;
        self.gen.fetch_add(1, Release);
    }

    fn observe(&self) -> Option<(u64, u64, CancelToken)> {
        let guard = self.current.lock().expect("watch lock");
        guard
            .as_ref()
            .map(|t| (self.gen.load(Acquire), t.heartbeat(), t.clone()))
    }
}

/// Stall-watchdog loop: polls the published job's kernel heartbeat and
/// cancels it with [`CancelReason::Watchdog`] when it stops advancing
/// for `stall`. The cancelled worker unwedges at its next cooperative
/// check; [`WorkerCtx::run_job`] then files the trust strike and
/// retries on the scalar reference.
fn server_watchdog(
    watch: Arc<WorkerWatch>,
    stall: Duration,
    counters: Arc<ServeCounters>,
    obs: Arc<ServerObs>,
) {
    let poll = (stall / 4).clamp(Duration::from_millis(1), Duration::from_millis(25));
    // (generation, last heartbeat, when it last advanced)
    let mut last: Option<(u64, u64, Instant)> = None;
    while !watch.stop.load(Acquire) {
        std::thread::sleep(poll);
        let Some((gen, beat, token)) = watch.observe() else {
            last = None;
            continue;
        };
        if token.is_cancelled() {
            last = None;
            continue;
        }
        match last {
            Some((g, b, since)) if g == gen && b == beat => {
                if since.elapsed() >= stall && token.cancel(CancelReason::Watchdog) {
                    ServeCounters::bump(&counters.watchdog_fires);
                    counters.record_cancel(CancelReason::Watchdog);
                    obs.watchdog_fires.inc();
                    obs.cancelled_counter(CancelReason::Watchdog).inc();
                    swsimd_obs::event!(
                        "watchdog_fire",
                        "stalled_ms" => since.elapsed().as_millis() as u64
                    );
                    last = None;
                }
            }
            _ => last = Some((gen, beat, Instant::now())),
        }
    }
}

/// File a freshly received job into its tenant's DRR lane. The job
/// still counts as queued (gauges decrement when it is popped into a
/// batch, not here) — a laned job has not been scheduled yet.
fn stash(lanes: &mut Drr<Job>, job: Job) {
    let lane = lanes.lane(&job.tenant.name, job.tenant.weight);
    let cost = job.cost.max(1);
    lanes.push(lane, cost, job);
}

/// A running batch server. Dropping the handle shuts the worker down
/// after it drains pending queries.
pub struct BatchServer {
    client_tx: Sender<Msg>,
    worker: Option<std::thread::JoinHandle<()>>,
    watchdog: Option<std::thread::JoinHandle<()>>,
    watch: Arc<WorkerWatch>,
    counters: Arc<ServeCounters>,
    obs: Arc<ServerObs>,
    max_query_len: usize,
    max_cost: Option<u64>,
    db_residues: u64,
    default_timeout: Option<Duration>,
    server_cancel: CancelToken,
    qos: Arc<QosShared>,
    /// Worker-published brownout level, mirrored for
    /// [`BatchServer::brownout_level`].
    brownout_level: Arc<AtomicU8>,
}

impl BatchServer {
    /// Start a server over `db` with per-batch processing by an aligner
    /// built from `make_aligner`.
    ///
    /// Runs the boot-time kernel self-test battery (cached
    /// process-wide) before serving: a backend that fails is marked
    /// unavailable in the trust ladder and the count is surfaced in
    /// [`ServerStats::selftest_failures`]. A server configured for an
    /// unusable engine still starts (dispatch walks down the ladder) —
    /// use [`BatchServer::try_start`] to fail fast instead.
    pub fn start<F>(db: Arc<Database>, cfg: ServerConfig, make_aligner: F) -> Self
    where
        F: Fn() -> AlignerBuilder + Send + 'static,
    {
        let (tx, rx): (Sender<Msg>, Receiver<Msg>) = bounded(cfg.queue_depth.max(1));
        let counters = Arc::new(ServeCounters::default());
        let obs = ServerObs::new();
        let failed = swsimd_core::selftest::boot().failed_engines().len() as u64;
        if failed > 0 {
            counters.selftest_failures.fetch_add(failed, Relaxed);
            obs.selftest_failures.add(failed);
        }
        let max_query_len = cfg.max_query_len;
        let max_cost = cfg.max_cost;
        let default_timeout = cfg.default_timeout;
        let db_residues = db.total_residues() as u64;
        let server_cancel = CancelToken::new();
        let qos = QosShared::new(cfg.qos.clone(), &obs.instance, cfg.queue_depth);
        let brownout_level = Arc::new(AtomicU8::new(0));
        let watch = WorkerWatch::new();
        let watchdog = cfg.stall_timeout.map(|stall| {
            let watch = watch.clone();
            let counters = counters.clone();
            let obs = obs.clone();
            std::thread::spawn(move || server_watchdog(watch, stall, counters, obs))
        });
        let worker_counters = counters.clone();
        let worker_obs = obs.clone();
        let worker_watch = watch.clone();
        let worker_qos = qos.clone();
        let brownout =
            Brownout::new(cfg.brownout).publish(brownout_level.clone(), obs.brownout_level.clone());
        let worker = std::thread::spawn(move || {
            let mut ctx = WorkerCtx::new(
                db,
                &cfg,
                make_aligner,
                worker_counters,
                worker_obs,
                worker_watch,
                worker_qos,
                brownout,
            );
            // Jobs are transported over the bounded channel FIFO but
            // scheduled from per-tenant deficit round-robin lanes, so
            // a tenant flooding the queue still drains in proportion
            // to its weight, not its arrival count.
            let mut lanes: Drr<Job> = Drr::new(cfg.qos.quantum);
            let mut pending: Vec<Job> = Vec::with_capacity(cfg.batch_size);
            let mut shutting_down = false;
            let mut last_health = Instant::now();

            while !shutting_down {
                // Wait for work: anything already laned, else block on
                // the channel for the first job of a batch.
                if lanes.is_empty() {
                    match rx.recv() {
                        Ok(Msg::Job(job)) => stash(&mut lanes, job),
                        Ok(Msg::Shutdown) | Err(_) => break,
                    }
                }
                // Sort everything already buffered into its lane so
                // DRR sees the full picture before picking the batch.
                loop {
                    match rx.try_recv() {
                        Ok(Msg::Job(job)) => stash(&mut lanes, job),
                        Ok(Msg::Shutdown) => {
                            shutting_down = true;
                            break;
                        }
                        Err(_) => break,
                    }
                }
                // Fill the batch in DRR order; when the lanes run dry
                // wait out the batching budget for company.
                let deadline = Instant::now() + cfg.max_wait;
                while pending.len() < cfg.batch_size.max(1) {
                    if let Some(job) = ctx.pop_job(&mut lanes) {
                        pending.push(job);
                        continue;
                    }
                    if shutting_down {
                        break;
                    }
                    let now = Instant::now();
                    if now >= deadline {
                        break;
                    }
                    match rx.recv_timeout(deadline - now) {
                        Ok(Msg::Job(job)) => stash(&mut lanes, job),
                        Ok(Msg::Shutdown) | Err(RecvTimeoutError::Disconnected) => {
                            shutting_down = true;
                            break;
                        }
                        Err(RecvTimeoutError::Timeout) => break,
                    }
                }
                ctx.process_batch(&mut pending);
                if let Some(period) = cfg.health_period {
                    if last_health.elapsed() >= period {
                        last_health = Instant::now();
                        swsimd_obs::event!(
                            "server_health",
                            "line" => health_line(&ctx.counters, &ctx.obs)
                        );
                    }
                }
            }
            // Drain jobs that raced with the shutdown marker — both
            // the channel and whatever the lanes still hold.
            while let Ok(Msg::Job(job)) = rx.try_recv() {
                stash(&mut lanes, job);
            }
            while !lanes.is_empty() {
                while pending.len() < cfg.batch_size.max(1) {
                    match ctx.pop_job(&mut lanes) {
                        Some(job) => pending.push(job),
                        None => break,
                    }
                }
                ctx.process_batch(&mut pending);
            }
            ctx.process_batch(&mut pending);
            // Release the watchdog only after the drain: jobs without
            // deadlines still complete, and wedged ones stay reapable.
            ctx.watch.stop.store(true, Release);
        });
        Self {
            client_tx: tx,
            worker: Some(worker),
            watchdog,
            watch,
            counters,
            obs,
            max_query_len,
            max_cost,
            db_residues,
            default_timeout,
            server_cancel,
            qos,
            brownout_level,
        }
    }

    /// Like [`BatchServer::start`], but refuses to start when the
    /// configured engine cannot actually serve — missing on this CPU
    /// or demoted by the kernel trust breaker — returning the typed
    /// [`ServeError::EngineUnavailable`] instead of silently falling
    /// back to a weaker ISA.
    pub fn try_start<F>(
        db: Arc<Database>,
        cfg: ServerConfig,
        make_aligner: F,
    ) -> Result<Self, ServeError>
    where
        F: Fn() -> AlignerBuilder + Send + 'static,
    {
        swsimd_core::selftest::boot();
        make_aligner().try_build()?;
        Ok(Self::start(db, cfg, make_aligner))
    }

    /// A client handle (cloneable, usable from many threads).
    pub fn client(&self) -> ServerClient {
        ServerClient {
            tx: self.client_tx.clone(),
            counters: self.counters.clone(),
            obs: self.obs.clone(),
            max_query_len: self.max_query_len,
            max_cost: self.max_cost,
            db_residues: self.db_residues,
            default_timeout: self.default_timeout,
            server_cancel: self.server_cancel.clone(),
            qos: self.qos.clone(),
        }
    }

    /// Record a journal-replay recovery into the ledger and the
    /// registry mirror. Called by boot/recovery paths that resume a
    /// search from a journal before (or while) serving.
    pub fn note_journal_replay(&self) {
        ServeCounters::bump(&self.counters.journal_replays);
        self.obs.journal_replays.inc();
    }

    /// Record `n` quarantined ingest records (e.g. from the
    /// `IngestReport` of the database load that booted this server).
    pub fn note_records_quarantined(&self, n: u64) {
        self.counters
            .records_quarantined
            .fetch_add(n, std::sync::atomic::Ordering::Relaxed);
        self.obs.records_quarantined.add(n);
    }

    /// Record a database image rejected for failed integrity checks.
    pub fn note_corrupt_image(&self) {
        ServeCounters::bump(&self.counters.corrupt_images);
        self.obs.corrupt_images.inc();
    }

    /// Live snapshot of the serving counters.
    pub fn stats(&self) -> ServerStats {
        self.counters.snapshot()
    }

    /// Prometheus text-format scrape of the process-global registry:
    /// this server's latency summary, queue depth and counters, plus
    /// any scenario histograms recorded elsewhere in the process.
    pub fn prometheus_text(&self) -> String {
        swsimd_obs::global().prometheus_text()
    }

    /// JSON rendering of the same registry contents as
    /// [`BatchServer::prometheus_text`], for programmatic scraping.
    pub fn json_snapshot(&self) -> String {
        swsimd_obs::global().json()
    }

    /// One-line human-readable health summary (counters, queue depth,
    /// latency quantiles in milliseconds).
    pub fn health_line(&self) -> String {
        health_line(&self.counters, &self.obs)
    }

    /// Point-in-time snapshot of this server's end-to-end query
    /// latency distribution (nanosecond values).
    pub fn latency(&self) -> swsimd_obs::HistogramSnapshot {
        self.obs.latency.snapshot()
    }

    /// Live depth of the bounded job queue.
    pub fn queue_depth(&self) -> i64 {
        self.obs.queue_depth.get()
    }

    /// Current brownout degradation level (0 = full fidelity; see
    /// [`Fidelity`] for what each level suspends).
    pub fn brownout_level(&self) -> u8 {
        self.brownout_level.load(Relaxed)
    }

    /// Shut down: stop accepting, drain, and return the final stats.
    /// Outstanding [`ServerClient`] clones get [`ServeError::ShutDown`]
    /// on later use.
    pub fn shutdown(mut self) -> ServerStats {
        self.stop();
        self.counters.snapshot()
    }

    /// Shared shutdown path for [`BatchServer::shutdown`] and `Drop`.
    ///
    /// Jobs with no deadline still drain to completion; in-flight jobs
    /// whose deadline has passed cancel themselves at the next kernel
    /// check (the deadline is baked into each job token), so the drain
    /// is bounded. The server-wide token is cancelled only after the
    /// worker exits, so late clients observe a typed
    /// [`ServeError::ShutDown`] rather than a spurious cancellation of
    /// work the drain contract promises to finish.
    fn stop(&mut self) {
        let _ = self.client_tx.send(Msg::Shutdown);
        if let Some(worker) = self.worker.take() {
            // A worker that died outside its isolation harness cannot
            // corrupt the stats snapshot; ignore the join payload.
            let _ = worker.join();
        }
        self.server_cancel.cancel(CancelReason::Shutdown);
        self.watch.stop.store(true, Release);
        if let Some(watchdog) = self.watchdog.take() {
            let _ = watchdog.join();
        }
    }
}

impl Drop for BatchServer {
    fn drop(&mut self) {
        self.stop();
    }
}

/// Worker-side state: the configured fast-path aligner plus a lazily
/// built scalar-engine fallback for degraded retries.
struct WorkerCtx<F> {
    db: Arc<Database>,
    make_aligner: F,
    aligner: Aligner,
    batched: BatchedDatabase,
    /// Scalar reference aligner + batches, built on first degraded
    /// retry (most servers never pay for it).
    fallback: Option<(Aligner, BatchedDatabase)>,
    plan: FaultPlan,
    shadow: ShadowVerifier,
    batch_size: usize,
    counters: Arc<ServeCounters>,
    obs: Arc<ServerObs>,
    /// Per-query memory accounting ([`ServerConfig::mem_budget`]).
    budget: Option<MemBudget>,
    /// Exponentially weighted cells-per-second estimate, calibrated
    /// from completed jobs (0.0 until the first one). Drives the
    /// deadline-aware predictive skip in [`WorkerCtx::process_batch`].
    cups_ewma: f64,
    db_residues: u64,
    /// Slot the stall watchdog observes; published around compute.
    watch: Arc<WorkerWatch>,
    /// Shared QoS state: the worker publishes its queue-delay EWMA
    /// here so admission can derive shed retry hints from it.
    qos: Arc<QosShared>,
    /// Brownout controller (worker-owned; level mirrored outward).
    brownout: Brownout,
    /// Was shadow verification configured at all? Keeps the level-1
    /// fidelity marker honest: suspending sampling that never ran
    /// reduces nothing.
    shadow_enabled: bool,
}

impl<F: Fn() -> AlignerBuilder> WorkerCtx<F> {
    #[allow(clippy::too_many_arguments)] // internal constructor mirroring ServerConfig
    fn new(
        db: Arc<Database>,
        cfg: &ServerConfig,
        make_aligner: F,
        counters: Arc<ServeCounters>,
        obs: Arc<ServerObs>,
        watch: Arc<WorkerWatch>,
        qos: Arc<QosShared>,
        brownout: Brownout,
    ) -> Self {
        let aligner: Aligner = make_aligner().build();
        let batched =
            BatchedDatabase::build(&db, swsimd_core::batch::lanes_for(aligner.engine()), true);
        let budget = cfg.mem_budget.map(MemBudget::new);
        obs.mem_budget_limit.set(cfg.mem_budget.unwrap_or(0) as i64);
        let db_residues = db.total_residues() as u64;
        Self {
            db,
            make_aligner,
            aligner,
            batched,
            fallback: None,
            plan: cfg.fault_plan.clone(),
            shadow: ShadowVerifier::new(cfg.shadow),
            batch_size: cfg.batch_size,
            counters,
            obs,
            budget,
            cups_ewma: 0.0,
            db_residues,
            watch,
            qos,
            brownout,
            shadow_enabled: cfg.shadow.enabled(),
        }
    }

    /// Take the next job in DRR order and settle its queued-state
    /// accounting (global gauge, tenant lane occupancy and gauge).
    fn pop_job(&self, lanes: &mut Drr<Job>) -> Option<Job> {
        let job = lanes.pop()?;
        self.obs.queue_depth.dec();
        job.tenant.queued.fetch_sub(1, Relaxed);
        job.tenant.queue_depth.dec();
        Some(job)
    }

    /// Predicted compute time for a query of `qlen` residues, from the
    /// calibrated CUPS estimate. `None` until the first job completes.
    fn estimate(&self, qlen: usize) -> Option<Duration> {
        if self.cups_ewma <= 0.0 {
            return None;
        }
        let cells = qlen as f64 * self.db_residues as f64;
        Some(Duration::from_secs_f64(cells / self.cups_ewma))
    }

    fn process_batch(&mut self, pending: &mut Vec<Job>) {
        if pending.is_empty() {
            return;
        }
        let _batch = swsimd_obs::span!("server_batch", "jobs" => pending.len());
        ServeCounters::bump(&self.counters.batches);
        self.obs.batches.inc();
        if pending.len() >= self.batch_size {
            ServeCounters::bump(&self.counters.full_batches);
            self.obs.full_batches.inc();
        }
        for (slot, job) in pending.drain(..).enumerate() {
            // Feed the overload signals: this job's queue delay drives
            // both the brownout ladder and the retry hints handed to
            // shed clients.
            let waited_ns = job.submitted.elapsed().as_nanos() as u64;
            self.qos.observe_queue_delay(waited_ns);
            self.brownout.observe(waited_ns);
            // Don't compute answers nobody is waiting for: the client
            // observed this same deadline and has already returned.
            if job.deadline.is_some_and(|d| Instant::now() >= d) {
                swsimd_obs::event!("job_expired_in_queue", "slot" => slot);
                continue;
            }
            // Deadline-aware scheduling: once CUPS is calibrated, skip
            // jobs predicted to overrun their remaining budget (with a
            // 2x safety factor — 4x at brownout level 3, where the
            // ladder trades deadline headroom for queue drain) instead
            // of computing a dead answer. The client has NOT timed out
            // yet, so reply explicitly.
            if let (Some(d), Some(est)) = (job.deadline, self.estimate(job.query.len())) {
                let remaining = d.saturating_duration_since(Instant::now());
                if remaining < est * self.brownout.skip_factor() {
                    swsimd_obs::event!(
                        "job_skipped_predicted_overrun",
                        "slot" => slot,
                        "remaining_ms" => remaining.as_millis() as u64,
                        "estimated_ms" => est.as_millis() as u64
                    );
                    ServeCounters::bump(&self.counters.timeouts);
                    self.obs.timeouts.inc();
                    let _ = job.reply.send(Err(ServeError::DeadlineExceeded));
                    continue;
                }
            }
            ServeCounters::bump(&self.counters.queries);
            self.obs.queries.inc();
            job.phase.store(PHASE_COMPUTING, Release);
            self.watch.begin(&job.cancel);
            let started = Instant::now();
            let queue_ns = started.duration_since(job.submitted).as_nanos() as u64;
            // Adopt the submitter's trace context for the duration of
            // the compute, so kernel spans parent under the (possibly
            // remote) request span instead of floating free.
            let result = {
                let _adopt = swsimd_obs::adopt(job.trace);
                self.run_job(slot, &job)
            };
            let compute = started.elapsed();
            self.watch.end();
            if result.is_ok() {
                // Calibrate the cost model against measured throughput.
                let secs = compute.as_secs_f64().max(1e-9);
                let cups = job.query.len() as f64 * self.db_residues as f64 / secs;
                self.cups_ewma = if self.cups_ewma > 0.0 {
                    0.7 * self.cups_ewma + 0.3 * cups
                } else {
                    cups
                };
            }
            if let Some(b) = &self.budget {
                self.obs.mem_budget_used.set(b.used() as i64);
            }
            let total = job.submitted.elapsed();
            self.obs.latency.record_duration(total);
            self.record_flight(&job, &result, queue_ns, compute.as_nanos() as u64, total);
            let result = result.map(|(hits, engine, retries)| QueryOutcome {
                hits,
                queue_ns,
                compute_ns: compute.as_nanos() as u64,
                engine,
                retries,
                fidelity: self.brownout.fidelity(self.shadow_enabled),
            });
            let was_ok = result.is_ok();
            job.phase.store(PHASE_REPLIED, Release);
            if job.reply.send(result).is_err() && was_ok {
                // The client stopped listening after we paid for the
                // answer — account it as a client-drop cancellation.
                self.counters.record_cancel(CancelReason::ClientDrop);
                self.obs.cancelled_counter(CancelReason::ClientDrop).inc();
            }
        }
    }

    /// File one completed (or failed) job into the process-global
    /// flight recorder: stage breakdown (queue wait + kernel compute),
    /// engine attribution, retry/degradation flags and the cancel
    /// reason, keyed by the job's propagated trace id.
    fn record_flight(
        &self,
        job: &Job,
        result: &Result<(Vec<Hit>, &'static str, u32), ServeError>,
        queue_ns: u64,
        kernel_ns: u64,
        total: Duration,
    ) {
        let recorder = swsimd_obs::flight::global();
        if !recorder.enabled() {
            return;
        }
        let (engine, retries, ok, cancel) = match result {
            Ok((_, engine, retries)) => (*engine, *retries, true, ""),
            Err(ServeError::DeadlineExceeded) => ("", 0, false, "deadline"),
            Err(ServeError::ShutDown) => ("", 0, false, "shutdown"),
            Err(ServeError::WorkerPanicked) => ("", 0, false, "panic"),
            Err(_) => ("", 0, false, "error"),
        };
        // Brownout level 2 (score-only service) drops per-stage
        // timing detail from audit records — the record itself (and
        // its tenant attribution) survives so triage still works.
        let stages = if self.brownout.level() >= 2 {
            Vec::new()
        } else {
            vec![
                StageTiming {
                    stage: Stage::Queue,
                    ns: queue_ns,
                },
                StageTiming {
                    stage: Stage::Kernel,
                    ns: kernel_ns,
                },
            ]
        };
        recorder.record(AuditRecord {
            trace_id: job.trace.trace_id,
            query_id: job.trace.span_id,
            total_ns: total.as_nanos() as u64,
            stages,
            shards: Vec::new(),
            engine: engine.to_string(),
            retries,
            hedges: 0,
            degraded: retries > 0,
            cost: job.cost,
            cancel: cancel.to_string(),
            ok,
            tenant: tenant_label(&job.tenant.name).to_string(),
        });
    }

    /// One job with isolation and governance: memory-budget
    /// reservation, then the fast path under `catch_unwind` with the
    /// job's cancel token threaded into the kernel, hit-count
    /// validation, and a single degraded retry on the scalar reference
    /// engine for panics, malformed results, and watchdog reaps.
    /// Cooperative cancellations (deadline, shutdown) propagate as
    /// typed errors without a retry — nobody is waiting for the
    /// answer. `slot` is the job's index within its batch — the unit
    /// [`FaultPlan`] targets for the server.
    fn run_job(
        &mut self,
        slot: usize,
        job: &Job,
    ) -> Result<(Vec<Hit>, &'static str, u32), ServeError> {
        let query = &job.query;
        let top_k = job.top_k;
        let expected = self.db.len();
        // Reserve the DP working-set estimate up front; held for the
        // whole job (fast path and retry share the buffers' bound).
        let _reserved = match &self.budget {
            Some(b) => match b.try_reserve(swsimd_core::govern::score_bytes(query.len(), 4)) {
                Ok(r) => Some(r),
                Err(e) => {
                    ServeCounters::bump(&self.counters.budget_rejected);
                    self.obs.budget_rejected.inc();
                    swsimd_obs::event!("job_rejected_budget", "slot" => slot);
                    return Err(e.into());
                }
            },
            None => None,
        };
        let fast = catch_unwind(AssertUnwindSafe(|| {
            self.plan.before_partition(slot);
            let mut hits = self.aligner.try_search_batched(
                query,
                &self.db,
                &self.batched,
                Some(&job.cancel),
            )?;
            self.plan.corrupt_hits(slot, &mut hits);
            self.plan.skew_hits(slot, &mut hits);
            Ok::<_, AlignError>(hits)
        }));
        let mut panicked = false;
        let mut reaped = false;
        match fast {
            Ok(Ok(mut hits)) if hits.len() == expected => {
                // Brownout level ≥ 1 suspends shadow sampling — the
                // first, cheapest rung of the degradation ladder. The
                // suspension is declared on the result as
                // [`Fidelity::NoShadow`], never silent.
                let out = if self.brownout.shadow_suspended() {
                    Default::default()
                } else {
                    self.shadow
                        .verify_hits(query, &self.db, &mut hits, &self.make_aligner)
                };
                if out.checks > 0 {
                    self.counters.shadow_checks.fetch_add(out.checks, Relaxed);
                    self.obs.shadow_checks.add(out.checks);
                    self.counters
                        .shadow_mismatches
                        .fetch_add(out.mismatches, Relaxed);
                    self.obs.shadow_mismatches.add(out.mismatches);
                    self.counters
                        .backend_demotions
                        .fetch_add(out.demotions, Relaxed);
                    self.obs.backend_demotions.add(out.demotions);
                }
                let engine = swsimd_core::trust::effective_engine(self.aligner.engine()).name();
                return Ok((rank_hits(hits, top_k), engine, 0));
            }
            // Watchdog reap: the kernel was wedged and got cancelled
            // from outside. Not a client-visible failure — fall
            // through to the scalar retry, but file the trust strike
            // (the watchdog thread already counted the fire).
            Ok(Err(AlignError::Cancelled {
                reason: CancelReason::Watchdog,
            })) => reaped = true,
            // Cooperative cancellation: deadline, shutdown, drop. The
            // client is gone or going; surface the typed error, no
            // retry.
            Ok(Err(AlignError::Cancelled { reason })) => {
                self.counters.record_cancel(reason);
                self.obs.cancelled_counter(reason).inc();
                swsimd_obs::event!(
                    "job_cancelled",
                    "slot" => slot,
                    "reason" => reason.as_str()
                );
                return Err(cancel_to_serve(reason));
            }
            Ok(Err(e)) => return Err(e.into()),
            // Panic or malformed hit count: the existing isolation
            // path below.
            Ok(Ok(_)) => {}
            Err(_) => panicked = true,
        }

        // The fast path panicked, was reaped, or returned a malformed
        // result: isolate it, record it, and recompute this job on the
        // scalar reference engine (exact scores, degraded throughput).
        if panicked {
            ServeCounters::bump(&self.counters.worker_panics);
            self.obs.worker_panics.inc();
            swsimd_obs::event!("worker_panic", "slot" => slot);
        }
        if panicked || reaped {
            // A kernel panic or stall is a strike against the backend
            // that computed it; enough strikes open the trust breaker.
            let engine = swsimd_core::trust::effective_engine(self.aligner.engine());
            if swsimd_core::trust::global().record_strike(engine) {
                ServeCounters::bump(&self.counters.backend_demotions);
                self.obs.backend_demotions.inc();
            }
        }
        ServeCounters::bump(&self.counters.degraded_batches);
        ServeCounters::bump(&self.counters.retries);
        self.obs.retries.inc();
        swsimd_obs::event!(
            "degraded_retry",
            "slot" => slot,
            "panicked" => panicked,
            "reaped" => reaped,
            "engine" => "scalar"
        );

        if self.fallback.is_none() {
            let built = catch_unwind(AssertUnwindSafe(|| {
                let aligner = (self.make_aligner)().engine(EngineKind::Scalar).build();
                let batched = BatchedDatabase::build(
                    &self.db,
                    swsimd_core::batch::lanes_for(aligner.engine()),
                    true,
                );
                (aligner, batched)
            }));
            match built {
                Ok(fb) => self.fallback = Some(fb),
                Err(_) => return Err(ServeError::WorkerPanicked),
            }
        }
        // The retry runs ungoverned after a watchdog reap (its token
        // is already cancelled; the answer is still owed) but keeps
        // deadline/shutdown governance otherwise.
        let retry_token = if reaped { None } else { Some(&job.cancel) };
        let db = &self.db;
        let retry = self.fallback.as_mut().map(|(aligner, batched)| {
            catch_unwind(AssertUnwindSafe(|| {
                aligner.try_search_batched(query, db, batched, retry_token)
            }))
        });
        match retry {
            Some(Ok(Ok(hits))) if hits.len() == expected => {
                Ok((rank_hits(hits, top_k), EngineKind::Scalar.name(), 1))
            }
            Some(Ok(Err(AlignError::Cancelled { reason }))) => {
                self.counters.record_cancel(reason);
                self.obs.cancelled_counter(reason).inc();
                Err(cancel_to_serve(reason))
            }
            // Double fault: the reference engine failed too.
            _ => Err(ServeError::WorkerPanicked),
        }
    }
}

/// A query submitted with [`ServerClient::submit`]: the reply is
/// awaited in bounded steps instead of one blocking call, and the
/// job's cancel token stays in the caller's hands.
pub struct PendingQuery {
    reply_rx: Receiver<Reply>,
    token: CancelToken,
    deadline: Option<Instant>,
}

impl PendingQuery {
    /// The job's cancel token (a child of the server's).
    pub fn token(&self) -> &CancelToken {
        &self.token
    }

    /// Cancel the job; returns false if it was already cancelled.
    pub fn cancel(&self, reason: CancelReason) -> bool {
        self.token.cancel(reason)
    }

    /// Wait up to `step` for the reply. `None` means still pending;
    /// expiry of the submit deadline cancels the job
    /// ([`CancelReason::Deadline`]) and yields
    /// [`ServeError::DeadlineExceeded`] exactly like
    /// [`ServerClient::query_with_deadline`]. A successful poll yields
    /// the full [`QueryOutcome`] (hits plus queue/compute timing and
    /// engine attribution) so a network front end can report per-shard
    /// stage breakdowns upstream.
    pub fn poll(&self, step: Duration) -> Option<Result<QueryOutcome, ServeError>> {
        let wait = match self.deadline {
            Some(d) => {
                let left = d.saturating_duration_since(Instant::now());
                if left.is_zero() {
                    self.token.cancel(CancelReason::Deadline);
                    return Some(Err(ServeError::DeadlineExceeded));
                }
                step.min(left)
            }
            None => step,
        };
        match self.reply_rx.recv_timeout(wait) {
            Ok(result) => Some(result),
            Err(RecvTimeoutError::Timeout) => None,
            Err(RecvTimeoutError::Disconnected) => {
                Some(if self.deadline.is_some_and(|d| Instant::now() >= d) {
                    self.token.cancel(CancelReason::Deadline);
                    Err(ServeError::DeadlineExceeded)
                } else {
                    Err(ServeError::ShutDown)
                })
            }
        }
    }
}

/// Sort hits best-first (stable tie-break on database index) and
/// truncate to `top_k` (0 keeps all). Shared by the batch server and
/// the networked gateway's scatter-gather merge, so local and
/// distributed rankings agree bit-for-bit.
pub fn rank_hits(mut hits: Vec<Hit>, top_k: usize) -> Vec<Hit> {
    hits.sort_by(|a, b| b.score.cmp(&a.score).then(a.db_index.cmp(&b.db_index)));
    if top_k > 0 {
        hits.truncate(top_k);
    }
    hits
}

#[cfg(test)]
mod tests {
    use super::*;
    use swsimd_matrices::{blosum62, Alphabet};
    use swsimd_seq::{generate_database, generate_exact, SynthConfig};

    fn tiny_db() -> Arc<Database> {
        Arc::new(generate_database(&SynthConfig {
            n_seqs: 24,
            max_len: 100,
            median_len: 50.0,
            ..Default::default()
        }))
    }

    fn enc(len: usize, seed: u64) -> Vec<u8> {
        Alphabet::protein().encode(&generate_exact(len, seed).seq)
    }

    #[test]
    fn serves_queries_correctly() {
        let db = tiny_db();
        let server = BatchServer::start(db.clone(), ServerConfig::default(), || {
            Aligner::builder().matrix(blosum62())
        });
        let client = server.client();
        let q = enc(30, 7);
        let hits = client.query(q.clone(), 3).expect("server is up");
        assert_eq!(hits.len(), 3);

        // Compare against a direct search.
        let mut direct = Aligner::builder().matrix(blosum62()).build();
        let want = direct.search(&q, &db, 3);
        assert_eq!(hits, want);
        let stats = server.shutdown();
        assert_eq!(stats.queries, 1);
    }

    #[test]
    fn batches_accumulate_from_concurrent_clients() {
        let db = tiny_db();
        let server = BatchServer::start(
            db,
            ServerConfig {
                batch_size: 4,
                max_wait: Duration::from_millis(200),
                ..Default::default()
            },
            || Aligner::builder().matrix(blosum62()),
        );
        let client = server.client();
        std::thread::scope(|scope| {
            for i in 0..8 {
                let c = client.clone();
                scope.spawn(move || {
                    let hits = c.query(enc(25, i), 1).expect("server is up");
                    assert_eq!(hits.len(), 1);
                });
            }
        });
        let stats = server.shutdown();
        assert_eq!(stats.queries, 8);
        assert!(
            stats.batches <= 4,
            "8 concurrent queries should batch: {stats:?}"
        );
    }

    #[test]
    fn timeout_flushes_partial_batch() {
        let db = tiny_db();
        let server = BatchServer::start(
            db,
            ServerConfig {
                batch_size: 64,
                max_wait: Duration::from_millis(10),
                ..Default::default()
            },
            || Aligner::builder().matrix(blosum62()),
        );
        let client = server.client();
        // Would wait forever without the timeout.
        let hits = client.query(enc(20, 3), 2).expect("server is up");
        assert_eq!(hits.len(), 2);
        let stats = server.shutdown();
        assert_eq!(stats.full_batches, 0);
    }

    #[test]
    fn shutdown_drains_pending() {
        let db = tiny_db();
        let server = BatchServer::start(db, ServerConfig::default(), || {
            Aligner::builder().matrix(blosum62())
        });
        let client = server.client();
        let h = std::thread::spawn(move || client.query(enc(15, 1), 1));
        std::thread::sleep(Duration::from_millis(5));
        let stats = server.shutdown();
        let hits = h
            .join()
            .expect("client thread")
            .expect("drained before shutdown");
        assert_eq!(hits.len(), 1);
        assert_eq!(stats.queries, 1);
    }

    #[test]
    fn query_after_shutdown_is_typed_error() {
        let db = tiny_db();
        let server = BatchServer::start(db, ServerConfig::default(), || {
            Aligner::builder().matrix(blosum62())
        });
        let client = server.client();
        let _ = server.shutdown();
        assert_eq!(client.query(enc(10, 2), 1), Err(ServeError::ShutDown));
        assert_eq!(client.try_query(enc(10, 2), 1), Err(ServeError::ShutDown));
        assert_eq!(
            client.query_with_deadline(enc(10, 2), 1, Duration::from_millis(50)),
            Err(ServeError::ShutDown)
        );
    }

    #[test]
    fn invalid_query_is_rejected_at_the_boundary() {
        let db = tiny_db();
        let server = BatchServer::start(db, ServerConfig::default(), || {
            Aligner::builder().matrix(blosum62())
        });
        let client = server.client();
        let bad = vec![1u8, 200, 3];
        match client.query(bad, 1) {
            Err(ServeError::InvalidQuery(AlignError::InvalidResidue { position, value })) => {
                assert_eq!((position, value), (1, 200));
            }
            other => panic!("expected InvalidQuery, got {other:?}"),
        }
        let stats = server.shutdown();
        assert_eq!(stats.queries, 0, "invalid queries never reach the worker");
    }

    #[test]
    fn oversized_query_rejected_at_admission() {
        let db = tiny_db();
        let server = BatchServer::start(
            db,
            ServerConfig {
                max_query_len: 16,
                ..Default::default()
            },
            || Aligner::builder().matrix(blosum62()),
        );
        let client = server.client();
        match client.query(enc(64, 3), 1) {
            Err(ServeError::QueryTooLarge { len, limit }) => {
                assert_eq!((len, limit), (64, 16));
            }
            other => panic!("expected QueryTooLarge, got {other:?}"),
        }
        // All entry points share the admission path.
        assert!(matches!(
            client.try_query(enc(64, 4), 1),
            Err(ServeError::QueryTooLarge { .. })
        ));
        assert!(matches!(
            client.query_with_deadline(enc(64, 5), 1, Duration::from_millis(50)),
            Err(ServeError::QueryTooLarge { .. })
        ));
        // A query inside the quota still works.
        let hits = client.query(enc(10, 6), 1).expect("within quota");
        assert_eq!(hits.len(), 1);
        let stats = server.shutdown();
        assert_eq!(stats.queries, 1, "oversized queries never reach the worker");
    }

    #[test]
    fn recovery_counters_surface_in_exposition() {
        let db = tiny_db();
        let server = BatchServer::start(db, ServerConfig::default(), || {
            Aligner::builder().matrix(blosum62())
        });
        server.note_journal_replay();
        server.note_records_quarantined(3);
        server.note_corrupt_image();
        let stats = server.stats();
        assert_eq!(stats.journal_replays, 1);
        assert_eq!(stats.records_quarantined, 3);
        assert_eq!(stats.corrupt_images, 1);
        let line = server.health_line();
        assert!(line.contains("journal_replays=1"), "{line}");
        assert!(line.contains("records_quarantined=3"), "{line}");
        assert!(line.contains("corrupt_images=1"), "{line}");
        let text = server.prometheus_text();
        assert!(
            text.contains("swsimd_server_journal_replays_total"),
            "{text}"
        );
        assert!(
            text.contains("swsimd_server_records_quarantined_total"),
            "{text}"
        );
        assert!(
            text.contains("swsimd_server_corrupt_images_total"),
            "{text}"
        );
        let _ = server.shutdown();
    }

    #[test]
    fn worker_panic_degrades_to_exact_answer() {
        let db = tiny_db();
        let q = enc(30, 7);
        let mut direct = Aligner::builder().matrix(blosum62()).build();
        let want = direct.search(&q, &db, 5);

        let server = BatchServer::start(
            db.clone(),
            ServerConfig {
                fault_plan: FaultPlan::new().panic_at(0, 1),
                ..Default::default()
            },
            || Aligner::builder().matrix(blosum62()),
        );
        let client = server.client();
        let hits = client.query(q.clone(), 5).expect("degraded, not dead");
        assert_eq!(hits, want, "scalar retry stays exact");
        // Second query: fault budget exhausted, fast path again.
        let hits2 = client.query(q, 5).expect("server is up");
        assert_eq!(hits2, want);
        let stats = server.shutdown();
        assert_eq!(stats.worker_panics, 1);
        assert_eq!(stats.degraded_batches, 1);
        assert_eq!(stats.retries, 1);
        assert_eq!(stats.queries, 2);
    }

    #[test]
    fn poisoned_batch_is_validated_and_recomputed() {
        let db = tiny_db();
        let q = enc(25, 9);
        let mut direct = Aligner::builder().matrix(blosum62()).build();
        let want = direct.search(&q, &db, 0);

        let server = BatchServer::start(
            db,
            ServerConfig {
                fault_plan: FaultPlan::new().poison_at(0, 1),
                ..Default::default()
            },
            || Aligner::builder().matrix(blosum62()),
        );
        let client = server.client();
        let hits = client.query(q, 0).expect("degraded, not dead");
        assert_eq!(hits, want);
        let stats = server.shutdown();
        assert_eq!(stats.worker_panics, 0, "poison is not a panic");
        assert_eq!(stats.degraded_batches, 1);
        assert_eq!(stats.retries, 1);
    }

    #[test]
    fn shadow_verification_catches_wrong_scores_and_surfaces_counters() {
        use crate::shadow::OnMismatch;
        let db = tiny_db();
        let q = enc(30, 7);
        let mut direct = Aligner::builder().matrix(blosum62()).build();
        let want = direct.search(&q, &db, 0);

        let server = BatchServer::start(
            db.clone(),
            ServerConfig {
                // Skew the top hit of the first job — count-preserving,
                // so only shadow verification can catch it. Record mode
                // keeps this unit test independent of the global trust
                // ladder (breaker behavior is covered end-to-end).
                fault_plan: FaultPlan::new().wrong_score_at(0, 1),
                shadow: ShadowConfig {
                    sample_rate: 1.0,
                    on_mismatch: OnMismatch::Record,
                },
                ..Default::default()
            },
            || Aligner::builder().matrix(blosum62()),
        );
        let client = server.client();
        let hits = client.query(q.clone(), 0).expect("server is up");
        assert_eq!(hits, want, "mismatching score repaired before reply");
        let line = server.health_line();
        assert!(line.contains("shadow_checks=24"), "{line}");
        assert!(line.contains("shadow_mismatches=1"), "{line}");
        let text = server.prometheus_text();
        assert!(text.contains("swsimd_server_shadow_checks_total"), "{text}");
        assert!(
            text.contains("swsimd_server_shadow_mismatches_total"),
            "{text}"
        );
        let stats = server.shutdown();
        assert_eq!(stats.shadow_checks, 24, "every hit verified at rate 1");
        assert_eq!(stats.shadow_mismatches, 1);
        assert_eq!(
            stats.degraded_batches, 0,
            "skew evades structural validation; only shadow caught it"
        );
    }

    #[test]
    fn try_start_rejects_unavailable_engine_with_typed_error() {
        let db = tiny_db();
        // Scalar is always usable.
        let ok = BatchServer::try_start(db.clone(), ServerConfig::default(), || {
            Aligner::builder()
                .matrix(blosum62())
                .engine(EngineKind::Scalar)
        });
        assert!(ok.is_ok());
        let _ = ok.unwrap().shutdown();
        // An engine the CPU lacks is a typed refusal, not a fallback.
        if let Some(&missing) = EngineKind::ALL.iter().find(|e| !e.is_available()) {
            match BatchServer::try_start(db, ServerConfig::default(), move || {
                Aligner::builder().matrix(blosum62()).engine(missing)
            }) {
                Err(ServeError::EngineUnavailable { requested, .. }) => {
                    assert_eq!(requested, missing);
                }
                other => panic!("expected EngineUnavailable, got {:?}", other.is_ok()),
            }
        }
    }

    #[test]
    fn deadline_expiry_returns_typed_error_in_bounded_time() {
        let db = tiny_db();
        let server = BatchServer::start(
            db,
            ServerConfig {
                batch_size: 1,
                max_wait: Duration::from_millis(1),
                // Every job in slot 0 stalls well past the deadline.
                fault_plan: FaultPlan::new().delay_at(0, Duration::from_millis(300)),
                ..Default::default()
            },
            || Aligner::builder().matrix(blosum62()),
        );
        let client = server.client();
        let start = Instant::now();
        let r = client.query_with_deadline(enc(20, 4), 1, Duration::from_millis(30));
        let elapsed = start.elapsed();
        assert_eq!(r, Err(ServeError::DeadlineExceeded));
        assert!(
            elapsed < Duration::from_millis(250),
            "deadline must bound the call, took {elapsed:?}"
        );
        let stats = server.shutdown();
        assert!(stats.timeouts >= 1, "{stats:?}");
    }

    #[test]
    fn full_queue_sheds_with_typed_error() {
        let db = tiny_db();
        let server = BatchServer::start(
            db,
            ServerConfig {
                batch_size: 1,
                max_wait: Duration::from_millis(1),
                queue_depth: 1,
                // Keep the worker busy so the queue backs up.
                fault_plan: FaultPlan::new().delay_at(0, Duration::from_millis(100)),
                ..Default::default()
            },
            || Aligner::builder().matrix(blosum62()),
        );
        let client = server.client();
        // Background clients keep the worker and the 1-slot lane busy;
        // they loop because a full lane sheds blocking queries too.
        let stop = Arc::new(AtomicBool::new(false));
        let bg: Vec<_> = (0..3)
            .map(|i| {
                let c = client.clone();
                let stop = stop.clone();
                std::thread::spawn(move || {
                    for n in 0..2000u64 {
                        if stop.load(Relaxed) {
                            break;
                        }
                        let _ = c.query(enc(15, i * 1000 + n), 1);
                    }
                })
            })
            .collect();
        // With a full lane, try_query must shed rather than block, and
        // the typed error must carry a usable backoff hint.
        let mut shed = false;
        for i in 0..50 {
            match client.try_query(enc(15, 100 + i), 1) {
                Err(ServeError::QueueFull { retry_after_ms }) => {
                    assert!(retry_after_ms >= 1, "shed must carry a backoff hint");
                    shed = true;
                    break;
                }
                Ok(_) => {}
                Err(e) => panic!("unexpected error {e:?}"),
            }
        }
        stop.store(true, Relaxed);
        assert!(shed, "try_query never shed under sustained load");
        for h in bg {
            h.join().expect("client thread");
        }
        let stats = server.shutdown();
        assert!(stats.shed >= 1, "{stats:?}");
    }

    #[test]
    fn exposition_scrapes_latency_and_counters() {
        let db = tiny_db();
        let server = BatchServer::start(db, ServerConfig::default(), || {
            Aligner::builder().matrix(blosum62())
        });
        let client = server.client();
        for i in 0..3 {
            client.query(enc(20, i), 1).expect("server is up");
        }
        let lat = server.latency();
        assert_eq!(lat.count, 3);
        assert!(lat.p99 >= lat.p50);
        assert_eq!(server.queue_depth(), 0, "all jobs drained");

        let text = server.prometheus_text();
        assert!(
            text.contains("# TYPE swsimd_query_latency_seconds summary"),
            "{text}"
        );
        assert!(text.contains("quantile=\"0.99\""), "{text}");
        assert!(text.contains("swsimd_server_queries_total"), "{text}");
        assert!(text.contains("swsimd_queue_depth"), "{text}");

        let json = server.json_snapshot();
        assert!(json.contains("\"swsimd_query_latency_seconds\""), "{json}");
        assert!(json.contains("\"p99\""), "{json}");

        let line = server.health_line();
        assert!(line.contains("queries=3"), "{line}");
        assert!(line.contains("p99_ms="), "{line}");
    }

    #[cfg(feature = "trace")]
    #[test]
    fn periodic_health_event_is_emitted() {
        let rec = swsimd_obs::Recorder::install();
        let db = tiny_db();
        let server = BatchServer::start(
            db,
            ServerConfig {
                health_period: Some(Duration::ZERO),
                ..Default::default()
            },
            || Aligner::builder().matrix(blosum62()),
        );
        let client = server.client();
        client.query(enc(12, 6), 1).expect("server is up");
        let _ = server.shutdown();
        let events = rec.events();
        assert!(
            events.iter().any(|e| e.name == "server_health"),
            "no health event in {events:?}"
        );
    }

    #[test]
    fn watchdog_reaps_wedged_worker_and_answers_exactly() {
        let db = tiny_db();
        let q = enc(30, 7);
        let mut direct = Aligner::builder().matrix(blosum62()).build();
        let want = direct.search(&q, &db, 5);

        let server = BatchServer::start(
            db,
            ServerConfig {
                batch_size: 1,
                max_wait: Duration::from_millis(1),
                // Every slot-0 job wedges well past the stall timeout.
                fault_plan: FaultPlan::new().delay_at(0, Duration::from_millis(300)),
                stall_timeout: Some(Duration::from_millis(40)),
                ..Default::default()
            },
            || Aligner::builder().matrix(blosum62()),
        );
        let client = server.client();
        let hits = client.query(q, 5).expect("reaped, retried, answered");
        assert_eq!(hits, want, "scalar retry after the reap stays exact");

        let line = server.health_line();
        assert!(line.contains("watchdog_fires=1"), "{line}");
        assert!(line.contains("cancelled_watchdog=1"), "{line}");
        let text = server.prometheus_text();
        assert!(
            text.contains("swsimd_server_watchdog_fires_total"),
            "{text}"
        );
        assert!(text.contains("reason=\"watchdog\""), "{text}");

        let stats = server.shutdown();
        assert_eq!(stats.watchdog_fires, 1);
        assert_eq!(stats.cancelled_watchdog, 1);
        assert_eq!(stats.retries, 1, "one degraded retry");
        assert_eq!(stats.worker_panics, 0, "a stall is not a panic");
        assert_eq!(stats.queries, 1);
    }

    #[test]
    fn default_timeout_routes_plain_queries_through_deadline_machinery() {
        let db = tiny_db();
        let server = BatchServer::start(
            db,
            ServerConfig {
                batch_size: 1,
                max_wait: Duration::from_millis(1),
                fault_plan: FaultPlan::new().delay_at(0, Duration::from_millis(300)),
                default_timeout: Some(Duration::from_millis(30)),
                ..Default::default()
            },
            || Aligner::builder().matrix(blosum62()),
        );
        let client = server.client();
        let start = Instant::now();
        // Plain query(), no explicit deadline: the server default kicks in.
        let r = client.query(enc(20, 4), 1);
        let elapsed = start.elapsed();
        assert_eq!(r, Err(ServeError::DeadlineExceeded));
        assert!(
            elapsed < Duration::from_millis(250),
            "default timeout must bound the call, took {elapsed:?}"
        );
        let stats = server.shutdown();
        assert!(stats.timeouts >= 1, "{stats:?}");
    }

    #[test]
    fn cost_admission_rejects_with_typed_error() {
        let db = tiny_db();
        let residues = db.total_residues() as u64;
        let server = BatchServer::start(
            db,
            ServerConfig {
                max_cost: Some(residues * 10),
                ..Default::default()
            },
            || Aligner::builder().matrix(blosum62()),
        );
        let client = server.client();
        match client.query(enc(64, 3), 1) {
            Err(ServeError::CostTooHigh { cost, limit }) => {
                assert_eq!(cost, 64 * residues, "cost model is |q| × Σ|db|");
                assert_eq!(limit, residues * 10);
            }
            other => panic!("expected CostTooHigh, got {other:?}"),
        }
        // A query under the ceiling is still served.
        let hits = client.query(enc(8, 6), 1).expect("cheap query admitted");
        assert_eq!(hits.len(), 1);
        let line = server.health_line();
        assert!(line.contains("cost_rejected=1"), "{line}");
        let text = server.prometheus_text();
        assert!(text.contains("swsimd_server_cost_rejected_total"), "{text}");
        let stats = server.shutdown();
        assert_eq!(stats.cost_rejected, 1);
        assert_eq!(stats.queries, 1, "rejected queries never reach the worker");
    }

    #[test]
    fn memory_budget_rejects_oversized_working_set() {
        let db = tiny_db();
        let server = BatchServer::start(
            db,
            ServerConfig {
                // Far below any real DP working set.
                mem_budget: Some(64),
                ..Default::default()
            },
            || Aligner::builder().matrix(blosum62()),
        );
        let client = server.client();
        match client.query(enc(30, 7), 1) {
            Err(ServeError::BudgetExceeded { requested, limit }) => {
                assert_eq!(limit, 64);
                assert!(requested > 64, "estimate must exceed the tiny budget");
            }
            other => panic!("expected BudgetExceeded, got {other:?}"),
        }
        let line = server.health_line();
        assert!(line.contains("budget_rejected=1"), "{line}");
        let text = server.prometheus_text();
        assert!(
            text.contains("swsimd_server_budget_rejected_total"),
            "{text}"
        );
        assert!(text.contains("swsimd_mem_budget_limit_bytes"), "{text}");
        let stats = server.shutdown();
        assert_eq!(stats.budget_rejected, 1);
    }

    #[test]
    fn shutdown_with_expired_compute_in_flight_is_bounded_and_typed() {
        let db = tiny_db();
        let server = BatchServer::start(
            db,
            ServerConfig {
                batch_size: 1,
                max_wait: Duration::from_millis(1),
                fault_plan: FaultPlan::new().delay_at(0, Duration::from_millis(250)),
                ..Default::default()
            },
            || Aligner::builder().matrix(blosum62()),
        );
        let client = server.client();
        let h = std::thread::spawn(move || {
            client.query_with_deadline(enc(20, 4), 1, Duration::from_millis(20))
        });
        // Let the job reach the worker and wedge.
        std::thread::sleep(Duration::from_millis(50));
        let start = Instant::now();
        let _ = server.shutdown();
        assert!(
            start.elapsed() < Duration::from_secs(2),
            "shutdown must not drain expired compute to completion indefinitely"
        );
        let r = h.join().expect("client thread");
        assert!(
            matches!(
                r,
                Err(ServeError::DeadlineExceeded) | Err(ServeError::ShutDown)
            ),
            "client must get a typed error, got {r:?}"
        );
    }

    #[test]
    fn live_stats_snapshot() {
        let db = tiny_db();
        let server = BatchServer::start(db, ServerConfig::default(), || {
            Aligner::builder().matrix(blosum62())
        });
        let client = server.client();
        client.query(enc(12, 5), 1).expect("server is up");
        let live = server.stats();
        assert_eq!(live.queries, 1);
        let final_stats = server.shutdown();
        assert_eq!(final_stats.queries, 1);
    }
}
