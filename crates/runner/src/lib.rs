#![allow(clippy::needless_range_loop)] // kernel loops index several parallel arrays by design
#![warn(missing_docs)]

//! # swsimd-runner
//!
//! Deployment layer: residue-balanced database partitioning across
//! scoped threads, the paper's three usage scenarios (§II-C, §IV-G),
//! the centralized batch server (§VI), and GCUPS metrics.

pub mod fault;
pub mod metrics;
pub mod msa;
pub mod pool;
pub mod scenarios;
pub mod server;

pub use fault::{FaultPlan, FaultStats};
pub use metrics::{CellTimer, ServeCounters, Throughput};
pub use msa::{pairwise_scores, upgma, GuideTree, ScoreMatrix};
pub use pool::{parallel_pairs, parallel_search, PoolConfig, SearchOutput};
pub use scenarios::{scenario1, scenario2, scenario3, ScenarioReport};
pub use server::{BatchServer, ServeError, ServerClient, ServerConfig, ServerStats};
