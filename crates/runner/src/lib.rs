#![allow(clippy::needless_range_loop)] // kernel loops index several parallel arrays by design
#![warn(missing_docs)]

//! # swsimd-runner
//!
//! Deployment layer: residue-balanced database partitioning across
//! scoped threads, the paper's three usage scenarios (§II-C, §IV-G),
//! the centralized batch server (§VI), and GCUPS metrics.
//!
//! Every layer records into the [`swsimd_obs`] observability crate:
//! scenarios and the server feed latency/GCUPS histograms in the
//! process-global registry (scraped via
//! [`BatchServer::prometheus_text`] / [`BatchServer::json_snapshot`]),
//! and pool/server degradation decisions emit structured trace events
//! when a sink is installed.

pub mod fault;
pub mod journal;
pub mod metrics;
pub mod msa;
pub mod pool;
pub mod qos;
pub mod scenarios;
pub mod server;
pub mod shadow;

pub use fault::{FaultPlan, FaultStats, FaultyWriter, ReplyFault};
pub use journal::{
    checkpointed_search, checkpointed_search_observed, read_journal, read_journal_file,
    resume_checkpointed_search, resume_checkpointed_search_observed, resume_search,
    resume_search_file, Journal, JournalEntry, JournalError, JournalMeta, JournalSink,
    JournalWriter, ResumeStats,
};
pub use metrics::{query_latency, scenario_gcups, CellTimer, ServeCounters, Snapshot, Throughput};
pub use msa::{pairwise_scores, upgma, GuideTree, ScoreMatrix};
pub use pool::{parallel_pairs, parallel_search, try_parallel_search, PoolConfig, SearchOutput};
pub use qos::{
    clamp_tenant, tenant_label, Brownout, BrownoutConfig, Fidelity, QosConfig, RateConfig,
    TenantPolicy, TokenBucket, MAX_TENANT_LEN,
};
pub use scenarios::{scenario1, scenario1_durable, scenario2, scenario3, ScenarioReport};
pub use server::{
    rank_hits, BatchServer, PendingQuery, QueryOutcome, ServeError, ServerClient, ServerConfig,
    ServerStats,
};
pub use shadow::{OnMismatch, Sampler, ShadowConfig, ShadowOutcome, ShadowVerifier};
