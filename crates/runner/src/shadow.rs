//! Sampled shadow verification: recompute a configurable fraction of
//! production results on the scalar reference and compare.
//!
//! The fast path's only systematic check is structural (one hit per
//! database sequence); a backend computing *wrong scores* passes it.
//! Shadow verification closes that hole: a deterministic [`Sampler`]
//! picks a `sample_rate` fraction of served hits, each sampled hit is
//! recomputed with [`swsimd_core::sw_scalar`], and a disagreement is a
//! **shadow mismatch** — counted, traced, repaired (the client always
//! receives the reference score), and — under
//! [`OnMismatch::Demote`] — charged as a strike against the backend in
//! the global [`swsimd_core::trust`] ladder, where enough strikes open
//! the circuit breaker and demote dispatch to the next weaker ISA.
//!
//! At `sample_rate = 0` (the default) the cost is one branch per hit;
//! the `obs_overhead` bench gate holds it to the same <1% budget as
//! the tracing probes.

use std::sync::atomic::{AtomicU64, Ordering::Relaxed};

use swsimd_core::{
    sw_scalar, sw_scalar_traceback, AlignResult, AlignerBuilder, GapModel, Hit, Scoring,
};
use swsimd_seq::Database;

/// What to do beyond counting when a sampled result disagrees with the
/// scalar reference.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum OnMismatch {
    /// Count and trace only (monitoring mode).
    Record,
    /// Count, trace, and charge a strike against the backend in the
    /// global trust ladder (circuit-breaker mode, the default).
    #[default]
    Demote,
}

/// Shadow-verification policy carried by [`crate::PoolConfig`] and
/// [`crate::ServerConfig`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ShadowConfig {
    /// Fraction of served hits recomputed on the scalar reference
    /// (0.0 = off, 1.0 = every hit). Clamped to [0, 1].
    pub sample_rate: f64,
    /// Mismatch policy.
    pub on_mismatch: OnMismatch,
}

impl Default for ShadowConfig {
    fn default() -> Self {
        Self {
            sample_rate: 0.0,
            on_mismatch: OnMismatch::Demote,
        }
    }
}

impl ShadowConfig {
    /// Verify every served hit (test/canary mode).
    pub fn full() -> Self {
        Self {
            sample_rate: 1.0,
            ..Self::default()
        }
    }

    /// Verify a fraction of served hits.
    pub fn sampled(rate: f64) -> Self {
        Self {
            sample_rate: rate,
            ..Self::default()
        }
    }

    /// True when any sampling can occur.
    pub fn enabled(&self) -> bool {
        self.sample_rate > 0.0
    }
}

/// Deterministic stride sampler: a 32.32 fixed-point accumulator adds
/// `rate` per call and samples on every integer carry, so a rate of
/// 0.25 samples exactly every 4th call — no RNG on the hot path, and
/// rate 0 is a single load-and-branch.
#[derive(Debug)]
pub struct Sampler {
    acc: AtomicU64,
    step: u64,
}

impl Sampler {
    /// Sampler for a [0, 1] rate (clamped).
    pub fn new(rate: f64) -> Self {
        let step = (rate.clamp(0.0, 1.0) * (1u64 << 32) as f64) as u64;
        Self {
            acc: AtomicU64::new(0),
            step,
        }
    }

    /// Draw one decision. Thread-safe; over any window of `n` calls the
    /// number of `true`s is `⌊n·rate⌋` or `⌈n·rate⌉`.
    #[inline]
    pub fn should_sample(&self) -> bool {
        if self.step == 0 {
            return false;
        }
        let prev = self.acc.fetch_add(self.step, Relaxed);
        let next = prev.wrapping_add(self.step);
        (next >> 32) != (prev >> 32)
    }
}

/// Per-search shadow-verification outcome, folded into
/// [`crate::FaultStats`] / [`crate::metrics::ServeCounters`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ShadowOutcome {
    /// Hits recomputed on the scalar reference.
    pub checks: u64,
    /// Recomputed hits that disagreed with the served score.
    pub mismatches: u64,
    /// Strikes that opened the breaker (backend demotions).
    pub demotions: u64,
}

/// A [`ShadowConfig`] bound to its [`Sampler`]: the object workers
/// consult per served hit. Shared by reference across partition
/// workers so the sampling stride spans the whole search.
#[derive(Debug)]
pub struct ShadowVerifier {
    config: ShadowConfig,
    sampler: Sampler,
}

impl ShadowVerifier {
    /// Bind a config to a fresh sampler.
    pub fn new(config: ShadowConfig) -> Self {
        let sampler = Sampler::new(config.sample_rate);
        Self { config, sampler }
    }

    /// The bound policy.
    pub fn config(&self) -> &ShadowConfig {
        &self.config
    }

    /// Verify a sampled subset of `hits` (global database indices)
    /// against the scalar reference, repairing any mismatching score so
    /// the caller still serves exact results. Mismatches are traced,
    /// counted, and — in [`OnMismatch::Demote`] mode — charged against
    /// `make_aligner`'s engine in the global trust ladder.
    pub fn verify_hits<F>(
        &self,
        query: &[u8],
        db: &Database,
        hits: &mut [Hit],
        make_aligner: &F,
    ) -> ShadowOutcome
    where
        F: Fn() -> AlignerBuilder,
    {
        let mut out = ShadowOutcome::default();
        if !self.config.enabled() {
            return out;
        }
        // Scoring params and the engine to attribute mismatches to are
        // built lazily: most calls at low rates draw no samples.
        let mut aligner = None;
        for h in hits.iter_mut() {
            if !self.sampler.should_sample() {
                continue;
            }
            let a = aligner.get_or_insert_with(|| make_aligner().build());
            out.checks += 1;
            let want = sw_scalar(
                query,
                &db.encoded(h.db_index).idx,
                a.scoring(),
                a.gap_model(),
            )
            .score;
            if h.score == want {
                continue;
            }
            out.mismatches += 1;
            let engine = swsimd_core::trust::effective_engine(a.engine());
            swsimd_obs::event!(
                "shadow_mismatch",
                "engine" => engine.name(),
                "db_index" => h.db_index,
                "served" => i64::from(h.score),
                "reference" => i64::from(want),
            );
            swsimd_obs::global()
                .counter(
                    "swsimd_shadow_mismatches_total",
                    "Sampled results that disagreed with the scalar reference.",
                    &[("engine", engine.name())],
                )
                .inc();
            if self.config.on_mismatch == OnMismatch::Demote
                && swsimd_core::trust::global().record_strike(engine)
            {
                out.demotions += 1;
            }
            // The client always gets the reference answer.
            h.score = want;
        }
        out
    }
}

/// Compare a full traceback result against the scalar reference:
/// score, end position, and (when an alignment is present) that the
/// CIGAR rescores to the reported score. Used by the shadow path for
/// traceback-serving deployments and by the self-test battery's e2e
/// checks.
pub fn verify_result(
    query: &[u8],
    target: &[u8],
    scoring: &Scoring,
    gaps: GapModel,
    result: &AlignResult,
) -> bool {
    let want = sw_scalar_traceback(query, target, scoring, gaps);
    if result.score != want.score {
        return false;
    }
    if result.end.is_some() && result.end != want.end {
        return false;
    }
    match &result.alignment {
        Some(aln) => aln.rescore(query, target, scoring, gaps) == result.score,
        None => true,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rate_zero_never_samples() {
        let s = Sampler::new(0.0);
        assert!((0..10_000).all(|_| !s.should_sample()));
    }

    #[test]
    fn rate_one_always_samples() {
        let s = Sampler::new(1.0);
        assert!((0..10_000).all(|_| s.should_sample()));
    }

    #[test]
    fn fractional_rates_hit_their_stride() {
        for (rate, want) in [(0.5, 5_000), (0.25, 2_500), (0.1, 1_000), (0.01, 100)] {
            let s = Sampler::new(rate);
            let n = (0..10_000).filter(|_| s.should_sample()).count();
            assert!(
                (n as i64 - want).unsigned_abs() <= 1,
                "rate {rate}: {n} of 10000 sampled"
            );
        }
    }

    #[test]
    fn default_config_is_off_and_demoting() {
        let c = ShadowConfig::default();
        assert!(!c.enabled());
        assert_eq!(c.on_mismatch, OnMismatch::Demote);
        assert!(ShadowConfig::full().enabled());
        assert_eq!(ShadowConfig::sampled(0.25).sample_rate, 0.25);
    }

    #[test]
    fn verify_result_agrees_with_reference() {
        use swsimd_core::Aligner;
        let mut a = Aligner::builder().traceback(true).build();
        let alphabet = a.alphabet().clone();
        let q = alphabet.encode(b"MKVLAADTWGHK");
        let t = alphabet.encode(b"MKVLADTWGHK");
        let r = a.align(&q, &t);
        assert!(verify_result(&q, &t, a.scoring(), a.gap_model(), &r));
        let mut wrong = r.clone();
        wrong.score += 1;
        assert!(!verify_result(&q, &t, a.scoring(), a.gap_model(), &wrong));
    }
}
