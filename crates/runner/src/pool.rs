//! Database-partitioned parallel search.
//!
//! The paper's threading model (§IV-E, §IV-G): "each thread handles a
//! different segment of the database". A query (or batch of queries)
//! is aligned against residue-balanced database partitions on scoped
//! threads, each with its own [`Aligner`] (kernels are stateless apart
//! from stats, which are merged afterwards).

use swsimd_core::{AlignerBuilder, Hit, KernelStats};
use swsimd_seq::{BatchedDatabase, Database};

/// Configuration for parallel search.
#[derive(Clone)]
pub struct PoolConfig {
    /// Worker threads (1 = run inline on the caller).
    pub threads: usize,
    /// Sort each partition's sequences by length before batching.
    pub sort_batches: bool,
}

impl Default for PoolConfig {
    fn default() -> Self {
        Self {
            threads: std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1),
            sort_batches: true,
        }
    }
}

/// Result of a parallel search: exact hits plus merged kernel stats.
pub struct SearchOutput {
    /// One hit per database sequence, sorted best-first.
    pub hits: Vec<Hit>,
    /// Merged kernel statistics from all workers.
    pub stats: KernelStats,
}

/// Search one encoded query against a database with `cfg.threads`
/// workers over residue-balanced partitions.
///
/// `make_aligner` builds each worker's aligner (so callers control
/// matrix/gaps/precision). Results are exact and deterministic: the
/// partitioning depends only on the database, and each sequence's score
/// is computed by the same kernels regardless of thread count.
pub fn parallel_search<F>(
    query: &[u8],
    db: &Database,
    cfg: &PoolConfig,
    make_aligner: F,
) -> SearchOutput
where
    F: Fn() -> AlignerBuilder + Sync,
{
    let threads = cfg.threads.max(1);
    if threads == 1 {
        let mut aligner = make_aligner().build();
        let mut hits = aligner.search(query, db, 0);
        hits.sort_by(|a, b| b.score.cmp(&a.score).then(a.db_index.cmp(&b.db_index)));
        return SearchOutput { hits, stats: aligner.stats().clone() };
    }

    let parts = db.partition(threads);
    let mut outputs: Vec<(Vec<Hit>, KernelStats)> = Vec::with_capacity(parts.len());

    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(parts.len());
        for range in &parts {
            let range = range.clone();
            let make_aligner = &make_aligner;
            handles.push(scope.spawn(move || {
                let mut aligner = make_aligner().build();
                // Build this partition's view: reuse encoded sequences.
                let sub_records: Vec<_> =
                    (range.clone()).map(|i| db.record(i).clone()).collect();
                let sub =
                    Database::from_records(sub_records, db_alphabet());
                let lanes = swsimd_core::batch::lanes_for(aligner.engine());
                let batched = BatchedDatabase::build(&sub, lanes, true);
                let mut hits = aligner.search_batched(query, &sub, &batched);
                // Remap to global indices.
                for h in &mut hits {
                    h.db_index += range.start;
                }
                (hits, aligner.stats().clone())
            }));
        }
        for h in handles {
            outputs.push(h.join().expect("search worker panicked"));
        }
    });

    let mut hits = Vec::with_capacity(db.len());
    let mut stats = KernelStats::default();
    for (mut h, s) in outputs {
        hits.append(&mut h);
        stats.merge(&s);
    }
    hits.sort_by(|a, b| b.score.cmp(&a.score).then(a.db_index.cmp(&b.db_index)));
    SearchOutput { hits, stats }
}

fn db_alphabet() -> &'static swsimd_matrices::Alphabet {
    use std::sync::OnceLock;
    static A: OnceLock<swsimd_matrices::Alphabet> = OnceLock::new();
    A.get_or_init(swsimd_matrices::Alphabet::protein)
}

/// Align many (query, target) pairs across threads — the many-to-many
/// primitive behind Scenario 2.
pub fn parallel_pairs<F>(
    pairs: &[(Vec<u8>, Vec<u8>)],
    threads: usize,
    make_aligner: F,
) -> Vec<i32>
where
    F: Fn() -> AlignerBuilder + Sync,
{
    let threads = threads.max(1);
    let chunk = pairs.len().div_ceil(threads).max(1);
    let mut scores = vec![0i32; pairs.len()];
    std::thread::scope(|scope| {
        for (slot_chunk, pair_chunk) in scores.chunks_mut(chunk).zip(pairs.chunks(chunk)) {
            let make_aligner = &make_aligner;
            scope.spawn(move || {
                let mut aligner = make_aligner().build();
                for (slot, (q, t)) in slot_chunk.iter_mut().zip(pair_chunk) {
                    *slot = aligner.align(q, t).score;
                }
            });
        }
    });
    scores
}

#[cfg(test)]
mod tests {
    use super::*;
    use swsimd_core::Aligner;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use swsimd_matrices::{blosum62, Alphabet, PROTEIN_LETTERS};
    use swsimd_seq::SeqRecord;

    fn small_db(n: usize, seed: u64) -> Database {
        let mut rng = StdRng::seed_from_u64(seed);
        let records: Vec<SeqRecord> = (0..n)
            .map(|i| {
                let l = rng.gen_range(5..80);
                let s: Vec<u8> =
                    (0..l).map(|_| PROTEIN_LETTERS[rng.gen_range(0..20)]).collect();
                SeqRecord::new(format!("s{i}"), s)
            })
            .collect();
        Database::from_records(records, &Alphabet::protein())
    }

    #[test]
    fn threaded_matches_single_thread() {
        let db = small_db(60, 3);
        let q = Alphabet::protein().encode(b"MKVLAADTWGHKDDTWGHK");
        let builder = || Aligner::builder().matrix(blosum62());
        let single = parallel_search(&q, &db, &PoolConfig { threads: 1, sort_batches: true }, builder);
        for threads in [2, 3, 7] {
            let multi =
                parallel_search(&q, &db, &PoolConfig { threads, sort_batches: true }, builder);
            assert_eq!(single.hits, multi.hits, "threads={threads}");
        }
    }

    #[test]
    fn stats_merge_across_threads() {
        let db = small_db(40, 5);
        let q = Alphabet::protein().encode(b"MKVLAADTW");
        let out = parallel_search(
            &q,
            &db,
            &PoolConfig { threads: 4, sort_batches: true },
            || Aligner::builder().matrix(blosum62()),
        );
        assert!(out.stats.cells > 0);
        assert_eq!(out.hits.len(), 40);
    }

    #[test]
    fn parallel_pairs_match_sequential() {
        let mut rng = StdRng::seed_from_u64(8);
        let alphabet = Alphabet::protein();
        let pairs: Vec<(Vec<u8>, Vec<u8>)> = (0..20)
            .map(|_| {
                let l1 = rng.gen_range(3..40);
                let l2 = rng.gen_range(3..40);
                let a: Vec<u8> = (0..l1).map(|_| rng.gen_range(0..20u8)).collect();
                let b: Vec<u8> = (0..l2).map(|_| rng.gen_range(0..20u8)).collect();
                (a, b)
            })
            .collect();
        let _ = alphabet;
        let builder = || Aligner::builder().matrix(blosum62());
        let seq = parallel_pairs(&pairs, 1, builder);
        let par = parallel_pairs(&pairs, 4, builder);
        assert_eq!(seq, par);
    }
}
