//! Database-partitioned parallel search.
//!
//! The paper's threading model (§IV-E, §IV-G): "each thread handles a
//! different segment of the database". A query (or batch of queries)
//! is aligned against residue-balanced database partitions on scoped
//! threads, each with its own [`Aligner`] (kernels are stateless apart
//! from stats, which are merged afterwards).
//!
//! ## Worker isolation
//!
//! A panic inside one partition's kernel must not take down the whole
//! search: each worker's fast path runs under `catch_unwind` and its
//! result is validated (one hit per partition sequence). On a panic or
//! a failed validation the partition is recomputed **once** on the
//! scalar reference engine — scores stay exact, only throughput
//! degrades — and the event is counted in [`SearchOutput::faults`]. A
//! panic on the degraded retry itself is a double fault and is
//! propagated to the caller.

use std::ops::Range;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use swsimd_core::{
    AlignError, AlignerBuilder, CancelReason, CancelToken, EngineKind, Hit, KernelStats,
};
use swsimd_seq::{BatchedDatabase, Database};

use crate::fault::{FaultPlan, FaultStats};
use crate::shadow::{ShadowConfig, ShadowVerifier};

/// Configuration for parallel search.
#[derive(Clone)]
pub struct PoolConfig {
    /// Worker threads (1 = run inline on the caller).
    pub threads: usize,
    /// Sort each partition's sequences by length before batching.
    pub sort_batches: bool,
    /// Fault-injection schedule (inert by default; see [`FaultPlan`]).
    pub fault_plan: FaultPlan,
    /// Sampled shadow verification of served hits against the scalar
    /// reference (off by default; see [`ShadowConfig`]).
    pub shadow: ShadowConfig,
    /// Cancel token governing the whole search (deadline, shutdown,
    /// client drop). Workers run under per-partition children of this
    /// token, so one `cancel()` stops every partition within a kernel
    /// check period. `None` = ungoverned.
    pub cancel: Option<CancelToken>,
    /// Stuck-worker watchdog: when a worker's heartbeat (ticked by the
    /// kernel governor poll) makes no progress for this long, its
    /// token is cancelled with [`CancelReason::Watchdog`] and the
    /// partition is recomputed on the scalar reference engine. `None`
    /// disables the watchdog.
    pub stall_timeout: Option<Duration>,
}

impl Default for PoolConfig {
    fn default() -> Self {
        Self {
            threads: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            sort_batches: true,
            fault_plan: FaultPlan::default(),
            shadow: ShadowConfig::default(),
            cancel: None,
            stall_timeout: None,
        }
    }
}

/// Result of a parallel search: exact hits plus merged kernel stats.
#[derive(Debug)]
pub struct SearchOutput {
    /// One hit per database sequence, sorted best-first.
    pub hits: Vec<Hit>,
    /// Merged kernel statistics from all workers.
    pub stats: KernelStats,
    /// Degradation events (worker panics, retries) across all workers.
    pub faults: FaultStats,
}

fn db_alphabet() -> &'static swsimd_matrices::Alphabet {
    use std::sync::OnceLock;
    static A: OnceLock<swsimd_matrices::Alphabet> = OnceLock::new();
    A.get_or_init(swsimd_matrices::Alphabet::protein)
}

/// Run `f` over the sub-database covering `range` (borrowing the whole
/// database when the range covers it, to avoid a copy).
fn with_sub_db<R>(db: &Database, range: &Range<usize>, f: impl FnOnce(&Database) -> R) -> R {
    if range.start == 0 && range.end == db.len() {
        f(db)
    } else {
        let records: Vec<_> = range.clone().map(|i| db.record(i).clone()).collect();
        let sub = Database::from_records(records, db_alphabet());
        f(&sub)
    }
}

fn search_sub<F>(
    query: &[u8],
    db: &Database,
    range: &Range<usize>,
    builder: F,
    token: Option<&CancelToken>,
) -> Result<(Vec<Hit>, KernelStats), AlignError>
where
    F: FnOnce() -> AlignerBuilder,
{
    let mut aligner = builder().build();
    with_sub_db(db, range, |sub| {
        let lanes = swsimd_core::batch::lanes_for(aligner.engine());
        let batched = BatchedDatabase::build(sub, lanes, true);
        let hits = aligner.try_search_batched(query, sub, &batched, token)?;
        Ok((hits, aligner.stats().clone()))
    })
}

/// Per-partition governance handles.
pub(crate) struct PartitionGovern<'a> {
    /// Token the fast path runs under (a per-worker child).
    pub token: &'a CancelToken,
    /// Token a post-watchdog scalar retry runs under (the parent), if
    /// any — the worker token is already cancelled at that point.
    pub retry: Option<&'a CancelToken>,
}

/// One worker's watchdog slot: the token whose heartbeat the watchdog
/// observes, plus a completion flag so finished workers are skipped.
struct WatchSlot {
    token: CancelToken,
    done: AtomicBool,
}

/// Poll worker heartbeats until all workers finish; cancel any live
/// worker whose heartbeat has not advanced for `stall`. A worker that
/// never enters the kernel (wedged before its first strip) stalls from
/// the watchdog's first observation, so a pre-kernel hang is reaped on
/// the same clock as a mid-kernel one.
fn watchdog_loop(slots: &[Arc<WatchSlot>], stall: Duration, done: &AtomicBool, fires: &AtomicU64) {
    let poll = (stall / 4)
        .max(Duration::from_millis(1))
        .min(Duration::from_millis(25));
    let start = Instant::now();
    let mut seen: Vec<(u64, Instant)> =
        slots.iter().map(|s| (s.token.heartbeat(), start)).collect();
    while !done.load(Ordering::Acquire) {
        std::thread::sleep(poll);
        let now = Instant::now();
        for (slot, last) in slots.iter().zip(seen.iter_mut()) {
            if slot.done.load(Ordering::Acquire) || slot.token.is_cancelled() {
                continue;
            }
            let hb = slot.token.heartbeat();
            if hb != last.0 {
                *last = (hb, now);
            } else if now.duration_since(last.1) >= stall
                && slot.token.cancel(CancelReason::Watchdog)
            {
                fires.fetch_add(1, Ordering::Relaxed);
                swsimd_obs::event!(
                    "watchdog_fire",
                    "stalled_ms" => now.duration_since(last.1).as_millis() as u64
                );
            }
        }
    }
}

/// What one partition worker hands back: globally-indexed hits plus
/// the kernel and fault ledgers, or the typed error that stopped it.
pub(crate) type PartitionResult = Result<(Vec<Hit>, KernelStats, FaultStats), AlignError>;

/// One partition's search with isolation: fast path under
/// `catch_unwind` + result validation, then a single degraded retry on
/// the scalar reference engine. Returns globally-indexed hits. Shared
/// with [`crate::journal`], whose checkpointed/resumed chunks must go
/// through the exact same compute path to stay bit-identical.
#[allow(clippy::too_many_arguments)] // internal seam; callers are the pool and the journal only
pub(crate) fn search_partition<F>(
    query: &[u8],
    db: &Database,
    range: Range<usize>,
    part_idx: usize,
    plan: &FaultPlan,
    shadow: &ShadowVerifier,
    make_aligner: &F,
    govern: Option<&PartitionGovern<'_>>,
) -> PartitionResult
where
    F: Fn() -> AlignerBuilder + Sync,
{
    let expected = range.len();
    let token = govern.map(|g| g.token);
    let fast = catch_unwind(AssertUnwindSafe(|| {
        plan.before_partition(part_idx);
        search_sub(query, db, &range, make_aligner, token).map(|(mut hits, stats)| {
            plan.corrupt_hits(part_idx, &mut hits);
            plan.skew_hits(part_idx, &mut hits);
            (hits, stats)
        })
    }));

    let mut faults = FaultStats::default();
    let (mut hits, stats) = match fast {
        Ok(Ok((hits, stats))) if hits.len() == expected => (hits, stats),
        Ok(Err(AlignError::Cancelled {
            reason: CancelReason::Watchdog,
        })) => {
            // The watchdog reaped this worker mid-compute: file a
            // strike against the engine that wedged and recompute on
            // the scalar reference, governed only by the parent token
            // (this worker's own token is already dead).
            let engine = swsimd_core::trust::effective_engine(make_aligner().build().engine());
            if swsimd_core::trust::global().record_strike(engine) {
                faults.backend_demotions += 1;
            }
            faults.degraded_batches += 1;
            faults.retries += 1;
            swsimd_obs::event!(
                "partition_reaped",
                "partition" => part_idx,
                "engine" => "scalar"
            );
            search_sub(
                query,
                db,
                &range,
                || make_aligner().engine(EngineKind::Scalar),
                govern.and_then(|g| g.retry),
            )?
        }
        // Cooperative cancellation (deadline, shutdown, client drop,
        // memory): the whole search is being torn down — no retry.
        Ok(Err(e)) => return Err(e),
        outcome => {
            // The fast path panicked or returned a malformed result:
            // isolate it and recompute this partition on the scalar
            // reference engine (exact, engine-independent scores).
            if outcome.is_err() {
                faults.worker_panics += 1;
                // A kernel panic is a strike against the backend that
                // computed it; enough strikes open the trust breaker.
                let engine = swsimd_core::trust::effective_engine(make_aligner().build().engine());
                if swsimd_core::trust::global().record_strike(engine) {
                    faults.backend_demotions += 1;
                }
            }
            faults.degraded_batches += 1;
            faults.retries += 1;
            swsimd_obs::event!(
                "partition_degraded",
                "partition" => part_idx,
                "panicked" => outcome.is_err(),
                "engine" => "scalar"
            );
            search_sub(
                query,
                db,
                &range,
                || make_aligner().engine(EngineKind::Scalar),
                token,
            )?
        }
    };
    for h in &mut hits {
        h.db_index += range.start;
    }
    faults.record_shadow(&shadow.verify_hits(query, db, &mut hits, make_aligner));
    Ok((hits, stats, faults))
}

/// Search one encoded query against a database with `cfg.threads`
/// workers over residue-balanced partitions.
///
/// `make_aligner` builds each worker's aligner (so callers control
/// matrix/gaps/precision). Results are exact and deterministic: the
/// partitioning depends only on the database, and each sequence's score
/// is computed by the same kernels regardless of thread count — a
/// partition degraded to the scalar engine (see module docs) still
/// produces identical scores.
pub fn parallel_search<F>(
    query: &[u8],
    db: &Database,
    cfg: &PoolConfig,
    make_aligner: F,
) -> SearchOutput
where
    F: Fn() -> AlignerBuilder + Sync,
{
    // Without a parent cancel token every cancellation path either
    // cannot fire or is recovered internally (watchdog → scalar
    // retry), so this cannot error.
    try_parallel_search(query, db, cfg, make_aligner)
        .expect("searches without a parent cancel token cannot be cancelled")
}

/// Governed variant of [`parallel_search`]: honors
/// [`PoolConfig::cancel`] and [`PoolConfig::stall_timeout`], returning
/// [`AlignError::Cancelled`] when the search is torn down mid-compute
/// (deadline, shutdown, client drop, memory). A watchdog reap is *not*
/// an error — the wedged partition is recomputed on the scalar
/// reference and counted in [`FaultStats::watchdog_fires`].
pub fn try_parallel_search<F>(
    query: &[u8],
    db: &Database,
    cfg: &PoolConfig,
    make_aligner: F,
) -> Result<SearchOutput, AlignError>
where
    F: Fn() -> AlignerBuilder + Sync,
{
    let threads = cfg.threads.max(1);
    let plan = &cfg.fault_plan;
    // One sampler across all partitions, so the configured rate holds
    // over the whole search rather than per partition.
    let shadow = ShadowVerifier::new(cfg.shadow);
    let mut sp = swsimd_obs::span!(
        "parallel_search",
        "threads" => threads,
        "db_seqs" => db.len()
    );

    let parts: Vec<Range<usize>> = if threads == 1 || db.len() <= 1 {
        std::iter::once(0..db.len()).collect()
    } else {
        db.partition(threads)
    };

    // Watchdog slots exist whenever the search is governed: a parent
    // token alone still wants per-worker children (so a cancelled
    // parent stops all workers), and a stall timeout alone still wants
    // per-worker heartbeats.
    let governed = cfg.cancel.is_some() || cfg.stall_timeout.is_some();
    let slots: Vec<Arc<WatchSlot>> = if governed {
        parts
            .iter()
            .map(|_| {
                Arc::new(WatchSlot {
                    token: match &cfg.cancel {
                        Some(parent) => parent.child(),
                        None => CancelToken::new(),
                    },
                    done: AtomicBool::new(false),
                })
            })
            .collect()
    } else {
        Vec::new()
    };
    let fires = AtomicU64::new(0);
    let workers_done = AtomicBool::new(false);

    let mut outputs: Vec<PartitionResult> = Vec::with_capacity(parts.len());
    std::thread::scope(|scope| {
        if let Some(stall) = cfg.stall_timeout {
            let slots = &slots;
            let workers_done = &workers_done;
            let fires = &fires;
            scope.spawn(move || watchdog_loop(slots, stall, workers_done, fires));
        }
        if parts.len() == 1 {
            let range = parts[0].clone();
            let g = slots.first().map(|s| PartitionGovern {
                token: &s.token,
                retry: cfg.cancel.as_ref(),
            });
            outputs.push(search_partition(
                query,
                db,
                range,
                0,
                plan,
                &shadow,
                &make_aligner,
                g.as_ref(),
            ));
            if let Some(s) = slots.first() {
                s.done.store(true, Ordering::Release);
            }
        } else {
            let mut handles = Vec::with_capacity(parts.len());
            for (part_idx, range) in parts.iter().enumerate() {
                let range = range.clone();
                let make_aligner = &make_aligner;
                let shadow = &shadow;
                let slot = slots.get(part_idx).cloned();
                let parent = cfg.cancel.as_ref();
                handles.push(scope.spawn(move || {
                    let g = slot.as_ref().map(|s| PartitionGovern {
                        token: &s.token,
                        retry: parent,
                    });
                    let out = search_partition(
                        query,
                        db,
                        range,
                        part_idx,
                        plan,
                        shadow,
                        make_aligner,
                        g.as_ref(),
                    );
                    if let Some(s) = &slot {
                        s.done.store(true, Ordering::Release);
                    }
                    out
                }));
            }
            for h in handles {
                match h.join() {
                    Ok(out) => outputs.push(out),
                    // Double fault (degraded retry panicked too):
                    // nothing left to degrade to — propagate.
                    Err(payload) => {
                        workers_done.store(true, Ordering::Release);
                        std::panic::resume_unwind(payload)
                    }
                }
            }
        }
        workers_done.store(true, Ordering::Release);
    });

    let mut hits = Vec::with_capacity(db.len());
    let mut stats = KernelStats::default();
    let mut faults = FaultStats {
        watchdog_fires: fires.load(Ordering::Relaxed),
        ..FaultStats::default()
    };
    for out in outputs {
        let (mut h, s, f) = out?;
        hits.append(&mut h);
        stats.merge(&s);
        faults.merge(&f);
    }
    hits.sort_by(|a, b| b.score.cmp(&a.score).then(a.db_index.cmp(&b.db_index)));
    sp.record("cells", stats.cells);
    sp.record("retries", faults.retries);
    Ok(SearchOutput {
        hits,
        stats,
        faults,
    })
}

/// Align many (query, target) pairs across threads — the many-to-many
/// primitive behind Scenario 2.
pub fn parallel_pairs<F>(pairs: &[(Vec<u8>, Vec<u8>)], threads: usize, make_aligner: F) -> Vec<i32>
where
    F: Fn() -> AlignerBuilder + Sync,
{
    let threads = threads.max(1);
    let chunk = pairs.len().div_ceil(threads).max(1);
    let mut scores = vec![0i32; pairs.len()];
    std::thread::scope(|scope| {
        for (slot_chunk, pair_chunk) in scores.chunks_mut(chunk).zip(pairs.chunks(chunk)) {
            let make_aligner = &make_aligner;
            scope.spawn(move || {
                let mut aligner = make_aligner().build();
                for (slot, (q, t)) in slot_chunk.iter_mut().zip(pair_chunk) {
                    *slot = aligner.align(q, t).score;
                }
            });
        }
    });
    scores
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use swsimd_core::Aligner;
    use swsimd_matrices::{blosum62, Alphabet, PROTEIN_LETTERS};
    use swsimd_seq::SeqRecord;

    fn small_db(n: usize, seed: u64) -> Database {
        let mut rng = StdRng::seed_from_u64(seed);
        let records: Vec<SeqRecord> = (0..n)
            .map(|i| {
                let l = rng.gen_range(5..80);
                let s: Vec<u8> = (0..l)
                    .map(|_| PROTEIN_LETTERS[rng.gen_range(0..20)])
                    .collect();
                SeqRecord::new(format!("s{i}"), s)
            })
            .collect();
        Database::from_records(records, &Alphabet::protein())
    }

    #[test]
    fn threaded_matches_single_thread() {
        let db = small_db(60, 3);
        let q = Alphabet::protein().encode(b"MKVLAADTWGHKDDTWGHK");
        let builder = || Aligner::builder().matrix(blosum62());
        let single = parallel_search(
            &q,
            &db,
            &PoolConfig {
                threads: 1,
                ..PoolConfig::default()
            },
            builder,
        );
        for threads in [2, 3, 7] {
            let multi = parallel_search(
                &q,
                &db,
                &PoolConfig {
                    threads,
                    ..PoolConfig::default()
                },
                builder,
            );
            assert_eq!(single.hits, multi.hits, "threads={threads}");
            assert!(!multi.faults.any());
        }
    }

    #[test]
    fn stats_merge_across_threads() {
        let db = small_db(40, 5);
        let q = Alphabet::protein().encode(b"MKVLAADTW");
        let out = parallel_search(
            &q,
            &db,
            &PoolConfig {
                threads: 4,
                ..PoolConfig::default()
            },
            || Aligner::builder().matrix(blosum62()),
        );
        assert!(out.stats.cells > 0);
        assert_eq!(out.hits.len(), 40);
    }

    #[test]
    fn injected_panic_degrades_not_fails() {
        let db = small_db(50, 11);
        let q = Alphabet::protein().encode(b"MKVLAADTWGHKDDTWGHK");
        let builder = || Aligner::builder().matrix(blosum62());
        let clean = parallel_search(
            &q,
            &db,
            &PoolConfig {
                threads: 1,
                ..PoolConfig::default()
            },
            builder,
        );
        let faulted = parallel_search(
            &q,
            &db,
            &PoolConfig {
                threads: 4,
                fault_plan: FaultPlan::new().panic_at(1, 1),
                ..PoolConfig::default()
            },
            builder,
        );
        assert_eq!(faulted.hits, clean.hits, "degraded search stays exact");
        assert_eq!(faulted.faults.worker_panics, 1);
        assert_eq!(faulted.faults.degraded_batches, 1);
        assert_eq!(faulted.faults.retries, 1);
    }

    #[test]
    fn injected_poison_is_caught_by_validation() {
        let db = small_db(30, 13);
        let q = Alphabet::protein().encode(b"MKVLAADTW");
        let builder = || Aligner::builder().matrix(blosum62());
        let clean = parallel_search(
            &q,
            &db,
            &PoolConfig {
                threads: 1,
                ..PoolConfig::default()
            },
            builder,
        );
        let faulted = parallel_search(
            &q,
            &db,
            &PoolConfig {
                threads: 3,
                fault_plan: FaultPlan::new().poison_at(2, 1),
                ..PoolConfig::default()
            },
            builder,
        );
        assert_eq!(faulted.hits, clean.hits);
        assert_eq!(faulted.faults.worker_panics, 0, "poison is not a panic");
        assert_eq!(faulted.faults.degraded_batches, 1);
        assert_eq!(faulted.faults.retries, 1);
    }

    #[test]
    fn single_thread_panic_degrades_inline() {
        let db = small_db(10, 17);
        let q = Alphabet::protein().encode(b"MKVLAADTW");
        let out = parallel_search(
            &q,
            &db,
            &PoolConfig {
                threads: 1,
                fault_plan: FaultPlan::new().panic_at(0, 1),
                ..PoolConfig::default()
            },
            || Aligner::builder().matrix(blosum62()),
        );
        assert_eq!(out.hits.len(), 10);
        assert_eq!(out.faults.worker_panics, 1);
    }

    #[test]
    fn shadow_full_rate_verifies_every_hit_cleanly() {
        use crate::shadow::{OnMismatch, ShadowConfig};
        let db = small_db(25, 19);
        let q = Alphabet::protein().encode(b"MKVLAADTWGHK");
        let out = parallel_search(
            &q,
            &db,
            &PoolConfig {
                threads: 2,
                shadow: ShadowConfig {
                    sample_rate: 1.0,
                    on_mismatch: OnMismatch::Record,
                },
                ..PoolConfig::default()
            },
            || Aligner::builder().matrix(blosum62()),
        );
        assert_eq!(out.faults.shadow_checks, 25, "full rate checks every hit");
        assert_eq!(out.faults.shadow_mismatches, 0, "clean kernels agree");
        assert_eq!(out.hits.len(), 25);
    }

    #[test]
    fn shadow_catches_and_repairs_injected_wrong_score() {
        use crate::shadow::{OnMismatch, ShadowConfig};
        let db = small_db(20, 23);
        let q = Alphabet::protein().encode(b"MKVLAADTWGHK");
        let builder = || Aligner::builder().matrix(blosum62());
        let clean = parallel_search(
            &q,
            &db,
            &PoolConfig {
                threads: 1,
                ..PoolConfig::default()
            },
            builder,
        );
        // Record mode: count mismatches without striking the global
        // trust ladder (breaker behavior is covered by the e2e suite).
        let shadowed = parallel_search(
            &q,
            &db,
            &PoolConfig {
                threads: 1,
                fault_plan: FaultPlan::new().wrong_score_at(0, 1).corrupt_lane_at(0, 1),
                shadow: ShadowConfig {
                    sample_rate: 1.0,
                    on_mismatch: OnMismatch::Record,
                },
                ..PoolConfig::default()
            },
            builder,
        );
        assert_eq!(shadowed.faults.shadow_checks, 20);
        assert_eq!(
            shadowed.faults.shadow_mismatches, 2,
            "both injected skews caught"
        );
        assert_eq!(shadowed.hits, clean.hits, "mismatching scores repaired");
        assert_eq!(
            shadowed.faults.degraded_batches, 0,
            "count-preserving skew evades structural validation"
        );
    }

    #[test]
    fn shadow_off_checks_nothing() {
        let db = small_db(10, 29);
        let q = Alphabet::protein().encode(b"MKVLAADTW");
        let out = parallel_search(&q, &db, &PoolConfig::default(), || {
            Aligner::builder().matrix(blosum62())
        });
        assert_eq!(out.faults.shadow_checks, 0);
        assert_eq!(out.faults.shadow_mismatches, 0);
    }

    #[test]
    fn watchdog_reaps_hung_worker_and_answers_exactly_via_scalar() {
        let db = small_db(50, 31);
        let q = Alphabet::protein().encode(b"MKVLAADTWGHKDDTWGHK");
        let builder = || Aligner::builder().matrix(blosum62());
        let clean = parallel_search(
            &q,
            &db,
            &PoolConfig {
                threads: 1,
                ..PoolConfig::default()
            },
            builder,
        );
        // Partition 1's worker wedges (sleeps well past the stall
        // timeout before its first heartbeat); the watchdog must reap
        // it and the scalar retry must still answer exactly.
        let out = parallel_search(
            &q,
            &db,
            &PoolConfig {
                threads: 4,
                fault_plan: FaultPlan::new().delay_at(1, Duration::from_millis(400)),
                stall_timeout: Some(Duration::from_millis(50)),
                ..PoolConfig::default()
            },
            builder,
        );
        assert_eq!(out.hits, clean.hits, "reaped partition recomputed exactly");
        assert_eq!(out.faults.watchdog_fires, 1);
        assert_eq!(out.faults.retries, 1);
        assert_eq!(out.faults.worker_panics, 0, "a reap is not a panic");
    }

    #[test]
    fn governed_but_uncancelled_search_matches_ungoverned() {
        let db = small_db(40, 33);
        let q = Alphabet::protein().encode(b"MKVLAADTWGHK");
        let builder = || Aligner::builder().matrix(blosum62());
        let plain = parallel_search(&q, &db, &PoolConfig::default(), builder);
        let governed = try_parallel_search(
            &q,
            &db,
            &PoolConfig {
                threads: 3,
                cancel: Some(CancelToken::new()),
                stall_timeout: Some(Duration::from_secs(5)),
                ..PoolConfig::default()
            },
            builder,
        )
        .expect("nothing fired");
        assert_eq!(governed.hits, plain.hits);
        assert_eq!(governed.faults.watchdog_fires, 0);
    }

    #[test]
    fn cancelled_parent_token_aborts_search_with_typed_error() {
        let db = small_db(40, 37);
        let q = Alphabet::protein().encode(b"MKVLAADTWGHK");
        let token = CancelToken::new();
        token.cancel(CancelReason::Shutdown);
        let err = try_parallel_search(
            &q,
            &db,
            &PoolConfig {
                threads: 3,
                cancel: Some(token),
                ..PoolConfig::default()
            },
            || Aligner::builder().matrix(blosum62()),
        )
        .unwrap_err();
        assert_eq!(
            err,
            AlignError::Cancelled {
                reason: CancelReason::Shutdown
            }
        );
    }

    #[test]
    fn parallel_pairs_match_sequential() {
        let mut rng = StdRng::seed_from_u64(8);
        let alphabet = Alphabet::protein();
        let pairs: Vec<(Vec<u8>, Vec<u8>)> = (0..20)
            .map(|_| {
                let l1 = rng.gen_range(3..40);
                let l2 = rng.gen_range(3..40);
                let a: Vec<u8> = (0..l1).map(|_| rng.gen_range(0..20u8)).collect();
                let b: Vec<u8> = (0..l2).map(|_| rng.gen_range(0..20u8)).collect();
                (a, b)
            })
            .collect();
        let _ = alphabet;
        let builder = || Aligner::builder().matrix(blosum62());
        let seq = parallel_pairs(&pairs, 1, builder);
        let par = parallel_pairs(&pairs, 4, builder);
        assert_eq!(seq, par);
    }
}
