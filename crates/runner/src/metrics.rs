//! Throughput metrics — GCUPS (billions of cell updates per second),
//! the unit every figure in the paper reports — plus the shared
//! health counters the serving layer exposes ([`ServeCounters`]).

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::time::{Duration, Instant};

use crate::fault::FaultStats;
use crate::server::ServerStats;

/// A completed measurement.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Throughput {
    /// DP cells computed.
    pub cells: u64,
    /// Wall-clock seconds.
    pub seconds: f64,
}

impl Throughput {
    /// Giga cell updates per second.
    pub fn gcups(&self) -> f64 {
        if self.seconds <= 0.0 {
            0.0
        } else {
            self.cells as f64 / self.seconds / 1e9
        }
    }

    /// Mega cell updates per second.
    pub fn mcups(&self) -> f64 {
        self.gcups() * 1e3
    }
}

/// Stopwatch helper around a cell count.
pub struct CellTimer {
    start: Instant,
    cells: u64,
}

impl CellTimer {
    /// Start timing a region that will compute `cells` DP cells.
    pub fn start(cells: u64) -> Self {
        Self {
            start: Instant::now(),
            cells,
        }
    }

    /// Add late-discovered cells (e.g. adaptive reruns).
    pub fn add_cells(&mut self, cells: u64) {
        self.cells += cells;
    }

    /// Stop and report.
    pub fn stop(self) -> Throughput {
        Throughput {
            cells: self.cells,
            seconds: self.start.elapsed().as_secs_f64(),
        }
    }

    /// Elapsed so far.
    pub fn elapsed(&self) -> Duration {
        self.start.elapsed()
    }
}

/// Live, lock-free health counters for a running server.
///
/// Shared (`Arc`) between the server worker, every
/// [`crate::ServerClient`] clone, and the [`crate::BatchServer`]
/// handle, so load shedding and timeouts observed client-side land in
/// the same ledger as worker-side batching and degradation events.
/// Snapshot into the plain-value [`ServerStats`] for reporting.
#[derive(Debug, Default)]
pub struct ServeCounters {
    /// Batches processed.
    pub batches: AtomicU64,
    /// Queries served (a reply was computed).
    pub queries: AtomicU64,
    /// Batches that filled to `batch_size` before the wait expired.
    pub full_batches: AtomicU64,
    /// Queries that hit their deadline before a result arrived.
    pub timeouts: AtomicU64,
    /// Queries shed by `try_query` because the job queue was full.
    pub shed: AtomicU64,
    /// Worker panics isolated by the serving layer.
    pub worker_panics: AtomicU64,
    /// Fast-path results discarded (panic or failed validation).
    pub degraded_batches: AtomicU64,
    /// Degraded retries run on the scalar reference engine.
    pub retries: AtomicU64,
}

impl ServeCounters {
    /// Point-in-time snapshot as plain values.
    pub fn snapshot(&self) -> ServerStats {
        ServerStats {
            batches: self.batches.load(Relaxed),
            queries: self.queries.load(Relaxed),
            full_batches: self.full_batches.load(Relaxed),
            timeouts: self.timeouts.load(Relaxed),
            shed: self.shed.load(Relaxed),
            worker_panics: self.worker_panics.load(Relaxed),
            degraded_batches: self.degraded_batches.load(Relaxed),
            retries: self.retries.load(Relaxed),
        }
    }

    /// Fold a worker's per-search [`FaultStats`] into the ledger.
    pub fn record_faults(&self, f: &FaultStats) {
        self.worker_panics.fetch_add(f.worker_panics, Relaxed);
        self.degraded_batches.fetch_add(f.degraded_batches, Relaxed);
        self.retries.fetch_add(f.retries, Relaxed);
    }

    /// Bump one counter by one (convenience for call sites).
    pub fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Relaxed);
    }
}

impl fmt::Display for ServerStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "batches={} queries={} full_batches={} timeouts={} shed={} \
             worker_panics={} degraded_batches={} retries={}",
            self.batches,
            self.queries,
            self.full_batches,
            self.timeouts,
            self.shed,
            self.worker_panics,
            self.degraded_batches,
            self.retries,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gcups_math() {
        let t = Throughput {
            cells: 2_000_000_000,
            seconds: 2.0,
        };
        assert!((t.gcups() - 1.0).abs() < 1e-12);
        assert!((t.mcups() - 1000.0).abs() < 1e-9);
    }

    #[test]
    fn zero_seconds_is_zero() {
        let t = Throughput {
            cells: 10,
            seconds: 0.0,
        };
        assert_eq!(t.gcups(), 0.0);
    }

    #[test]
    fn timer_accumulates() {
        let mut t = CellTimer::start(100);
        t.add_cells(50);
        let out = t.stop();
        assert_eq!(out.cells, 150);
        assert!(out.seconds >= 0.0);
    }

    #[test]
    fn counters_snapshot_and_fold() {
        let c = ServeCounters::default();
        ServeCounters::bump(&c.shed);
        ServeCounters::bump(&c.queries);
        c.record_faults(&FaultStats {
            worker_panics: 1,
            degraded_batches: 2,
            retries: 3,
        });
        let s = c.snapshot();
        assert_eq!(s.shed, 1);
        assert_eq!(s.queries, 1);
        assert_eq!(s.worker_panics, 1);
        assert_eq!(s.degraded_batches, 2);
        assert_eq!(s.retries, 3);
        let line = s.to_string();
        assert!(line.contains("shed=1"));
        assert!(line.contains("retries=3"));
    }
}
