//! Throughput metrics — GCUPS (billions of cell updates per second),
//! the unit every figure in the paper reports — plus the shared
//! health counters the serving layer exposes ([`ServeCounters`]) and
//! the process-global latency/GCUPS histogram families the scenarios
//! and the batch server record into (scraped via
//! [`swsimd_obs::Registry::prometheus_text`]).

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::fault::FaultStats;

/// A completed measurement.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Throughput {
    /// DP cells computed.
    pub cells: u64,
    /// Wall-clock seconds.
    pub seconds: f64,
}

impl Throughput {
    /// Giga cell updates per second.
    pub fn gcups(&self) -> f64 {
        if self.seconds <= 0.0 {
            0.0
        } else {
            self.cells as f64 / self.seconds / 1e9
        }
    }

    /// Mega cell updates per second.
    pub fn mcups(&self) -> f64 {
        self.gcups() * 1e3
    }
}

/// Stopwatch helper around a cell count.
pub struct CellTimer {
    start: Instant,
    cells: u64,
}

impl CellTimer {
    /// Start timing a region that will compute `cells` DP cells.
    pub fn start(cells: u64) -> Self {
        Self {
            start: Instant::now(),
            cells,
        }
    }

    /// Add late-discovered cells (e.g. adaptive reruns).
    pub fn add_cells(&mut self, cells: u64) {
        self.cells += cells;
    }

    /// Stop and report.
    pub fn stop(self) -> Throughput {
        Throughput {
            cells: self.cells,
            seconds: self.start.elapsed().as_secs_f64(),
        }
    }

    /// Elapsed so far.
    pub fn elapsed(&self) -> Duration {
        self.start.elapsed()
    }
}

/// Name of the end-to-end query latency histogram family.
pub const QUERY_LATENCY_METRIC: &str = "swsimd_query_latency_seconds";

/// Name of the per-run throughput histogram family.
pub const GCUPS_METRIC: &str = "swsimd_gcups";

/// Handle to the global end-to-end query latency histogram for one
/// scenario label (`"1"`, `"2"`, `"3"`, or `"server"`). Values are
/// recorded in nanoseconds and exposed in seconds.
pub fn query_latency(scenario: &'static str) -> Arc<swsimd_obs::Histogram> {
    swsimd_obs::global().histogram_scaled(
        QUERY_LATENCY_METRIC,
        "End-to-end query latency (enqueue to reply), by scenario.",
        1e-9,
        &[("scenario", scenario)],
    )
}

/// Handle to the global throughput histogram for one scenario label.
/// Values are recorded in milli-GCUPS and exposed in GCUPS.
pub fn scenario_gcups(scenario: &'static str) -> Arc<swsimd_obs::Histogram> {
    swsimd_obs::global().histogram_scaled(
        GCUPS_METRIC,
        "Per-run alignment throughput in GCUPS, by scenario.",
        1e-3,
        &[("scenario", scenario)],
    )
}

/// Record a [`Throughput`] into a scenario GCUPS histogram (milli-GCUPS
/// resolution; sub-micro-GCUPS runs round to zero).
pub fn record_gcups(hist: &swsimd_obs::Histogram, t: &Throughput) {
    hist.record((t.gcups() * 1e3) as u64);
}

/// Live, lock-free health counters for a running server.
///
/// Shared (`Arc`) between the server worker, every
/// [`crate::ServerClient`] clone, and the [`crate::BatchServer`]
/// handle, so load shedding and timeouts observed client-side land in
/// the same ledger as worker-side batching and degradation events.
/// Snapshot into the plain-value [`Snapshot`] for reporting.
#[derive(Debug, Default)]
pub struct ServeCounters {
    /// Batches processed.
    pub batches: AtomicU64,
    /// Queries served (a reply was computed).
    pub queries: AtomicU64,
    /// Batches that filled to `batch_size` before the wait expired.
    pub full_batches: AtomicU64,
    /// Queries that hit their deadline before a result arrived.
    pub timeouts: AtomicU64,
    /// Queries shed by `try_query` because the job queue was full.
    pub shed: AtomicU64,
    /// Queries refused at admission by a tenant's token bucket.
    pub rate_limited: AtomicU64,
    /// Worker panics isolated by the serving layer.
    pub worker_panics: AtomicU64,
    /// Fast-path results discarded (panic or failed validation).
    pub degraded_batches: AtomicU64,
    /// Degraded retries run on the scalar reference engine.
    pub retries: AtomicU64,
    /// Searches resumed from a journal instead of recomputed from
    /// scratch.
    pub journal_replays: AtomicU64,
    /// Malformed ingest records quarantined (skip-record policy).
    pub records_quarantined: AtomicU64,
    /// Database images rejected for failed integrity checks.
    pub corrupt_images: AtomicU64,
    /// Served hits recomputed on the scalar reference by shadow
    /// verification.
    pub shadow_checks: AtomicU64,
    /// Shadow-verified hits whose served score disagreed with the
    /// reference.
    pub shadow_mismatches: AtomicU64,
    /// Circuit-breaker openings: a backend crossed its strike
    /// threshold and was demoted.
    pub backend_demotions: AtomicU64,
    /// Backends that failed the boot self-test battery and were marked
    /// unavailable before serving.
    pub selftest_failures: AtomicU64,
    /// Queries rejected at admission because their estimated cost
    /// exceeded the configured ceiling.
    pub cost_rejected: AtomicU64,
    /// Queries rejected (or degraded) because a DP/traceback allocation
    /// exceeded the per-query memory budget.
    pub budget_rejected: AtomicU64,
    /// Wedged workers reaped by the stall watchdog.
    pub watchdog_fires: AtomicU64,
    /// Work cancelled because its deadline expired mid-compute.
    pub cancelled_deadline: AtomicU64,
    /// Work cancelled because the requesting client went away.
    pub cancelled_client_drop: AtomicU64,
    /// Work cancelled by server shutdown.
    pub cancelled_shutdown: AtomicU64,
    /// Work cancelled by the stall watchdog.
    pub cancelled_watchdog: AtomicU64,
    /// Work cancelled by memory-budget enforcement.
    pub cancelled_memory: AtomicU64,
}

/// Point-in-time plain-value copy of [`ServeCounters`] — one
/// consistent struct instead of callers reading atomics
/// field-by-field. `Display` renders the single-line `key=value` form
/// used by server stats reporting and the periodic health line.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Snapshot {
    /// Batches processed.
    pub batches: u64,
    /// Queries served (a reply was computed).
    pub queries: u64,
    /// Batches that were full (vs. flushed by timeout/shutdown).
    pub full_batches: u64,
    /// Queries that hit their deadline before a result arrived.
    pub timeouts: u64,
    /// Queries shed because the job queue was full.
    pub shed: u64,
    /// Queries refused at admission by a tenant's token bucket.
    pub rate_limited: u64,
    /// Worker panics isolated on the request path.
    pub worker_panics: u64,
    /// Fast-path results discarded (panic or failed validation).
    pub degraded_batches: u64,
    /// Degraded retries run on the scalar reference engine.
    pub retries: u64,
    /// Searches resumed from a journal.
    pub journal_replays: u64,
    /// Malformed ingest records quarantined.
    pub records_quarantined: u64,
    /// Database images rejected for failed integrity checks.
    pub corrupt_images: u64,
    /// Served hits recomputed on the scalar reference by shadow
    /// verification.
    pub shadow_checks: u64,
    /// Shadow-verified hits whose served score disagreed with the
    /// reference.
    pub shadow_mismatches: u64,
    /// Circuit-breaker openings (backend demotions).
    pub backend_demotions: u64,
    /// Backends that failed the boot self-test battery.
    pub selftest_failures: u64,
    /// Queries rejected at admission for excessive estimated cost.
    pub cost_rejected: u64,
    /// Queries rejected/degraded by the per-query memory budget.
    pub budget_rejected: u64,
    /// Wedged workers reaped by the stall watchdog.
    pub watchdog_fires: u64,
    /// Work cancelled: deadline expired mid-compute.
    pub cancelled_deadline: u64,
    /// Work cancelled: requesting client went away.
    pub cancelled_client_drop: u64,
    /// Work cancelled: server shutdown.
    pub cancelled_shutdown: u64,
    /// Work cancelled: stall watchdog.
    pub cancelled_watchdog: u64,
    /// Work cancelled: memory-budget enforcement.
    pub cancelled_memory: u64,
}

impl ServeCounters {
    /// Point-in-time snapshot as plain values.
    pub fn snapshot(&self) -> Snapshot {
        Snapshot {
            batches: self.batches.load(Relaxed),
            queries: self.queries.load(Relaxed),
            full_batches: self.full_batches.load(Relaxed),
            timeouts: self.timeouts.load(Relaxed),
            shed: self.shed.load(Relaxed),
            rate_limited: self.rate_limited.load(Relaxed),
            worker_panics: self.worker_panics.load(Relaxed),
            degraded_batches: self.degraded_batches.load(Relaxed),
            retries: self.retries.load(Relaxed),
            journal_replays: self.journal_replays.load(Relaxed),
            records_quarantined: self.records_quarantined.load(Relaxed),
            corrupt_images: self.corrupt_images.load(Relaxed),
            shadow_checks: self.shadow_checks.load(Relaxed),
            shadow_mismatches: self.shadow_mismatches.load(Relaxed),
            backend_demotions: self.backend_demotions.load(Relaxed),
            selftest_failures: self.selftest_failures.load(Relaxed),
            cost_rejected: self.cost_rejected.load(Relaxed),
            budget_rejected: self.budget_rejected.load(Relaxed),
            watchdog_fires: self.watchdog_fires.load(Relaxed),
            cancelled_deadline: self.cancelled_deadline.load(Relaxed),
            cancelled_client_drop: self.cancelled_client_drop.load(Relaxed),
            cancelled_shutdown: self.cancelled_shutdown.load(Relaxed),
            cancelled_watchdog: self.cancelled_watchdog.load(Relaxed),
            cancelled_memory: self.cancelled_memory.load(Relaxed),
        }
    }

    /// Fold a worker's per-search [`FaultStats`] into the ledger. A
    /// watchdog fire is by definition a watchdog cancellation, so it
    /// lands in both `watchdog_fires` and `cancelled_watchdog`.
    pub fn record_faults(&self, f: &FaultStats) {
        self.worker_panics.fetch_add(f.worker_panics, Relaxed);
        self.degraded_batches.fetch_add(f.degraded_batches, Relaxed);
        self.retries.fetch_add(f.retries, Relaxed);
        self.shadow_checks.fetch_add(f.shadow_checks, Relaxed);
        self.shadow_mismatches
            .fetch_add(f.shadow_mismatches, Relaxed);
        self.backend_demotions
            .fetch_add(f.backend_demotions, Relaxed);
        self.watchdog_fires.fetch_add(f.watchdog_fires, Relaxed);
        self.cancelled_watchdog.fetch_add(f.watchdog_fires, Relaxed);
    }

    /// Bump the cancellation counter for one [`CancelReason`].
    pub fn record_cancel(&self, reason: swsimd_core::CancelReason) {
        use swsimd_core::CancelReason as R;
        let counter = match reason {
            R::Deadline => &self.cancelled_deadline,
            R::ClientDrop => &self.cancelled_client_drop,
            R::Shutdown => &self.cancelled_shutdown,
            R::Watchdog => &self.cancelled_watchdog,
            R::Memory => &self.cancelled_memory,
        };
        counter.fetch_add(1, Relaxed);
    }

    /// Bump one counter by one (convenience for call sites).
    pub fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Relaxed);
    }
}

impl fmt::Display for Snapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "batches={} queries={} full_batches={} timeouts={} shed={} \
             rate_limited={} worker_panics={} degraded_batches={} retries={} \
             journal_replays={} records_quarantined={} corrupt_images={} \
             shadow_checks={} shadow_mismatches={} backend_demotions={} \
             selftest_failures={} cost_rejected={} budget_rejected={} \
             watchdog_fires={} cancelled_deadline={} \
             cancelled_client_drop={} cancelled_shutdown={} \
             cancelled_watchdog={} cancelled_memory={}",
            self.batches,
            self.queries,
            self.full_batches,
            self.timeouts,
            self.shed,
            self.rate_limited,
            self.worker_panics,
            self.degraded_batches,
            self.retries,
            self.journal_replays,
            self.records_quarantined,
            self.corrupt_images,
            self.shadow_checks,
            self.shadow_mismatches,
            self.backend_demotions,
            self.selftest_failures,
            self.cost_rejected,
            self.budget_rejected,
            self.watchdog_fires,
            self.cancelled_deadline,
            self.cancelled_client_drop,
            self.cancelled_shutdown,
            self.cancelled_watchdog,
            self.cancelled_memory,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gcups_math() {
        let t = Throughput {
            cells: 2_000_000_000,
            seconds: 2.0,
        };
        assert!((t.gcups() - 1.0).abs() < 1e-12);
        assert!((t.mcups() - 1000.0).abs() < 1e-9);
    }

    #[test]
    fn zero_seconds_is_zero() {
        let t = Throughput {
            cells: 10,
            seconds: 0.0,
        };
        assert_eq!(t.gcups(), 0.0);
    }

    #[test]
    fn timer_accumulates() {
        let mut t = CellTimer::start(100);
        t.add_cells(50);
        let out = t.stop();
        assert_eq!(out.cells, 150);
        assert!(out.seconds >= 0.0);
    }

    #[test]
    fn counters_snapshot_and_fold() {
        let c = ServeCounters::default();
        ServeCounters::bump(&c.shed);
        ServeCounters::bump(&c.queries);
        c.record_faults(&FaultStats {
            worker_panics: 1,
            degraded_batches: 2,
            retries: 3,
            shadow_checks: 10,
            shadow_mismatches: 4,
            backend_demotions: 1,
            watchdog_fires: 2,
        });
        let s = c.snapshot();
        assert_eq!(s.shed, 1);
        assert_eq!(s.queries, 1);
        assert_eq!(s.worker_panics, 1);
        assert_eq!(s.degraded_batches, 2);
        assert_eq!(s.retries, 3);
        assert_eq!(s.shadow_checks, 10);
        assert_eq!(s.shadow_mismatches, 4);
        assert_eq!(s.backend_demotions, 1);
        assert_eq!(s.watchdog_fires, 2);
        assert_eq!(s.cancelled_watchdog, 2, "fires count as cancellations");
        let line = s.to_string();
        assert!(line.contains("shed=1"));
        assert!(line.contains("rate_limited=0"));
        assert!(line.contains("retries=3"));
        assert!(line.contains("shadow_mismatches=4"));
        assert!(line.contains("backend_demotions=1"));
        assert!(line.contains("selftest_failures=0"));
        assert!(line.contains("watchdog_fires=2"));
        assert!(line.contains("cancelled_watchdog=2"));
        assert!(line.contains("cost_rejected=0"));
    }

    #[test]
    fn cancel_reasons_land_in_their_own_counters() {
        use swsimd_core::CancelReason;
        let c = ServeCounters::default();
        for reason in CancelReason::ALL {
            c.record_cancel(reason);
        }
        c.record_cancel(CancelReason::Deadline);
        let s = c.snapshot();
        assert_eq!(s.cancelled_deadline, 2);
        assert_eq!(s.cancelled_client_drop, 1);
        assert_eq!(s.cancelled_shutdown, 1);
        assert_eq!(s.cancelled_watchdog, 1);
        assert_eq!(s.cancelled_memory, 1);
    }
}
