//! Throughput metrics: GCUPS (billions of cell updates per second),
//! the unit every figure in the paper reports.

use std::time::{Duration, Instant};

/// A completed measurement.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Throughput {
    /// DP cells computed.
    pub cells: u64,
    /// Wall-clock seconds.
    pub seconds: f64,
}

impl Throughput {
    /// Giga cell updates per second.
    pub fn gcups(&self) -> f64 {
        if self.seconds <= 0.0 {
            0.0
        } else {
            self.cells as f64 / self.seconds / 1e9
        }
    }

    /// Mega cell updates per second.
    pub fn mcups(&self) -> f64 {
        self.gcups() * 1e3
    }
}

/// Stopwatch helper around a cell count.
pub struct CellTimer {
    start: Instant,
    cells: u64,
}

impl CellTimer {
    /// Start timing a region that will compute `cells` DP cells.
    pub fn start(cells: u64) -> Self {
        Self { start: Instant::now(), cells }
    }

    /// Add late-discovered cells (e.g. adaptive reruns).
    pub fn add_cells(&mut self, cells: u64) {
        self.cells += cells;
    }

    /// Stop and report.
    pub fn stop(self) -> Throughput {
        Throughput { cells: self.cells, seconds: self.start.elapsed().as_secs_f64() }
    }

    /// Elapsed so far.
    pub fn elapsed(&self) -> Duration {
        self.start.elapsed()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gcups_math() {
        let t = Throughput { cells: 2_000_000_000, seconds: 2.0 };
        assert!((t.gcups() - 1.0).abs() < 1e-12);
        assert!((t.mcups() - 1000.0).abs() < 1e-9);
    }

    #[test]
    fn zero_seconds_is_zero() {
        let t = Throughput { cells: 10, seconds: 0.0 };
        assert_eq!(t.gcups(), 0.0);
    }

    #[test]
    fn timer_accumulates() {
        let mut t = CellTimer::start(100);
        t.add_cells(50);
        let out = t.stop();
        assert_eq!(out.cells, 150);
        assert!(out.seconds >= 0.0);
    }
}
