//! Deterministic fault injection for the serving layer.
//!
//! Every degradation path in [`crate::pool`] and [`crate::server`]
//! (worker panics, poisoned batch results, slow workers) must be
//! testable without relying on real SIMD bugs or timing luck. A
//! [`FaultPlan`] is injected through [`crate::PoolConfig`] /
//! [`crate::ServerConfig`] and fires at chosen partition (or, for the
//! server, within-batch job) indices. The default plan is inert and
//! adds one branch per partition to the hot path.
//!
//! Faults are budgeted: `panic_at(p, times)` fires `times` times and
//! then disarms, so a degraded retry (which deliberately bypasses the
//! hooks) always converges. This module is compiled unconditionally —
//! it is part of the operational surface, like a chaos-testing hook —
//! but does nothing unless a plan is explicitly armed.

use std::collections::HashMap;
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::Duration;

use swsimd_core::Hit;

/// Counters for degradation events observed during a search.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Workers that panicked and were isolated (`catch_unwind`).
    pub worker_panics: u64,
    /// Partitions/batches whose fast-path result was discarded
    /// (panic or failed validation) and recomputed.
    pub degraded_batches: u64,
    /// Degraded retries performed on the scalar reference engine.
    pub retries: u64,
    /// Served hits recomputed on the scalar reference by sampled
    /// shadow verification.
    pub shadow_checks: u64,
    /// Shadow-verified hits whose served score disagreed with the
    /// reference (repaired before return).
    pub shadow_mismatches: u64,
    /// Circuit-breaker openings charged from this search: a backend
    /// crossed its strike threshold and was demoted.
    pub backend_demotions: u64,
    /// Wedged workers reaped by the stall watchdog (cancelled and
    /// recomputed on the scalar reference engine).
    pub watchdog_fires: u64,
}

impl FaultStats {
    /// Accumulate another worker's counters.
    pub fn merge(&mut self, other: &FaultStats) {
        self.worker_panics += other.worker_panics;
        self.degraded_batches += other.degraded_batches;
        self.retries += other.retries;
        self.shadow_checks += other.shadow_checks;
        self.shadow_mismatches += other.shadow_mismatches;
        self.backend_demotions += other.backend_demotions;
        self.watchdog_fires += other.watchdog_fires;
    }

    /// Fold a shadow-verification outcome into these counters.
    pub fn record_shadow(&mut self, out: &crate::shadow::ShadowOutcome) {
        self.shadow_checks += out.checks;
        self.shadow_mismatches += out.mismatches;
        self.backend_demotions += out.demotions;
    }

    /// True if any degradation event was recorded.
    pub fn any(&self) -> bool {
        *self != FaultStats::default()
    }
}

#[derive(Default)]
struct Inner {
    /// partition → remaining injected panics.
    panics: Mutex<HashMap<usize, u32>>,
    /// partition → remaining poisoned (silently corrupted) results.
    poisons: Mutex<HashMap<usize, u32>>,
    /// partition → remaining wrong-score injections (top hit skewed,
    /// count preserved — only shadow verification can catch it).
    wrong_scores: Mutex<HashMap<usize, u32>>,
    /// partition → remaining corrupt-lane injections (a mid-batch hit
    /// skewed, simulating a single bad vector lane).
    corrupt_lanes: Mutex<HashMap<usize, u32>>,
    /// partition → artificial delay before computing.
    delays: Mutex<HashMap<usize, Duration>>,
    /// Simulated process death after this many journal appends
    /// (`None` = never).
    crash_after_chunks: Mutex<Option<u32>>,
    /// replica ordinal → remaining refused connection attempts
    /// (gateway-side network fault).
    refuse_connects: Mutex<HashMap<usize, u32>>,
    /// shard index → remaining torn reply frames (shard-side: the
    /// frame is cut mid-write and the connection dropped).
    torn_replies: Mutex<HashMap<usize, u32>>,
    /// shard index → remaining bit-flipped reply frames (shard-side:
    /// one payload byte is XORed so the client's CRC check fails).
    flip_replies: Mutex<HashMap<usize, u32>>,
    /// shard index → artificial delay before each reply is written
    /// (simulates a slow shard for timeout/hedging tests).
    reply_delays: Mutex<HashMap<usize, Duration>>,
}

/// How an injected network fault mangles one shard reply frame (see
/// [`FaultPlan::reply_fault`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ReplyFault {
    /// Deliver the frame untouched.
    None,
    /// Write only a prefix of the frame, then drop the connection —
    /// the client sees an unexpected EOF mid-frame.
    Torn,
    /// XOR one payload byte before writing — the frame arrives whole
    /// but the client's CRC check rejects it.
    BitFlip,
}

/// A deterministic schedule of injected faults (see module docs).
///
/// Cloning shares the underlying budgets: a plan cloned into several
/// workers still fires each fault the configured number of times in
/// total.
#[derive(Clone, Default)]
pub struct FaultPlan {
    inner: Option<Arc<Inner>>,
}

/// Lock that tolerates a poisoned mutex: fault hooks run on panicking
/// workers by design, and a budget map is always internally consistent.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

impl FaultPlan {
    /// An inert plan (identical to `FaultPlan::default()`).
    pub fn none() -> Self {
        Self::default()
    }

    /// An armed, empty plan ready for `panic_at`/`delay_at`/`poison_at`.
    pub fn new() -> Self {
        Self {
            inner: Some(Arc::new(Inner::default())),
        }
    }

    fn armed(self) -> Self {
        if self.inner.is_some() {
            self
        } else {
            Self::new()
        }
    }

    /// Inject a panic the next `times` times `partition` is computed.
    pub fn panic_at(self, partition: usize, times: u32) -> Self {
        let this = self.armed();
        if let Some(inner) = &this.inner {
            lock(&inner.panics).insert(partition, times);
        }
        this
    }

    /// Silently corrupt the fast-path result of `partition` the next
    /// `times` times (simulates a wrong-answer SIMD bug that result
    /// validation must catch).
    pub fn poison_at(self, partition: usize, times: u32) -> Self {
        let this = self.armed();
        if let Some(inner) = &this.inner {
            lock(&inner.poisons).insert(partition, times);
        }
        this
    }

    /// Skew the best hit's score the next `times` times `partition` is
    /// computed. Unlike [`FaultPlan::poison_at`] the hit *count* is
    /// preserved, so structural validation passes — this simulates a
    /// wrong-answer kernel bug only shadow verification can catch.
    pub fn wrong_score_at(self, partition: usize, times: u32) -> Self {
        let this = self.armed();
        if let Some(inner) = &this.inner {
            lock(&inner.wrong_scores).insert(partition, times);
        }
        this
    }

    /// Skew a mid-batch hit's score the next `times` times `partition`
    /// is computed (a single corrupted vector lane: one database
    /// sequence scored wrong, the rest exact).
    pub fn corrupt_lane_at(self, partition: usize, times: u32) -> Self {
        let this = self.armed();
        if let Some(inner) = &this.inner {
            lock(&inner.corrupt_lanes).insert(partition, times);
        }
        this
    }

    /// Sleep for `delay` every time `partition` is computed (simulates
    /// a slow shard for deadline/backpressure tests).
    pub fn delay_at(self, partition: usize, delay: Duration) -> Self {
        let this = self.armed();
        if let Some(inner) = &this.inner {
            lock(&inner.delays).insert(partition, delay);
        }
        this
    }

    /// Simulate a process crash (kill -9) after `chunks` journal
    /// appends have been made durable: the next append returns an I/O
    /// error, aborting the search and leaving exactly `chunks` intact
    /// records on disk — the state a real crash at that instant leaves.
    pub fn crash_after_chunks(self, chunks: u32) -> Self {
        let this = self.armed();
        if let Some(inner) = &this.inner {
            *lock(&inner.crash_after_chunks) = Some(chunks);
        }
        this
    }

    /// Refuse the next `times` connection attempts to replica
    /// `ordinal` (gateway-side: the dial fails like `ECONNREFUSED`
    /// before any bytes move).
    pub fn refuse_connect(self, ordinal: usize, times: u32) -> Self {
        let this = self.armed();
        if let Some(inner) = &this.inner {
            lock(&inner.refuse_connects).insert(ordinal, times);
        }
        this
    }

    /// Tear the next `times` reply frames from `shard`: only a prefix
    /// of the frame is written before the connection drops.
    pub fn torn_reply_at(self, shard: usize, times: u32) -> Self {
        let this = self.armed();
        if let Some(inner) = &this.inner {
            lock(&inner.torn_replies).insert(shard, times);
        }
        this
    }

    /// Flip one payload byte in the next `times` reply frames from
    /// `shard`, so the client's frame CRC rejects them.
    pub fn flip_reply_at(self, shard: usize, times: u32) -> Self {
        let this = self.armed();
        if let Some(inner) = &this.inner {
            lock(&inner.flip_replies).insert(shard, times);
        }
        this
    }

    /// Sleep for `delay` before every reply `shard` writes (simulates
    /// a slow shard for per-attempt timeout and hedging tests).
    pub fn delay_reply_at(self, shard: usize, delay: Duration) -> Self {
        let this = self.armed();
        if let Some(inner) = &this.inner {
            lock(&inner.reply_delays).insert(shard, delay);
        }
        this
    }

    /// Hook: called by the gateway before dialing replica `ordinal`.
    /// Errors with `ConnectionRefused` while a refuse budget remains.
    pub fn before_connect(&self, ordinal: usize) -> std::io::Result<()> {
        let Some(inner) = &self.inner else {
            return Ok(());
        };
        let mut budgets = lock(&inner.refuse_connects);
        match budgets.get_mut(&ordinal) {
            Some(n) if *n > 0 => {
                *n -= 1;
                Err(std::io::Error::new(
                    std::io::ErrorKind::ConnectionRefused,
                    format!("fault-injected connection refused (replica {ordinal})"),
                ))
            }
            _ => Ok(()),
        }
    }

    /// Hook: called by a shard before writing each reply frame.
    /// Consumes at most one fault budget per call; torn outranks
    /// bit-flip when both are armed for the same shard.
    pub fn reply_fault(&self, shard: usize) -> ReplyFault {
        let Some(inner) = &self.inner else {
            return ReplyFault::None;
        };
        let fire = |m: &Mutex<HashMap<usize, u32>>| {
            let mut budgets = lock(m);
            match budgets.get_mut(&shard) {
                Some(n) if *n > 0 => {
                    *n -= 1;
                    true
                }
                _ => false,
            }
        };
        if fire(&inner.torn_replies) {
            ReplyFault::Torn
        } else if fire(&inner.flip_replies) {
            ReplyFault::BitFlip
        } else {
            ReplyFault::None
        }
    }

    /// Hook: the artificial delay `shard` sleeps before each reply.
    pub fn reply_delay(&self, shard: usize) -> Option<Duration> {
        let inner = self.inner.as_ref()?;
        lock(&inner.reply_delays).get(&shard).copied()
    }

    /// Hook: called by `checkpointed_search` before each chunk append.
    /// Errors when the crash budget is exhausted, so exactly the
    /// budgeted number of chunks end up durable.
    pub fn before_journal_append(&self) -> std::io::Result<()> {
        let Some(inner) = &self.inner else {
            return Ok(());
        };
        let mut budget = lock(&inner.crash_after_chunks);
        match budget.as_mut() {
            Some(0) => Err(std::io::Error::other(
                "fault-injected crash (simulated kill -9 after journal append)",
            )),
            Some(n) => {
                *n -= 1;
                Ok(())
            }
            None => Ok(()),
        }
    }

    /// True if any fault has been scheduled (armed plans only).
    pub fn is_armed(&self) -> bool {
        self.inner.is_some()
    }

    /// Hook: called by a fast-path worker before computing `partition`.
    /// Sleeps through any scheduled delay, then panics if a panic
    /// budget remains. Degraded retries do not call this.
    pub fn before_partition(&self, partition: usize) {
        let Some(inner) = &self.inner else { return };
        let delay = lock(&inner.delays).get(&partition).copied();
        if let Some(d) = delay {
            std::thread::sleep(d);
        }
        let fire = {
            let mut panics = lock(&inner.panics);
            match panics.get_mut(&partition) {
                Some(n) if *n > 0 => {
                    *n -= 1;
                    true
                }
                _ => false,
            }
        };
        if fire {
            panic!("fault-injected worker panic (partition {partition})");
        }
    }

    /// Hook: called by a fast-path worker on its computed hits. Drops
    /// the last hit when a poison budget remains, so the caller's
    /// hit-count validation detects the corrupted batch.
    pub fn corrupt_hits(&self, partition: usize, hits: &mut Vec<Hit>) {
        let Some(inner) = &self.inner else { return };
        let mut poisons = lock(&inner.poisons);
        if let Some(n) = poisons.get_mut(&partition) {
            if *n > 0 {
                *n -= 1;
                hits.pop();
            }
        }
    }

    /// Hook: called by a fast-path worker on its computed hits, after
    /// [`FaultPlan::corrupt_hits`]. Applies any `wrong_score_at` /
    /// `corrupt_lane_at` budgets: scores are skewed but the hit count
    /// is untouched, so only shadow verification notices.
    pub fn skew_hits(&self, partition: usize, hits: &mut [Hit]) {
        let Some(inner) = &self.inner else { return };
        if hits.is_empty() {
            return;
        }
        let fire = |m: &Mutex<HashMap<usize, u32>>| {
            let mut budgets = lock(m);
            match budgets.get_mut(&partition) {
                Some(n) if *n > 0 => {
                    *n -= 1;
                    true
                }
                _ => false,
            }
        };
        if fire(&inner.wrong_scores) {
            let best = hits
                .iter_mut()
                .max_by_key(|h| h.score)
                .expect("hits is non-empty");
            best.score += 7;
        }
        if fire(&inner.corrupt_lanes) {
            let mid = hits.len() / 2;
            hits[mid].score += 13;
        }
    }
}

/// A `Write` adapter that injects storage faults for the crash
/// harness: torn writes (everything past a byte offset is dropped and
/// subsequent writes fail, simulating a crash mid-`write`) and bit
/// flips at chosen offsets (simulating media corruption). Wraps any
/// sink a journal can target.
pub struct FaultyWriter<W> {
    inner: W,
    written: u64,
    /// Drop bytes from this absolute offset on, then fail.
    torn_at: Option<u64>,
    /// (absolute offset, xor mask) corruptions to apply in-flight.
    flips: Vec<(u64, u8)>,
    dead: bool,
}

impl<W> FaultyWriter<W> {
    /// Wrap a sink with no faults armed.
    pub fn new(inner: W) -> Self {
        Self {
            inner,
            written: 0,
            torn_at: None,
            flips: Vec::new(),
            dead: false,
        }
    }

    /// Tear the stream at absolute byte `offset`: bytes before it are
    /// written, everything after is lost and the writer errors.
    pub fn torn_at(mut self, offset: u64) -> Self {
        self.torn_at = Some(offset);
        self
    }

    /// XOR the byte at absolute `offset` with `mask` as it passes
    /// through.
    pub fn flip_at(mut self, offset: u64, mask: u8) -> Self {
        self.flips.push((offset, mask));
        self
    }

    /// Total bytes accepted (pre-tear).
    pub fn written(&self) -> u64 {
        self.written
    }

    /// True once a torn write has killed the stream.
    pub fn is_dead(&self) -> bool {
        self.dead
    }

    /// The wrapped sink (for durability-barrier forwarding).
    pub fn get_mut(&mut self) -> &mut W {
        &mut self.inner
    }

    /// Recover the wrapped sink.
    pub fn into_inner(self) -> W {
        self.inner
    }
}

impl<W: std::io::Write> std::io::Write for FaultyWriter<W> {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        if self.dead {
            return Err(std::io::Error::other("fault-injected dead writer"));
        }
        let mut take = buf.len();
        let mut tearing = false;
        if let Some(t) = self.torn_at {
            let left = t.saturating_sub(self.written) as usize;
            if left < take {
                take = left;
                tearing = true;
            }
        }
        let mut chunk = buf[..take].to_vec();
        for &(off, mask) in &self.flips {
            if off >= self.written && off < self.written + take as u64 {
                chunk[(off - self.written) as usize] ^= mask;
            }
        }
        self.inner.write_all(&chunk)?;
        self.written += take as u64;
        if tearing {
            // The torn bytes are gone; every later write fails like a
            // dead process's would.
            self.dead = true;
            if take == 0 {
                return Err(std::io::Error::other("fault-injected torn write"));
            }
        }
        Ok(take)
    }

    fn flush(&mut self) -> std::io::Result<()> {
        if self.dead {
            return Err(std::io::Error::other("fault-injected dead writer"));
        }
        self.inner.flush()
    }
}

impl std::fmt::Debug for FaultPlan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FaultPlan")
            .field("armed", &self.is_armed())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_plan_is_inert() {
        let plan = FaultPlan::default();
        assert!(!plan.is_armed());
        plan.before_partition(0); // no-op, no panic
        let mut hits = Vec::new();
        plan.corrupt_hits(0, &mut hits);
    }

    #[test]
    fn panic_budget_decrements_and_disarms() {
        let plan = FaultPlan::new().panic_at(2, 1);
        plan.before_partition(0); // other partitions unaffected
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| plan.before_partition(2)));
        assert!(r.is_err());
        plan.before_partition(2); // budget exhausted: no panic
    }

    #[test]
    fn poison_drops_one_hit_per_budget() {
        use swsimd_core::Precision;
        let plan = FaultPlan::new().poison_at(1, 1);
        let mut hits = vec![Hit {
            db_index: 0,
            score: 1,
            precision: Precision::I8,
        }];
        plan.corrupt_hits(1, &mut hits);
        assert!(hits.is_empty());
        let mut hits2 = vec![Hit {
            db_index: 0,
            score: 1,
            precision: Precision::I8,
        }];
        plan.corrupt_hits(1, &mut hits2);
        assert_eq!(hits2.len(), 1);
    }

    #[test]
    fn clones_share_budgets() {
        let plan = FaultPlan::new().panic_at(0, 1);
        let clone = plan.clone();
        let r =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| clone.before_partition(0)));
        assert!(r.is_err());
        plan.before_partition(0); // budget consumed through the clone
    }

    #[test]
    fn crash_budget_counts_appends() {
        let plan = FaultPlan::new().crash_after_chunks(2);
        assert!(plan.before_journal_append().is_ok());
        assert!(plan.before_journal_append().is_ok());
        assert!(
            plan.before_journal_append().is_err(),
            "third append crashes"
        );
        assert!(plan.before_journal_append().is_err(), "stays dead");
        let inert = FaultPlan::default();
        for _ in 0..10 {
            assert!(inert.before_journal_append().is_ok());
        }
    }

    #[test]
    fn faulty_writer_tears_and_dies() {
        use std::io::Write;
        let mut w = FaultyWriter::new(Vec::new()).torn_at(5);
        w.write_all(b"abc").unwrap();
        let r = w.write_all(b"defg"); // bytes 3..7, torn at 5
        assert!(r.is_err() || w.written() == 5);
        assert!(w.write_all(b"x").is_err(), "dead after tear");
        assert_eq!(w.into_inner(), b"abcde");
    }

    #[test]
    fn faulty_writer_flips_bits_in_flight() {
        use std::io::Write;
        let mut w = FaultyWriter::new(Vec::new()).flip_at(2, 0x01);
        w.write_all(b"ab").unwrap();
        w.write_all(b"cd").unwrap();
        assert_eq!(w.into_inner(), b"ab\x62d"); // 'c' ^ 0x01
    }

    #[test]
    fn stats_merge_and_any() {
        let mut a = FaultStats::default();
        assert!(!a.any());
        a.merge(&FaultStats {
            worker_panics: 1,
            degraded_batches: 2,
            retries: 3,
            ..FaultStats::default()
        });
        a.merge(&FaultStats {
            worker_panics: 1,
            degraded_batches: 0,
            retries: 1,
            shadow_checks: 5,
            shadow_mismatches: 2,
            backend_demotions: 1,
            watchdog_fires: 1,
        });
        assert_eq!(
            a,
            FaultStats {
                worker_panics: 2,
                degraded_batches: 2,
                retries: 4,
                shadow_checks: 5,
                shadow_mismatches: 2,
                backend_demotions: 1,
                watchdog_fires: 1,
            }
        );
        assert!(a.any());
    }

    #[test]
    fn network_faults_budget_and_disarm() {
        let plan = FaultPlan::new()
            .refuse_connect(1, 2)
            .torn_reply_at(0, 1)
            .flip_reply_at(0, 1)
            .delay_reply_at(2, Duration::from_millis(5));

        assert!(plan.before_connect(0).is_ok(), "other replicas dial fine");
        let err = plan.before_connect(1).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::ConnectionRefused);
        assert!(plan.before_connect(1).is_err());
        assert!(plan.before_connect(1).is_ok(), "refuse budget exhausted");

        // Torn outranks flip; each consumes its own budget once.
        assert_eq!(plan.reply_fault(0), ReplyFault::Torn);
        assert_eq!(plan.reply_fault(0), ReplyFault::BitFlip);
        assert_eq!(plan.reply_fault(0), ReplyFault::None);
        assert_eq!(plan.reply_fault(1), ReplyFault::None);

        assert_eq!(plan.reply_delay(2), Some(Duration::from_millis(5)));
        assert_eq!(plan.reply_delay(0), None);

        let inert = FaultPlan::default();
        assert!(inert.before_connect(1).is_ok());
        assert_eq!(inert.reply_fault(0), ReplyFault::None);
        assert_eq!(inert.reply_delay(2), None);
    }

    #[test]
    fn skew_preserves_count_but_not_scores() {
        use swsimd_core::Precision;
        let mk = |scores: &[i32]| -> Vec<Hit> {
            scores
                .iter()
                .enumerate()
                .map(|(i, &s)| Hit {
                    db_index: i,
                    score: s,
                    precision: Precision::I8,
                })
                .collect()
        };
        let plan = FaultPlan::new().wrong_score_at(0, 1).corrupt_lane_at(1, 1);

        let mut hits = mk(&[10, 50, 30]);
        plan.skew_hits(0, &mut hits);
        assert_eq!(hits.len(), 3);
        assert_eq!(hits[1].score, 57, "best hit skewed by +7");
        plan.skew_hits(0, &mut hits);
        assert_eq!(hits[1].score, 57, "budget exhausted");

        let mut hits = mk(&[10, 50, 30]);
        plan.skew_hits(1, &mut hits);
        assert_eq!(hits[1].score, 63, "middle hit skewed by +13");

        let inert = FaultPlan::default();
        let mut hits = mk(&[10, 50, 30]);
        inert.skew_hits(0, &mut hits);
        assert_eq!(hits, mk(&[10, 50, 30]));
    }
}
