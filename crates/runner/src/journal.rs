//! Checkpointed search: a durable journal of completed partition
//! results so a long whole-database scan (the paper's Scenario 1 at
//! Swiss-Prot scale) survives a process crash.
//!
//! ## Journal format (little-endian)
//!
//! ```text
//! magic "SWJL" | u32 version=1
//! records: u32 payload_len | payload | u32 payload_crc
//!   payload = u8 kind | body
//!   kind 1 (meta):  u32 parts | u64 db_len | u64 db_residues | u32 query_crc
//!   kind 2 (chunk): u32 chunk | u64 start | u64 end | u64 n_hits
//!                   | n_hits × (u64 db_index | i32 score | u8 precision)
//! ```
//!
//! Every record is CRC32-framed ([`swsimd_seq::integrity`]) and
//! fsync'd before the search moves on, so the journal on disk is
//! always a valid prefix of the completed work plus at most one torn
//! tail record.
//!
//! ## Recovery policy
//!
//! [`read_journal`] verifies the header and the meta record strictly —
//! a journal whose identity cannot be established is a typed
//! [`JournalError`], never a panic. *After* the meta record, a torn or
//! corrupt frame ends replay: everything before it is trusted (it was
//! CRC-verified), everything after it is discarded and simply
//! **recomputed** by [`resume_search`]. Corruption can therefore cost
//! work, but never correctness — resumed results are bit-identical to
//! an uninterrupted run because every journaled chunk is re-validated
//! against the database partition map before being trusted, and
//! recomputed chunks use the same deterministic kernels.

use std::io::{self, Write};
use std::ops::Range;
use std::path::Path;

use swsimd_core::{AlignerBuilder, Hit, KernelStats, Precision};
use swsimd_seq::integrity::crc32;
use swsimd_seq::Database;

use crate::fault::FaultStats;
use crate::pool::{search_partition, PoolConfig, SearchOutput};

const MAGIC: &[u8; 4] = b"SWJL";
/// Journal format version written by [`JournalWriter`].
pub const JOURNAL_VERSION: u32 = 1;

const KIND_META: u8 = 1;
const KIND_CHUNK: u8 = 2;

/// Errors from reading or resuming a journal.
#[derive(Debug)]
pub enum JournalError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// Missing or wrong magic bytes.
    BadMagic,
    /// Unsupported journal version.
    BadVersion(u32),
    /// The journal's identity (header or meta record) is damaged and
    /// nothing in it can be trusted.
    Corrupt(&'static str),
    /// The journal is intact but belongs to a different search
    /// (database or query mismatch) and must not be replayed.
    Mismatch(&'static str),
}

impl std::fmt::Display for JournalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JournalError::Io(e) => write!(f, "journal I/O error: {e}"),
            JournalError::BadMagic => write!(f, "not a swsimd search journal"),
            JournalError::BadVersion(v) => write!(f, "unsupported journal version {v}"),
            JournalError::Corrupt(what) => write!(f, "corrupt journal: {what}"),
            JournalError::Mismatch(what) => {
                write!(f, "journal does not match this search: {what}")
            }
        }
    }
}

impl std::error::Error for JournalError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            JournalError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for JournalError {
    fn from(e: io::Error) -> Self {
        JournalError::Io(e)
    }
}

/// Identity of the search a journal belongs to. Replay refuses to
/// proceed unless every field matches the resuming search.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct JournalMeta {
    /// Partition count the chunk ranges were derived from
    /// (`db.partition(parts)` is deterministic given the database).
    pub parts: usize,
    /// Database sequence count at journal time.
    pub db_len: usize,
    /// Database residue count at journal time.
    pub db_residues: usize,
    /// CRC32 of the encoded query.
    pub query_crc: u32,
}

impl JournalMeta {
    /// Compute the meta record for a search.
    pub fn for_search(query: &[u8], db: &Database, parts: usize) -> Self {
        Self {
            parts: parts.max(1),
            db_len: db.len(),
            db_residues: db.total_residues(),
            query_crc: crc32(query),
        }
    }
}

/// One completed chunk recovered from (or written to) a journal.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JournalEntry {
    /// Index of the chunk in the partition map.
    pub chunk: usize,
    /// Database range the chunk covers.
    pub range: Range<usize>,
    /// One hit per sequence in `range`, globally indexed.
    pub hits: Vec<Hit>,
}

/// A verified journal: identity plus every intact chunk record.
#[derive(Debug)]
pub struct Journal {
    /// Search identity.
    pub meta: JournalMeta,
    /// Intact chunk records, in journal order.
    pub entries: Vec<JournalEntry>,
    /// True if replay stopped early at a torn or corrupt frame (the
    /// remainder of the file was discarded).
    pub truncated: bool,
}

/// What `resume_search` replayed versus recomputed.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ResumeStats {
    /// Chunks replayed from the journal (work saved).
    pub replayed_chunks: usize,
    /// Chunks recomputed because the journal lacked them.
    pub recomputed_chunks: usize,
    /// Hits recovered from the journal.
    pub replayed_hits: usize,
}

/// A sink a journal can be written to: any writer, plus a durability
/// barrier. Files fsync; in-memory sinks are trivially durable.
pub trait JournalSink: Write {
    /// Flush written records to stable storage.
    fn sync(&mut self) -> io::Result<()> {
        Ok(())
    }
}

impl JournalSink for std::fs::File {
    fn sync(&mut self) -> io::Result<()> {
        self.sync_data()
    }
}

impl JournalSink for Vec<u8> {}

impl<W: JournalSink> JournalSink for crate::fault::FaultyWriter<W> {
    fn sync(&mut self) -> io::Result<()> {
        if self.is_dead() {
            return Err(io::Error::other("fault-injected dead writer"));
        }
        self.get_mut().sync()
    }
}

// ---------------------------------------------------------------------------
// Encoding helpers (dependency-free little-endian cursor).

fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

struct Cursor<'a>(&'a [u8]);

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        if self.0.len() < n {
            return None;
        }
        let (head, tail) = self.0.split_at(n);
        self.0 = tail;
        Some(head)
    }

    fn u8(&mut self) -> Option<u8> {
        self.take(1).map(|b| b[0])
    }

    fn u32(&mut self) -> Option<u32> {
        self.take(4)
            .map(|b| u32::from_le_bytes(b.try_into().unwrap()))
    }

    fn i32(&mut self) -> Option<i32> {
        self.take(4)
            .map(|b| i32::from_le_bytes(b.try_into().unwrap()))
    }

    fn u64(&mut self) -> Option<u64> {
        self.take(8)
            .map(|b| u64::from_le_bytes(b.try_into().unwrap()))
    }

    fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

fn precision_code(p: Precision) -> u8 {
    match p {
        Precision::I8 => 0,
        Precision::I16 => 1,
        Precision::I32 => 2,
        Precision::Adaptive => 3,
    }
}

fn precision_from(code: u8) -> Option<Precision> {
    Some(match code {
        0 => Precision::I8,
        1 => Precision::I16,
        2 => Precision::I32,
        3 => Precision::Adaptive,
        _ => return None,
    })
}

// ---------------------------------------------------------------------------
// Writing.

/// Append-only writer of CRC-framed journal records. Every record is
/// flushed and [`JournalSink::sync`]'d before `append` returns, so a
/// crash at any instant leaves at most one torn tail record.
pub struct JournalWriter<S: JournalSink> {
    sink: S,
    /// Chunk records appended so far.
    chunks: u64,
}

impl JournalWriter<std::fs::File> {
    /// Create (truncate) a journal file and write its header.
    pub fn create(path: &Path) -> io::Result<Self> {
        let file = std::fs::File::create(path)?;
        Self::new(file)
    }
}

impl<S: JournalSink> JournalWriter<S> {
    /// Write the journal header to a fresh sink.
    pub fn new(mut sink: S) -> io::Result<Self> {
        sink.write_all(MAGIC)?;
        sink.write_all(&JOURNAL_VERSION.to_le_bytes())?;
        sink.flush()?;
        sink.sync()?;
        Ok(Self { sink, chunks: 0 })
    }

    fn frame(&mut self, payload: &[u8]) -> io::Result<()> {
        self.sink.write_all(&(payload.len() as u32).to_le_bytes())?;
        self.sink.write_all(payload)?;
        self.sink.write_all(&crc32(payload).to_le_bytes())?;
        self.sink.flush()?;
        self.sink.sync()
    }

    /// Write the search-identity record (must be the first record).
    pub fn write_meta(&mut self, meta: &JournalMeta) -> io::Result<()> {
        let mut payload = vec![KIND_META];
        put_u32(&mut payload, meta.parts as u32);
        put_u64(&mut payload, meta.db_len as u64);
        put_u64(&mut payload, meta.db_residues as u64);
        put_u32(&mut payload, meta.query_crc);
        self.frame(&payload)
    }

    /// Append one completed chunk's hits, durably.
    pub fn append_chunk(&mut self, entry: &JournalEntry) -> io::Result<()> {
        let mut payload = vec![KIND_CHUNK];
        put_u32(&mut payload, entry.chunk as u32);
        put_u64(&mut payload, entry.range.start as u64);
        put_u64(&mut payload, entry.range.end as u64);
        put_u64(&mut payload, entry.hits.len() as u64);
        for h in &entry.hits {
            put_u64(&mut payload, h.db_index as u64);
            payload.extend_from_slice(&h.score.to_le_bytes());
            payload.push(precision_code(h.precision));
        }
        self.frame(&payload)?;
        self.chunks += 1;
        Ok(())
    }

    /// Chunk records appended so far.
    pub fn chunks(&self) -> u64 {
        self.chunks
    }

    /// Recover the sink (e.g. an in-memory buffer in tests).
    pub fn into_inner(self) -> S {
        self.sink
    }
}

// ---------------------------------------------------------------------------
// Reading.

fn parse_meta(body: &mut Cursor<'_>) -> Result<JournalMeta, JournalError> {
    let parts = body.u32().ok_or(JournalError::Corrupt("meta record"))? as usize;
    let db_len = body.u64().ok_or(JournalError::Corrupt("meta record"))? as usize;
    let db_residues = body.u64().ok_or(JournalError::Corrupt("meta record"))? as usize;
    let query_crc = body.u32().ok_or(JournalError::Corrupt("meta record"))?;
    if !body.is_empty() {
        return Err(JournalError::Corrupt("meta record"));
    }
    Ok(JournalMeta {
        parts,
        db_len,
        db_residues,
        query_crc,
    })
}

fn parse_chunk(body: &mut Cursor<'_>) -> Option<JournalEntry> {
    let chunk = body.u32()? as usize;
    let start = body.u64()? as usize;
    let end = body.u64()? as usize;
    let n_hits = body.u64()? as usize;
    // A CRC-valid record can still carry a hostile count if the writer
    // was buggy; bound it by the bytes actually present (13 per hit).
    if end < start || n_hits != end - start || body.0.len() != n_hits * 13 {
        return None;
    }
    let mut hits = Vec::with_capacity(n_hits);
    for _ in 0..n_hits {
        let db_index = body.u64()? as usize;
        let score = body.i32()?;
        let precision = precision_from(body.u8()?)?;
        hits.push(Hit {
            db_index,
            score,
            precision,
        });
    }
    Some(JournalEntry {
        chunk,
        range: start..end,
        hits,
    })
}

/// Split the next CRC-framed record off `data`. `Ok(None)` means a
/// clean end of journal; `Err(())` a torn or corrupt frame.
#[allow(clippy::result_unit_err)] // internal: () is "stop replay here"
fn next_frame<'a>(data: &mut &'a [u8]) -> Result<Option<&'a [u8]>, ()> {
    if data.is_empty() {
        return Ok(None);
    }
    if data.len() < 4 {
        return Err(());
    }
    let len = u32::from_le_bytes(data[..4].try_into().unwrap()) as usize;
    let Some(framed) = len.checked_add(8) else {
        return Err(());
    };
    if data.len() < framed {
        return Err(());
    }
    let payload = &data[4..4 + len];
    let stored = u32::from_le_bytes(data[4 + len..framed].try_into().unwrap());
    if crc32(payload) != stored {
        return Err(());
    }
    *data = &data[framed..];
    Ok(Some(payload))
}

/// Parse and verify a journal image.
///
/// The header and the meta record must be intact — otherwise the
/// journal's identity is unknown and the result is an error. Chunk
/// records are read until the first torn/corrupt frame, which sets
/// [`Journal::truncated`] and ends replay (the tail is recomputed by
/// [`resume_search`], so a damaged tail costs work, never
/// correctness). Duplicate chunk records keep the first occurrence.
pub fn read_journal(mut data: &[u8]) -> Result<Journal, JournalError> {
    if data.len() < 8 {
        return Err(JournalError::Corrupt("header"));
    }
    if &data[..4] != MAGIC {
        return Err(JournalError::BadMagic);
    }
    let version = u32::from_le_bytes(data[4..8].try_into().unwrap());
    if version != JOURNAL_VERSION {
        return Err(JournalError::BadVersion(version));
    }
    data = &data[8..];

    let first = match next_frame(&mut data) {
        Ok(Some(p)) => p,
        _ => return Err(JournalError::Corrupt("meta record")),
    };
    let mut cur = Cursor(first);
    if cur.u8() != Some(KIND_META) {
        return Err(JournalError::Corrupt("meta record"));
    }
    let meta = parse_meta(&mut cur)?;

    let mut entries: Vec<JournalEntry> = Vec::new();
    let mut truncated = false;
    loop {
        match next_frame(&mut data) {
            Ok(None) => break,
            Err(()) => {
                truncated = true;
                break;
            }
            Ok(Some(payload)) => {
                let mut cur = Cursor(payload);
                match cur.u8() {
                    Some(KIND_CHUNK) => match parse_chunk(&mut cur) {
                        Some(entry) => {
                            if entries.iter().all(|e| e.chunk != entry.chunk) {
                                entries.push(entry);
                            }
                        }
                        None => {
                            truncated = true;
                            break;
                        }
                    },
                    // Unknown record kinds are skipped (forward
                    // compatibility); their CRC already checked out.
                    Some(_) => {}
                    None => {
                        truncated = true;
                        break;
                    }
                }
            }
        }
    }
    Ok(Journal {
        meta,
        entries,
        truncated,
    })
}

/// Read and verify a journal file.
pub fn read_journal_file(path: &Path) -> Result<Journal, JournalError> {
    let data = std::fs::read(path)?;
    read_journal(&data)
}

// ---------------------------------------------------------------------------
// Checkpointed search and resume.

/// Like [`crate::parallel_search`], but journals every completed
/// chunk durably into `journal` before finishing. If the process dies
/// mid-search (or `journal` I/O fails — the error is propagated), the
/// journal on disk holds every completed chunk and [`resume_search`]
/// can finish the remaining work.
///
/// Results are bit-identical to `parallel_search` with the same
/// `cfg.threads`: the same partition map, the same kernels, the same
/// deterministic merge.
pub fn checkpointed_search<S, F>(
    query: &[u8],
    db: &Database,
    cfg: &PoolConfig,
    make_aligner: F,
    journal: &mut JournalWriter<S>,
) -> io::Result<SearchOutput>
where
    S: JournalSink,
    F: Fn() -> AlignerBuilder + Sync,
{
    checkpointed_search_observed(query, db, cfg, make_aligner, journal, &mut |_, _| {})
}

/// [`checkpointed_search`] with a chunk observer: `on_chunk(chunk,
/// hits)` fires after each chunk is durably appended to the journal,
/// in ascending contiguous chunk order (the join is in chunk order).
/// This is the alignment point for streamed delivery — a chunk is
/// only ever announced once it is resumable from disk.
pub fn checkpointed_search_observed<S, F>(
    query: &[u8],
    db: &Database,
    cfg: &PoolConfig,
    make_aligner: F,
    journal: &mut JournalWriter<S>,
    on_chunk: &mut dyn FnMut(usize, &[Hit]),
) -> io::Result<SearchOutput>
where
    S: JournalSink,
    F: Fn() -> AlignerBuilder + Sync,
{
    let threads = cfg.threads.max(1);
    let meta = JournalMeta::for_search(query, db, threads);
    journal.write_meta(&meta)?;
    let ranges = db.partition(threads);
    let plan = &cfg.fault_plan;
    let shadow = crate::shadow::ShadowVerifier::new(cfg.shadow);

    let mut outputs: Vec<(Vec<Hit>, KernelStats, FaultStats)> = Vec::new();
    std::thread::scope(|scope| -> io::Result<()> {
        let mut handles = Vec::with_capacity(ranges.len());
        for (chunk, range) in ranges.iter().enumerate() {
            let range = range.clone();
            let make_aligner = &make_aligner;
            let shadow = &shadow;
            let cancel = cfg.cancel.clone();
            handles.push(scope.spawn(move || {
                // Each chunk runs under a child of the search token, so
                // cancellation surfaces as an error *before* the chunk
                // is appended — the journal stays a clean prefix of
                // fully-computed chunks and resume is bit-identical.
                let child = cancel.as_ref().map(|parent| parent.child());
                let g = child.as_ref().map(|token| crate::pool::PartitionGovern {
                    token,
                    retry: cancel.as_ref(),
                });
                search_partition(
                    query,
                    db,
                    range,
                    chunk,
                    plan,
                    shadow,
                    make_aligner,
                    g.as_ref(),
                )
            }));
        }
        // Join in chunk order and journal each result as it lands:
        // the journal is a clean prefix in chunk order, which keeps
        // crash points deterministic for the harness.
        for (chunk, handle) in handles.into_iter().enumerate() {
            let out = match handle.join() {
                Ok(Ok(out)) => out,
                Ok(Err(e)) => {
                    return Err(io::Error::other(format!(
                        "search aborted before journal append: {e}"
                    )))
                }
                Err(payload) => std::panic::resume_unwind(payload),
            };
            plan.before_journal_append()?;
            journal.append_chunk(&JournalEntry {
                chunk,
                range: ranges[chunk].clone(),
                hits: out.0.clone(),
            })?;
            on_chunk(chunk, &out.0);
            outputs.push(out);
        }
        Ok(())
    })?;

    Ok(merge(outputs))
}

fn merge(outputs: Vec<(Vec<Hit>, KernelStats, FaultStats)>) -> SearchOutput {
    let mut hits = Vec::new();
    let mut stats = KernelStats::default();
    let mut faults = FaultStats::default();
    for (mut h, s, f) in outputs {
        hits.append(&mut h);
        stats.merge(&s);
        faults.merge(&f);
    }
    hits.sort_by(|a, b| b.score.cmp(&a.score).then(a.db_index.cmp(&b.db_index)));
    SearchOutput {
        hits,
        stats,
        faults,
    }
}

/// Validate a journal's identity and every entry against the search
/// it claims to checkpoint; returns the deterministic partition map
/// replay will use.
fn validate_journal(
    journal: &Journal,
    query: &[u8],
    db: &Database,
) -> Result<Vec<Range<usize>>, JournalError> {
    let meta = &journal.meta;
    if meta.db_len != db.len() || meta.db_residues != db.total_residues() {
        return Err(JournalError::Mismatch("database changed"));
    }
    if meta.query_crc != crc32(query) {
        return Err(JournalError::Mismatch("query changed"));
    }
    let ranges = db.partition(meta.parts.max(1));
    for e in &journal.entries {
        let expected = ranges
            .get(e.chunk)
            .ok_or(JournalError::Mismatch("chunk index out of range"))?;
        if &e.range != expected {
            return Err(JournalError::Mismatch("chunk range drifted"));
        }
        if e.hits.len() != e.range.len() {
            return Err(JournalError::Corrupt("chunk hit count"));
        }
        if e.hits.iter().any(|h| !e.range.contains(&h.db_index)) {
            return Err(JournalError::Corrupt("chunk hit index"));
        }
    }
    Ok(ranges)
}

/// Finish a search from a verified [`Journal`]: replay the journaled
/// chunks (after validating each against the deterministic partition
/// map) and recompute only the missing ones. The returned hits are
/// bit-identical to an uninterrupted [`crate::parallel_search`] /
/// [`checkpointed_search`] run; `SearchOutput::stats` covers only the
/// recomputed chunks (replayed ones cost no cell updates — that is
/// the point).
pub fn resume_search<F>(
    journal: &Journal,
    query: &[u8],
    db: &Database,
    cfg: &PoolConfig,
    make_aligner: F,
) -> Result<(SearchOutput, ResumeStats), JournalError>
where
    F: Fn() -> AlignerBuilder + Sync,
{
    let ranges = validate_journal(journal, query, db)?;

    let replayed: Vec<usize> = journal.entries.iter().map(|e| e.chunk).collect();
    let missing: Vec<usize> = (0..ranges.len())
        .filter(|c| !replayed.contains(c))
        .collect();
    swsimd_obs::event!(
        "journal_replay",
        "replayed_chunks" => replayed.len(),
        "recomputed_chunks" => missing.len(),
        "truncated" => journal.truncated
    );

    let plan = &cfg.fault_plan;
    let shadow = crate::shadow::ShadowVerifier::new(cfg.shadow);
    let mut outputs: Vec<(Vec<Hit>, KernelStats, FaultStats)> = Vec::new();
    let mut resume = ResumeStats {
        replayed_chunks: replayed.len(),
        recomputed_chunks: missing.len(),
        replayed_hits: 0,
    };
    for e in &journal.entries {
        resume.replayed_hits += e.hits.len();
        outputs.push((
            e.hits.clone(),
            KernelStats::default(),
            FaultStats::default(),
        ));
    }
    std::thread::scope(|scope| -> Result<(), JournalError> {
        let mut handles = Vec::with_capacity(missing.len());
        for &chunk in &missing {
            let range = ranges[chunk].clone();
            let make_aligner = &make_aligner;
            let shadow = &shadow;
            let cancel = cfg.cancel.clone();
            handles.push(scope.spawn(move || {
                let child = cancel.as_ref().map(|parent| parent.child());
                let g = child.as_ref().map(|token| crate::pool::PartitionGovern {
                    token,
                    retry: cancel.as_ref(),
                });
                search_partition(
                    query,
                    db,
                    range,
                    chunk,
                    plan,
                    shadow,
                    make_aligner,
                    g.as_ref(),
                )
            }));
        }
        for handle in handles {
            match handle.join() {
                Ok(Ok(out)) => outputs.push(out),
                Ok(Err(e)) => {
                    return Err(JournalError::Io(io::Error::other(format!(
                        "resume aborted mid-recompute: {e}"
                    ))))
                }
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }
        Ok(())
    })?;

    Ok((merge(outputs), resume))
}

/// Convenience: read `path`, verify it, and resume. A journal that is
/// unreadable or mismatched is an error — callers decide whether to
/// fall back to a fresh [`checkpointed_search`].
pub fn resume_search_file<F>(
    path: &Path,
    query: &[u8],
    db: &Database,
    cfg: &PoolConfig,
    make_aligner: F,
) -> Result<(SearchOutput, ResumeStats), JournalError>
where
    F: Fn() -> AlignerBuilder + Sync,
{
    let journal = read_journal_file(path)?;
    resume_search(&journal, query, db, cfg, make_aligner)
}

/// Like [`resume_search`], but *durable*: recomputed chunks are
/// checkpointed back into the journal at `path` as they complete, so
/// a crash during the resume itself still strictly grows the
/// checkpoint. Repeated crash/resume cycles therefore make monotone
/// progress — each resume replays everything every earlier run
/// finished, instead of recomputing the same tail forever.
///
/// The on-disk journal is first rewritten through an atomic rename
/// (header + meta + the validated replayed prefix land in a sibling
/// `.tmp` file which then replaces `path`), which also sheds any torn
/// tail record — appending after a torn frame would leave the new
/// records unreachable to replay. A crash before the rename leaves
/// the old journal intact; after it, the journal only ever grows.
pub fn resume_checkpointed_search<F>(
    journal: &Journal,
    query: &[u8],
    db: &Database,
    cfg: &PoolConfig,
    make_aligner: F,
    path: &Path,
) -> Result<(SearchOutput, ResumeStats), JournalError>
where
    F: Fn() -> AlignerBuilder + Sync,
{
    resume_checkpointed_search_observed(journal, query, db, cfg, make_aligner, path, &mut |_, _| {})
}

/// [`resume_checkpointed_search`] with a chunk observer, the resume
/// half of streamed delivery. `on_chunk(chunk, hits)` fires for every
/// replayed entry (immediately after the atomic rewrite — those
/// chunks are durable by definition) and then after each recomputed
/// chunk's append. Because a valid journal is a contiguous ascending
/// prefix and recomputation joins in ascending order, the observer
/// always sees ascending contiguous chunks, so `chunk + 1` is a
/// monotone stream cursor.
pub fn resume_checkpointed_search_observed<F>(
    journal: &Journal,
    query: &[u8],
    db: &Database,
    cfg: &PoolConfig,
    make_aligner: F,
    path: &Path,
    on_chunk: &mut dyn FnMut(usize, &[Hit]),
) -> Result<(SearchOutput, ResumeStats), JournalError>
where
    F: Fn() -> AlignerBuilder + Sync,
{
    let ranges = validate_journal(journal, query, db)?;

    let mut tmp = path.as_os_str().to_owned();
    tmp.push(".tmp");
    let tmp = std::path::PathBuf::from(tmp);
    let mut writer = JournalWriter::create(&tmp)?;
    writer.write_meta(&journal.meta)?;
    for e in &journal.entries {
        writer.append_chunk(e)?;
    }
    std::fs::rename(&tmp, path)?;

    let replayed: Vec<usize> = journal.entries.iter().map(|e| e.chunk).collect();
    let missing: Vec<usize> = (0..ranges.len())
        .filter(|c| !replayed.contains(c))
        .collect();
    swsimd_obs::event!(
        "journal_replay",
        "replayed_chunks" => replayed.len(),
        "recomputed_chunks" => missing.len(),
        "truncated" => journal.truncated,
        "durable" => true
    );

    let plan = &cfg.fault_plan;
    let shadow = crate::shadow::ShadowVerifier::new(cfg.shadow);
    let mut outputs: Vec<(Vec<Hit>, KernelStats, FaultStats)> = Vec::new();
    let mut resume = ResumeStats {
        replayed_chunks: replayed.len(),
        recomputed_chunks: missing.len(),
        replayed_hits: 0,
    };
    for e in &journal.entries {
        resume.replayed_hits += e.hits.len();
        on_chunk(e.chunk, &e.hits);
        outputs.push((
            e.hits.clone(),
            KernelStats::default(),
            FaultStats::default(),
        ));
    }
    std::thread::scope(|scope| -> Result<(), JournalError> {
        let mut handles = Vec::with_capacity(missing.len());
        for &chunk in &missing {
            let range = ranges[chunk].clone();
            let make_aligner = &make_aligner;
            let shadow = &shadow;
            let cancel = cfg.cancel.clone();
            handles.push(scope.spawn(move || {
                let child = cancel.as_ref().map(|parent| parent.child());
                let g = child.as_ref().map(|token| crate::pool::PartitionGovern {
                    token,
                    retry: cancel.as_ref(),
                });
                search_partition(
                    query,
                    db,
                    range,
                    chunk,
                    plan,
                    shadow,
                    make_aligner,
                    g.as_ref(),
                )
            }));
        }
        // Join in missing-chunk order and checkpoint each result
        // before accepting it, mirroring `checkpointed_search`: crash
        // points stay deterministic and the journal stays a clean
        // prefix of fully-computed chunks.
        for (i, handle) in handles.into_iter().enumerate() {
            let out = match handle.join() {
                Ok(Ok(out)) => out,
                Ok(Err(e)) => {
                    return Err(JournalError::Io(io::Error::other(format!(
                        "resume aborted mid-recompute: {e}"
                    ))))
                }
                Err(payload) => std::panic::resume_unwind(payload),
            };
            let chunk = missing[i];
            plan.before_journal_append()?;
            writer.append_chunk(&JournalEntry {
                chunk,
                range: ranges[chunk].clone(),
                hits: out.0.clone(),
            })?;
            on_chunk(chunk, &out.0);
            outputs.push(out);
        }
        Ok(())
    })?;

    Ok((merge(outputs), resume))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::FaultPlan;
    use crate::pool::parallel_search;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use swsimd_core::Aligner;
    use swsimd_matrices::{blosum62, Alphabet, PROTEIN_LETTERS};
    use swsimd_seq::SeqRecord;

    fn small_db(n: usize, seed: u64) -> Database {
        let mut rng = StdRng::seed_from_u64(seed);
        let records: Vec<SeqRecord> = (0..n)
            .map(|i| {
                let l = rng.gen_range(5..80);
                let s: Vec<u8> = (0..l)
                    .map(|_| PROTEIN_LETTERS[rng.gen_range(0..20)])
                    .collect();
                SeqRecord::new(format!("s{i}"), s)
            })
            .collect();
        Database::from_records(records, &Alphabet::protein())
    }

    fn builder() -> AlignerBuilder {
        Aligner::builder().matrix(blosum62())
    }

    fn cfg(threads: usize) -> PoolConfig {
        PoolConfig {
            threads,
            ..PoolConfig::default()
        }
    }

    #[test]
    fn checkpointed_matches_parallel() {
        let db = small_db(50, 21);
        let q = Alphabet::protein().encode(b"MKVLAADTWGHKDDTWGHK");
        let oracle = parallel_search(&q, &db, &cfg(3), builder);
        let mut jw = JournalWriter::new(Vec::new()).unwrap();
        let out = checkpointed_search(&q, &db, &cfg(3), builder, &mut jw).unwrap();
        assert_eq!(out.hits, oracle.hits);
        assert_eq!(jw.chunks() as usize, db.partition(3).len());
    }

    #[test]
    fn full_journal_resumes_without_recompute() {
        let db = small_db(40, 22);
        let q = Alphabet::protein().encode(b"MKVLAADTW");
        let mut jw = JournalWriter::new(Vec::new()).unwrap();
        let oracle = checkpointed_search(&q, &db, &cfg(4), builder, &mut jw).unwrap();
        let journal = read_journal(&jw.into_inner()).unwrap();
        assert!(!journal.truncated);
        let (resumed, stats) = resume_search(&journal, &q, &db, &cfg(4), builder).unwrap();
        assert_eq!(resumed.hits, oracle.hits);
        assert_eq!(stats.recomputed_chunks, 0);
        assert_eq!(stats.replayed_hits, db.len());
        assert_eq!(resumed.stats.cells, 0, "no cells recomputed");
    }

    #[test]
    fn crash_mid_search_resumes_bit_identical() {
        let db = small_db(60, 23);
        let q = Alphabet::protein().encode(b"MKVLAADTWGHKDDTWGHK");
        let oracle = parallel_search(&q, &db, &cfg(4), builder);
        let n_chunks = db.partition(4).len();
        for survive in 0..n_chunks {
            let mut jw = JournalWriter::new(Vec::new()).unwrap();
            let crash_cfg = PoolConfig {
                threads: 4,
                fault_plan: FaultPlan::new().crash_after_chunks(survive as u32),
                ..PoolConfig::default()
            };
            let err = checkpointed_search(&q, &db, &crash_cfg, builder, &mut jw);
            assert!(err.is_err(), "crash at chunk {survive} should surface");
            let journal = read_journal(&jw.into_inner()).unwrap();
            assert_eq!(journal.entries.len(), survive);
            let (resumed, stats) = resume_search(&journal, &q, &db, &cfg(4), builder).unwrap();
            assert_eq!(resumed.hits, oracle.hits, "crash after {survive} chunks");
            assert_eq!(stats.replayed_chunks, survive);
            assert_eq!(stats.recomputed_chunks, n_chunks - survive);
        }
    }

    /// Crash-loop coverage: kill the search at two *different*
    /// checkpoint boundaries back-to-back — once during the initial
    /// checkpointed run, once during the first resume — and prove the
    /// second resume is still bit-identical to an uninterrupted run.
    /// The durable resume must grow the journal between crashes
    /// (monotone progress), not replay the same prefix forever.
    #[test]
    fn back_to_back_crashes_resume_bit_identical() {
        let db = small_db(60, 31);
        let q = Alphabet::protein().encode(b"MKVLAADTWGHKDDTWGHK");
        let oracle = parallel_search(&q, &db, &cfg(4), builder);
        let n_chunks = db.partition(4).len();
        assert!(n_chunks >= 3, "need at least three checkpoint boundaries");

        let dir = std::env::temp_dir().join(format!("swsimd-double-crash-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("crashloop.swjl");

        // Crash #1: initial run dies after checkpointing one chunk.
        let mut jw = JournalWriter::create(&path).unwrap();
        let crash1 = PoolConfig {
            threads: 4,
            fault_plan: FaultPlan::new().crash_after_chunks(1),
            ..PoolConfig::default()
        };
        assert!(checkpointed_search(&q, &db, &crash1, builder, &mut jw).is_err());
        drop(jw);
        assert_eq!(read_journal_file(&path).unwrap().entries.len(), 1);

        // Crash #2: the resume itself dies one checkpoint later — a
        // different boundary than the first crash.
        let journal = read_journal_file(&path).unwrap();
        let crash2 = PoolConfig {
            threads: 4,
            fault_plan: FaultPlan::new().crash_after_chunks(1),
            ..PoolConfig::default()
        };
        let died = resume_checkpointed_search(&journal, &q, &db, &crash2, builder, &path);
        assert!(died.is_err(), "second crash must surface");
        let grown = read_journal_file(&path).unwrap();
        assert_eq!(
            grown.entries.len(),
            2,
            "interrupted resume must have checkpointed its progress"
        );

        // Second resume: finishes clean and matches the oracle bit
        // for bit, replaying the work both crashed runs banked.
        let (out, stats) =
            resume_checkpointed_search(&grown, &q, &db, &cfg(4), builder, &path).unwrap();
        assert_eq!(out.hits, oracle.hits, "second resume must be bit-identical");
        assert_eq!(stats.replayed_chunks, 2);
        assert_eq!(stats.recomputed_chunks, n_chunks - 2);
        let finished = read_journal_file(&path).unwrap();
        assert_eq!(
            finished.entries.len(),
            n_chunks,
            "journal holds every chunk"
        );
        std::fs::remove_file(&path).ok();
    }

    /// The durable resume's rename step sheds a torn tail record, so
    /// fresh checkpoints are never appended into unreachable space.
    #[test]
    fn durable_resume_sheds_torn_tail() {
        let db = small_db(40, 32);
        let q = Alphabet::protein().encode(b"MKVLAADTW");
        let oracle = parallel_search(&q, &db, &cfg(3), builder);
        let mut jw = JournalWriter::new(Vec::new()).unwrap();
        checkpointed_search(&q, &db, &cfg(3), builder, &mut jw).unwrap();
        let full = jw.into_inner();
        // Tear mid-way through the final record.
        let torn = &full[..full.len() - 7];
        let journal = read_journal(torn).unwrap();
        assert!(journal.truncated);

        let dir = std::env::temp_dir().join(format!("swsimd-torn-resume-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("torn.swjl");
        std::fs::write(&path, torn).unwrap();
        let (out, _) =
            resume_checkpointed_search(&journal, &q, &db, &cfg(3), builder, &path).unwrap();
        assert_eq!(out.hits, oracle.hits);
        let reread = read_journal_file(&path).unwrap();
        assert!(!reread.truncated, "rewritten journal must be clean");
        assert_eq!(reread.entries.len(), db.partition(3).len());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn torn_tail_is_recomputed_not_trusted() {
        let db = small_db(30, 24);
        let q = Alphabet::protein().encode(b"MKVLAADTW");
        let mut jw = JournalWriter::new(Vec::new()).unwrap();
        let oracle = checkpointed_search(&q, &db, &cfg(3), builder, &mut jw).unwrap();
        let full = jw.into_inner();
        // Tear the final record at every possible byte boundary.
        let intact = read_journal(&full).unwrap();
        let last_entry_bytes = 50; // at least the tail frame header
        for cut in full.len() - last_entry_bytes..full.len() {
            let journal = match read_journal(&full[..cut]) {
                Ok(j) => j,
                Err(_) => continue, // cut reached into the meta record
            };
            assert!(journal.truncated || journal.entries.len() <= intact.entries.len());
            let (resumed, _) = resume_search(&journal, &q, &db, &cfg(3), builder).unwrap();
            assert_eq!(resumed.hits, oracle.hits, "cut at {cut}");
        }
    }

    #[test]
    fn bit_flips_never_accepted_silently() {
        let db = small_db(25, 25);
        let q = Alphabet::protein().encode(b"MKVLAADTW");
        let mut jw = JournalWriter::new(Vec::new()).unwrap();
        let oracle = checkpointed_search(&q, &db, &cfg(2), builder, &mut jw).unwrap();
        let full = jw.into_inner();
        for byte in 0..full.len() {
            let mut flipped = full.clone();
            flipped[byte] ^= 0x04;
            // Either the journal is rejected outright, or the flip is
            // confined to a discarded tail and resume still produces
            // the oracle answer. Silent wrong data is the only failure.
            if let Ok(journal) = read_journal(&flipped) {
                if let Ok((resumed, _)) = resume_search(&journal, &q, &db, &cfg(2), builder) {
                    assert_eq!(resumed.hits, oracle.hits, "flip at byte {byte}");
                }
            }
        }
    }

    #[test]
    fn mismatched_journal_refused() {
        let db = small_db(20, 26);
        let other_db = small_db(20, 27);
        let q = Alphabet::protein().encode(b"MKVLAADTW");
        let q2 = Alphabet::protein().encode(b"WWWWWW");
        let mut jw = JournalWriter::new(Vec::new()).unwrap();
        checkpointed_search(&q, &db, &cfg(2), builder, &mut jw).unwrap();
        let journal = read_journal(&jw.into_inner()).unwrap();
        assert!(matches!(
            resume_search(&journal, &q2, &db, &cfg(2), builder).map(|_| ()),
            Err(JournalError::Mismatch("query changed"))
        ));
        assert!(matches!(
            resume_search(&journal, &q, &other_db, &cfg(2), builder).map(|_| ()),
            Err(JournalError::Mismatch(_))
        ));
    }

    #[test]
    fn hostile_journals_are_typed_errors() {
        assert!(matches!(
            read_journal(b""),
            Err(JournalError::Corrupt("header"))
        ));
        assert!(matches!(
            read_journal(b"NOPEnope"),
            Err(JournalError::BadMagic)
        ));
        let mut v = Vec::new();
        v.extend_from_slice(MAGIC);
        v.extend_from_slice(&9u32.to_le_bytes());
        assert!(matches!(read_journal(&v), Err(JournalError::BadVersion(9))));
        // Valid header, no meta record.
        let mut v = Vec::new();
        v.extend_from_slice(MAGIC);
        v.extend_from_slice(&JOURNAL_VERSION.to_le_bytes());
        assert!(matches!(
            read_journal(&v),
            Err(JournalError::Corrupt("meta record"))
        ));
        // Frame claiming u32::MAX payload length.
        v.extend_from_slice(&u32::MAX.to_le_bytes());
        v.extend_from_slice(&[0; 16]);
        assert!(matches!(
            read_journal(&v),
            Err(JournalError::Corrupt("meta record"))
        ));
    }

    #[test]
    fn journal_file_roundtrip() {
        let db = small_db(15, 28);
        let q = Alphabet::protein().encode(b"MKVLAADTW");
        let dir = std::env::temp_dir().join("swsimd_journal_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("roundtrip.swjl");
        let mut jw = JournalWriter::create(&path).unwrap();
        let oracle = checkpointed_search(&q, &db, &cfg(2), builder, &mut jw).unwrap();
        drop(jw);
        let (resumed, stats) = resume_search_file(&path, &q, &db, &cfg(2), builder).unwrap();
        assert_eq!(resumed.hits, oracle.hits);
        assert_eq!(stats.recomputed_chunks, 0);
        std::fs::remove_file(&path).ok();
    }
}
