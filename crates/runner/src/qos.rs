//! Multi-tenant quality of service for the batch server and the net
//! gateway: weighted fair-share scheduling (deficit round-robin over
//! bounded per-tenant lanes), token-bucket rate/cost admission, and a
//! hysteretic brownout controller that cheapens work stepwise under
//! overload instead of refusing it outright (see DESIGN.md §15).
//!
//! The cost currency everywhere is the governor's cost model: one unit
//! is one DP cell, so a query charges `|q| × Σ|db|` units against its
//! tenant's bucket and its lane's deficit counter. Fidelity reductions
//! taken under brownout are **typed** ([`Fidelity`]) — a result is
//! either exact-and-full or exact-with-declared-reductions, never
//! silently degraded.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, AtomicU8, AtomicUsize, Ordering::Relaxed};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use swsimd_obs::{Counter, Gauge};

/// Longest tenant name accepted anywhere (admission, wire decode).
/// Hostile frames claiming longer names are rejected before any
/// allocation is sized from the claim.
pub const MAX_TENANT_LEN: usize = 64;

/// The metric label under which a tenant's series are filed: the empty
/// (anonymous) tenant shares the `"default"` lane and label.
pub fn tenant_label(name: &str) -> &str {
    if name.is_empty() {
        "default"
    } else {
        name
    }
}

/// Clamp an in-process tenant name to [`MAX_TENANT_LEN`] bytes (on a
/// char boundary), so a misbehaving local caller cannot mint unbounded
/// metric labels. Wire decode rejects oversized names outright.
pub fn clamp_tenant(name: &str) -> &str {
    if name.len() <= MAX_TENANT_LEN {
        return name;
    }
    let mut end = MAX_TENANT_LEN;
    while !name.is_char_boundary(end) {
        end -= 1;
    }
    &name[..end]
}

/// Typed result fidelity: which work the brownout controller suspended
/// while computing an (always exact-score) answer. Levels are ordered —
/// merging replies takes the worst — and every reduction is declared on
/// the result, never applied silently.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Fidelity {
    /// Nothing suspended: full verification and detail.
    #[default]
    Full,
    /// Brownout level 1: shadow verification sampling suspended.
    NoShadow,
    /// Brownout level 2: score-only service — traceback work and
    /// per-query flight-recorder stage detail dropped.
    ScoreOnly,
    /// Brownout level 3: deadline headroom shrunk — jobs predicted to
    /// come near their deadline are shed pre-compute instead of risking
    /// an overrun.
    TightDeadline,
}

impl Fidelity {
    /// Stable wire/JSON tag.
    pub fn as_u8(self) -> u8 {
        match self {
            Fidelity::Full => 0,
            Fidelity::NoShadow => 1,
            Fidelity::ScoreOnly => 2,
            Fidelity::TightDeadline => 3,
        }
    }

    /// Total decode: unknown (future) levels map to the strongest known
    /// degradation marker so a newer peer's reduction is never silently
    /// read back as [`Fidelity::Full`].
    pub fn from_u8(v: u8) -> Self {
        match v {
            0 => Fidelity::Full,
            1 => Fidelity::NoShadow,
            2 => Fidelity::ScoreOnly,
            _ => Fidelity::TightDeadline,
        }
    }

    /// Human/metric label.
    pub fn as_str(self) -> &'static str {
        match self {
            Fidelity::Full => "full",
            Fidelity::NoShadow => "no_shadow",
            Fidelity::ScoreOnly => "score_only",
            Fidelity::TightDeadline => "tight_deadline",
        }
    }
}

impl std::fmt::Display for Fidelity {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Token-bucket refill policy, in cost units (DP cells).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RateConfig {
    /// Sustained refill rate, cost units per second.
    pub rate: u64,
    /// Bucket capacity: the largest burst admitted at once.
    pub burst: u64,
}

impl RateConfig {
    /// A bucket sustaining `rate` units/second with a one-second burst.
    pub fn per_second(rate: u64) -> Self {
        Self { rate, burst: rate }
    }
}

/// A token bucket in cost units. Refill is computed lazily from the
/// elapsed time at each take, so an idle bucket costs nothing.
#[derive(Debug)]
pub struct TokenBucket {
    cfg: RateConfig,
    tokens: u64,
    last: Instant,
}

impl TokenBucket {
    /// A bucket born full (the initial burst is admitted immediately).
    pub fn new(cfg: RateConfig) -> Self {
        Self {
            cfg,
            tokens: cfg.burst,
            last: Instant::now(),
        }
    }

    fn refill(&mut self, now: Instant) {
        let elapsed = now.saturating_duration_since(self.last);
        if elapsed.is_zero() {
            return;
        }
        let refill = (elapsed.as_nanos() * u128::from(self.cfg.rate) / 1_000_000_000) as u64;
        if refill > 0 {
            self.tokens = self.tokens.saturating_add(refill).min(self.cfg.burst);
            self.last = now;
        }
    }

    /// Take `cost` units, or compute how long until they will exist.
    /// `Err(retry_after_ms)` is the backoff hint propagated to clients
    /// ([`crate::ServeError::RateLimited`]); a cost that can *never*
    /// fit (above `burst`) still yields the time to fill the bucket,
    /// so hammering retries stay bounded rather than instant.
    pub fn try_take(&mut self, cost: u64, now: Instant) -> Result<(), u64> {
        self.refill(now);
        if cost <= self.tokens {
            self.tokens -= cost;
            return Ok(());
        }
        let deficit = cost.min(self.cfg.burst).saturating_sub(self.tokens);
        let ms = if self.cfg.rate == 0 {
            // No refill configured: signal a long, bounded backoff.
            60_000
        } else {
            (u128::from(deficit) * 1000).div_ceil(u128::from(self.cfg.rate)) as u64
        };
        Err(ms.max(1))
    }
}

/// Per-tenant policy knobs.
#[derive(Clone, Debug)]
pub struct TenantPolicy {
    /// Fair-share weight: a lane with weight 3 drains three cost units
    /// for every one a weight-1 lane drains. Minimum effective 1.
    pub weight: u32,
    /// Token-bucket admission; `None` leaves the tenant unmetered.
    pub rate: Option<RateConfig>,
}

impl Default for TenantPolicy {
    fn default() -> Self {
        Self {
            weight: 1,
            rate: None,
        }
    }
}

/// Server-side QoS configuration ([`crate::ServerConfig::qos`]).
#[derive(Clone, Debug)]
pub struct QosConfig {
    /// Named tenant policies. Tenants not listed here get
    /// `default_weight` and no rate limit.
    pub tenants: HashMap<String, TenantPolicy>,
    /// Weight for tenants without an explicit policy.
    pub default_weight: u32,
    /// Bound on jobs queued per tenant lane; `0` inherits the server's
    /// global `queue_depth`. A full lane sheds with
    /// [`crate::ServeError::QueueFull`] carrying a backoff hint.
    pub lane_depth: usize,
    /// Deficit round-robin quantum in cost units added per visit per
    /// weight unit. Larger quanta approach per-visit FIFO bursts;
    /// smaller quanta interleave more finely at slightly more
    /// scheduling work.
    pub quantum: u64,
}

impl Default for QosConfig {
    fn default() -> Self {
        Self {
            tenants: HashMap::new(),
            default_weight: 1,
            lane_depth: 0,
            quantum: 1 << 20,
        }
    }
}

/// One tenant's shared admission state: lane occupancy (bounded by
/// `lane_depth`), its token bucket, and its labelled metric series.
pub(crate) struct TenantShared {
    /// Lane key (the raw tenant name; empty = anonymous/default).
    pub name: String,
    pub weight: u32,
    /// Jobs admitted and not yet picked into a batch.
    pub queued: AtomicUsize,
    pub bucket: Option<Mutex<TokenBucket>>,
    /// `swsimd_tenant_queue_depth{tenant}`.
    pub queue_depth: Arc<Gauge>,
    /// `swsimd_tenant_shed_total{tenant}`.
    pub shed: Arc<Counter>,
    /// `swsimd_rate_limited_total{tenant}`.
    pub rate_limited: Arc<Counter>,
}

/// Admission-side QoS state shared between every [`crate::ServerClient`]
/// clone and the worker: tenant registry, lane bound, and the worker's
/// published queue-delay estimate (the source of `retry_after_ms`
/// hints on shed).
pub(crate) struct QosShared {
    cfg: QosConfig,
    instance: String,
    lane_depth: usize,
    tenants: Mutex<HashMap<String, Arc<TenantShared>>>,
    /// Queue-delay EWMA in ns, published by the worker after each job.
    pub queue_delay_ewma_ns: AtomicU64,
}

impl QosShared {
    pub fn new(cfg: QosConfig, instance: &str, queue_depth: usize) -> Arc<Self> {
        let lane_depth = if cfg.lane_depth == 0 {
            queue_depth.max(1)
        } else {
            cfg.lane_depth
        };
        Arc::new(Self {
            cfg,
            instance: instance.to_string(),
            lane_depth,
            tenants: Mutex::new(HashMap::new()),
            queue_delay_ewma_ns: AtomicU64::new(0),
        })
    }

    pub fn lane_depth(&self) -> usize {
        self.lane_depth
    }

    /// Resolve (creating on first sight) the shared state for `name`.
    pub fn tenant(&self, name: &str) -> Arc<TenantShared> {
        let name = clamp_tenant(name);
        let mut map = self.tenants.lock().expect("tenant registry lock");
        if let Some(t) = map.get(name) {
            return t.clone();
        }
        let policy = self.cfg.tenants.get(name).cloned().unwrap_or(TenantPolicy {
            weight: self.cfg.default_weight,
            rate: None,
        });
        let label = tenant_label(name);
        let r = swsimd_obs::global();
        let labels: &[(&str, &str)] = &[("instance", &self.instance), ("tenant", label)];
        let t = Arc::new(TenantShared {
            name: name.to_string(),
            weight: policy.weight.max(1),
            queued: AtomicUsize::new(0),
            bucket: policy.rate.map(|cfg| Mutex::new(TokenBucket::new(cfg))),
            queue_depth: r.gauge(
                "swsimd_tenant_queue_depth",
                "Jobs waiting in this tenant's fair-share lane.",
                labels,
            ),
            shed: r.counter(
                "swsimd_tenant_shed_total",
                "Queries shed because the tenant's lane was full.",
                labels,
            ),
            rate_limited: r.counter(
                "swsimd_rate_limited_total",
                "Queries refused by the tenant's token bucket.",
                labels,
            ),
        });
        map.insert(name.to_string(), t.clone());
        t
    }

    /// Backoff hint for shed work: the worker's queue-delay EWMA,
    /// rounded up to a millisecond — "come back once the queue you
    /// could not join has likely drained".
    pub fn retry_hint_ms(&self) -> u64 {
        let ns = self.queue_delay_ewma_ns.load(Relaxed);
        (u128::from(ns).div_ceil(1_000_000) as u64).max(1)
    }

    /// Fold one observed queue delay into the published EWMA.
    pub fn observe_queue_delay(&self, ns: u64) {
        let prev = self.queue_delay_ewma_ns.load(Relaxed);
        let next = if prev == 0 {
            ns
        } else {
            (prev / 5) * 4 + ns / 5
        };
        self.queue_delay_ewma_ns.store(next, Relaxed);
    }
}

/// Brownout watermarks ([`crate::ServerConfig::brownout`]). The
/// controller steps the degradation level up one notch when the
/// queue-delay EWMA sits above `high`, back down when it falls below
/// `low`, and never transitions twice within `dwell` (hysteresis), so
/// a noisy delay signal cannot flap the ladder.
#[derive(Clone, Copy, Debug)]
pub struct BrownoutConfig {
    /// Queue-delay EWMA above this steps the level up.
    pub high: Duration,
    /// Queue-delay EWMA below this steps the level down.
    pub low: Duration,
    /// Minimum time between transitions in either direction.
    pub dwell: Duration,
    /// Ceiling on the ladder (1..=3; see [`Fidelity`]).
    pub max_level: u8,
}

impl Default for BrownoutConfig {
    fn default() -> Self {
        Self {
            high: Duration::from_millis(50),
            low: Duration::from_millis(10),
            dwell: Duration::from_millis(250),
            max_level: 3,
        }
    }
}

/// The brownout state machine. Lives on the worker thread; the current
/// level is mirrored into a shared cell (for [`crate::BatchServer`]
/// accessors) and the `swsimd_brownout_level` gauge on transitions.
pub struct Brownout {
    cfg: Option<BrownoutConfig>,
    ewma_ns: f64,
    level: u8,
    last_transition: Option<Instant>,
    level_cell: Option<Arc<AtomicU8>>,
    gauge: Option<Arc<Gauge>>,
}

impl Brownout {
    /// `None` disables the controller: [`Brownout::observe`] is then a
    /// single branch (the idle-path cost gated by `obs_overhead`).
    pub fn new(cfg: Option<BrownoutConfig>) -> Self {
        Self {
            cfg,
            ewma_ns: 0.0,
            level: 0,
            last_transition: None,
            level_cell: None,
            gauge: None,
        }
    }

    /// Mirror level changes into `cell` and `gauge`.
    pub(crate) fn publish(mut self, cell: Arc<AtomicU8>, gauge: Arc<Gauge>) -> Self {
        self.level_cell = Some(cell);
        self.gauge = Some(gauge);
        self
    }

    /// Current degradation level (0 = full fidelity).
    pub fn level(&self) -> u8 {
        self.level
    }

    /// Predictive-skip safety factor: at level 3 the deadline headroom
    /// shrinks (jobs predicted to land within 4× of their remaining
    /// budget are shed pre-compute, instead of the usual 2×).
    pub fn skip_factor(&self) -> u32 {
        if self.level >= 3 {
            4
        } else {
            2
        }
    }

    /// Is shadow verification suspended at the current level?
    pub fn shadow_suspended(&self) -> bool {
        self.level >= 1
    }

    /// The typed fidelity marker for results computed at the current
    /// level. `shadow_enabled` keeps level 1 honest: if sampling was
    /// never configured, suspending it reduced nothing.
    pub fn fidelity(&self, shadow_enabled: bool) -> Fidelity {
        match self.level {
            0 => Fidelity::Full,
            1 if shadow_enabled => Fidelity::NoShadow,
            1 => Fidelity::Full,
            2 => Fidelity::ScoreOnly,
            _ => Fidelity::TightDeadline,
        }
    }

    /// Fold one job's queue delay into the EWMA and run the watermark
    /// state machine. Returns the (possibly new) level.
    pub fn observe(&mut self, queue_delay_ns: u64) -> u8 {
        let Some(cfg) = self.cfg else {
            return 0;
        };
        let sample = queue_delay_ns as f64;
        self.ewma_ns = if self.ewma_ns > 0.0 {
            0.8 * self.ewma_ns + 0.2 * sample
        } else {
            sample
        };
        let dwell_ok = self
            .last_transition
            .is_none_or(|t| t.elapsed() >= cfg.dwell);
        if !dwell_ok {
            return self.level;
        }
        let max_level = cfg.max_level.clamp(1, 3);
        if self.ewma_ns > cfg.high.as_nanos() as f64 && self.level < max_level {
            self.transition(self.level + 1, "brownout_raised");
        } else if self.ewma_ns < cfg.low.as_nanos() as f64 && self.level > 0 {
            self.transition(self.level - 1, "brownout_lowered");
        }
        self.level
    }

    fn transition(&mut self, to: u8, event: &'static str) {
        let from = self.level;
        self.level = to;
        self.last_transition = Some(Instant::now());
        if let Some(cell) = &self.level_cell {
            cell.store(to, Relaxed);
        }
        if let Some(gauge) = &self.gauge {
            gauge.set(i64::from(to));
        }
        swsimd_obs::event!(
            event,
            "from" => u64::from(from),
            "to" => u64::from(to),
            "queue_delay_ewma_ms" => (self.ewma_ns / 1e6) as u64
        );
    }
}

/// Deficit round-robin over per-tenant lanes. Generic over the queued
/// item so the server's (private) job type can ride it; the `u64`
/// alongside each item is its cost in DP cells — the currency deficits
/// are charged in.
pub(crate) struct Drr<T> {
    lanes: Vec<Lane<T>>,
    by_name: HashMap<String, usize>,
    cursor: usize,
    /// Has the lane under the cursor received its quantum this visit?
    charged: bool,
    quantum: u64,
    len: usize,
}

struct Lane<T> {
    weight: u32,
    deficit: u64,
    jobs: VecDeque<(u64, T)>,
}

impl<T> Drr<T> {
    pub fn new(quantum: u64) -> Self {
        Self {
            lanes: Vec::new(),
            by_name: HashMap::new(),
            cursor: 0,
            charged: false,
            quantum: quantum.max(1),
            len: 0,
        }
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Get or create the lane for `name`.
    pub fn lane(&mut self, name: &str, weight: u32) -> usize {
        if let Some(&idx) = self.by_name.get(name) {
            return idx;
        }
        let idx = self.lanes.len();
        self.lanes.push(Lane {
            weight: weight.max(1),
            deficit: 0,
            jobs: VecDeque::new(),
        });
        self.by_name.insert(name.to_string(), idx);
        idx
    }

    pub fn push(&mut self, lane: usize, cost: u64, item: T) {
        self.lanes[lane].jobs.push_back((cost, item));
        self.len += 1;
    }

    fn advance(&mut self) {
        self.cursor = (self.cursor + 1) % self.lanes.len().max(1);
        self.charged = false;
    }

    /// Dequeue the next item under DRR: each visit grants the lane
    /// `quantum × weight` deficit; the lane drains jobs while its
    /// deficit covers their cost, then the cursor moves on. Empty
    /// lanes forfeit their deficit (a lane cannot bank credit while
    /// idle).
    pub fn pop(&mut self) -> Option<T> {
        if self.len == 0 {
            return None;
        }
        loop {
            let lane = &mut self.lanes[self.cursor];
            if lane.jobs.is_empty() {
                lane.deficit = 0;
                self.advance();
                continue;
            }
            if !self.charged {
                lane.deficit = lane
                    .deficit
                    .saturating_add(self.quantum.saturating_mul(u64::from(lane.weight)));
                self.charged = true;
            }
            let cost = lane.jobs.front().expect("non-empty lane").0;
            if cost <= lane.deficit {
                lane.deficit -= cost;
                self.len -= 1;
                return lane.jobs.pop_front().map(|(_, item)| item);
            }
            self.advance();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn drr_interleaves_equal_weights_fairly() {
        let mut drr: Drr<&'static str> = Drr::new(100);
        let a = drr.lane("a", 1);
        let b = drr.lane("b", 1);
        for _ in 0..4 {
            drr.push(a, 100, "a");
            drr.push(b, 100, "b");
        }
        let order: Vec<_> = std::iter::from_fn(|| drr.pop()).collect();
        assert_eq!(order, ["a", "b", "a", "b", "a", "b", "a", "b"]);
    }

    #[test]
    fn drr_honors_weights_in_cost_units() {
        let mut drr: Drr<&'static str> = Drr::new(100);
        let a = drr.lane("a", 3);
        let b = drr.lane("b", 1);
        for _ in 0..8 {
            drr.push(a, 100, "a");
            drr.push(b, 100, "b");
        }
        // First 4 dequeues: lane a drains 3 (deficit 300) for lane b's 1.
        let first: Vec<_> = (0..4).map(|_| drr.pop().unwrap()).collect();
        assert_eq!(first.iter().filter(|s| **s == "a").count(), 3);
        assert_eq!(first.iter().filter(|s| **s == "b").count(), 1);
        // The full drain preserves the 3:1 ratio while both lanes hold.
        let mut served_a = 3;
        let mut served_b = 1;
        while let Some(s) = drr.pop() {
            if s == "a" {
                served_a += 1;
            } else {
                served_b += 1;
            }
            if served_a < 8 && served_b < 8 {
                assert!(
                    served_a <= 3 * served_b + 3 && served_b <= served_a,
                    "ratio drifted: {served_a}:{served_b}"
                );
            }
        }
        assert_eq!((served_a, served_b), (8, 8));
    }

    #[test]
    fn drr_idle_lane_banks_no_credit() {
        let mut drr: Drr<&'static str> = Drr::new(100);
        let a = drr.lane("a", 1);
        let b = drr.lane("b", 1);
        for _ in 0..6 {
            drr.push(a, 100, "a");
        }
        // Lane b idles through three rounds…
        for _ in 0..3 {
            assert_eq!(drr.pop(), Some("a"));
        }
        // …then bursts: it must not have banked three quanta.
        for _ in 0..6 {
            drr.push(b, 100, "b");
        }
        let next: Vec<_> = (0..4).map(|_| drr.pop().unwrap()).collect();
        assert_eq!(
            next.iter().filter(|s| **s == "b").count(),
            2,
            "idle lane must not burst ahead: {next:?}"
        );
    }

    #[test]
    fn drr_large_job_waits_for_deficit_but_is_not_starved() {
        let mut drr: Drr<&'static str> = Drr::new(10);
        let a = drr.lane("a", 1);
        let b = drr.lane("b", 1);
        drr.push(a, 100, "big");
        for _ in 0..5 {
            drr.push(b, 10, "small");
        }
        let order: Vec<_> = std::iter::from_fn(|| drr.pop()).collect();
        assert_eq!(order.len(), 6);
        assert!(order.contains(&"big"), "large job eventually served");
    }

    #[test]
    fn token_bucket_admits_burst_then_meters() {
        let t0 = Instant::now();
        let mut b = TokenBucket::new(RateConfig {
            rate: 1000,
            burst: 500,
        });
        assert_eq!(b.try_take(500, t0), Ok(()));
        let err = b.try_take(250, t0).expect_err("bucket drained");
        assert_eq!(err, 250, "250 units at 1000/s is 250ms");
        // After 300ms the 250 units exist again.
        assert_eq!(b.try_take(250, t0 + Duration::from_millis(300)), Ok(()));
    }

    #[test]
    fn token_bucket_never_exceeds_burst() {
        let t0 = Instant::now();
        let mut b = TokenBucket::new(RateConfig {
            rate: 1_000_000,
            burst: 100,
        });
        assert_eq!(b.try_take(100, t0), Ok(()));
        // A long idle refills to burst, not beyond.
        let later = t0 + Duration::from_secs(60);
        assert_eq!(b.try_take(100, later), Ok(()));
        assert!(b.try_take(1, later).is_err());
    }

    #[test]
    fn token_bucket_oversized_cost_yields_bounded_hint() {
        let t0 = Instant::now();
        let mut b = TokenBucket::new(RateConfig {
            rate: 1000,
            burst: 100,
        });
        let hint = b.try_take(u64::MAX, t0).expect_err("can never fit");
        assert!(hint <= 1000, "hint bounded by time-to-full-burst: {hint}");
        let zero = TokenBucket::new(RateConfig { rate: 0, burst: 0 })
            .try_take(1, t0)
            .expect_err("zero-rate bucket");
        assert_eq!(zero, 60_000);
    }

    #[test]
    fn brownout_steps_up_and_recovers_with_hysteresis() {
        let mut b = Brownout::new(Some(BrownoutConfig {
            high: Duration::from_millis(10),
            low: Duration::from_millis(2),
            dwell: Duration::ZERO,
            max_level: 3,
        }));
        assert_eq!(b.level(), 0);
        // Sustained 50ms queue delay climbs the ladder one step per
        // observation (dwell is zero here).
        let mut seen = vec![];
        for _ in 0..5 {
            seen.push(b.observe(50_000_000));
        }
        assert_eq!(seen, [1, 2, 3, 3, 3], "capped at max_level");
        assert!(b.shadow_suspended());
        assert_eq!(b.skip_factor(), 4);
        assert_eq!(b.fidelity(true), Fidelity::TightDeadline);
        // Delay between the watermarks: the level holds (hysteresis).
        assert_eq!(b.observe(5_000_000), 3);
        // Sustained recovery steps back down to zero.
        let mut down = vec![];
        for _ in 0..40 {
            down.push(b.observe(0));
        }
        assert_eq!(*down.last().unwrap(), 0);
        assert_eq!(b.fidelity(true), Fidelity::Full);
        assert_eq!(b.skip_factor(), 2);
    }

    #[test]
    fn brownout_dwell_blocks_rapid_transitions() {
        let mut b = Brownout::new(Some(BrownoutConfig {
            high: Duration::from_millis(1),
            low: Duration::from_micros(1),
            dwell: Duration::from_secs(3600),
            max_level: 3,
        }));
        assert_eq!(b.observe(50_000_000), 1);
        for _ in 0..10 {
            assert_eq!(b.observe(50_000_000), 1, "dwell must pin the level");
        }
    }

    #[test]
    fn disabled_brownout_is_inert() {
        let mut b = Brownout::new(None);
        for _ in 0..100 {
            assert_eq!(b.observe(u64::MAX), 0);
        }
        assert_eq!(b.fidelity(true), Fidelity::Full);
        assert!(!b.shadow_suspended());
    }

    #[test]
    fn fidelity_round_trips_and_orders() {
        for f in [
            Fidelity::Full,
            Fidelity::NoShadow,
            Fidelity::ScoreOnly,
            Fidelity::TightDeadline,
        ] {
            assert_eq!(Fidelity::from_u8(f.as_u8()), f);
        }
        assert_eq!(Fidelity::from_u8(200), Fidelity::TightDeadline);
        assert!(Fidelity::Full < Fidelity::NoShadow);
        assert!(Fidelity::ScoreOnly < Fidelity::TightDeadline);
    }

    #[test]
    fn tenant_label_defaults_anonymous() {
        assert_eq!(tenant_label(""), "default");
        assert_eq!(tenant_label("acme"), "acme");
    }

    #[test]
    fn clamp_tenant_respects_char_boundaries() {
        let long = "x".repeat(200);
        assert_eq!(clamp_tenant(&long).len(), MAX_TENANT_LEN);
        let multi = "é".repeat(64); // 128 bytes, boundary at 64 splits a char
        let clamped = clamp_tenant(&multi);
        assert!(clamped.len() <= MAX_TENANT_LEN);
        assert!(multi.starts_with(clamped));
    }
}
