//! All-vs-all scoring and guide-tree construction — the multiple-
//! sequence-alignment front end that motivates the paper's throughput
//! work (§I: "many applications, such as multiple sequence alignment
//! ... where SW is invoked repeatedly"; the authors' FMSA line of work
//! uses exactly this SW-prefilter → guide tree pipeline).
//!
//! [`pairwise_scores`] computes the upper-triangular SW score matrix
//! for a set of sequences using the batch kernel (each sequence is the
//! query once, searched against a database of its successors), across
//! threads. [`upgma`] turns the scores into a rooted guide tree with
//! branch lengths, rendered in Newick format.

use swsimd_core::{Aligner, AlignerBuilder};
use swsimd_matrices::Alphabet;
use swsimd_seq::{Database, SeqRecord};

/// Symmetric pairwise score matrix (`scores[i][j]`, `i != j`), plus the
/// self-scores on the diagonal.
#[derive(Clone, Debug)]
pub struct ScoreMatrix {
    /// `n x n` local alignment scores.
    pub scores: Vec<Vec<i32>>,
}

impl ScoreMatrix {
    /// Number of sequences.
    pub fn len(&self) -> usize {
        self.scores.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.scores.is_empty()
    }

    /// Normalized distance in `[0, 1]`:
    /// `1 - score(i,j) / min(score(i,i), score(j,j))`.
    pub fn distance(&self, i: usize, j: usize) -> f64 {
        if i == j {
            return 0.0;
        }
        let denom = self.scores[i][i].min(self.scores[j][j]).max(1) as f64;
        (1.0 - self.scores[i][j] as f64 / denom).clamp(0.0, 1.0)
    }
}

/// Compute all pairwise local-alignment scores for a set of encoded
/// sequences, distributing queries across `threads`.
pub fn pairwise_scores<F>(seqs: &[Vec<u8>], threads: usize, make_aligner: F) -> ScoreMatrix
where
    F: Fn() -> AlignerBuilder + Sync,
{
    let n = seqs.len();
    let mut scores = vec![vec![0i32; n]; n];
    if n == 0 {
        return ScoreMatrix { scores };
    }

    // Self-scores (cheap) + batched cross scores: sequence i is queried
    // against the database of sequences j > i.
    let threads = threads.max(1);
    let rows: Vec<(usize, Vec<i32>)> = {
        let mut out: Vec<Option<(usize, Vec<i32>)>> = vec![None; n];
        std::thread::scope(|scope| {
            let chunk = n.div_ceil(threads).max(1);
            for slot_chunk in out.chunks_mut(chunk).enumerate() {
                let (ci, slots) = slot_chunk;
                let make_aligner = &make_aligner;
                scope.spawn(move || {
                    let mut aligner: Aligner = make_aligner().build();
                    let alphabet = Alphabet::protein();
                    for (k, slot) in slots.iter_mut().enumerate() {
                        let i = ci * chunk + k;
                        let mut row = vec![0i32; n];
                        row[i] = aligner.align(&seqs[i], &seqs[i]).score;
                        let rest: Vec<SeqRecord> = seqs[i + 1..]
                            .iter()
                            .map(|s| SeqRecord::new("t", alphabet.decode(s)))
                            .collect();
                        if !rest.is_empty() {
                            let db = Database::from_records(rest, &alphabet);
                            for hit in aligner.search(&seqs[i], &db, 0) {
                                row[i + 1 + hit.db_index] = hit.score;
                            }
                        }
                        *slot = Some((i, row));
                    }
                });
            }
        });
        out.into_iter().flatten().collect()
    };
    for (i, row) in rows {
        for (j, &v) in row.iter().enumerate() {
            if v != 0 || i == j {
                scores[i][j] = v;
            }
        }
    }
    // Mirror the upper triangle.
    for i in 0..n {
        for j in 0..i {
            scores[i][j] = scores[j][i];
        }
    }
    ScoreMatrix { scores }
}

/// A rooted guide tree node.
#[derive(Clone, Debug)]
pub enum GuideTree {
    /// A sequence, by input index.
    Leaf {
        /// Index into the input set.
        index: usize,
    },
    /// An internal merge.
    Node {
        /// Left subtree and its branch length.
        left: (Box<GuideTree>, f64),
        /// Right subtree and its branch length.
        right: (Box<GuideTree>, f64),
        /// Height (UPGMA ultrametric) of this node.
        height: f64,
    },
}

impl GuideTree {
    /// Leaf indices in tree order.
    pub fn leaves(&self) -> Vec<usize> {
        match self {
            GuideTree::Leaf { index } => vec![*index],
            GuideTree::Node { left, right, .. } => {
                let mut v = left.0.leaves();
                v.extend(right.0.leaves());
                v
            }
        }
    }

    /// Newick rendering with branch lengths, using `names` for leaves.
    pub fn newick(&self, names: &[String]) -> String {
        fn go(t: &GuideTree, names: &[String], out: &mut String) {
            match t {
                GuideTree::Leaf { index } => {
                    out.push_str(names.get(*index).map(String::as_str).unwrap_or("?"))
                }
                GuideTree::Node { left, right, .. } => {
                    out.push('(');
                    go(&left.0, names, out);
                    out.push_str(&format!(":{:.4},", left.1));
                    go(&right.0, names, out);
                    out.push_str(&format!(":{:.4}", right.1));
                    out.push(')');
                }
            }
        }
        let mut s = String::new();
        go(self, names, &mut s);
        s.push(';');
        s
    }
}

/// UPGMA clustering over a score matrix's normalized distances.
///
/// Returns `None` for empty input; a single sequence yields a lone leaf.
pub fn upgma(m: &ScoreMatrix) -> Option<GuideTree> {
    let n = m.len();
    if n == 0 {
        return None;
    }
    // Active clusters: (tree, size, height).
    let mut clusters: Vec<(GuideTree, usize, f64)> = (0..n)
        .map(|i| (GuideTree::Leaf { index: i }, 1, 0.0))
        .collect();
    // Average-linkage distances between active clusters.
    let mut dist: Vec<Vec<f64>> = (0..n)
        .map(|i| (0..n).map(|j| m.distance(i, j)).collect())
        .collect();
    let mut active: Vec<usize> = (0..n).collect();

    while active.len() > 1 {
        // Closest pair among active clusters.
        let (mut bi, mut bj, mut bd) = (0usize, 1usize, f64::INFINITY);
        for (x, &i) in active.iter().enumerate() {
            for &j in &active[x + 1..] {
                if dist[i][j] < bd {
                    bd = dist[i][j];
                    bi = i;
                    bj = j;
                }
            }
        }
        let height = bd / 2.0;
        let (ti, si, hi) = clusters[bi].clone();
        let (tj, sj, hj) = clusters[bj].clone();
        let merged = GuideTree::Node {
            left: (Box::new(ti), height - hi),
            right: (Box::new(tj), height - hj),
            height,
        };
        // UPGMA average-linkage update into slot bi.
        for &k in &active {
            if k != bi && k != bj {
                let d = (dist[bi][k] * si as f64 + dist[bj][k] * sj as f64) / (si + sj) as f64;
                dist[bi][k] = d;
                dist[k][bi] = d;
            }
        }
        clusters[bi] = (merged, si + sj, height);
        active.retain(|&k| k != bj);
    }
    Some(clusters[active[0]].0.clone())
}

#[cfg(test)]
mod tests {
    use super::*;
    use swsimd_matrices::blosum62;
    use swsimd_seq::{generate_exact, mutate};

    fn builder() -> AlignerBuilder {
        Aligner::builder().matrix(blosum62())
    }

    fn enc(bytes: &[u8]) -> Vec<u8> {
        Alphabet::protein().encode(bytes)
    }

    #[test]
    fn score_matrix_is_symmetric_and_self_max() {
        let base = generate_exact(80, 3).seq;
        let seqs: Vec<Vec<u8>> = vec![
            enc(&base),
            enc(&mutate(&base, 0.1, 1)),
            enc(&mutate(&base, 0.5, 2)),
            enc(&generate_exact(60, 99).seq),
        ];
        let m = pairwise_scores(&seqs, 2, builder);
        for i in 0..4 {
            for j in 0..4 {
                assert_eq!(m.scores[i][j], m.scores[j][i], "asymmetric at {i},{j}");
            }
            // Self-score dominates the row.
            for j in 0..4 {
                assert!(m.scores[i][i] >= m.scores[i][j]);
            }
        }
        // Close homolog scores higher than the unrelated sequence.
        assert!(m.scores[0][1] > m.scores[0][3]);
        // Distances reflect that.
        assert!(m.distance(0, 1) < m.distance(0, 3));
    }

    #[test]
    fn pairwise_threads_agree() {
        let seqs: Vec<Vec<u8>> = (0..6)
            .map(|i| enc(&generate_exact(40 + i * 7, i as u64).seq))
            .collect();
        let a = pairwise_scores(&seqs, 1, builder);
        let b = pairwise_scores(&seqs, 3, builder);
        assert_eq!(a.scores, b.scores);
    }

    #[test]
    fn upgma_clusters_homologs_first() {
        let base = generate_exact(100, 7).seq;
        let seqs: Vec<Vec<u8>> = vec![
            enc(&base),                        // 0
            enc(&mutate(&base, 0.05, 1)),      // 1: very close to 0
            enc(&generate_exact(100, 50).seq), // 2: unrelated
        ];
        let m = pairwise_scores(&seqs, 1, builder);
        let tree = upgma(&m).unwrap();
        // The first merge must be (0, 1).
        match &tree {
            GuideTree::Node { left, right, .. } => {
                let inner = if matches!(*left.0, GuideTree::Node { .. }) {
                    &left.0
                } else {
                    &right.0
                };
                let mut pair = inner.leaves();
                pair.sort_unstable();
                assert_eq!(pair, vec![0, 1], "homologs should merge first");
            }
            GuideTree::Leaf { .. } => panic!("expected an internal root"),
        }
        assert_eq!(tree.leaves().len(), 3);
    }

    #[test]
    fn newick_renders() {
        let seqs: Vec<Vec<u8>> = (0..3).map(|i| enc(&generate_exact(30, i).seq)).collect();
        let m = pairwise_scores(&seqs, 1, builder);
        let tree = upgma(&m).unwrap();
        let names: Vec<String> = (0..3).map(|i| format!("s{i}")).collect();
        let nwk = tree.newick(&names);
        assert!(nwk.ends_with(';'));
        for n in &names {
            assert!(nwk.contains(n.as_str()), "{nwk}");
        }
    }

    #[test]
    fn degenerate_inputs() {
        assert!(upgma(&ScoreMatrix { scores: vec![] }).is_none());
        let one = pairwise_scores(&[enc(b"MKV")], 2, builder);
        let t = upgma(&one).unwrap();
        assert_eq!(t.leaves(), vec![0]);
    }
}
