//! Banded Smith-Waterman — the classic subroutine-scenario accelerator.
//!
//! The paper's Scenario 3 (§II-C) cites the SSW library's use of SW as
//! an inner subroutine on small, similar sequences; in that regime a
//! *band* restricts the DP to cells with `|i - j| <= width`, cutting
//! work from `O(mn)` to `O(width·(m+n))`. The diagonal layout makes
//! banding trivial: on anti-diagonal `d` the band is just an extra
//! clamp on the `i` range (`|2i - d| <= width`), so the banded kernel
//! is the main kernel with tighter bounds — same memory layout, same
//! zero-padding, same deferred maximum.
//!
//! Banded scores are a lower bound on the unbanded score and exact
//! whenever the optimal alignment stays inside the band (guaranteed if
//! `width >= |m - n| + longest gap run`). With `width >= m + n` the
//! result equals the unbanded kernel exactly (tested).

use swsimd_simd::{EngineKind, ScoreElem, SimdEngine, SimdVec};

use crate::diag::kernel::ScoreOut;
use crate::diag::{diag_bounds, gap_elems, KernelWidth, W16, W32, W8};
use crate::params::{GapModel, Precision, Scoring};
use crate::stats::KernelStats;

/// Interior band bounds on anti-diagonal `d`: the cells of
/// [`diag_bounds`] further clamped to `|i - j| <= width` (with `j = d - i`).
#[inline(always)]
pub fn banded_bounds(d: usize, m: usize, n: usize, width: usize) -> Option<(usize, usize)> {
    let (lo, hi) = diag_bounds(d, m, n);
    // |2i - d| <= width  =>  (d - width)/2 <= i <= (d + width)/2
    let blo = d.saturating_sub(width).div_ceil(2).max(lo);
    let bhi = ((d + width) / 2).min(hi);
    (blo <= bhi).then_some((blo, bhi))
}

/// Scalar reference for banded local alignment.
pub fn sw_banded_scalar(
    query: &[u8],
    target: &[u8],
    scoring: &Scoring,
    gaps: GapModel,
    width: usize,
) -> i32 {
    let (m, n) = (query.len(), target.len());
    if m == 0 || n == 0 {
        return 0;
    }
    let (go, ge) = match gaps {
        GapModel::Linear { gap } => (gap, gap),
        GapModel::Affine(g) => (g.open, g.extend),
    };
    const NEG: i32 = i32::MIN / 4;
    // Row-major banded DP with per-row windows.
    let mut best = 0i32;
    let mut h_prev: Vec<i32> = Vec::new(); // window for row i-1
    let mut f_prev: Vec<i32> = Vec::new();
    let mut prev_start = 0i64;
    for i in 1..=m {
        let j_start = (i as i64 - width as i64).max(1);
        let j_end = ((i + width) as i64).min(n as i64);
        if j_start > j_end {
            continue;
        }
        let wlen = (j_end - j_start + 1) as usize;
        let mut h_cur = vec![0i32; wlen];
        let mut e_cur = vec![NEG; wlen];
        let mut f_cur = vec![NEG; wlen];
        for (k, j) in (j_start..=j_end).enumerate() {
            let ju = j as usize;
            // In-band neighbours; out-of-band reads as H = 0 (a local
            // alignment may always restart) and E/F = -inf.
            let fetch_h_prev = |jj: i64| -> i32 {
                // Boundary column/row both read as the local-restart 0.
                if jj == 0 || i == 1 {
                    0
                } else {
                    let idx = jj - prev_start;
                    if idx < 0 || idx as usize >= h_prev.len() {
                        0 // outside band: local restart value
                    } else {
                        h_prev[idx as usize]
                    }
                }
            };
            let fetch_f_prev = |jj: i64| -> i32 {
                if i == 1 {
                    NEG
                } else {
                    let idx = jj - prev_start;
                    if idx < 0 || idx as usize >= f_prev.len() {
                        NEG
                    } else {
                        f_prev[idx as usize]
                    }
                }
            };
            // Left neighbour: out-of-band or boundary => restart at 0.
            let h_left = if k == 0 { 0 } else { h_cur[k - 1] };
            let e_left = if k == 0 { NEG } else { e_cur[k - 1] };
            let s = scoring.score(query[i - 1], target[ju - 1]);
            let e = (e_left - ge).max(h_left - go);
            let f = (fetch_f_prev(j) - ge).max(fetch_h_prev(j) - go);
            let diag = fetch_h_prev(j - 1) + s;
            let h = 0.max(diag).max(e).max(f);
            h_cur[k] = h;
            e_cur[k] = e;
            f_cur[k] = f;
            best = best.max(h);
        }
        h_prev = h_cur;
        f_prev = f_cur;
        let _ = e_cur;
        prev_start = j_start;
    }
    best
}

/// Vectorized banded kernel: the diagonal kernel with band-clamped
/// bounds (scores only).
#[inline(always)]
fn sw_banded_kernel<En: SimdEngine, W: KernelWidth<En>>(
    query: &[u8],
    target: &[u8],
    scoring: &Scoring,
    gaps: GapModel,
    width: usize,
    scalar_threshold: usize,
    stats: &mut KernelStats,
) -> ScoreOut {
    type Elem<En2, W2> = <<W2 as KernelWidth<En2>>::V as SimdVec>::Elem;

    let (m, n) = (query.len(), target.len());
    if m == 0 || n == 0 {
        return ScoreOut {
            score: 0,
            saturated: false,
        };
    }
    let lanes = <W::V as SimdVec>::LANES;
    let scalar_threshold = scalar_threshold.max(1);

    let vzero = W::V::zero();
    let vneg = W::V::splat(Elem::<En, W>::NEG_INF);
    let (go, ge, affine) = gap_elems::<Elem<En, W>>(gaps);
    let vgo = W::V::splat(go);
    let vge = W::V::splat(ge);
    let (go32, ge32) = (go.to_i32(), ge.to_i32());

    let blen = m + 2 + lanes;
    let mut hp = vec![Elem::<En, W>::ZERO; blen];
    let mut hpp = vec![Elem::<En, W>::ZERO; blen];
    let mut hc = vec![Elem::<En, W>::ZERO; blen];
    let mut ep = vec![Elem::<En, W>::NEG_INF; blen];
    let mut ec = vec![Elem::<En, W>::NEG_INF; blen];
    let mut fp = vec![Elem::<En, W>::NEG_INF; blen];
    let mut fc = vec![Elem::<En, W>::NEG_INF; blen];

    let mut qpad = vec![0u8; m + lanes];
    qpad[..m].copy_from_slice(query);
    let mut rrev = vec![0u8; n + lanes];
    for (t, slot) in rrev[..n].iter_mut().enumerate() {
        *slot = target[n - 1 - t];
    }
    let (qel, rrevel, vmatch, vmismatch) = match scoring {
        Scoring::Fixed { r#match, mismatch } => {
            let qel: Vec<_> = qpad
                .iter()
                .map(|&b| Elem::<En, W>::from_i32(b as i32))
                .collect();
            let rel: Vec<_> = rrev
                .iter()
                .map(|&b| Elem::<En, W>::from_i32(b as i32))
                .collect();
            (
                qel,
                rel,
                W::V::splat(Elem::<En, W>::from_i32(*r#match)),
                W::V::splat(Elem::<En, W>::from_i32(*mismatch)),
            )
        }
        Scoring::Matrix(_) => (Vec::new(), Vec::new(), vzero, vzero),
    };

    let mut vmax = vzero;
    let mut scalar_best = 0i32;
    let mut prev_lo_opt: Option<usize> = None;
    let mut prev_hi = 0usize;

    for d in 2..=(m + n) {
        let Some((lo, hi)) = banded_bounds(d, m, n, width) else {
            // No in-band cells on this diagonal (narrow bands skip
            // alternate diagonals). The rolling invariant still needs a
            // rotation, with the skipped diagonal reading as
            // out-of-band everywhere its neighbours might look.
            let clo = (d.saturating_sub(width) / 2).saturating_sub(2);
            let chi = ((d + width) / 2 + 2).min(m + 1);
            for i in clo..=chi {
                hc[i] = Elem::<En, W>::ZERO;
                ec[i] = Elem::<En, W>::NEG_INF;
                fc[i] = Elem::<En, W>::NEG_INF;
            }
            std::mem::swap(&mut hpp, &mut hp);
            std::mem::swap(&mut hp, &mut hc);
            std::mem::swap(&mut ep, &mut ec);
            std::mem::swap(&mut fp, &mut fc);
            prev_lo_opt = None;
            continue;
        };
        let len = hi - lo + 1;
        stats.diagonals += 1;
        stats.cells += len as u64;

        // Out-of-band neighbours must read as "local restart" (H = 0,
        // E/F = -inf). The band edge moves by at most one position per
        // diagonal, so refreshing the cells just outside the previous
        // window keeps all reads correct.
        if let Some(prev_lo) = prev_lo_opt {
            if prev_lo > 0 {
                hp[prev_lo - 1] = Elem::<En, W>::ZERO;
                ep[prev_lo - 1] = Elem::<En, W>::NEG_INF;
                fp[prev_lo - 1] = Elem::<En, W>::NEG_INF;
            }
            if prev_hi + 1 < blen {
                hp[prev_hi + 1] = Elem::<En, W>::ZERO;
                ep[prev_hi + 1] = Elem::<En, W>::NEG_INF;
                fp[prev_hi + 1] = Elem::<En, W>::NEG_INF;
            }
        }

        if len < scalar_threshold {
            for i in lo..=hi {
                let j = d - i;
                let s = scoring.score(query[i - 1], target[j - 1]);
                let h_l = hp[i].to_i32();
                let h_u = hp[i - 1].to_i32();
                let h_d = hpp[i - 1].to_i32();
                let (e_new, f_new) = if affine {
                    (
                        (ep[i].to_i32() - ge32).max(h_l - go32),
                        (fp[i - 1].to_i32() - ge32).max(h_u - go32),
                    )
                } else {
                    (h_l - go32, h_u - go32)
                };
                let h = Elem::<En, W>::from_i32(0.max(h_d + s).max(e_new).max(f_new));
                hc[i] = h;
                if affine {
                    ec[i] = Elem::<En, W>::from_i32(e_new);
                    fc[i] = Elem::<En, W>::from_i32(f_new);
                }
                scalar_best = scalar_best.max(h.to_i32());
            }
            stats.scalar_cells += len as u64;
        } else {
            let mut base = lo;
            while base <= hi {
                let rem = hi + 1 - base;
                // SAFETY: same invariants as the main kernel (the band
                // only narrows the range).
                unsafe {
                    let h_l = W::V::load(hp.as_ptr().add(base));
                    let h_u = W::V::load(hp.as_ptr().add(base - 1));
                    let h_d = W::V::load(hpp.as_ptr().add(base - 1));
                    let s = match scoring {
                        Scoring::Matrix(mat) => {
                            stats.gather_ops += 1;
                            W::gather(
                                mat,
                                qpad.as_ptr().add(base - 1),
                                rrev.as_ptr().add(base + n - d),
                            )
                        }
                        Scoring::Fixed { .. } => {
                            let qv = W::V::load(qel.as_ptr().add(base - 1));
                            let rv = W::V::load(rrevel.as_ptr().add(base + n - d));
                            W::V::blend(qv.cmpeq(rv), vmatch, vmismatch)
                        }
                    };
                    let (e_new, f_new) = if affine {
                        let e_in = W::V::load(ep.as_ptr().add(base));
                        let f_in = W::V::load(fp.as_ptr().add(base - 1));
                        (
                            e_in.subs(vge).max(h_l.subs(vgo)),
                            f_in.subs(vge).max(h_u.subs(vgo)),
                        )
                    } else {
                        (h_l.subs(vgo), h_u.subs(vgo))
                    };
                    let mut h = h_d.adds(s).max(vzero).max(e_new).max(f_new);
                    let mut e_st = e_new;
                    let mut f_st = f_new;
                    if rem < lanes {
                        let mask = W::V::mask_first(rem);
                        h = W::V::blend(mask, h, vzero);
                        e_st = W::V::blend(mask, e_new, vneg);
                        f_st = W::V::blend(mask, f_new, vneg);
                        stats.padded_lanes += (lanes - rem) as u64;
                    }
                    h.store(hc.as_mut_ptr().add(base));
                    if affine {
                        e_st.store(ec.as_mut_ptr().add(base));
                        f_st.store(fc.as_mut_ptr().add(base));
                    }
                    vmax = vmax.max(h);
                }
                stats.vector_steps += 1;
                stats.vector_lane_slots += lanes as u64;
                base += lanes;
            }
        }

        // Band-edge guards on the freshly written diagonal.
        hc[lo - 1] = Elem::<En, W>::ZERO;
        fc[lo - 1] = Elem::<En, W>::NEG_INF;
        ec[lo - 1] = Elem::<En, W>::NEG_INF;
        if hi + 1 < blen {
            hc[hi + 1] = Elem::<En, W>::ZERO;
            ec[hi + 1] = Elem::<En, W>::NEG_INF;
            fc[hi + 1] = Elem::<En, W>::NEG_INF;
        }

        std::mem::swap(&mut hpp, &mut hp);
        std::mem::swap(&mut hp, &mut hc);
        std::mem::swap(&mut ep, &mut ec);
        std::mem::swap(&mut fp, &mut fc);
        prev_lo_opt = Some(lo);
        prev_hi = hi;

        // Amortized governor poll; governed callers re-check the token
        // and discard this early-return.
        if d % crate::govern::CANCEL_CHECK_PERIOD == 0 && crate::govern::cancel_poll() {
            return ScoreOut {
                score: 0,
                saturated: false,
            };
        }
    }

    let best = vmax.hmax().to_i32().max(scalar_best);
    let saturated = Elem::<En, W>::BITS < 32 && best >= Elem::<En, W>::MAX.to_i32();
    ScoreOut {
        score: best,
        saturated,
    }
}

macro_rules! banded_wrappers {
    ($mod_:ident, $en:ty, $($feat:literal)?) => {
        mod $mod_ {
            use super::*;
            $(#[target_feature(enable = $feat)])?
            pub(super) unsafe fn w8(
                q: &[u8], t: &[u8], sc: &Scoring, g: GapModel, w: usize, th: usize,
                st: &mut KernelStats,
            ) -> ScoreOut {
                sw_banded_kernel::<$en, W8>(q, t, sc, g, w, th, st)
            }
            $(#[target_feature(enable = $feat)])?
            pub(super) unsafe fn w16(
                q: &[u8], t: &[u8], sc: &Scoring, g: GapModel, w: usize, th: usize,
                st: &mut KernelStats,
            ) -> ScoreOut {
                sw_banded_kernel::<$en, W16>(q, t, sc, g, w, th, st)
            }
            $(#[target_feature(enable = $feat)])?
            pub(super) unsafe fn w32(
                q: &[u8], t: &[u8], sc: &Scoring, g: GapModel, w: usize, th: usize,
                st: &mut KernelStats,
            ) -> ScoreOut {
                sw_banded_kernel::<$en, W32>(q, t, sc, g, w, th, st)
            }
        }
    };
}

banded_wrappers!(scalar_w, swsimd_simd::Scalar,);
#[cfg(target_arch = "x86_64")]
banded_wrappers!(sse41_w, swsimd_simd::Sse41, "sse4.1,ssse3");
#[cfg(target_arch = "x86_64")]
banded_wrappers!(avx2_w, swsimd_simd::Avx2, "avx2");
#[cfg(target_arch = "x86_64")]
banded_wrappers!(
    avx512_w,
    swsimd_simd::Avx512,
    "avx512f,avx512bw,avx512vl,avx512vbmi"
);

/// Banded local alignment score on a chosen engine and precision.
pub fn banded_score(
    engine: EngineKind,
    precision: Precision,
    query: &[u8],
    target: &[u8],
    scoring: &Scoring,
    gaps: GapModel,
    width: usize,
    scalar_threshold: usize,
    stats: &mut KernelStats,
) -> ScoreOut {
    let engine = if engine.is_available() {
        engine
    } else {
        EngineKind::Scalar
    };
    // SAFETY: availability checked above.
    unsafe {
        macro_rules! call {
            ($m:ident) => {
                match precision {
                    Precision::I8 => {
                        $m::w8(query, target, scoring, gaps, width, scalar_threshold, stats)
                    }
                    Precision::I16 => {
                        $m::w16(query, target, scoring, gaps, width, scalar_threshold, stats)
                    }
                    _ => $m::w32(query, target, scoring, gaps, width, scalar_threshold, stats),
                }
            };
        }
        match engine {
            EngineKind::Scalar => call!(scalar_w),
            #[cfg(target_arch = "x86_64")]
            EngineKind::Sse41 => call!(sse41_w),
            #[cfg(target_arch = "x86_64")]
            EngineKind::Avx2 => call!(avx2_w),
            #[cfg(target_arch = "x86_64")]
            EngineKind::Avx512 => call!(avx512_w),
            #[cfg(not(target_arch = "x86_64"))]
            _ => call!(scalar_w),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scalar_ref::sw_scalar;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use swsimd_matrices::blosum62;

    fn b62() -> Scoring {
        Scoring::matrix(blosum62())
    }

    fn aff() -> GapModel {
        GapModel::default_affine()
    }

    #[test]
    fn banded_bounds_inside_diag_bounds() {
        for (m, n, w) in [(10, 10, 3), (5, 20, 4), (20, 5, 2), (7, 7, 0)] {
            for d in 2..=(m + n) {
                if let Some((lo, hi)) = banded_bounds(d, m, n, w) {
                    let (flo, fhi) = diag_bounds(d, m, n);
                    assert!(lo >= flo && hi <= fhi);
                    for i in lo..=hi {
                        let j = d - i;
                        assert!((i as i64 - j as i64).unsigned_abs() as usize <= w + 1);
                    }
                }
            }
        }
    }

    #[test]
    fn wide_band_equals_unbanded() {
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..15 {
            let (lm, ln) = (rng.gen_range(1..80), rng.gen_range(1..80));
            let q: Vec<u8> = (0..lm).map(|_| rng.gen_range(0..20)).collect();
            let t: Vec<u8> = (0..ln).map(|_| rng.gen_range(0..20)).collect();
            let want = sw_scalar(&q, &t, &b62(), aff()).score;
            let width = lm + ln;
            for engine in EngineKind::available() {
                let mut st = KernelStats::default();
                let got = banded_score(
                    engine,
                    Precision::I32,
                    &q,
                    &t,
                    &b62(),
                    aff(),
                    width,
                    8,
                    &mut st,
                );
                assert_eq!(got.score, want, "{engine:?} m={lm} n={ln}");
            }
        }
    }

    #[test]
    fn vector_banded_matches_scalar_banded() {
        let mut rng = StdRng::seed_from_u64(9);
        for round in 0..20 {
            let (lm, ln) = (rng.gen_range(2..90), rng.gen_range(2..90));
            let q: Vec<u8> = (0..lm).map(|_| rng.gen_range(0..20)).collect();
            let t: Vec<u8> = (0..ln).map(|_| rng.gen_range(0..20)).collect();
            for width in [0usize, 1, 3, 8, 24] {
                let want = sw_banded_scalar(&q, &t, &b62(), aff(), width);
                for engine in EngineKind::available() {
                    let mut st = KernelStats::default();
                    let got = banded_score(
                        engine,
                        Precision::I32,
                        &q,
                        &t,
                        &b62(),
                        aff(),
                        width,
                        4,
                        &mut st,
                    );
                    assert_eq!(
                        got.score, want,
                        "round {round} {engine:?} w={width} m={lm} n={ln}"
                    );
                }
            }
        }
    }

    #[test]
    fn banded_never_exceeds_unbanded() {
        let mut rng = StdRng::seed_from_u64(13);
        for _ in 0..15 {
            let (lm, ln) = (rng.gen_range(2..70), rng.gen_range(2..70));
            let q: Vec<u8> = (0..lm).map(|_| rng.gen_range(0..20)).collect();
            let t: Vec<u8> = (0..ln).map(|_| rng.gen_range(0..20)).collect();
            let full = sw_scalar(&q, &t, &b62(), aff()).score;
            let mut prev = 0i32;
            for width in [0usize, 2, 4, 8, 16, 32, 200] {
                let mut st = KernelStats::default();
                let got = banded_score(
                    EngineKind::best(),
                    Precision::I32,
                    &q,
                    &t,
                    &b62(),
                    aff(),
                    width,
                    8,
                    &mut st,
                )
                .score;
                assert!(got <= full, "w={width}: banded {got} > full {full}");
                assert!(got >= prev, "w={width}: band widening lowered the score");
                prev = got;
            }
            assert_eq!(prev, full);
        }
    }

    #[test]
    fn banded_does_less_work() {
        let q = vec![3u8; 400];
        let t = vec![5u8; 400];
        let mut full = KernelStats::default();
        let mut banded = KernelStats::default();
        let _ = banded_score(
            EngineKind::best(),
            Precision::I16,
            &q,
            &t,
            &b62(),
            aff(),
            1_000,
            8,
            &mut full,
        );
        let _ = banded_score(
            EngineKind::best(),
            Precision::I16,
            &q,
            &t,
            &b62(),
            aff(),
            16,
            8,
            &mut banded,
        );
        assert!(
            banded.cells < full.cells / 5,
            "{} vs {}",
            banded.cells,
            full.cells
        );
    }

    #[test]
    fn similar_sequences_exact_with_small_band() {
        // A pair differing by scattered substitutions stays on the main
        // diagonal; a tiny band is already exact.
        let mut rng = StdRng::seed_from_u64(21);
        let q: Vec<u8> = (0..200).map(|_| rng.gen_range(0..20)).collect();
        let mut t = q.clone();
        for k in (0..t.len()).step_by(11) {
            t[k] = (t[k] + 1) % 20;
        }
        let full = sw_scalar(&q, &t, &b62(), aff()).score;
        let mut st = KernelStats::default();
        let got = banded_score(
            EngineKind::best(),
            Precision::I16,
            &q,
            &t,
            &b62(),
            aff(),
            4,
            8,
            &mut st,
        );
        assert_eq!(got.score, full);
    }
}
