//! Inter-sequence batch kernel — the paper's 8-bit database-search path
//! (§III-C, Fig 5).
//!
//! A batch holds `LANES` database sequences in transposed layout
//! (`swsimd-seq::DbBatch`): one contiguous load yields the next residue
//! of every sequence. Each vector lane then runs an independent DP
//! matrix in lockstep, and the per-cell substitution scores for all
//! lanes come from a **single 32-byte matrix row** (the reorganized
//! layout) looked up with a shuffle (`vpshufb`/`vpermb`) — no gather,
//! which is exactly how the paper repairs the missing 8-bit gather
//! ("the performance is now comparable", §IV-C).
//!
//! Lanes whose sequence has ended read the poisoned padding residue, so
//! their H stays clamped at 0 and their recorded maximum is unaffected.
//! Saturated lanes (score = 127) are reported so the caller can rerun
//! just those sequences through the 16/32-bit diagonal kernel — the
//! "variable (8/16) bit width implementation" (contribution iii).

use swsimd_seq::DbBatch;
use swsimd_simd::{EngineKind, ScoreElem, SimdEngine, SimdVec};

use crate::diag::gap_elems;
use crate::params::{GapModel, Scoring};
use crate::stats::KernelStats;

/// Per-sequence outcome of one batch run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LaneScore {
    /// Index of the sequence in the source database.
    pub db_index: u32,
    /// Best local score for this lane (clamped at `i8::MAX`).
    pub score: i32,
    /// True if this lane saturated and needs a wider rerun.
    pub saturated: bool,
}

/// The inter-sequence kernel body, generic over engine (8-bit lanes).
///
/// `#[inline(always)]` so the dispatch wrappers compile it per-ISA.
#[inline(always)]
fn batch_kernel<En: SimdEngine>(
    query: &[u8],
    batch: &DbBatch,
    scoring: &Scoring,
    gaps: GapModel,
    stats: &mut KernelStats,
    out: &mut Vec<LaneScore>,
) {
    let lanes = <En::V8 as SimdVec>::LANES;
    assert_eq!(
        batch.lanes(),
        lanes,
        "batch built for {} lanes, engine {} has {}",
        batch.lanes(),
        En::NAME,
        lanes
    );
    let m = query.len();
    let cols = batch.max_len();

    let vzero = En::V8::zero();
    let vneg = En::V8::splat(i8::NEG_INF);
    let (go, ge, affine) = gap_elems::<i8>(gaps);
    let vgo = En::V8::splat(go);
    let vge = En::V8::splat(ge);

    // Per-query-position state: H and E of the previous column.
    // h_arr[0] is the H(0, j) = 0 boundary and never changes.
    let mut h_arr = vec![vzero; m + 1];
    let mut e_arr = vec![vneg; m + 1];
    let mut vmax = vzero;

    let (vmatch, vmismatch) = match scoring {
        Scoring::Fixed { r#match, mismatch } => (
            En::V8::splat(i8::from_i32(*r#match)),
            En::V8::splat(i8::from_i32(*mismatch)),
        ),
        Scoring::Matrix(_) => (vzero, vzero),
    };

    for j in 0..cols {
        let col = batch.column(j);
        debug_assert_eq!(col.len(), lanes);
        // Residue indices are < 32 and reinterpret cleanly as i8 lanes.
        let dbres = En::V8::load_slice(bytes_as_i8(col));

        let mut h_diag = h_arr[0]; // H(0, j-1) = 0
        let mut h_up = vzero; // H(0, j) = 0
        let mut f = vneg;

        for i in 1..=m {
            let s = match scoring {
                Scoring::Matrix(mat) => {
                    stats.lut_ops += 1;
                    En::lut32(mat.row8(query[i - 1]), dbres)
                }
                Scoring::Fixed { .. } => {
                    let qv = En::V8::splat(query[i - 1] as i8);
                    En::V8::blend(qv.cmpeq(dbres), vmatch, vmismatch)
                }
            };
            let h = if affine {
                let e = e_arr[i].subs(vge).max(h_arr[i].subs(vgo));
                f = f.subs(vge).max(h_up.subs(vgo));
                e_arr[i] = e;
                h_diag.adds(s).max(vzero).max(e).max(f)
            } else {
                // Linear model: E/F collapse to one-step penalties from
                // the left/up neighbours.
                h_diag
                    .adds(s)
                    .max(vzero)
                    .max(h_arr[i].subs(vgo))
                    .max(h_up.subs(vgo))
            };
            h_diag = h_arr[i];
            h_arr[i] = h;
            h_up = h;
            vmax = vmax.max(h);
        }
        stats.vector_steps += m as u64;
        stats.vector_lane_slots += (m * lanes) as u64;
        stats.vector_loads += 2 * m as u64 + 1;
        stats.vector_stores += 2 * m as u64;

        // Amortized governor poll: lane maxima below are garbage after a
        // cancel — governed callers re-check the token and discard them.
        if (j + 1) % crate::govern::CANCEL_CHECK_PERIOD == 0 && crate::govern::cancel_poll() {
            break;
        }
    }

    // Deferred per-lane maxima → one store + scatter at the end (§III-D).
    let mut lane_max = vec![0i8; lanes];
    vmax.store_slice(&mut lane_max);
    for (k, &db_index) in batch.members().iter().enumerate() {
        let score = lane_max[k] as i32;
        let real_cells = batch.lens()[k] as u64 * m as u64;
        stats.cells += real_cells;
        out.push(LaneScore {
            db_index,
            score,
            saturated: score >= i8::MAX as i32,
        });
    }
    // Lane slots burned on padding (ragged tails and short batches).
    let real: u64 = batch.lens().iter().map(|&l| l as u64 * m as u64).sum();
    stats.padded_lanes += (cols * lanes * m) as u64 - real;
}

#[inline(always)]
fn bytes_as_i8(b: &[u8]) -> &[i8] {
    // SAFETY: u8 and i8 have identical layout.
    unsafe { std::slice::from_raw_parts(b.as_ptr() as *const i8, b.len()) }
}

macro_rules! batch_wrapper {
    ($name:ident, $en:ty, $($feat:literal)?) => {
        $(#[target_feature(enable = $feat)])?
        unsafe fn $name(
            query: &[u8],
            batch: &DbBatch,
            scoring: &Scoring,
            gaps: GapModel,
            stats: &mut KernelStats,
            out: &mut Vec<LaneScore>,
        ) {
            batch_kernel::<$en>(query, batch, scoring, gaps, stats, out)
        }
    };
}

batch_wrapper!(batch_scalar, swsimd_simd::Scalar,);
#[cfg(target_arch = "x86_64")]
batch_wrapper!(batch_sse41, swsimd_simd::Sse41, "sse4.1,ssse3");
#[cfg(target_arch = "x86_64")]
batch_wrapper!(batch_avx2, swsimd_simd::Avx2, "avx2");
#[cfg(target_arch = "x86_64")]
batch_wrapper!(
    batch_avx512,
    swsimd_simd::Avx512,
    "avx512f,avx512bw,avx512vl,avx512vbmi"
);

/// Number of 8-bit lanes (and therefore required batch width) for an
/// engine kind.
pub fn lanes_for(engine: EngineKind) -> usize {
    match engine {
        EngineKind::Scalar | EngineKind::Sse41 => 16,
        EngineKind::Avx2 => 32,
        EngineKind::Avx512 => 64,
    }
}

/// Score one query against one transposed batch with the 8-bit
/// inter-sequence kernel, appending per-sequence results to `out`.
///
/// The batch must have been built with [`lanes_for`]`(engine)` lanes.
/// Falls back to the scalar engine if `engine` is unavailable.
pub fn batch_score(
    engine: EngineKind,
    query: &[u8],
    batch: &DbBatch,
    scoring: &Scoring,
    gaps: GapModel,
    stats: &mut KernelStats,
    out: &mut Vec<LaneScore>,
) {
    let engine = if engine.is_available() {
        engine
    } else {
        EngineKind::Scalar
    };
    // SAFETY: availability checked above.
    unsafe {
        match engine {
            EngineKind::Scalar => batch_scalar(query, batch, scoring, gaps, stats, out),
            #[cfg(target_arch = "x86_64")]
            EngineKind::Sse41 => batch_sse41(query, batch, scoring, gaps, stats, out),
            #[cfg(target_arch = "x86_64")]
            EngineKind::Avx2 => batch_avx2(query, batch, scoring, gaps, stats, out),
            #[cfg(target_arch = "x86_64")]
            EngineKind::Avx512 => batch_avx512(query, batch, scoring, gaps, stats, out),
            #[cfg(not(target_arch = "x86_64"))]
            _ => batch_scalar(query, batch, scoring, gaps, stats, out),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::GapPenalties;
    use crate::scalar_ref::sw_scalar;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use swsimd_matrices::{blosum62, Alphabet};
    use swsimd_seq::{BatchedDatabase, Database, SeqRecord};

    fn mk_db(seqs: Vec<Vec<u8>>) -> Database {
        let records = seqs
            .into_iter()
            .enumerate()
            .map(|(i, s)| SeqRecord::new(format!("s{i}"), s))
            .collect();
        Database::from_records(records, &Alphabet::protein())
    }

    fn rand_ascii(rng: &mut StdRng, len: usize) -> Vec<u8> {
        (0..len)
            .map(|_| swsimd_matrices::PROTEIN_LETTERS[rng.gen_range(0..20)])
            .collect()
    }

    #[test]
    fn batch_matches_scalar_reference_all_engines() {
        let mut rng = StdRng::seed_from_u64(11);
        let scoring = Scoring::matrix(blosum62());
        let gaps = GapModel::Affine(GapPenalties::new(11, 1));
        let alphabet = Alphabet::protein();

        let seqs: Vec<Vec<u8>> = (0..70)
            .map(|_| {
                let l = rng.gen_range(1..40);
                rand_ascii(&mut rng, l)
            })
            .collect();
        let db = mk_db(seqs);
        let query = alphabet.encode(&rand_ascii(&mut rng, 25));

        for engine in EngineKind::available() {
            let batched = BatchedDatabase::build(&db, lanes_for(engine), true);
            let mut out = Vec::new();
            let mut stats = KernelStats::default();
            for b in batched.batches() {
                batch_score(engine, &query, b, &scoring, gaps, &mut stats, &mut out);
            }
            assert_eq!(out.len(), db.len());
            for ls in &out {
                assert!(!ls.saturated, "{engine:?}: unexpected saturation");
                let want = sw_scalar(
                    &query,
                    &db.encoded(ls.db_index as usize).idx,
                    &scoring,
                    gaps,
                )
                .score;
                assert_eq!(ls.score, want, "{engine:?} seq {}", ls.db_index);
            }
        }
    }

    #[test]
    fn fixed_scoring_batch() {
        let mut rng = StdRng::seed_from_u64(23);
        let scoring = Scoring::Fixed {
            r#match: 3,
            mismatch: -2,
        };
        let gaps = GapModel::Linear { gap: 2 };
        let alphabet = Alphabet::protein();
        let seqs: Vec<Vec<u8>> = (0..20)
            .map(|_| {
                let l = rng.gen_range(1..30);
                rand_ascii(&mut rng, l)
            })
            .collect();
        let db = mk_db(seqs);
        let query = alphabet.encode(&rand_ascii(&mut rng, 12));
        for engine in EngineKind::available() {
            let batched = BatchedDatabase::build(&db, lanes_for(engine), false);
            let mut out = Vec::new();
            let mut stats = KernelStats::default();
            for b in batched.batches() {
                batch_score(engine, &query, b, &scoring, gaps, &mut stats, &mut out);
            }
            for ls in &out {
                let want = sw_scalar(
                    &query,
                    &db.encoded(ls.db_index as usize).idx,
                    &scoring,
                    gaps,
                )
                .score;
                assert_eq!(ls.score, want, "{engine:?} seq {}", ls.db_index);
            }
        }
    }

    #[test]
    fn saturation_flagged_per_lane() {
        // One long identical sequence (saturates), many short ones (fine).
        let alphabet = Alphabet::protein();
        let hot = vec![b'W'; 300];
        let mut seqs = vec![hot.clone()];
        for _ in 0..10 {
            seqs.push(b"ARND".to_vec());
        }
        let db = mk_db(seqs);
        let query = alphabet.encode(&hot);
        let scoring = Scoring::matrix(blosum62());
        let gaps = GapModel::default_affine();
        let engine = EngineKind::best();
        let batched = BatchedDatabase::build(&db, lanes_for(engine), false);
        let mut out = Vec::new();
        let mut stats = KernelStats::default();
        for b in batched.batches() {
            batch_score(engine, &query, b, &scoring, gaps, &mut stats, &mut out);
        }
        let hot_lane = out.iter().find(|l| l.db_index == 0).unwrap();
        assert!(hot_lane.saturated);
        assert!(out.iter().filter(|l| l.db_index != 0).all(|l| !l.saturated));
    }

    #[test]
    fn empty_query_scores_zero() {
        let db = mk_db(vec![b"ARN".to_vec()]);
        let engine = EngineKind::best();
        let batched = BatchedDatabase::build(&db, lanes_for(engine), false);
        let mut out = Vec::new();
        let mut stats = KernelStats::default();
        for b in batched.batches() {
            batch_score(
                engine,
                &[],
                b,
                &Scoring::matrix(blosum62()),
                GapModel::default_affine(),
                &mut stats,
                &mut out,
            );
        }
        assert!(out.iter().all(|l| l.score == 0));
    }

    #[test]
    fn padding_lanes_never_score() {
        // A batch with a single short sequence: all other lanes padded.
        let db = mk_db(vec![b"WWWWW".to_vec()]);
        let engine = EngineKind::best();
        let batched = BatchedDatabase::build(&db, lanes_for(engine), false);
        let query = Alphabet::protein().encode(b"WWWWW");
        let mut out = Vec::new();
        let mut stats = KernelStats::default();
        batch_score(
            engine,
            &query,
            &batched.batches()[0],
            &Scoring::matrix(blosum62()),
            GapModel::default_affine(),
            &mut stats,
            &mut out,
        );
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].score, 55); // 5 × W:W = 5 × 11
    }
}
