//! Kernel operation counters.
//!
//! Kernels increment these as they run (per diagonal / per vector step,
//! so the overhead is a few scalar adds per 32+ cells). The counters
//! drive `swsimd-perf`'s top-down pipeline model — the repo's stand-in
//! for the paper's VTune analysis (Fig 12) — and the segment-padding
//! census backing the §III-B "roughly 15%" claim.

/// Operation counts accumulated across one or more alignments.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct KernelStats {
    /// Logical DP cells computed (the GCUPS numerator).
    pub cells: u64,
    /// Cells computed inside vector lanes, including masked padding lanes.
    pub vector_lane_slots: u64,
    /// Cells computed by the short-segment scalar fallback (Fig 3).
    pub scalar_cells: u64,
    /// Vector lanes that were masked off (zero-padding of ragged tails).
    pub padded_lanes: u64,
    /// Anti-diagonals processed.
    pub diagonals: u64,
    /// Inner vector iterations.
    pub vector_steps: u64,
    /// Hardware gather instructions issued.
    pub gather_ops: u64,
    /// Emulated (scalar-loop) gathers — the missing 8-bit gather.
    pub emulated_gathers: u64,
    /// Shuffle/LUT score lookups (`vpshufb`/`vpermb` path, Fig 5).
    pub lut_ops: u64,
    /// Vector loads issued by the kernel proper.
    pub vector_loads: u64,
    /// Vector stores issued by the kernel proper.
    pub vector_stores: u64,
    /// Speculation-correction loop iterations (striped/scan baselines
    /// only; always zero for the deterministic diagonal kernel).
    pub correction_loops: u64,
    /// Adaptive-precision reruns (8-bit saturated, promoted to 16/32).
    pub promotions: u64,
    /// Traceback direction bytes written.
    pub traceback_cells: u64,
}

impl KernelStats {
    /// Fold another stats block into this one.
    pub fn merge(&mut self, o: &KernelStats) {
        self.cells += o.cells;
        self.vector_lane_slots += o.vector_lane_slots;
        self.scalar_cells += o.scalar_cells;
        self.padded_lanes += o.padded_lanes;
        self.diagonals += o.diagonals;
        self.vector_steps += o.vector_steps;
        self.gather_ops += o.gather_ops;
        self.emulated_gathers += o.emulated_gathers;
        self.lut_ops += o.lut_ops;
        self.vector_loads += o.vector_loads;
        self.vector_stores += o.vector_stores;
        self.correction_loops += o.correction_loops;
        self.promotions += o.promotions;
        self.traceback_cells += o.traceback_cells;
    }

    /// Fraction of vector lane slots that were padding — the quantity
    /// the paper bounds at "roughly around 15%" (§III-B).
    pub fn padding_fraction(&self) -> f64 {
        if self.vector_lane_slots == 0 {
            0.0
        } else {
            self.padded_lanes as f64 / self.vector_lane_slots as f64
        }
    }

    /// Fraction of cells handled by the scalar fallback.
    pub fn scalar_fraction(&self) -> f64 {
        if self.cells == 0 {
            0.0
        } else {
            self.scalar_cells as f64 / self.cells as f64
        }
    }

    /// Fraction of vector lane slots that carried useful work — the
    /// complement of [`KernelStats::padding_fraction`], reported by the
    /// continuous perf baseline as batch lane utilization.
    pub fn lane_utilization(&self) -> f64 {
        if self.vector_lane_slots == 0 {
            0.0
        } else {
            1.0 - self.padding_fraction()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_adds() {
        let mut a = KernelStats {
            cells: 10,
            gather_ops: 2,
            ..Default::default()
        };
        let b = KernelStats {
            cells: 5,
            gather_ops: 1,
            promotions: 1,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.cells, 15);
        assert_eq!(a.gather_ops, 3);
        assert_eq!(a.promotions, 1);
    }

    #[test]
    fn fractions() {
        let s = KernelStats {
            cells: 100,
            scalar_cells: 20,
            vector_lane_slots: 96,
            padded_lanes: 16,
            ..Default::default()
        };
        assert!((s.padding_fraction() - 16.0 / 96.0).abs() < 1e-12);
        assert!((s.scalar_fraction() - 0.2).abs() < 1e-12);
        assert!((s.lane_utilization() - 80.0 / 96.0).abs() < 1e-12);
    }

    #[test]
    fn empty_fractions_are_zero() {
        let s = KernelStats::default();
        assert_eq!(s.padding_fraction(), 0.0);
        assert_eq!(s.scalar_fraction(), 0.0);
        assert_eq!(s.lane_utilization(), 0.0);
    }
}
