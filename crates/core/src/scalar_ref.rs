//! Reference Smith-Waterman: a plain, full-matrix scalar implementation.
//!
//! This is the correctness oracle every vector kernel is tested against,
//! and the "no vector extensions" baseline in the figure harness. It
//! implements the paper's Eq. 1 recurrence with either gap model,
//! optional traceback, and the exact tie-breaking rules the vector
//! kernels use (priority F > E > diag, H forced to source "stop" when
//! its value is zero), so paths — not just scores — are comparable.

use crate::params::{AlignResult, Alignment, GapModel, Op, Precision, Scoring};

/// Direction-code bits shared with the vector traceback kernel.
pub(crate) mod dir {
    /// Mask for the H-source field.
    pub const H_MASK: i32 = 0b11;
    /// H came from nowhere (cell value 0) — stop.
    pub const H_ZERO: i32 = 0;
    /// H came from the diagonal.
    pub const H_DIAG: i32 = 1;
    /// H came from E (horizontal gap state).
    pub const H_E: i32 = 2;
    /// H came from F (vertical gap state).
    pub const H_F: i32 = 3;
    /// E was an extension (came from E, not from H-open).
    pub const E_EXT: i32 = 4;
    /// F was an extension.
    pub const F_EXT: i32 = 8;
}

const NEG: i32 = i32::MIN / 4;

/// Score-only scalar Smith-Waterman. Returns the optimal local score
/// and the coordinates of the first maximal cell in row-major order.
pub fn sw_scalar(query: &[u8], target: &[u8], scoring: &Scoring, gaps: GapModel) -> AlignResult {
    let (m, n) = (query.len(), target.len());
    if m == 0 || n == 0 {
        return AlignResult::score_only(0, Precision::I32);
    }
    let (go, ge) = open_extend(gaps);

    // One rolling row of H and of the vertical gap state F (both indexed
    // by j); the horizontal gap state E is carried along the row.
    let mut h_row = vec![0i32; n + 1];
    let mut f_row = vec![NEG; n + 1];
    let mut best = 0i32;
    let mut best_cell = (0usize, 0usize);

    for i in 1..=m {
        let mut h_diag = 0i32; // H(i-1, j-1)
        let mut h_left = 0i32; // H(i, j-1); boundary H(i, 0) = 0
        let mut e = NEG; // E(i, 0)
        let qi = query[i - 1];
        for j in 1..=n {
            let s = scoring.score(qi, target[j - 1]);
            // E(i,j) = max(E(i,j-1) - ge, H(i,j-1) - go)
            e = (e - ge).max(h_left - go);
            // F(i,j) = max(F(i-1,j) - ge, H(i-1,j) - go); h_row[j] still
            // holds row i-1 here.
            let f = (f_row[j] - ge).max(h_row[j] - go);
            f_row[j] = f;
            let h = 0.max(h_diag + s).max(e).max(f);
            h_diag = h_row[j];
            h_row[j] = h;
            h_left = h;
            if h > best {
                best = h;
                best_cell = (i, j);
            }
        }
    }
    AlignResult {
        score: best,
        end: Some((best_cell.0, best_cell.1)),
        alignment: None,
        precision_used: Precision::I32,
    }
}

fn open_extend(gaps: GapModel) -> (i32, i32) {
    match gaps {
        GapModel::Linear { gap } => (gap, gap),
        GapModel::Affine(g) => (g.open, g.extend),
    }
}

/// Full scalar Smith-Waterman with traceback.
///
/// Stores an `m×n` byte matrix of direction codes (see [`dir`]) and
/// walks it from the best cell.
pub fn sw_scalar_traceback(
    query: &[u8],
    target: &[u8],
    scoring: &Scoring,
    gaps: GapModel,
) -> AlignResult {
    let (m, n) = (query.len(), target.len());
    if m == 0 || n == 0 {
        return AlignResult::score_only(0, Precision::I32);
    }
    let (go, ge) = open_extend(gaps);

    let mut h_row = vec![0i32; n + 1];
    let mut f_row = vec![NEG; n + 1];
    let mut dirs = vec![0u8; m * n];
    let mut best = 0i32;
    let mut best_cell = (0usize, 0usize);

    for i in 1..=m {
        let mut h_diag = 0i32;
        let mut h_left = 0i32;
        let mut e = NEG;
        let qi = query[i - 1];
        for j in 1..=n {
            let s = scoring.score(qi, target[j - 1]);
            let e_ext = e - ge;
            let e_open = h_left - go;
            e = e_ext.max(e_open);
            let f_ext = f_row[j] - ge;
            let f_open = h_row[j] - go;
            let f = f_ext.max(f_open);
            f_row[j] = f;
            let diag = h_diag + s;
            let h = 0.max(diag).max(e).max(f);

            // Same priority as the vector kernel: F > E > diag, zero last.
            let mut code = dir::H_ZERO;
            if h == diag {
                code = dir::H_DIAG;
            }
            if h == e {
                code = dir::H_E;
            }
            if h == f {
                code = dir::H_F;
            }
            if h == 0 {
                code = dir::H_ZERO;
            }
            if e_ext > e_open {
                code |= dir::E_EXT;
            }
            if f_ext > f_open {
                code |= dir::F_EXT;
            }
            dirs[(i - 1) * n + (j - 1)] = code as u8;

            h_diag = h_row[j];
            h_row[j] = h;
            h_left = h;
            if h > best {
                best = h;
                best_cell = (i, j);
            }
        }
    }

    let alignment = (best > 0).then(|| walk(&dirs, n, best_cell.0, best_cell.1));
    AlignResult {
        score: best,
        end: Some(best_cell),
        alignment,
        precision_used: Precision::I32,
    }
}

/// Walk a row-major direction matrix from cell `(i, j)` (1-based).
pub(crate) fn walk(dirs: &[u8], n: usize, mut i: usize, mut j: usize) -> Alignment {
    let (ie, je) = (i, j);
    let mut ops = Vec::new();
    /// Walker states: in H, or inside an E / F gap run.
    #[derive(PartialEq, Clone, Copy)]
    enum St {
        H,
        E,
        F,
    }
    let mut st = St::H;
    while i > 0 && j > 0 {
        let code = dirs[(i - 1) * n + (j - 1)] as i32;
        match st {
            St::H => match code & dir::H_MASK {
                dir::H_ZERO => break,
                dir::H_DIAG => {
                    ops.push(Op::Match);
                    i -= 1;
                    j -= 1;
                }
                dir::H_E => st = St::E,
                _ => st = St::F,
            },
            St::E => {
                ops.push(Op::Delete);
                let ext = code & dir::E_EXT != 0;
                j -= 1;
                if !ext {
                    st = St::H;
                }
            }
            St::F => {
                ops.push(Op::Insert);
                let ext = code & dir::F_EXT != 0;
                i -= 1;
                if !ext {
                    st = St::H;
                }
            }
        }
    }
    ops.reverse();
    Alignment {
        query_start: i,
        query_end: ie,
        target_start: j,
        target_end: je,
        ops,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::GapPenalties;
    use swsimd_matrices::{blosum62, Alphabet};

    fn enc(s: &[u8]) -> Vec<u8> {
        Alphabet::protein().encode(s)
    }

    fn b62() -> Scoring {
        Scoring::matrix(blosum62())
    }

    fn affine() -> GapModel {
        GapModel::Affine(GapPenalties::new(11, 1))
    }

    #[test]
    fn identical_sequences_score_sum_of_diagonal() {
        let q = enc(b"ARNDCQEGHILKMFPSTWYV");
        let r = sw_scalar(&q, &q, &b62(), affine());
        let want: i32 = q
            .iter()
            .map(|&a| blosum62().score_by_index(a, a) as i32)
            .sum();
        assert_eq!(r.score, want);
        assert_eq!(r.end, Some((20, 20)));
    }

    #[test]
    fn empty_inputs() {
        assert_eq!(sw_scalar(&[], &[1, 2], &b62(), affine()).score, 0);
        assert_eq!(sw_scalar(&[1], &[], &b62(), affine()).score, 0);
        assert_eq!(sw_scalar_traceback(&[], &[], &b62(), affine()).score, 0);
    }

    #[test]
    fn unrelated_sequences_zero_or_small() {
        // P vs W scores -4; best local score of all-mismatch pair is 0.
        let q = enc(b"PPPP");
        let t = enc(b"WWWW");
        assert_eq!(sw_scalar(&q, &t, &b62(), affine()).score, 0);
    }

    #[test]
    fn known_small_alignment() {
        // Classic textbook check with fixed scores, linear gaps:
        // q=TGTTACGG t=GGTTGACTA, match=3 mismatch=-3 gap=2 → best 13.
        let a = Alphabet::dna();
        let q = a.encode(b"TGTTACGG");
        let t = a.encode(b"GGTTGACTA");
        let scoring = Scoring::Fixed {
            r#match: 3,
            mismatch: -3,
        };
        let r = sw_scalar(&q, &t, &scoring, GapModel::Linear { gap: 2 });
        assert_eq!(r.score, 13);
    }

    #[test]
    fn traceback_score_matches_score_only() {
        let q = enc(b"MKVLAADTWGHK");
        let t = enc(b"MKVLADTWGHKRRR");
        let a = sw_scalar(&q, &t, &b62(), affine());
        let b = sw_scalar_traceback(&q, &t, &b62(), affine());
        assert_eq!(a.score, b.score);
        assert_eq!(a.end, b.end);
    }

    #[test]
    fn traceback_rescores_to_reported_score() {
        let q = enc(b"MKVLAADTWGHKMKVLAADTWGHK");
        let t = enc(b"MKVLADTWWGHKXMKVLAADTGHK");
        let r = sw_scalar_traceback(&q, &t, &b62(), affine());
        let aln = r.alignment.expect("positive score must have a path");
        assert_eq!(aln.rescore(&q, &t, &b62(), affine()), r.score);
    }

    #[test]
    fn traceback_with_gap() {
        // Force a deletion: query matches target with 3 residues missing.
        let q = enc(b"ARNDCQEGHILKMFPSTWYV");
        let mut t_raw = b"ARNDCQEGHILKMFPSTWYV".to_vec();
        t_raw.splice(10..10, b"GGG".iter().copied());
        let t = enc(&t_raw);
        let r = sw_scalar_traceback(&q, &t, &b62(), affine());
        let aln = r.alignment.unwrap();
        assert!(aln.ops.contains(&Op::Delete), "cigar {}", aln.cigar());
        assert_eq!(aln.rescore(&q, &t, &b62(), affine()), r.score);
    }

    #[test]
    fn traceback_with_insertion() {
        let mut q_raw = b"ARNDCQEGHILKMFPSTWYV".to_vec();
        q_raw.splice(8..8, b"WW".iter().copied());
        let q = enc(&q_raw);
        let t = enc(b"ARNDCQEGHILKMFPSTWYV");
        let r = sw_scalar_traceback(&q, &t, &b62(), affine());
        let aln = r.alignment.unwrap();
        assert!(aln.ops.contains(&Op::Insert), "cigar {}", aln.cigar());
        assert_eq!(aln.rescore(&q, &t, &b62(), affine()), r.score);
    }

    #[test]
    fn linear_vs_affine_ordering() {
        // With gap=extend, linear gaps are never worse than affine.
        let q = enc(b"MKVLAADTWGHKAAA");
        let t = enc(b"MKVDTWGHKAAA");
        let lin = sw_scalar(&q, &t, &b62(), GapModel::Linear { gap: 1 }).score;
        let aff = sw_scalar(&q, &t, &b62(), GapModel::Affine(GapPenalties::new(11, 1))).score;
        assert!(lin >= aff, "linear {lin} < affine {aff}");
    }

    #[test]
    fn score_is_nonnegative_and_monotone_in_match_bonus() {
        let q = enc(b"MKV");
        let t = enc(b"WWW");
        for mm in [-10, -3, -1] {
            let s = Scoring::Fixed {
                r#match: 5,
                mismatch: mm,
            };
            let r = sw_scalar(&q, &t, &s, affine());
            assert!(r.score >= 0);
        }
    }

    #[test]
    fn local_alignment_ignores_flanks() {
        // The common core should dominate regardless of junk flanks.
        let core = b"DTWGHKMKVL";
        let q = enc(&[b"PPPP".as_ref(), core, b"CCCC".as_ref()].concat());
        let t = enc(&[b"WWWW".as_ref(), core, b"HHHH".as_ref()].concat());
        let just_core = sw_scalar(&enc(core), &enc(core), &b62(), affine()).score;
        let flanked = sw_scalar(&q, &t, &b62(), affine()).score;
        assert!(flanked >= just_core);
    }
}
