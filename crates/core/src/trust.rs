//! Circuit-breaker trust state for SIMD backends.
//!
//! The dispatch layer assumes a backend that *exists* also computes
//! *correct* scores — an assumption that buggy steppings, miscompiled
//! `#[target_feature]` wrappers, or a bad emulated-gather path can
//! silently violate. This module tracks a per-engine trust state that
//! dispatch consults on every call:
//!
//! * **Trusted** — the engine serves queries (initial state).
//! * **Probation** — the engine is being re-tested; dispatch avoids it
//!   until the self-test battery passes again.
//! * **Demoted** — the breaker is open: strikes (shadow-verification
//!   mismatches, worker panics attributed to the engine, or boot
//!   self-test failures) reached the threshold. Dispatch routes to the
//!   next weaker available engine.
//!
//! The ladder always terminates at the scalar reference engine: scalar
//! cannot be demoted, so demotion degrades throughput, never
//! availability. Re-promotion is deliberate (never automatic): a
//! demoted engine must pass the [`crate::selftest`] battery on
//! probation before dispatch trusts it again.
//!
//! [`TrustLadder`] is an ordinary value so tests can exercise the
//! breaker on private instances; the process-wide instance consulted
//! by dispatch is [`global`].

use std::sync::atomic::{AtomicU32, AtomicU64, AtomicU8, Ordering::Relaxed};
use std::sync::OnceLock;

use swsimd_simd::EngineKind;

/// Strikes against one engine before the breaker opens and dispatch
/// demotes it (see [`TrustLadder::with_threshold`] to override).
pub const DEFAULT_STRIKE_THRESHOLD: u32 = 3;

/// Trust state of one engine (see module docs).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TrustState {
    /// Serving queries.
    Trusted,
    /// Demoted and being re-tested; not yet serving.
    Probation,
    /// The breaker is open: dispatch routes around this engine.
    Demoted,
}

const TRUSTED: u8 = 0;
const PROBATION: u8 = 1;
const DEMOTED: u8 = 2;

fn idx(e: EngineKind) -> usize {
    match e {
        EngineKind::Scalar => 0,
        EngineKind::Sse41 => 1,
        EngineKind::Avx2 => 2,
        EngineKind::Avx512 => 3,
    }
}

/// Per-engine circuit-breaker state: strike counters and the demotion
/// ladder dispatch walks. All operations are lock-free and safe to
/// call from any worker thread.
#[derive(Debug, Default)]
pub struct TrustLadder {
    states: [AtomicU8; 4],
    strikes: [AtomicU32; 4],
    threshold: u32,
    demotions: AtomicU64,
    repromotions: AtomicU64,
}

impl TrustLadder {
    /// A fresh ladder (everything trusted) with the default strike
    /// threshold.
    pub fn new() -> Self {
        Self::with_threshold(DEFAULT_STRIKE_THRESHOLD)
    }

    /// A fresh ladder demoting an engine after `threshold` strikes
    /// (clamped to at least 1).
    pub fn with_threshold(threshold: u32) -> Self {
        Self {
            states: Default::default(),
            strikes: Default::default(),
            threshold: threshold.max(1),
            demotions: AtomicU64::new(0),
            repromotions: AtomicU64::new(0),
        }
    }

    /// The configured strike threshold.
    pub fn threshold(&self) -> u32 {
        self.threshold
    }

    /// Current trust state of `engine`.
    pub fn state(&self, engine: EngineKind) -> TrustState {
        match self.states[idx(engine)].load(Relaxed) {
            TRUSTED => TrustState::Trusted,
            PROBATION => TrustState::Probation,
            _ => TrustState::Demoted,
        }
    }

    /// Accumulated strikes against `engine` since its last
    /// (re-)promotion.
    pub fn strikes(&self, engine: EngineKind) -> u32 {
        self.strikes[idx(engine)].load(Relaxed)
    }

    /// Total demotion events recorded by this ladder.
    pub fn demotions(&self) -> u64 {
        self.demotions.load(Relaxed)
    }

    /// Total successful probation re-promotions.
    pub fn repromotions(&self) -> u64 {
        self.repromotions.load(Relaxed)
    }

    /// True if dispatch may use `engine`: available on this CPU and
    /// currently trusted. Scalar is always usable.
    pub fn usable(&self, engine: EngineKind) -> bool {
        engine == EngineKind::Scalar
            || (engine.is_available() && self.state(engine) == TrustState::Trusted)
    }

    /// The engine dispatch actually runs for a request of `requested`:
    /// the strongest engine no wider than the request that is available
    /// *and* trusted. Terminates at scalar, which is always usable.
    pub fn effective(&self, requested: EngineKind) -> EngineKind {
        let start = idx(requested);
        for &e in EngineKind::ALL[..=start].iter().rev() {
            if self.usable(e) {
                return e;
            }
        }
        EngineKind::Scalar
    }

    /// Record one strike (shadow mismatch or attributed worker panic)
    /// against `engine`. Returns `true` when this strike opened the
    /// breaker (the engine transitioned to [`TrustState::Demoted`]).
    /// Strikes against scalar are counted but never demote — the
    /// reference engine is the floor of the ladder.
    pub fn record_strike(&self, engine: EngineKind) -> bool {
        let i = idx(engine);
        let strikes = self.strikes[i].fetch_add(1, Relaxed) + 1;
        if engine == EngineKind::Scalar || strikes < self.threshold {
            return false;
        }
        self.open_breaker(engine, "strike_threshold")
    }

    /// Immediately demote `engine` (boot self-test failure). No-op for
    /// scalar. Returns `true` if the engine was not already demoted.
    pub fn mark_failed(&self, engine: EngineKind, reason: &'static str) -> bool {
        if engine == EngineKind::Scalar {
            return false;
        }
        self.open_breaker(engine, reason)
    }

    fn open_breaker(&self, engine: EngineKind, reason: &'static str) -> bool {
        let was = self.states[idx(engine)].swap(DEMOTED, Relaxed);
        if was == DEMOTED {
            return false;
        }
        self.demotions.fetch_add(1, Relaxed);
        let to = self.effective(engine);
        swsimd_obs::event!(
            "backend_demoted",
            "engine" => engine.name(),
            "to" => to.name(),
            "strikes" => u64::from(self.strikes(engine)),
            "reason" => reason,
        );
        swsimd_obs::global()
            .counter(
                "swsimd_backend_demotions_total",
                "SIMD backends demoted by the kernel trust breaker.",
                &[("engine", engine.name())],
            )
            .inc();
        true
    }

    /// Put a demoted engine on probation and re-admit it iff `passed`
    /// (the caller runs the self-test battery — see
    /// [`crate::selftest::probation_retest`] for the wired-up form).
    /// Returns `true` on re-promotion. Trusted engines return `true`
    /// without state changes.
    pub fn probation_outcome(&self, engine: EngineKind, passed: bool) -> bool {
        let i = idx(engine);
        if self.states[i].load(Relaxed) == TRUSTED {
            return true;
        }
        self.states[i].store(PROBATION, Relaxed);
        if passed {
            self.strikes[i].store(0, Relaxed);
            self.states[i].store(TRUSTED, Relaxed);
            self.repromotions.fetch_add(1, Relaxed);
            swsimd_obs::event!("backend_repromoted", "engine" => engine.name());
            true
        } else {
            self.states[i].store(DEMOTED, Relaxed);
            swsimd_obs::event!(
                "selftest_failed",
                "engine" => engine.name(),
                "stage" => "probation",
            );
            false
        }
    }

    /// Engines currently usable for dispatch, weakest first.
    pub fn trusted_engines(&self) -> Vec<EngineKind> {
        EngineKind::ALL
            .into_iter()
            .filter(|&e| self.usable(e))
            .collect()
    }

    /// Restore every engine to [`TrustState::Trusted`] with zero
    /// strikes (test hygiene for the [`global`] instance).
    pub fn reset(&self) {
        for i in 0..4 {
            self.states[i].store(TRUSTED, Relaxed);
            self.strikes[i].store(0, Relaxed);
        }
    }
}

/// The process-wide trust ladder consulted by
/// [`crate::diag::dispatch`] on every kernel call.
pub fn global() -> &'static TrustLadder {
    static LADDER: OnceLock<TrustLadder> = OnceLock::new();
    LADDER.get_or_init(TrustLadder::new)
}

/// The engine the global ladder would dispatch for `requested`
/// (availability- and trust-routed).
pub fn effective_engine(requested: EngineKind) -> EngineKind {
    let avail = if requested.is_available() {
        requested
    } else {
        EngineKind::Scalar
    };
    global().effective(avail)
}

/// Typed admission check for a user-forced engine: errors when the
/// engine is missing on this CPU or currently demoted by the trust
/// breaker, instead of silently falling back to scalar.
pub fn check_engine_usable(engine: EngineKind) -> Result<(), crate::error::AlignError> {
    if !engine.is_available() {
        return Err(crate::error::AlignError::EngineUnavailable {
            requested: engine,
            reason: "not supported by this CPU",
        });
    }
    if !global().usable(engine) {
        return Err(crate::error::AlignError::EngineUnavailable {
            requested: engine,
            reason: "demoted by the kernel trust breaker (failed self-test or shadow verification)",
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_ladder_trusts_everything() {
        let l = TrustLadder::new();
        for e in EngineKind::ALL {
            assert_eq!(l.state(e), TrustState::Trusted);
            assert_eq!(l.strikes(e), 0);
        }
        assert_eq!(l.effective(EngineKind::Scalar), EngineKind::Scalar);
        assert_eq!(l.demotions(), 0);
    }

    #[test]
    fn strikes_below_threshold_do_not_demote() {
        let l = TrustLadder::with_threshold(3);
        assert!(!l.record_strike(EngineKind::Avx2));
        assert!(!l.record_strike(EngineKind::Avx2));
        assert_eq!(l.state(EngineKind::Avx2), TrustState::Trusted);
        assert!(l.record_strike(EngineKind::Avx2), "third strike demotes");
        assert_eq!(l.state(EngineKind::Avx2), TrustState::Demoted);
        assert_eq!(l.demotions(), 1);
        // Further strikes don't re-count the demotion.
        assert!(!l.record_strike(EngineKind::Avx2));
        assert_eq!(l.demotions(), 1);
    }

    #[test]
    fn scalar_never_demotes() {
        let l = TrustLadder::with_threshold(1);
        for _ in 0..10 {
            assert!(!l.record_strike(EngineKind::Scalar));
        }
        assert_eq!(l.state(EngineKind::Scalar), TrustState::Trusted);
        assert!(!l.mark_failed(EngineKind::Scalar, "test"));
        assert!(l.usable(EngineKind::Scalar));
    }

    #[test]
    fn effective_walks_down_past_demoted_engines() {
        let l = TrustLadder::with_threshold(1);
        // Only meaningful on hosts with the wide engines; the walk
        // itself is what we assert.
        l.mark_failed(EngineKind::Avx512, "test");
        let eff = l.effective(EngineKind::Avx512);
        assert_ne!(eff, EngineKind::Avx512);
        l.mark_failed(EngineKind::Avx2, "test");
        l.mark_failed(EngineKind::Sse41, "test");
        assert_eq!(l.effective(EngineKind::Avx512), EngineKind::Scalar);
        assert_eq!(l.effective(EngineKind::Scalar), EngineKind::Scalar);
        assert_eq!(l.trusted_engines(), vec![EngineKind::Scalar]);
    }

    #[test]
    fn probation_repromotes_only_on_pass() {
        let l = TrustLadder::with_threshold(1);
        l.mark_failed(EngineKind::Avx2, "test");
        assert!(!l.probation_outcome(EngineKind::Avx2, false));
        assert_eq!(l.state(EngineKind::Avx2), TrustState::Demoted);
        assert!(l.probation_outcome(EngineKind::Avx2, true));
        assert_eq!(l.state(EngineKind::Avx2), TrustState::Trusted);
        assert_eq!(l.strikes(EngineKind::Avx2), 0, "strikes reset");
        assert_eq!(l.repromotions(), 1);
    }

    #[test]
    fn reset_restores_trust() {
        let l = TrustLadder::with_threshold(1);
        l.record_strike(EngineKind::Avx512);
        l.reset();
        assert_eq!(l.state(EngineKind::Avx512), TrustState::Trusted);
        assert_eq!(l.strikes(EngineKind::Avx512), 0);
    }
}
