//! Boot-time golden-vector self-test for every SIMD backend.
//!
//! A backend that `is_x86_feature_detected!` reports as present can
//! still compute wrong scores: buggy steppings, a miscompiled
//! `#[target_feature]` wrapper, a broken emulated-gather path. The
//! battery here runs a small set of golden alignments plus seeded
//! random pairs through every available (engine × width × score/tb)
//! dispatch entry point and checks each result against the scalar
//! reference ([`crate::scalar_ref`]).
//!
//! [`boot`] runs the battery once per process (first caller pays,
//! everyone else reads the cached report) and marks failing backends
//! demoted in the global [`crate::trust`] ladder *before* the first
//! query can reach them. [`probation_retest`] re-runs the battery to
//! re-admit a demoted backend — the only path back to trusted.
//!
//! The battery probes engines directly (bypassing trust routing), so a
//! demoted engine really is re-tested rather than silently routed to
//! its fallback.

use std::sync::OnceLock;

use swsimd_simd::EngineKind;

use crate::diag::dispatch::{diag_score_raw, diag_traceback_raw};
use crate::params::{GapModel, GapPenalties, Precision, Scoring};
use crate::scalar_ref::sw_scalar;
use crate::stats::KernelStats;
use crate::trust;

/// Seed for the randomized half of the battery (stable across runs so
/// a failure report is reproducible with `swsimd selftest`).
pub const BATTERY_SEED: u64 = 0x0005_eed0_5e1f_7e57;

/// Seeded random pairs per battery run, in addition to the golden set.
const RANDOM_CASES: usize = 6;

/// Deterministic 64-bit LCG (`swsimd-core` deliberately has no RNG
/// dependency; kernel-quality randomness is not needed here).
struct Lcg(u64);

impl Lcg {
    fn new(seed: u64) -> Self {
        Lcg(seed | 1)
    }
    fn next_u64(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0
    }
    fn below(&mut self, n: usize) -> usize {
        ((self.next_u64() >> 33) as usize) % n
    }
    fn seq(&mut self, len: usize) -> Vec<u8> {
        (0..len).map(|_| self.below(20) as u8).collect()
    }
}

/// One battery case: label, sequences, and scoring parameters.
struct Case {
    label: String,
    query: Vec<u8>,
    target: Vec<u8>,
    scoring: Scoring,
    gaps: GapModel,
}

fn battery_cases() -> Vec<Case> {
    let b62 = Scoring::matrix(swsimd_matrices::blosum62());
    let affine = GapModel::Affine(GapPenalties::new(11, 1));
    let fixed = Scoring::Fixed {
        r#match: 2,
        mismatch: -3,
    };
    let mut cases = vec![
        Case {
            label: "golden/identical-peptide".into(),
            query: (0..24u8).map(|i| i % 20).collect(),
            target: (0..24u8).map(|i| i % 20).collect(),
            scoring: b62.clone(),
            gaps: affine,
        },
        Case {
            label: "golden/internal-gap".into(),
            query: (0..20u8).collect(),
            target: (0..20u8).filter(|&i| !(8..12).contains(&i)).collect(),
            scoring: b62.clone(),
            gaps: affine,
        },
        Case {
            label: "golden/saturating-homopolymer".into(),
            query: vec![0; 64],
            target: vec![0; 64],
            scoring: b62.clone(),
            gaps: affine,
        },
        Case {
            label: "golden/fixed-scoring-linear-gap".into(),
            query: (0..16u8).map(|i| i % 4).collect(),
            target: (0..16u8).map(|i| (i + 1) % 4).collect(),
            scoring: fixed,
            gaps: GapModel::Linear { gap: 2 },
        },
    ];
    let mut rng = Lcg::new(BATTERY_SEED);
    for i in 0..RANDOM_CASES {
        let qlen = 8 + rng.below(56);
        let tlen = 8 + rng.below(56);
        cases.push(Case {
            label: format!("seeded/{i} (seed=0x{BATTERY_SEED:x} qlen={qlen} tlen={tlen})"),
            query: rng.seq(qlen),
            target: rng.seq(tlen),
            scoring: b62.clone(),
            gaps: affine,
        });
    }
    cases
}

fn lane_max(p: Precision) -> i32 {
    match p {
        Precision::I8 => i8::MAX as i32,
        Precision::I16 => i16::MAX as i32,
        _ => i32::MAX,
    }
}

/// One failed battery check, with everything needed to reproduce it.
#[derive(Clone, Debug)]
pub struct CaseFailure {
    /// Engine under test.
    pub engine: EngineKind,
    /// Lane width under test.
    pub precision: Precision,
    /// Whether the traceback entry point (vs score-only) failed.
    pub traceback: bool,
    /// Case label, including the battery seed for seeded cases.
    pub case: String,
    /// Scalar-reference score.
    pub expected: i32,
    /// Score the backend produced.
    pub got: i32,
    /// What went wrong beyond the raw scores (saturation, rescore…).
    pub detail: &'static str,
}

impl std::fmt::Display for CaseFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} w{} {}: case `{}` expected {} got {} ({})",
            self.engine.name(),
            match self.precision {
                Precision::I8 => 8,
                Precision::I16 => 16,
                _ => 32,
            },
            if self.traceback { "tb" } else { "score" },
            self.case,
            self.expected,
            self.got,
            self.detail,
        )
    }
}

/// Battery outcome for one engine.
#[derive(Clone, Debug)]
pub struct EngineOutcome {
    /// Engine tested.
    pub engine: EngineKind,
    /// Checks executed (cases × widths × score/tb).
    pub checks: usize,
    /// Failed checks (empty means the engine passed).
    pub failures: Vec<CaseFailure>,
}

impl EngineOutcome {
    /// True when every check passed.
    pub fn passed(&self) -> bool {
        self.failures.is_empty()
    }
}

/// Full battery report: per-engine outcomes plus the engines that were
/// skipped because this CPU lacks the ISA.
#[derive(Clone, Debug)]
pub struct SelftestReport {
    /// One outcome per engine available on this CPU.
    pub outcomes: Vec<EngineOutcome>,
    /// Engines this CPU cannot run at all (not failures).
    pub skipped: Vec<EngineKind>,
}

impl SelftestReport {
    /// True when every available engine passed.
    pub fn all_passed(&self) -> bool {
        self.outcomes.iter().all(EngineOutcome::passed)
    }

    /// Engines with at least one failed check.
    pub fn failed_engines(&self) -> Vec<EngineKind> {
        self.outcomes
            .iter()
            .filter(|o| !o.passed())
            .map(|o| o.engine)
            .collect()
    }

    /// Total failed checks across all engines.
    pub fn failure_count(&self) -> usize {
        self.outcomes.iter().map(|o| o.failures.len()).sum()
    }
}

/// Run the battery through one engine's dispatch entry points,
/// bypassing trust routing so the probed engine is really the one
/// executing. The engine must be available on this CPU.
pub fn run_battery_for(engine: EngineKind) -> EngineOutcome {
    let mut out = EngineOutcome {
        engine,
        checks: 0,
        failures: Vec::new(),
    };
    for case in battery_cases() {
        let (q, t) = (&case.query, &case.target);
        let want = sw_scalar(q, t, &case.scoring, case.gaps).score;
        for p in [Precision::I8, Precision::I16, Precision::I32] {
            let mut stats = KernelStats::default();
            let got = diag_score_raw(engine, p, q, t, &case.scoring, case.gaps, 0, &mut stats);
            out.checks += 1;
            let ok = if got.saturated {
                // Saturation is allowed only when the true score
                // actually reaches the lane ceiling.
                want >= lane_max(p)
            } else {
                got.score == want && want < lane_max(p).saturating_add(1)
            };
            if !ok {
                out.failures.push(CaseFailure {
                    engine,
                    precision: p,
                    traceback: false,
                    case: case.label.clone(),
                    expected: want,
                    got: got.score,
                    detail: if got.saturated {
                        "saturated below the lane ceiling"
                    } else {
                        "score mismatch vs scalar_ref"
                    },
                });
            }

            let mut stats = KernelStats::default();
            let tb = diag_traceback_raw(engine, p, q, t, &case.scoring, case.gaps, 0, &mut stats);
            out.checks += 1;
            let (ok, detail) = if tb.saturated {
                (want >= lane_max(p), "tb saturated below the lane ceiling")
            } else if tb.score != want {
                (false, "tb score mismatch vs scalar_ref")
            } else if want > 0 && tb.end.is_none() {
                (false, "tb reported a positive score with no end cell")
            } else {
                match &tb.alignment {
                    Some(aln) if aln.rescore(q, t, &case.scoring, case.gaps) != tb.score => {
                        (false, "tb path does not rescore to the reported score")
                    }
                    _ => (true, ""),
                }
            };
            if !ok {
                out.failures.push(CaseFailure {
                    engine,
                    precision: p,
                    traceback: true,
                    case: case.label.clone(),
                    expected: want,
                    got: tb.score,
                    detail,
                });
            }
        }
    }
    out
}

/// Run the battery through every engine available on this CPU.
pub fn run_battery() -> SelftestReport {
    let mut report = SelftestReport {
        outcomes: Vec::new(),
        skipped: Vec::new(),
    };
    for e in EngineKind::ALL {
        if e.is_available() {
            report.outcomes.push(run_battery_for(e));
        } else {
            report.skipped.push(e);
        }
    }
    report
}

/// Run the boot battery once per process and demote failing backends
/// in the global trust ladder before any query dispatches to them.
/// Subsequent calls return the cached report.
pub fn boot() -> &'static SelftestReport {
    static REPORT: OnceLock<SelftestReport> = OnceLock::new();
    REPORT.get_or_init(|| {
        let report = run_battery();
        for outcome in &report.outcomes {
            if !outcome.passed() {
                trust::global().mark_failed(outcome.engine, "boot_selftest");
                swsimd_obs::event!(
                    "selftest_failed",
                    "engine" => outcome.engine.name(),
                    "stage" => "boot",
                    "failures" => outcome.failures.len(),
                );
                swsimd_obs::global()
                    .counter(
                        "swsimd_selftest_failures_total",
                        "Backends that failed the boot self-test battery.",
                        &[("engine", outcome.engine.name())],
                    )
                    .inc();
            }
        }
        report
    })
}

/// Re-test a demoted engine on the global trust ladder: put it on
/// probation, run the battery against it directly, and re-promote it
/// only if every check passes. Returns `true` on re-promotion.
pub fn probation_retest(engine: EngineKind) -> bool {
    if !engine.is_available() {
        return false;
    }
    let outcome = run_battery_for(engine);
    trust::global().probation_outcome(engine, outcome.passed())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn battery_passes_on_every_available_engine() {
        let report = run_battery();
        for o in &report.outcomes {
            assert!(
                o.passed(),
                "{} failed {} checks: {:?}",
                o.engine.name(),
                o.failures.len(),
                o.failures.first()
            );
            assert!(o.checks > 0);
        }
        // Available + skipped partition the full engine set.
        assert_eq!(report.outcomes.len() + report.skipped.len(), 4);
        assert!(report.all_passed());
        assert!(report.failed_engines().is_empty());
        assert_eq!(report.failure_count(), 0);
    }

    #[test]
    fn boot_is_idempotent_and_cached() {
        let a = boot() as *const _;
        let b = boot() as *const _;
        assert_eq!(a, b);
    }

    #[test]
    fn battery_is_deterministic() {
        let a = run_battery_for(EngineKind::Scalar);
        let b = run_battery_for(EngineKind::Scalar);
        assert_eq!(a.checks, b.checks);
        assert_eq!(a.failures.len(), b.failures.len());
    }

    #[test]
    fn failure_display_is_reproducible() {
        let f = CaseFailure {
            engine: EngineKind::Avx2,
            precision: Precision::I16,
            traceback: true,
            case: "seeded/0 (seed=0x5eed05e1f7e57 qlen=10 tlen=12)".into(),
            expected: 42,
            got: 41,
            detail: "tb score mismatch vs scalar_ref",
        };
        let s = f.to_string();
        assert!(s.contains("AVX2"), "{s}");
        assert!(s.contains("w16"), "{s}");
        assert!(s.contains("seed=0x5eed05e1f7e57"), "{s}");
        assert!(s.contains("expected 42 got 41"), "{s}");
    }
}
