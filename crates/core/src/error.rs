//! Typed alignment errors.
//!
//! The kernels themselves are total functions over encoded sequences;
//! what can go wrong at the API boundary is (a) input that is not a
//! valid residue encoding and (b) a fixed-precision run whose score
//! does not fit the lane width. Both conditions get structured values
//! here so a serving layer can reject or degrade instead of panicking.

use std::fmt;

use swsimd_matrices::PADDED_ALPHABET;

use crate::params::Precision;

/// A structured alignment-input or precision failure.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AlignError {
    /// A sequence byte is not an encoded residue index (`>= 32`).
    ///
    /// Encoded sequences index directly into the reorganized
    /// substitution matrix, whose rows hold [`PADDED_ALPHABET`]
    /// columns; anything larger would read out of the matrix.
    InvalidResidue {
        /// Offset of the offending byte in the sequence.
        position: usize,
        /// The offending byte value.
        value: u8,
    },
    /// A fixed-precision kernel saturated its lane width, so the
    /// returned score would be a lower bound, not the exact score.
    Saturated {
        /// The precision that saturated.
        precision: Precision,
    },
    /// The caller forced an engine that cannot serve: the CPU lacks
    /// the ISA, or the kernel trust breaker demoted it (failed boot
    /// self-test or shadow verification). Returned instead of a silent
    /// scalar fallback so `--engine avx512` on an SSE-only host is an
    /// error, not a 10× slower success.
    EngineUnavailable {
        /// The engine the caller asked for.
        requested: swsimd_simd::EngineKind,
        /// Why it cannot serve.
        reason: &'static str,
    },
    /// The work was cancelled mid-compute by the governor (deadline,
    /// shutdown, watchdog, …). Any partial result was discarded; the
    /// caller decides whether to retry, degrade, or surface the error.
    Cancelled {
        /// Why the governing [`crate::govern::CancelToken`] fired.
        reason: crate::govern::CancelReason,
    },
    /// A [`crate::govern::MemBudget`] reservation for the DP/traceback
    /// buffers would overrun the per-query memory budget.
    BudgetExceeded {
        /// Bytes the allocation would have needed.
        requested: u64,
        /// The configured budget in bytes.
        limit: u64,
    },
}

impl fmt::Display for AlignError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AlignError::InvalidResidue { position, value } => write!(
                f,
                "byte {value:#04x} at position {position} is not an encoded residue (must be < {PADDED_ALPHABET})"
            ),
            AlignError::Saturated { precision } => {
                write!(f, "alignment score saturated {precision:?} lanes")
            }
            AlignError::EngineUnavailable { requested, reason } => {
                write!(f, "engine {} unavailable: {reason}", requested.name())
            }
            AlignError::Cancelled { reason } => {
                write!(f, "work cancelled: {reason}")
            }
            AlignError::BudgetExceeded { requested, limit } => {
                write!(
                    f,
                    "memory budget exceeded: needed {requested} bytes, budget is {limit}"
                )
            }
        }
    }
}

impl std::error::Error for AlignError {}

/// Validate that `seq` contains only encoded residue indices
/// (`< 32`, i.e. valid columns of the reorganized matrix).
///
/// This is the strict counterpart of the clamping the [`crate::Aligner`]
/// applies internally: services that would rather reject malformed
/// input than silently treat it as `X` call this at their boundary.
pub fn validate_encoded(seq: &[u8]) -> Result<(), AlignError> {
    match seq.iter().position(|&b| b >= PADDED_ALPHABET as u8) {
        None => Ok(()),
        Some(position) => Err(AlignError::InvalidResidue {
            position,
            value: seq[position],
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn valid_sequences_pass() {
        assert_eq!(validate_encoded(&[]), Ok(()));
        assert_eq!(validate_encoded(&[0, 5, 31]), Ok(()));
    }

    #[test]
    fn first_offender_is_reported() {
        assert_eq!(
            validate_encoded(&[3, 32, 200]),
            Err(AlignError::InvalidResidue {
                position: 1,
                value: 32
            })
        );
    }

    #[test]
    fn errors_display() {
        let e = AlignError::InvalidResidue {
            position: 7,
            value: 0xff,
        };
        assert!(e.to_string().contains("position 7"));
        let s = AlignError::Saturated {
            precision: Precision::I16,
        };
        assert!(s.to_string().contains("I16"));
        let u = AlignError::EngineUnavailable {
            requested: swsimd_simd::EngineKind::Avx512,
            reason: "not supported by this CPU",
        };
        assert!(u.to_string().contains("AVX-512"));
        assert!(u.to_string().contains("not supported"));
        let c = AlignError::Cancelled {
            reason: crate::govern::CancelReason::Watchdog,
        };
        assert!(c.to_string().contains("watchdog"));
        let b = AlignError::BudgetExceeded {
            requested: 4096,
            limit: 1024,
        };
        assert!(b.to_string().contains("4096"));
        assert!(b.to_string().contains("1024"));
    }
}
