//! Typed alignment errors.
//!
//! The kernels themselves are total functions over encoded sequences;
//! what can go wrong at the API boundary is (a) input that is not a
//! valid residue encoding and (b) a fixed-precision run whose score
//! does not fit the lane width. Both conditions get structured values
//! here so a serving layer can reject or degrade instead of panicking.

use std::fmt;

use swsimd_matrices::PADDED_ALPHABET;

use crate::params::Precision;

/// A structured alignment-input or precision failure.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AlignError {
    /// A sequence byte is not an encoded residue index (`>= 32`).
    ///
    /// Encoded sequences index directly into the reorganized
    /// substitution matrix, whose rows hold [`PADDED_ALPHABET`]
    /// columns; anything larger would read out of the matrix.
    InvalidResidue {
        /// Offset of the offending byte in the sequence.
        position: usize,
        /// The offending byte value.
        value: u8,
    },
    /// A fixed-precision kernel saturated its lane width, so the
    /// returned score would be a lower bound, not the exact score.
    Saturated {
        /// The precision that saturated.
        precision: Precision,
    },
    /// The caller forced an engine that cannot serve: the CPU lacks
    /// the ISA, or the kernel trust breaker demoted it (failed boot
    /// self-test or shadow verification). Returned instead of a silent
    /// scalar fallback so `--engine avx512` on an SSE-only host is an
    /// error, not a 10× slower success.
    EngineUnavailable {
        /// The engine the caller asked for.
        requested: swsimd_simd::EngineKind,
        /// Why it cannot serve.
        reason: &'static str,
    },
    /// The work was cancelled mid-compute by the governor (deadline,
    /// shutdown, watchdog, …). Any partial result was discarded; the
    /// caller decides whether to retry, degrade, or surface the error.
    Cancelled {
        /// Why the governing [`crate::govern::CancelToken`] fired.
        reason: crate::govern::CancelReason,
    },
    /// A [`crate::govern::MemBudget`] reservation for the DP/traceback
    /// buffers would overrun the per-query memory budget.
    BudgetExceeded {
        /// Bytes the allocation would have needed.
        requested: u64,
        /// The configured budget in bytes.
        limit: u64,
    },
}

impl fmt::Display for AlignError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AlignError::InvalidResidue { position, value } => write!(
                f,
                "byte {value:#04x} at position {position} is not an encoded residue (must be < {PADDED_ALPHABET})"
            ),
            AlignError::Saturated { precision } => {
                write!(f, "alignment score saturated {precision:?} lanes")
            }
            AlignError::EngineUnavailable { requested, reason } => {
                write!(f, "engine {} unavailable: {reason}", requested.name())
            }
            AlignError::Cancelled { reason } => {
                write!(f, "work cancelled: {reason}")
            }
            AlignError::BudgetExceeded { requested, limit } => {
                write!(
                    f,
                    "memory budget exceeded: needed {requested} bytes, budget is {limit}"
                )
            }
        }
    }
}

impl std::error::Error for AlignError {}

/// The `reason` string carried by [`AlignError::EngineUnavailable`]
/// values decoded from the wire. The original reason is a `&'static
/// str` in the peer's address space, so the decoder substitutes this
/// canonical marker instead of inventing a lossy owned variant.
pub const REMOTE_UNAVAILABLE_REASON: &str = "reported unavailable by a remote shard";

impl AlignError {
    /// Encode as a compact `(code, a, b)` triple for wire protocols.
    ///
    /// Codes are append-only (1–5); the two `u64` payload words carry
    /// the variant's parameters. [`AlignError::wire_decode`] inverts
    /// the mapping, except that `EngineUnavailable.reason` — a
    /// `&'static str` — decodes to [`REMOTE_UNAVAILABLE_REASON`].
    pub fn wire_encode(&self) -> (u8, u64, u64) {
        use crate::params::Precision;
        match *self {
            AlignError::InvalidResidue { position, value } => (1, position as u64, value as u64),
            AlignError::Saturated { precision } => {
                let p = match precision {
                    Precision::I8 => 0u64,
                    Precision::I16 => 1,
                    Precision::I32 => 2,
                    Precision::Adaptive => 3,
                };
                (2, p, 0)
            }
            AlignError::EngineUnavailable { requested, .. } => {
                let e = match requested {
                    swsimd_simd::EngineKind::Scalar => 0u64,
                    swsimd_simd::EngineKind::Sse41 => 1,
                    swsimd_simd::EngineKind::Avx2 => 2,
                    swsimd_simd::EngineKind::Avx512 => 3,
                };
                (3, e, 0)
            }
            AlignError::Cancelled { reason } => (4, reason.wire_code() as u64, 0),
            AlignError::BudgetExceeded { requested, limit } => (5, requested, limit),
        }
    }

    /// Decode a `(code, a, b)` triple produced by
    /// [`AlignError::wire_encode`]. Returns `None` for unknown codes or
    /// out-of-range parameters — a hostile or corrupt frame must never
    /// panic here.
    pub fn wire_decode(code: u8, a: u64, b: u64) -> Option<Self> {
        use crate::params::Precision;
        Some(match code {
            1 => AlignError::InvalidResidue {
                position: usize::try_from(a).ok()?,
                value: u8::try_from(b).ok()?,
            },
            2 => AlignError::Saturated {
                precision: match a {
                    0 => Precision::I8,
                    1 => Precision::I16,
                    2 => Precision::I32,
                    3 => Precision::Adaptive,
                    _ => return None,
                },
            },
            3 => AlignError::EngineUnavailable {
                requested: match a {
                    0 => swsimd_simd::EngineKind::Scalar,
                    1 => swsimd_simd::EngineKind::Sse41,
                    2 => swsimd_simd::EngineKind::Avx2,
                    3 => swsimd_simd::EngineKind::Avx512,
                    _ => return None,
                },
                reason: REMOTE_UNAVAILABLE_REASON,
            },
            4 => AlignError::Cancelled {
                reason: crate::govern::CancelReason::from_wire_code(u8::try_from(a).ok()?)?,
            },
            5 => AlignError::BudgetExceeded {
                requested: a,
                limit: b,
            },
            _ => return None,
        })
    }
}

/// Validate that `seq` contains only encoded residue indices
/// (`< 32`, i.e. valid columns of the reorganized matrix).
///
/// This is the strict counterpart of the clamping the [`crate::Aligner`]
/// applies internally: services that would rather reject malformed
/// input than silently treat it as `X` call this at their boundary.
pub fn validate_encoded(seq: &[u8]) -> Result<(), AlignError> {
    match seq.iter().position(|&b| b >= PADDED_ALPHABET as u8) {
        None => Ok(()),
        Some(position) => Err(AlignError::InvalidResidue {
            position,
            value: seq[position],
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn valid_sequences_pass() {
        assert_eq!(validate_encoded(&[]), Ok(()));
        assert_eq!(validate_encoded(&[0, 5, 31]), Ok(()));
    }

    #[test]
    fn first_offender_is_reported() {
        assert_eq!(
            validate_encoded(&[3, 32, 200]),
            Err(AlignError::InvalidResidue {
                position: 1,
                value: 32
            })
        );
    }

    #[test]
    fn wire_codec_round_trips() {
        use crate::govern::CancelReason;
        let cases = [
            AlignError::InvalidResidue {
                position: 12345,
                value: 0xEE,
            },
            AlignError::Saturated {
                precision: Precision::I8,
            },
            AlignError::Saturated {
                precision: Precision::Adaptive,
            },
            AlignError::EngineUnavailable {
                requested: swsimd_simd::EngineKind::Avx512,
                reason: REMOTE_UNAVAILABLE_REASON,
            },
            AlignError::Cancelled {
                reason: CancelReason::ClientDrop,
            },
            AlignError::BudgetExceeded {
                requested: u64::MAX,
                limit: 7,
            },
        ];
        for e in cases {
            let (c, a, b) = e.wire_encode();
            assert_eq!(AlignError::wire_decode(c, a, b), Some(e), "{e}");
        }
        // The static reason is normalized, not preserved.
        let local = AlignError::EngineUnavailable {
            requested: swsimd_simd::EngineKind::Avx2,
            reason: "demoted by trust breaker",
        };
        let (c, a, b) = local.wire_encode();
        assert_eq!(
            AlignError::wire_decode(c, a, b),
            Some(AlignError::EngineUnavailable {
                requested: swsimd_simd::EngineKind::Avx2,
                reason: REMOTE_UNAVAILABLE_REASON,
            })
        );
        // Hostile input: unknown codes and out-of-range params are None.
        assert_eq!(AlignError::wire_decode(0, 0, 0), None);
        assert_eq!(AlignError::wire_decode(99, 1, 2), None);
        assert_eq!(AlignError::wire_decode(2, 17, 0), None);
        assert_eq!(AlignError::wire_decode(3, 9, 0), None);
        assert_eq!(AlignError::wire_decode(4, 0, 0), None);
        assert_eq!(AlignError::wire_decode(4, 600, 0), None);
        assert_eq!(AlignError::wire_decode(1, u64::MAX, 300), None);
    }

    #[test]
    fn errors_display() {
        let e = AlignError::InvalidResidue {
            position: 7,
            value: 0xff,
        };
        assert!(e.to_string().contains("position 7"));
        let s = AlignError::Saturated {
            precision: Precision::I16,
        };
        assert!(s.to_string().contains("I16"));
        let u = AlignError::EngineUnavailable {
            requested: swsimd_simd::EngineKind::Avx512,
            reason: "not supported by this CPU",
        };
        assert!(u.to_string().contains("AVX-512"));
        assert!(u.to_string().contains("not supported"));
        let c = AlignError::Cancelled {
            reason: crate::govern::CancelReason::Watchdog,
        };
        assert!(c.to_string().contains("watchdog"));
        let b = AlignError::BudgetExceeded {
            requested: 4096,
            limit: 1024,
        };
        assert!(b.to_string().contains("4096"));
        assert!(b.to_string().contains("1024"));
    }
}
