//! Work governor: cooperative cancellation and per-query memory
//! budgets.
//!
//! The kernels are pure compute loops; once dispatched they would run
//! to completion no matter how stale the request. This module gives
//! the serving layers a way to stop them mid-flight without touching
//! kernel signatures:
//!
//! * a [`CancelToken`] — an atomic flag with a typed [`CancelReason`],
//!   an optional deadline that self-trips, a heartbeat counter the
//!   watchdog reads for progress, and an optional parent token so a
//!   pool-wide shutdown cancels every per-job child;
//! * a thread-local *governor scope* ([`GovernorScope`]) installing the
//!   token for the current thread. Kernel block loops call
//!   [`cancel_poll`] every [`CANCEL_CHECK_PERIOD`] anti-diagonal
//!   strips; with no scope installed the poll is one thread-local read
//!   and costs nothing measurable (gated < 1% by the `obs_overhead`
//!   bench). Entry points that installed the scope re-check with
//!   [`check_cancelled`] after the kernel returns and surface
//!   [`AlignError::Cancelled`];
//! * a [`MemBudget`] — shared byte accounting with RAII
//!   [`MemReservation`]s and typed [`AlignError::BudgetExceeded`], used
//!   by the API layer to refuse or downgrade allocations (traceback →
//!   score-only banded) before they happen.
//!
//! A kernel that observes cancellation early-returns a well-formed but
//! meaningless result; the governed caller discards it after the token
//! re-check, so no partial score ever escapes.

use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::Arc;
use std::time::Instant;

use crate::error::AlignError;

/// How often (in anti-diagonal strips / batch columns) governed kernels
/// poll the cancel token. Mirrors the saturation-check cadence: cheap
/// enough to disappear in the noise, frequent enough that a cancel
/// lands within a few microseconds of compute.
pub const CANCEL_CHECK_PERIOD: usize = 64;

/// Why a unit of work was cancelled.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum CancelReason {
    /// The job's deadline passed mid-compute.
    Deadline,
    /// The requesting client went away (dropped its reply handle).
    ClientDrop,
    /// The pool or server is shutting down.
    Shutdown,
    /// The watchdog reaped a worker whose heartbeat stalled.
    Watchdog,
    /// A memory-budget decision aborted the work.
    Memory,
}

impl CancelReason {
    /// Stable label used in metrics (`cancelled_total{reason=...}`).
    pub fn as_str(self) -> &'static str {
        match self {
            CancelReason::Deadline => "deadline",
            CancelReason::ClientDrop => "client_drop",
            CancelReason::Shutdown => "shutdown",
            CancelReason::Watchdog => "watchdog",
            CancelReason::Memory => "memory",
        }
    }

    /// All reasons, for pre-registering labelled metric series.
    pub const ALL: [CancelReason; 5] = [
        CancelReason::Deadline,
        CancelReason::ClientDrop,
        CancelReason::Shutdown,
        CancelReason::Watchdog,
        CancelReason::Memory,
    ];

    /// Stable single-byte code for wire protocols and the token's
    /// internal state word. `0` is reserved for "not cancelled"; codes
    /// are append-only so peers on different versions stay compatible.
    pub fn wire_code(self) -> u8 {
        match self {
            CancelReason::Deadline => 1,
            CancelReason::ClientDrop => 2,
            CancelReason::Shutdown => 3,
            CancelReason::Watchdog => 4,
            CancelReason::Memory => 5,
        }
    }

    /// Inverse of [`CancelReason::wire_code`]; `None` for unknown codes
    /// (including the reserved `0`).
    pub fn from_wire_code(v: u8) -> Option<Self> {
        match v {
            1 => Some(CancelReason::Deadline),
            2 => Some(CancelReason::ClientDrop),
            3 => Some(CancelReason::Shutdown),
            4 => Some(CancelReason::Watchdog),
            5 => Some(CancelReason::Memory),
            _ => None,
        }
    }
}

impl std::fmt::Display for CancelReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

#[derive(Debug)]
struct TokenInner {
    /// 0 = live; otherwise `CancelReason::wire_code`. First cancel wins.
    state: AtomicU8,
    /// Progress counter ticked by [`cancel_poll`]; the watchdog treats
    /// a token whose heartbeat stops advancing as wedged.
    heartbeat: AtomicU64,
    /// Lazily self-cancels with [`CancelReason::Deadline`] once passed.
    deadline: Option<Instant>,
    /// Cancellation of the parent is observed by every child.
    parent: Option<Arc<TokenInner>>,
}

impl TokenInner {
    fn raw_reason(&self) -> Option<CancelReason> {
        CancelReason::from_wire_code(self.state.load(Ordering::Acquire))
    }

    fn reason(&self) -> Option<CancelReason> {
        if let Some(r) = self.raw_reason() {
            return Some(r);
        }
        if let Some(d) = self.deadline {
            if Instant::now() >= d {
                let _ = self.state.compare_exchange(
                    0,
                    CancelReason::Deadline.wire_code(),
                    Ordering::AcqRel,
                    Ordering::Acquire,
                );
                return self.raw_reason();
            }
        }
        if let Some(p) = &self.parent {
            return p.reason();
        }
        None
    }

    fn cancel(&self, reason: CancelReason) -> bool {
        self.state
            .compare_exchange(0, reason.wire_code(), Ordering::AcqRel, Ordering::Acquire)
            .is_ok()
    }
}

/// A shared cancellation handle: cheap to clone, safe to poll from hot
/// loops, cancelled at most once (first reason wins).
#[derive(Clone, Debug)]
pub struct CancelToken {
    inner: Arc<TokenInner>,
}

impl Default for CancelToken {
    fn default() -> Self {
        Self::new()
    }
}

impl CancelToken {
    /// A live token with no deadline and no parent.
    pub fn new() -> Self {
        Self::build(None, None)
    }

    /// A token that self-cancels with [`CancelReason::Deadline`] once
    /// `deadline` passes (checked lazily on [`reason`](Self::reason) /
    /// [`cancel_poll`]).
    pub fn with_deadline(deadline: Option<Instant>) -> Self {
        Self::build(deadline, None)
    }

    /// A child token: cancelling the parent cancels the child, but not
    /// vice versa. The child keeps its own heartbeat.
    pub fn child(&self) -> Self {
        Self::build(None, Some(self.inner.clone()))
    }

    /// A child token with its own deadline.
    pub fn child_with_deadline(&self, deadline: Option<Instant>) -> Self {
        Self::build(deadline, Some(self.inner.clone()))
    }

    fn build(deadline: Option<Instant>, parent: Option<Arc<TokenInner>>) -> Self {
        CancelToken {
            inner: Arc::new(TokenInner {
                state: AtomicU8::new(0),
                heartbeat: AtomicU64::new(0),
                deadline,
                parent,
            }),
        }
    }

    /// Cancel with `reason`. Returns `true` if this call won the race
    /// (the token was still live).
    pub fn cancel(&self, reason: CancelReason) -> bool {
        self.inner.cancel(reason)
    }

    /// The effective cancel reason, if any: own state, then an expired
    /// deadline (self-cancelling), then the parent chain.
    pub fn reason(&self) -> Option<CancelReason> {
        self.inner.reason()
    }

    /// Whether the token (or an ancestor) is cancelled.
    pub fn is_cancelled(&self) -> bool {
        self.reason().is_some()
    }

    /// `Err(AlignError::Cancelled)` if cancelled.
    pub fn check(&self) -> Result<(), AlignError> {
        match self.reason() {
            Some(reason) => Err(AlignError::Cancelled { reason }),
            None => Ok(()),
        }
    }

    /// Advance the heartbeat (progress signal for the watchdog).
    pub fn tick(&self) {
        self.inner.heartbeat.fetch_add(1, Ordering::Relaxed);
    }

    /// Current heartbeat value.
    pub fn heartbeat(&self) -> u64 {
        self.inner.heartbeat.load(Ordering::Relaxed)
    }

    /// The deadline this token self-cancels at, if any.
    pub fn deadline(&self) -> Option<Instant> {
        self.inner.deadline
    }
}

thread_local! {
    static SCOPE: RefCell<Option<CancelToken>> = const { RefCell::new(None) };
}

/// RAII installation of a [`CancelToken`] as the current thread's
/// governor scope. Nested scopes restore the previous token on drop,
/// so governed entry points compose (a governed server job calling a
/// governed helper keeps the innermost token).
pub struct GovernorScope {
    prev: Option<CancelToken>,
}

impl GovernorScope {
    /// Install `token` for the current thread until the scope drops.
    pub fn install(token: CancelToken) -> Self {
        let prev = SCOPE.with(|s| s.borrow_mut().replace(token));
        GovernorScope { prev }
    }
}

impl Drop for GovernorScope {
    fn drop(&mut self) {
        SCOPE.with(|s| *s.borrow_mut() = self.prev.take());
    }
}

/// Amortized poll from kernel block loops: ticks the heartbeat and
/// returns `true` if the governing token is cancelled. With no scope
/// installed this is a single thread-local read — cheap enough to call
/// every [`CANCEL_CHECK_PERIOD`] strips unconditionally.
#[inline]
pub fn cancel_poll() -> bool {
    SCOPE.with(|s| match &*s.borrow() {
        None => false,
        Some(t) => {
            t.tick();
            t.reason().is_some()
        }
    })
}

/// The active scope's cancel reason, if cancelled.
pub fn active_reason() -> Option<CancelReason> {
    SCOPE.with(|s| s.borrow().as_ref().and_then(|t| t.reason()))
}

/// `Err(AlignError::Cancelled)` if the active scope is cancelled.
/// Governed entry points call this after each kernel call to discard
/// the kernel's early-return garbage.
pub fn check_cancelled() -> Result<(), AlignError> {
    match active_reason() {
        Some(reason) => Err(AlignError::Cancelled { reason }),
        None => Ok(()),
    }
}

// ---------------------------------------------------------------------------
// Memory budgets.

#[derive(Debug)]
struct BudgetInner {
    limit: u64,
    used: AtomicU64,
}

/// Shared byte-accounting budget for DP/traceback buffers. Clones
/// share the same counter, so a pool of workers can draw from one
/// per-server budget or each job can get its own.
#[derive(Clone, Debug)]
pub struct MemBudget {
    inner: Arc<BudgetInner>,
}

impl MemBudget {
    /// A budget of `limit` bytes.
    pub fn new(limit: u64) -> Self {
        MemBudget {
            inner: Arc::new(BudgetInner {
                limit,
                used: AtomicU64::new(0),
            }),
        }
    }

    /// The configured limit in bytes.
    pub fn limit(&self) -> u64 {
        self.inner.limit
    }

    /// Bytes currently reserved.
    pub fn used(&self) -> u64 {
        self.inner.used.load(Ordering::Relaxed)
    }

    /// Reserve `bytes` against the budget, or fail with
    /// [`AlignError::BudgetExceeded`]. The reservation is released when
    /// the returned guard drops.
    pub fn try_reserve(&self, bytes: u64) -> Result<MemReservation, AlignError> {
        let mut cur = self.inner.used.load(Ordering::Relaxed);
        loop {
            let new = cur.saturating_add(bytes);
            if new > self.inner.limit {
                return Err(AlignError::BudgetExceeded {
                    requested: bytes,
                    limit: self.inner.limit,
                });
            }
            match self.inner.used.compare_exchange_weak(
                cur,
                new,
                Ordering::AcqRel,
                Ordering::Relaxed,
            ) {
                Ok(_) => {
                    return Ok(MemReservation {
                        inner: self.inner.clone(),
                        bytes,
                    })
                }
                Err(seen) => cur = seen,
            }
        }
    }
}

/// RAII guard for a [`MemBudget`] reservation; releases on drop.
#[derive(Debug)]
pub struct MemReservation {
    inner: Arc<BudgetInner>,
    bytes: u64,
}

impl MemReservation {
    /// Bytes held by this reservation.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }
}

impl Drop for MemReservation {
    fn drop(&mut self) {
        self.inner.used.fetch_sub(self.bytes, Ordering::AcqRel);
    }
}

/// Estimated bytes for a full-traceback run of an `m × n` pair: the
/// diagonal-linearized direction store dominates at ~one byte per cell
/// (plus per-diagonal lane rounding, bounded by an extra lane-width per
/// diagonal), with the O(m) rolling score buffers on top.
pub fn traceback_bytes(m: usize, n: usize, lanes: usize) -> u64 {
    let cells = (m as u64) * (n as u64);
    let rounding = (m + n) as u64 * lanes.max(1) as u64;
    cells + rounding + score_bytes(m, 4)
}

/// Estimated bytes for a score-only run with `elem_bytes`-wide lanes:
/// seven rolling diagonal buffers of `m + 2 + lanes` elements each,
/// plus the padded index arrays. Lane slack is folded into a constant.
pub fn score_bytes(m: usize, elem_bytes: usize) -> u64 {
    let blen = (m + 2 + 64) as u64;
    7 * blen * elem_bytes as u64 + 2 * blen
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn token_cancels_once_first_reason_wins() {
        let t = CancelToken::new();
        assert!(!t.is_cancelled());
        assert!(t.check().is_ok());
        assert!(t.cancel(CancelReason::Watchdog));
        assert!(!t.cancel(CancelReason::Shutdown));
        assert_eq!(t.reason(), Some(CancelReason::Watchdog));
        assert_eq!(
            t.check(),
            Err(AlignError::Cancelled {
                reason: CancelReason::Watchdog
            })
        );
    }

    #[test]
    fn deadline_self_cancels() {
        let t = CancelToken::with_deadline(Some(Instant::now() - Duration::from_millis(1)));
        assert_eq!(t.reason(), Some(CancelReason::Deadline));
        let live = CancelToken::with_deadline(Some(Instant::now() + Duration::from_secs(3600)));
        assert!(!live.is_cancelled());
    }

    #[test]
    fn child_observes_parent_not_vice_versa() {
        let parent = CancelToken::new();
        let child = parent.child();
        assert!(!child.is_cancelled());
        parent.cancel(CancelReason::Shutdown);
        assert_eq!(child.reason(), Some(CancelReason::Shutdown));

        let parent = CancelToken::new();
        let child = parent.child();
        child.cancel(CancelReason::Deadline);
        assert!(!parent.is_cancelled());
        assert_eq!(child.reason(), Some(CancelReason::Deadline));
    }

    #[test]
    fn scope_install_poll_and_restore() {
        assert!(!cancel_poll());
        assert_eq!(active_reason(), None);
        let t = CancelToken::new();
        {
            let _scope = GovernorScope::install(t.clone());
            assert!(!cancel_poll());
            assert!(t.heartbeat() >= 1, "poll ticks the heartbeat");
            t.cancel(CancelReason::Memory);
            assert!(cancel_poll());
            assert_eq!(active_reason(), Some(CancelReason::Memory));
            assert!(check_cancelled().is_err());
            // Nested scope shadows, then restores.
            let inner = CancelToken::new();
            {
                let _nested = GovernorScope::install(inner.clone());
                assert_eq!(active_reason(), None);
            }
            assert_eq!(active_reason(), Some(CancelReason::Memory));
        }
        assert!(!cancel_poll());
        assert!(check_cancelled().is_ok());
    }

    #[test]
    fn budget_reserve_release_and_exceed() {
        let b = MemBudget::new(1000);
        let r1 = b.try_reserve(600).unwrap();
        assert_eq!(b.used(), 600);
        let err = b.try_reserve(500).unwrap_err();
        assert_eq!(
            err,
            AlignError::BudgetExceeded {
                requested: 500,
                limit: 1000
            }
        );
        let r2 = b.try_reserve(400).unwrap();
        assert_eq!(b.used(), 1000);
        drop(r1);
        assert_eq!(b.used(), 400);
        drop(r2);
        assert_eq!(b.used(), 0);
        assert_eq!(b.limit(), 1000);
    }

    #[test]
    fn reason_labels_are_stable() {
        for r in CancelReason::ALL {
            assert_eq!(CancelReason::from_wire_code(r.wire_code()), Some(r));
            assert!(!r.as_str().is_empty());
            assert_eq!(r.to_string(), r.as_str());
        }
    }

    #[test]
    fn estimators_are_monotone() {
        assert!(traceback_bytes(100, 100, 16) > score_bytes(100, 4));
        assert!(traceback_bytes(200, 200, 16) > traceback_bytes(100, 100, 16));
        assert!(score_bytes(200, 4) > score_bytes(100, 4));
    }
}
