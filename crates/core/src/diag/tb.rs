//! Diagonal kernel with traceback (Fig 8 configuration).
//!
//! On top of the score kernel this records, per cell, a 4-bit direction
//! code (same encoding as the scalar reference) into a **diagonal-
//! linearized** direction matrix — the Fig 2 memory mapping applied to
//! the traceback store, so direction writes are the same contiguous
//! vector stores as the DP state. Position tracking uses one horizontal
//! max per diagonal plus a rescan of the current buffer only when the
//! global best improves.

use swsimd_simd::{ScoreElem, SimdEngine, SimdVec};

use crate::diag::{diag_bounds, gap_elems, KernelWidth};
use crate::params::{Alignment, GapModel, Op, Scoring};
use crate::scalar_ref::dir;
use crate::stats::KernelStats;

/// Outcome of a traceback kernel run.
#[derive(Clone, Debug)]
pub struct TbOut {
    /// Best local score (clamped to the lane precision).
    pub score: i32,
    /// True if the precision saturated.
    pub saturated: bool,
    /// 1-based DP coordinates of the best cell.
    pub end: Option<(usize, usize)>,
    /// The walked path (None when the score is 0 or saturated).
    pub alignment: Option<Alignment>,
}

/// Diagonal-linearized direction matrix: per-diagonal regions with each
/// region padded to a whole number of vectors.
struct DirMatrix<E> {
    data: Vec<E>,
    /// `offset[d]` = start of diagonal `d`'s region.
    offsets: Vec<usize>,
    m: usize,
    n: usize,
}

impl<E: ScoreElem> DirMatrix<E> {
    fn new(m: usize, n: usize, lanes: usize) -> Self {
        let mut offsets = vec![0usize; m + n + 2];
        let mut acc = 0usize;
        for d in 2..=(m + n) {
            offsets[d] = acc;
            let (lo, hi) = diag_bounds(d, m, n);
            if lo <= hi {
                let len = hi - lo + 1;
                acc += len.div_ceil(lanes) * lanes;
            }
        }
        offsets[m + n + 1] = acc;
        Self {
            data: vec![E::ZERO; acc],
            offsets,
            m,
            n,
        }
    }

    /// Flat index of cell `(i, j)` (1-based).
    #[inline(always)]
    fn index(&self, i: usize, j: usize) -> usize {
        let d = i + j;
        let (lo, _) = diag_bounds(d, self.m, self.n);
        self.offsets[d] + (i - lo)
    }

    #[inline(always)]
    fn code(&self, i: usize, j: usize) -> i32 {
        self.data[self.index(i, j)].to_i32()
    }
}

/// The diagonal Smith-Waterman kernel with traceback recording.
#[inline(always)]
pub(crate) fn sw_diag_tb<En: SimdEngine, W: KernelWidth<En>>(
    query: &[u8],
    target: &[u8],
    scoring: &Scoring,
    gaps: GapModel,
    scalar_threshold: usize,
    stats: &mut KernelStats,
) -> TbOut {
    type Elem<En2, W2> = <<W2 as KernelWidth<En2>>::V as SimdVec>::Elem;

    let (m, n) = (query.len(), target.len());
    if m == 0 || n == 0 {
        return TbOut {
            score: 0,
            saturated: false,
            end: None,
            alignment: None,
        };
    }
    let lanes = <W::V as SimdVec>::LANES;
    let scalar_threshold = scalar_threshold.max(1);

    let vzero = W::V::zero();
    let vneg = W::V::splat(Elem::<En, W>::NEG_INF);
    let (go, ge, affine) = gap_elems::<Elem<En, W>>(gaps);
    let vgo = W::V::splat(go);
    let vge = W::V::splat(ge);
    let (go32, ge32) = (go.to_i32(), ge.to_i32());

    let c_diag = W::V::splat(Elem::<En, W>::from_i32(dir::H_DIAG));
    let c_e = W::V::splat(Elem::<En, W>::from_i32(dir::H_E));
    let c_f = W::V::splat(Elem::<En, W>::from_i32(dir::H_F));
    let c_eext = W::V::splat(Elem::<En, W>::from_i32(dir::E_EXT));
    let c_fext = W::V::splat(Elem::<En, W>::from_i32(dir::F_EXT));

    let blen = m + 2 + lanes;
    let mut hp = vec![Elem::<En, W>::ZERO; blen];
    let mut hpp = vec![Elem::<En, W>::ZERO; blen];
    let mut hc = vec![Elem::<En, W>::ZERO; blen];
    let mut ep = vec![Elem::<En, W>::NEG_INF; blen];
    let mut ec = vec![Elem::<En, W>::NEG_INF; blen];
    let mut fp = vec![Elem::<En, W>::NEG_INF; blen];
    let mut fc = vec![Elem::<En, W>::NEG_INF; blen];

    let mut qpad = vec![0u8; m + lanes];
    qpad[..m].copy_from_slice(query);
    let mut rrev = vec![0u8; n + lanes];
    for (t, slot) in rrev[..n].iter_mut().enumerate() {
        *slot = target[n - 1 - t];
    }
    let (qel, rrevel, vmatch, vmismatch) = match scoring {
        Scoring::Fixed { r#match, mismatch } => {
            let qel: Vec<_> = qpad
                .iter()
                .map(|&b| Elem::<En, W>::from_i32(b as i32))
                .collect();
            let rel: Vec<_> = rrev
                .iter()
                .map(|&b| Elem::<En, W>::from_i32(b as i32))
                .collect();
            (
                qel,
                rel,
                W::V::splat(Elem::<En, W>::from_i32(*r#match)),
                W::V::splat(Elem::<En, W>::from_i32(*mismatch)),
            )
        }
        Scoring::Matrix(_) => (Vec::new(), Vec::new(), vzero, vzero),
    };

    let mut dirs = DirMatrix::<Elem<En, W>>::new(m, n, lanes);
    let mut best = 0i32;
    let mut best_cell = (0usize, 0usize);

    for d in 2..=(m + n) {
        let (lo, hi) = diag_bounds(d, m, n);
        let len = hi - lo + 1;
        stats.diagonals += 1;
        stats.cells += len as u64;
        stats.traceback_cells += len as u64;
        let doff = dirs.offsets[d];

        let mut dmax = vzero;
        let mut dscalar = 0i32;

        if len < scalar_threshold {
            for i in lo..=hi {
                let j = d - i;
                let s = scoring.score(query[i - 1], target[j - 1]);
                let h_l = hp[i].to_i32();
                let h_u = hp[i - 1].to_i32();
                let h_d = hpp[i - 1].to_i32();
                let (e_ext_v, e_open_v, f_ext_v, f_open_v) = if affine {
                    (
                        ep[i].to_i32() - ge32,
                        h_l - go32,
                        fp[i - 1].to_i32() - ge32,
                        h_u - go32,
                    )
                } else {
                    (i32::MIN / 4, h_l - go32, i32::MIN / 4, h_u - go32)
                };
                let e_new = e_ext_v.max(e_open_v);
                let f_new = f_ext_v.max(f_open_v);
                let diag_v = h_d + s;
                let h32 = 0.max(diag_v).max(e_new).max(f_new);
                let h = Elem::<En, W>::from_i32(h32);
                let hi32 = h.to_i32();

                let mut code = dir::H_ZERO;
                if hi32 == Elem::<En, W>::from_i32(diag_v).to_i32() {
                    code = dir::H_DIAG;
                }
                if hi32 == Elem::<En, W>::from_i32(e_new).to_i32() {
                    code = dir::H_E;
                }
                if hi32 == Elem::<En, W>::from_i32(f_new).to_i32() {
                    code = dir::H_F;
                }
                if hi32 == 0 {
                    code = dir::H_ZERO;
                }
                if e_ext_v > e_open_v {
                    code |= dir::E_EXT;
                }
                if f_ext_v > f_open_v {
                    code |= dir::F_EXT;
                }

                hc[i] = h;
                if affine {
                    ec[i] = Elem::<En, W>::from_i32(e_new);
                    fc[i] = Elem::<En, W>::from_i32(f_new);
                }
                dirs.data[doff + (i - lo)] = Elem::<En, W>::from_i32(code);
                if hi32 > dscalar {
                    dscalar = hi32;
                }
                if hi32 > best {
                    best = hi32;
                    best_cell = (i, d - i);
                }
            }
            stats.scalar_cells += len as u64;
        } else {
            let mut base = lo;
            while base <= hi {
                let rem = hi + 1 - base;
                // SAFETY: same bounds argument as the score kernel; the
                // direction store fits because each diagonal's region is
                // padded to whole vectors.
                unsafe {
                    let h_l = W::V::load(hp.as_ptr().add(base));
                    let h_u = W::V::load(hp.as_ptr().add(base - 1));
                    let h_d = W::V::load(hpp.as_ptr().add(base - 1));

                    let s = match scoring {
                        Scoring::Matrix(mat) => {
                            if W::HARDWARE_GATHER {
                                stats.gather_ops += 1;
                            } else {
                                stats.emulated_gathers += 1;
                            }
                            W::gather(
                                mat,
                                qpad.as_ptr().add(base - 1),
                                rrev.as_ptr().add(base + n - d),
                            )
                        }
                        Scoring::Fixed { .. } => {
                            let qv = W::V::load(qel.as_ptr().add(base - 1));
                            let rv = W::V::load(rrevel.as_ptr().add(base + n - d));
                            W::V::blend(qv.cmpeq(rv), vmatch, vmismatch)
                        }
                    };

                    let (e_new, f_new, e_ext_m, f_ext_m) = if affine {
                        let e_in = W::V::load(ep.as_ptr().add(base));
                        let f_in = W::V::load(fp.as_ptr().add(base - 1));
                        let e_ext = e_in.subs(vge);
                        let e_open = h_l.subs(vgo);
                        let f_ext = f_in.subs(vge);
                        let f_open = h_u.subs(vgo);
                        (
                            e_ext.max(e_open),
                            f_ext.max(f_open),
                            e_ext.cmpgt(e_open),
                            f_ext.cmpgt(f_open),
                        )
                    } else {
                        (
                            h_l.subs(vgo),
                            h_u.subs(vgo),
                            vzero.cmpgt(vzero),
                            vzero.cmpgt(vzero),
                        )
                    };

                    let diag_v = h_d.adds(s);
                    let mut h = diag_v.max(vzero).max(e_new).max(f_new);

                    let mut code = vzero;
                    code = W::V::blend(diag_v.cmpeq(h), c_diag, code);
                    code = W::V::blend(e_new.cmpeq(h), c_e, code);
                    code = W::V::blend(f_new.cmpeq(h), c_f, code);
                    code = W::V::blend(h.cmpeq(vzero), vzero, code);
                    code = code.or(W::V::blend(e_ext_m, c_eext, vzero));
                    code = code.or(W::V::blend(f_ext_m, c_fext, vzero));

                    let mut e_st = e_new;
                    let mut f_st = f_new;
                    if rem < lanes {
                        let mask = W::V::mask_first(rem);
                        h = W::V::blend(mask, h, vzero);
                        e_st = W::V::blend(mask, e_new, vneg);
                        f_st = W::V::blend(mask, f_new, vneg);
                        stats.padded_lanes += (lanes - rem) as u64;
                    }

                    h.store(hc.as_mut_ptr().add(base));
                    if affine {
                        e_st.store(ec.as_mut_ptr().add(base));
                        f_st.store(fc.as_mut_ptr().add(base));
                    }
                    code.store(dirs.data.as_mut_ptr().add(doff + (base - lo)));
                    dmax = dmax.max(h);
                }
                stats.vector_steps += 1;
                stats.vector_lane_slots += lanes as u64;
                stats.vector_loads += if affine { 5 } else { 3 };
                stats.vector_stores += if affine { 4 } else { 2 };
                base += lanes;
            }
        }

        // Position tracking: one reduction per diagonal, one rescan only
        // on improvement (§III-D deferred-max, adapted for traceback).
        let dbest = dmax.hmax().to_i32().max(dscalar);
        if dbest > best {
            for i in lo..=hi {
                if hc[i].to_i32() == dbest {
                    best = dbest;
                    best_cell = (i, d - i);
                    break;
                }
            }
        }

        if lo == 1 {
            hc[0] = Elem::<En, W>::ZERO;
            fc[0] = Elem::<En, W>::NEG_INF;
        }
        if hi < m {
            hc[hi + 1] = Elem::<En, W>::ZERO;
            ec[hi + 1] = Elem::<En, W>::NEG_INF;
        }

        std::mem::swap(&mut hpp, &mut hp);
        std::mem::swap(&mut hp, &mut hc);
        std::mem::swap(&mut ep, &mut ec);
        std::mem::swap(&mut fp, &mut fc);

        // Amortized governor poll; governed callers re-check the token
        // and discard this early-return.
        if d % crate::govern::CANCEL_CHECK_PERIOD == 0 && crate::govern::cancel_poll() {
            return TbOut {
                score: 0,
                saturated: false,
                end: None,
                alignment: None,
            };
        }
    }

    let saturated = Elem::<En, W>::BITS < 32 && best >= Elem::<En, W>::MAX.to_i32();
    let alignment = (best > 0 && !saturated).then(|| {
        let mut sp = swsimd_obs::span!(
            "traceback",
            "end_i" => best_cell.0,
            "end_j" => best_cell.1,
        );
        let aln = walk_diag(&dirs, best_cell.0, best_cell.1);
        sp.record("ops", aln.ops.len());
        aln
    });
    TbOut {
        score: best,
        saturated,
        end: Some(best_cell),
        alignment,
    }
}

/// Walk the diagonal-linearized direction matrix (same state machine as
/// the scalar reference walk).
fn walk_diag<E: ScoreElem>(dirs: &DirMatrix<E>, mut i: usize, mut j: usize) -> Alignment {
    let (ie, je) = (i, j);
    let mut ops = Vec::new();
    #[derive(Clone, Copy)]
    enum St {
        H,
        E,
        F,
    }
    let mut st = St::H;
    while i > 0 && j > 0 {
        let code = dirs.code(i, j);
        match st {
            St::H => match code & dir::H_MASK {
                dir::H_ZERO => break,
                dir::H_DIAG => {
                    ops.push(Op::Match);
                    i -= 1;
                    j -= 1;
                }
                dir::H_E => st = St::E,
                _ => st = St::F,
            },
            St::E => {
                ops.push(Op::Delete);
                let ext = code & dir::E_EXT != 0;
                j -= 1;
                if !ext {
                    st = St::H;
                }
            }
            St::F => {
                ops.push(Op::Insert);
                let ext = code & dir::F_EXT != 0;
                i -= 1;
                if !ext {
                    st = St::H;
                }
            }
        }
    }
    ops.reverse();
    Alignment {
        query_start: i,
        query_end: ie,
        target_start: j,
        target_end: je,
        ops,
    }
}
