//! Runtime dispatch: monomorphized `#[target_feature]` entry points for
//! every (engine, width) pair.
//!
//! The generic kernels are `#[inline(always)]`; instantiating them inside
//! a `#[target_feature]` wrapper compiles the whole body with that ISA
//! enabled. Dispatchers check availability before selecting an engine,
//! which is the safety contract for calling the wrappers.

use swsimd_simd::EngineKind;

use crate::diag::kernel::{sw_diag, ScoreOut};
use crate::diag::tb::{sw_diag_tb, TbOut};
use crate::diag::{W16, W32, W8};
use crate::params::{GapModel, Precision, Scoring};
use crate::stats::KernelStats;

type Args<'a, 'b> = (
    &'a [u8],
    &'a [u8],
    &'b Scoring,
    GapModel,
    usize,
    &'b mut KernelStats,
);

macro_rules! engine_wrappers {
    ($mod_:ident, $en:ty, $($feat:literal)?) => {
        pub(crate) mod $mod_ {
            use super::*;

            $(#[target_feature(enable = $feat)])?
            pub(crate) unsafe fn score_w8(a: Args) -> ScoreOut {
                sw_diag::<$en, W8>(a.0, a.1, a.2, a.3, a.4, a.5)
            }
            $(#[target_feature(enable = $feat)])?
            pub(crate) unsafe fn score_w16(a: Args) -> ScoreOut {
                sw_diag::<$en, W16>(a.0, a.1, a.2, a.3, a.4, a.5)
            }
            $(#[target_feature(enable = $feat)])?
            pub(crate) unsafe fn score_w32(a: Args) -> ScoreOut {
                sw_diag::<$en, W32>(a.0, a.1, a.2, a.3, a.4, a.5)
            }
            $(#[target_feature(enable = $feat)])?
            pub(crate) unsafe fn tb_w8(a: Args) -> TbOut {
                sw_diag_tb::<$en, W8>(a.0, a.1, a.2, a.3, a.4, a.5)
            }
            $(#[target_feature(enable = $feat)])?
            pub(crate) unsafe fn tb_w16(a: Args) -> TbOut {
                sw_diag_tb::<$en, W16>(a.0, a.1, a.2, a.3, a.4, a.5)
            }
            $(#[target_feature(enable = $feat)])?
            pub(crate) unsafe fn tb_w32(a: Args) -> TbOut {
                sw_diag_tb::<$en, W32>(a.0, a.1, a.2, a.3, a.4, a.5)
            }
        }
    };
}

engine_wrappers!(scalar, swsimd_simd::Scalar,);
#[cfg(target_arch = "x86_64")]
engine_wrappers!(sse41, swsimd_simd::Sse41, "sse4.1,ssse3");
#[cfg(target_arch = "x86_64")]
engine_wrappers!(avx2, swsimd_simd::Avx2, "avx2");
#[cfg(target_arch = "x86_64")]
engine_wrappers!(
    avx512,
    swsimd_simd::Avx512,
    "avx512f,avx512bw,avx512vl,avx512vbmi"
);

/// Availability check only: fall back to scalar when the CPU lacks the
/// requested ISA. Trust routing is layered on top in [`check_engine`];
/// the self-test battery calls this directly (via the `_raw` entry
/// points) so a demoted engine can still be probed.
fn availability_fallback(engine: EngineKind) -> EngineKind {
    if engine.is_available() {
        engine
    } else {
        swsimd_obs::event!(
            "engine_unavailable",
            "requested" => engine.name(),
            "fallback" => EngineKind::Scalar.name(),
        );
        EngineKind::Scalar
    }
}

fn check_engine(engine: EngineKind) -> EngineKind {
    // Route around engines the trust breaker has demoted (a few
    // relaxed atomic loads — noise next to any kernel invocation).
    crate::trust::global().effective(availability_fallback(engine))
}

/// Open the per-call "kernel" span and snapshot the stats counters the
/// exit attributes are computed from.
fn kernel_span(
    engine: EngineKind,
    precision: Precision,
    mode: &'static str,
    stats: &KernelStats,
) -> (swsimd_obs::Span, u64, u64, u64) {
    let sp = swsimd_obs::span!(
        "kernel",
        "isa" => engine.name(),
        "precision" => precision.name(),
        "mode" => mode,
    );
    (sp, stats.cells, stats.vector_lane_slots, stats.padded_lanes)
}

/// Attach the lane-utilization attributes from the stats deltas this
/// kernel call produced.
fn finish_kernel_span(
    sp: &mut swsimd_obs::Span,
    stats: &KernelStats,
    (cells0, slots0, padded0): (u64, u64, u64),
    score: i32,
    saturated: bool,
) {
    if !sp.active() {
        return;
    }
    let slots = stats.vector_lane_slots - slots0;
    let padded = stats.padded_lanes - padded0;
    sp.record("cells", stats.cells - cells0);
    sp.record("lane_slots", slots);
    sp.record("padded_lanes", padded);
    if slots > 0 {
        sp.record("lane_utilization", 1.0 - padded as f64 / slots as f64);
    }
    sp.record("score", i64::from(score));
    sp.record("saturated", saturated);
}

/// Width for a fixed (non-adaptive) precision.
fn fixed_width(p: Precision) -> Precision {
    match p {
        Precision::Adaptive => {
            unreachable!("adaptive precision is resolved by the caller (api::Aligner)")
        }
        other => other,
    }
}

/// Run the score-only diagonal kernel on a chosen engine and precision.
///
/// Falls back to the scalar engine if `engine` is not available on the
/// running CPU. `precision` must not be `Adaptive` (resolved upstream).
pub fn diag_score(
    engine: EngineKind,
    precision: Precision,
    query: &[u8],
    target: &[u8],
    scoring: &Scoring,
    gaps: GapModel,
    scalar_threshold: usize,
    stats: &mut KernelStats,
) -> ScoreOut {
    let _dispatch = swsimd_obs::span!(
        "dispatch",
        "engine" => engine.name(),
        "qlen" => query.len(),
        "tlen" => target.len(),
    );
    let engine = check_engine(engine);
    score_resolved(
        engine,
        precision,
        query,
        target,
        scoring,
        gaps,
        scalar_threshold,
        stats,
    )
}

/// As [`diag_score`], but only availability-checked: trust routing is
/// bypassed so the self-test battery can probe a demoted engine.
pub(crate) fn diag_score_raw(
    engine: EngineKind,
    precision: Precision,
    query: &[u8],
    target: &[u8],
    scoring: &Scoring,
    gaps: GapModel,
    scalar_threshold: usize,
    stats: &mut KernelStats,
) -> ScoreOut {
    let engine = availability_fallback(engine);
    score_resolved(
        engine,
        precision,
        query,
        target,
        scoring,
        gaps,
        scalar_threshold,
        stats,
    )
}

fn score_resolved(
    engine: EngineKind,
    precision: Precision,
    query: &[u8],
    target: &[u8],
    scoring: &Scoring,
    gaps: GapModel,
    scalar_threshold: usize,
    stats: &mut KernelStats,
) -> ScoreOut {
    let p = fixed_width(precision);
    let (mut sp, c0, s0, p0) = kernel_span(engine, p, "score", stats);
    let a: Args = (query, target, scoring, gaps, scalar_threshold, &mut *stats);
    // SAFETY: the engine was availability-checked above; wrappers only
    // require their ISA to be present.
    let out = unsafe {
        match (engine, p) {
            (EngineKind::Scalar, Precision::I8) => scalar::score_w8(a),
            (EngineKind::Scalar, Precision::I16) => scalar::score_w16(a),
            (EngineKind::Scalar, _) => scalar::score_w32(a),
            #[cfg(target_arch = "x86_64")]
            (EngineKind::Sse41, Precision::I8) => sse41::score_w8(a),
            #[cfg(target_arch = "x86_64")]
            (EngineKind::Sse41, Precision::I16) => sse41::score_w16(a),
            #[cfg(target_arch = "x86_64")]
            (EngineKind::Sse41, _) => sse41::score_w32(a),
            #[cfg(target_arch = "x86_64")]
            (EngineKind::Avx2, Precision::I8) => avx2::score_w8(a),
            #[cfg(target_arch = "x86_64")]
            (EngineKind::Avx2, Precision::I16) => avx2::score_w16(a),
            #[cfg(target_arch = "x86_64")]
            (EngineKind::Avx2, _) => avx2::score_w32(a),
            #[cfg(target_arch = "x86_64")]
            (EngineKind::Avx512, Precision::I8) => avx512::score_w8(a),
            #[cfg(target_arch = "x86_64")]
            (EngineKind::Avx512, Precision::I16) => avx512::score_w16(a),
            #[cfg(target_arch = "x86_64")]
            (EngineKind::Avx512, _) => avx512::score_w32(a),
            #[cfg(not(target_arch = "x86_64"))]
            _ => scalar::score_w32(a),
        }
    };
    finish_kernel_span(&mut sp, stats, (c0, s0, p0), out.score, out.saturated);
    out
}

/// Run the traceback diagonal kernel on a chosen engine and precision.
pub fn diag_traceback(
    engine: EngineKind,
    precision: Precision,
    query: &[u8],
    target: &[u8],
    scoring: &Scoring,
    gaps: GapModel,
    scalar_threshold: usize,
    stats: &mut KernelStats,
) -> TbOut {
    let _dispatch = swsimd_obs::span!(
        "dispatch",
        "engine" => engine.name(),
        "qlen" => query.len(),
        "tlen" => target.len(),
    );
    let engine = check_engine(engine);
    tb_resolved(
        engine,
        precision,
        query,
        target,
        scoring,
        gaps,
        scalar_threshold,
        stats,
    )
}

/// As [`diag_traceback`], but only availability-checked (see
/// [`diag_score_raw`]).
pub(crate) fn diag_traceback_raw(
    engine: EngineKind,
    precision: Precision,
    query: &[u8],
    target: &[u8],
    scoring: &Scoring,
    gaps: GapModel,
    scalar_threshold: usize,
    stats: &mut KernelStats,
) -> TbOut {
    let engine = availability_fallback(engine);
    tb_resolved(
        engine,
        precision,
        query,
        target,
        scoring,
        gaps,
        scalar_threshold,
        stats,
    )
}

fn tb_resolved(
    engine: EngineKind,
    precision: Precision,
    query: &[u8],
    target: &[u8],
    scoring: &Scoring,
    gaps: GapModel,
    scalar_threshold: usize,
    stats: &mut KernelStats,
) -> TbOut {
    let p = fixed_width(precision);
    let (mut sp, c0, s0, p0) = kernel_span(engine, p, "traceback", stats);
    let a: Args = (query, target, scoring, gaps, scalar_threshold, &mut *stats);
    // SAFETY: as in `diag_score`.
    let out = unsafe {
        match (engine, p) {
            (EngineKind::Scalar, Precision::I8) => scalar::tb_w8(a),
            (EngineKind::Scalar, Precision::I16) => scalar::tb_w16(a),
            (EngineKind::Scalar, _) => scalar::tb_w32(a),
            #[cfg(target_arch = "x86_64")]
            (EngineKind::Sse41, Precision::I8) => sse41::tb_w8(a),
            #[cfg(target_arch = "x86_64")]
            (EngineKind::Sse41, Precision::I16) => sse41::tb_w16(a),
            #[cfg(target_arch = "x86_64")]
            (EngineKind::Sse41, _) => sse41::tb_w32(a),
            #[cfg(target_arch = "x86_64")]
            (EngineKind::Avx2, Precision::I8) => avx2::tb_w8(a),
            #[cfg(target_arch = "x86_64")]
            (EngineKind::Avx2, Precision::I16) => avx2::tb_w16(a),
            #[cfg(target_arch = "x86_64")]
            (EngineKind::Avx2, _) => avx2::tb_w32(a),
            #[cfg(target_arch = "x86_64")]
            (EngineKind::Avx512, Precision::I8) => avx512::tb_w8(a),
            #[cfg(target_arch = "x86_64")]
            (EngineKind::Avx512, Precision::I16) => avx512::tb_w16(a),
            #[cfg(target_arch = "x86_64")]
            (EngineKind::Avx512, _) => avx512::tb_w32(a),
            #[cfg(not(target_arch = "x86_64"))]
            _ => scalar::tb_w32(a),
        }
    };
    finish_kernel_span(&mut sp, stats, (c0, s0, p0), out.score, out.saturated);
    out
}
