//! Score-only diagonal kernel, generic over engine and lane width.

use swsimd_simd::{ScoreElem, SimdEngine, SimdVec};

use crate::diag::{diag_bounds, gap_elems, KernelWidth};
use crate::params::{GapModel, Scoring};
use crate::stats::KernelStats;

/// Outcome of a score-only kernel run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ScoreOut {
    /// Best local score, clamped to the lane precision.
    pub score: i32,
    /// True if the lane precision saturated — rerun at a wider width.
    pub saturated: bool,
}

/// How often (in diagonals) the kernel checks for early saturation so
/// adaptive mode can abandon doomed 8-bit runs quickly.
const SATURATION_CHECK_PERIOD: usize = 128;

/// The diagonal Smith-Waterman kernel (scores only).
///
/// Must be instantiated inside a `#[target_feature]` wrapper matching
/// `En` (see `diag::dispatch`); `#[inline(always)]` makes the engine's
/// ops compile under that wrapper's ISA.
#[inline(always)]
pub(crate) fn sw_diag<En: SimdEngine, W: KernelWidth<En>>(
    query: &[u8],
    target: &[u8],
    scoring: &Scoring,
    gaps: GapModel,
    scalar_threshold: usize,
    stats: &mut KernelStats,
) -> ScoreOut {
    type Elem<En2, W2> = <<W2 as KernelWidth<En2>>::V as SimdVec>::Elem;

    let (m, n) = (query.len(), target.len());
    if m == 0 || n == 0 {
        return ScoreOut {
            score: 0,
            saturated: false,
        };
    }
    let lanes = <W::V as SimdVec>::LANES;
    let scalar_threshold = scalar_threshold.max(1);

    let vzero = W::V::zero();
    let vneg = W::V::splat(Elem::<En, W>::NEG_INF);
    let (go, ge, affine) = gap_elems::<Elem<En, W>>(gaps);
    let vgo = W::V::splat(go);
    let vge = W::V::splat(ge);
    let (go32, ge32) = (go.to_i32(), ge.to_i32());

    // Rolling diagonal buffers indexed by the query coordinate `i`, with
    // one guard cell below (`i-1` loads at `i = 1` hit index 0) and
    // `lanes` of slack above so ragged tail vectors can store freely.
    let blen = m + 2 + lanes;
    let mut hp = vec![Elem::<En, W>::ZERO; blen]; // H on diagonal d-1
    let mut hpp = vec![Elem::<En, W>::ZERO; blen]; // H on diagonal d-2
    let mut hc = vec![Elem::<En, W>::ZERO; blen];
    let mut ep = vec![Elem::<En, W>::NEG_INF; blen]; // E on d-1
    let mut ec = vec![Elem::<En, W>::NEG_INF; blen];
    let mut fp = vec![Elem::<En, W>::NEG_INF; blen]; // F on d-1
    let mut fc = vec![Elem::<En, W>::NEG_INF; blen];

    // Index arrays padded with `lanes` guard bytes so over-reads by
    // ragged tail vectors stay in bounds (guard residue 0 is a valid
    // table index; the lanes are masked out anyway).
    let mut qpad = vec![0u8; m + lanes];
    qpad[..m].copy_from_slice(query);
    let mut rrev = vec![0u8; n + lanes];
    for (t, slot) in rrev[..n].iter_mut().enumerate() {
        *slot = target[n - 1 - t];
    }

    // Element-typed copies for the compare-based fixed-score path.
    let (qel, rrevel, vmatch, vmismatch) = match scoring {
        Scoring::Fixed { r#match, mismatch } => {
            let qel: Vec<_> = qpad
                .iter()
                .map(|&b| Elem::<En, W>::from_i32(b as i32))
                .collect();
            let rel: Vec<_> = rrev
                .iter()
                .map(|&b| Elem::<En, W>::from_i32(b as i32))
                .collect();
            (
                qel,
                rel,
                W::V::splat(Elem::<En, W>::from_i32(*r#match)),
                W::V::splat(Elem::<En, W>::from_i32(*mismatch)),
            )
        }
        Scoring::Matrix(_) => (Vec::new(), Vec::new(), vzero, vzero),
    };

    let mut vmax = vzero;
    let mut scalar_best = 0i32;

    for d in 2..=(m + n) {
        let (lo, hi) = diag_bounds(d, m, n);
        debug_assert!(lo <= hi);
        let len = hi - lo + 1;
        stats.diagonals += 1;
        stats.cells += len as u64;

        if len < scalar_threshold {
            // Short segment: revert to standard CPU instructions (Fig 3).
            for i in lo..=hi {
                let j = d - i;
                let s = scoring.score(query[i - 1], target[j - 1]);
                let h_l = hp[i].to_i32();
                let h_u = hp[i - 1].to_i32();
                let h_d = hpp[i - 1].to_i32();
                let (e_new, f_new) = if affine {
                    (
                        (ep[i].to_i32() - ge32).max(h_l - go32),
                        (fp[i - 1].to_i32() - ge32).max(h_u - go32),
                    )
                } else {
                    (h_l - go32, h_u - go32)
                };
                let h = Elem::<En, W>::from_i32(0.max(h_d + s).max(e_new).max(f_new));
                hc[i] = h;
                if affine {
                    ec[i] = Elem::<En, W>::from_i32(e_new);
                    fc[i] = Elem::<En, W>::from_i32(f_new);
                }
                scalar_best = scalar_best.max(h.to_i32());
            }
            stats.scalar_cells += len as u64;
        } else {
            let mut base = lo;
            while base <= hi {
                let rem = hi + 1 - base;
                // SAFETY: all loads/stores stay within the `blen`-sized
                // buffers (`base ≤ hi ≤ m`, slack of `lanes` above, guard
                // at 0); the index-array reads stay within their `lanes`
                // guard bytes, and every residue byte is `< 32`.
                unsafe {
                    let h_l = W::V::load(hp.as_ptr().add(base));
                    let h_u = W::V::load(hp.as_ptr().add(base - 1));
                    let h_d = W::V::load(hpp.as_ptr().add(base - 1));

                    let s = match scoring {
                        Scoring::Matrix(mat) => {
                            if W::HARDWARE_GATHER {
                                stats.gather_ops += 1;
                            } else {
                                stats.emulated_gathers += 1;
                            }
                            W::gather(
                                mat,
                                qpad.as_ptr().add(base - 1),
                                rrev.as_ptr().add(base + n - d),
                            )
                        }
                        Scoring::Fixed { .. } => {
                            let qv = W::V::load(qel.as_ptr().add(base - 1));
                            let rv = W::V::load(rrevel.as_ptr().add(base + n - d));
                            W::V::blend(qv.cmpeq(rv), vmatch, vmismatch)
                        }
                    };

                    let (e_new, f_new) = if affine {
                        let e_in = W::V::load(ep.as_ptr().add(base));
                        let f_in = W::V::load(fp.as_ptr().add(base - 1));
                        (
                            e_in.subs(vge).max(h_l.subs(vgo)),
                            f_in.subs(vge).max(h_u.subs(vgo)),
                        )
                    } else {
                        (h_l.subs(vgo), h_u.subs(vgo))
                    };

                    let mut h = h_d.adds(s).max(vzero).max(e_new).max(f_new);
                    let mut e_st = e_new;
                    let mut f_st = f_new;
                    if rem < lanes {
                        // Zero-pad the unused lanes (Fig 3, yellow cells).
                        let mask = W::V::mask_first(rem);
                        h = W::V::blend(mask, h, vzero);
                        e_st = W::V::blend(mask, e_new, vneg);
                        f_st = W::V::blend(mask, f_new, vneg);
                        stats.padded_lanes += (lanes - rem) as u64;
                    }

                    h.store(hc.as_mut_ptr().add(base));
                    if affine {
                        e_st.store(ec.as_mut_ptr().add(base));
                        f_st.store(fc.as_mut_ptr().add(base));
                    }
                    vmax = vmax.max(h);
                }
                stats.vector_steps += 1;
                stats.vector_lane_slots += lanes as u64;
                stats.vector_loads += if affine { 5 } else { 3 };
                stats.vector_stores += if affine { 3 } else { 1 };
                base += lanes;
            }
        }

        // Boundary guards for the next two diagonals' reads.
        if lo == 1 {
            hc[0] = Elem::<En, W>::ZERO; // H(0, d) = 0
            fc[0] = Elem::<En, W>::NEG_INF; // F(0, d) = -inf
        }
        if hi < m {
            hc[hi + 1] = Elem::<En, W>::ZERO; // H(d, 0) = 0
            ec[hi + 1] = Elem::<En, W>::NEG_INF; // E(d, 0) = -inf
        }

        std::mem::swap(&mut hpp, &mut hp);
        std::mem::swap(&mut hp, &mut hc);
        std::mem::swap(&mut ep, &mut ec);
        std::mem::swap(&mut fp, &mut fc);

        if Elem::<En, W>::BITS < 32
            && d % SATURATION_CHECK_PERIOD == 0
            && vmax.hmax() == Elem::<En, W>::MAX
        {
            return ScoreOut {
                score: Elem::<En, W>::MAX.to_i32(),
                saturated: true,
            };
        }

        // Amortized governor poll: the early-return value is garbage by
        // contract — governed callers re-check the token and discard it.
        if d % crate::govern::CANCEL_CHECK_PERIOD == 0 && crate::govern::cancel_poll() {
            return ScoreOut {
                score: 0,
                saturated: false,
            };
        }
    }

    let best = vmax.hmax().to_i32().max(scalar_best);
    let saturated = Elem::<En, W>::BITS < 32 && best >= Elem::<En, W>::MAX.to_i32();
    ScoreOut {
        score: best,
        saturated,
    }
}
