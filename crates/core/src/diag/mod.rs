//! The paper's diagonal (anti-diagonal wavefront) Smith-Waterman kernel.
//!
//! Design recap (§III):
//!
//! * **Diagonal-based memory indexing (Fig 2)** — the DP state is stored
//!   per anti-diagonal; three rolling buffers (H at `d-1`, H at `d-2`,
//!   and the E/F gap states at `d-1`) are indexed directly by the query
//!   coordinate `i`, so every dependency of a cell is an *unaligned
//!   contiguous load* at `i` or `i-1`. No lane shuffles are needed in
//!   the inner loop, and the buffer written for diagonal `d` is re-read
//!   (cache-hot) as the neighbour of diagonals `d+1` and `d+2`.
//! * **Variable-length segments (Fig 3)** — diagonals shorter than a
//!   tunable threshold run on the scalar unit; ragged tail vectors are
//!   zero-padded via lane masks so padding can never produce a score.
//! * **Substitution scores (Figs 4, 5)** — matrix mode fetches scores
//!   with the reorganized-matrix gather (32/16-bit; 8-bit is emulated,
//!   which is exactly why the paper routes 8-bit work to the
//!   query-profile batch kernel in `crate::batch`); fixed mode scores
//!   with a compare + blend and touches no tables.
//! * **Deferred maximum (§III-D)** — per-lane maxima accumulate in one
//!   register; a single horizontal reduction runs at the end.
//!
//! The kernel is deterministic: its instruction sequence depends only on
//! sequence lengths, never on cell values (no lazy-F correction loops).

pub mod dispatch;
pub mod kernel;
pub mod tb;

use swsimd_matrices::ReorganizedMatrix;
use swsimd_simd::{ScoreElem, SimdEngine, SimdVec};

use crate::params::Precision;

/// Ties one lane precision to one engine's vector type and the
/// matching score-gather primitive.
pub trait KernelWidth<En: SimdEngine>: 'static {
    /// The vector type at this width.
    type V: SimdVec;
    /// The precision this width implements.
    const PRECISION: Precision;
    /// True when this width's gather is hardware-accelerated (the paper's
    /// 8-bit path is not — no byte gather exists).
    const HARDWARE_GATHER: bool;

    /// Gather `LANES` substitution scores `S[q[k], r[k]]`.
    ///
    /// # Safety
    /// `q` and `r` must be valid for `LANES` byte reads and every byte
    /// must be `< 32`.
    unsafe fn gather(m: &ReorganizedMatrix, q: *const u8, r: *const u8) -> Self::V;
}

/// 8-bit lanes.
pub struct W8;
/// 16-bit lanes.
pub struct W16;
/// 32-bit lanes.
pub struct W32;

impl<En: SimdEngine> KernelWidth<En> for W8 {
    type V = En::V8;
    const PRECISION: Precision = Precision::I8;
    const HARDWARE_GATHER: bool = false;

    #[inline(always)]
    unsafe fn gather(m: &ReorganizedMatrix, q: *const u8, r: *const u8) -> Self::V {
        En::gather_scores_i8(m.flat8(), q, r)
    }
}

impl<En: SimdEngine> KernelWidth<En> for W16 {
    type V = En::V16;
    const PRECISION: Precision = Precision::I16;
    const HARDWARE_GATHER: bool = true;

    #[inline(always)]
    unsafe fn gather(m: &ReorganizedMatrix, q: *const u8, r: *const u8) -> Self::V {
        En::gather_scores_i16(m.flat16(), q, r)
    }
}

impl<En: SimdEngine> KernelWidth<En> for W32 {
    type V = En::V32;
    const PRECISION: Precision = Precision::I32;
    const HARDWARE_GATHER: bool = true;

    #[inline(always)]
    unsafe fn gather(m: &ReorganizedMatrix, q: *const u8, r: *const u8) -> Self::V {
        En::gather_scores_i32(m.flat32(), q, r)
    }
}

/// Open/extend costs widened to the lane element.
#[inline(always)]
pub(crate) fn gap_elems<E: ScoreElem>(gaps: crate::params::GapModel) -> (E, E, bool) {
    match gaps {
        crate::params::GapModel::Linear { gap } => (E::from_i32(gap), E::from_i32(gap), false),
        crate::params::GapModel::Affine(g) => (E::from_i32(g.open), E::from_i32(g.extend), true),
    }
}

/// Interior bounds of anti-diagonal `d` over an `m×n` DP matrix:
/// cells `(i, d-i)` with `i` in `lo..=hi`, all with `i ≥ 1, j ≥ 1`.
#[inline(always)]
pub(crate) fn diag_bounds(d: usize, m: usize, n: usize) -> (usize, usize) {
    (d.saturating_sub(n).max(1), m.min(d - 1))
}

/// Census of diagonal segment lengths for an `m×n` problem: how many
/// cells fall in segments shorter than `threshold` (the paper's
/// "roughly around 15%" §III-B claim, reproduced by the figure harness).
pub fn segment_census(m: usize, n: usize, threshold: usize) -> (u64, u64) {
    let mut short = 0u64;
    let mut total = 0u64;
    if m == 0 || n == 0 {
        return (0, 0);
    }
    for d in 2..=(m + n) {
        let (lo, hi) = diag_bounds(d, m, n);
        if lo > hi {
            continue;
        }
        let len = (hi - lo + 1) as u64;
        total += len;
        if (len as usize) < threshold {
            short += len;
        }
    }
    (short, total)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn diag_bounds_cover_matrix_exactly() {
        for (m, n) in [(1, 1), (3, 7), (7, 3), (5, 5), (1, 9)] {
            let mut cells = 0usize;
            for d in 2..=(m + n) {
                let (lo, hi) = diag_bounds(d, m, n);
                if lo > hi {
                    continue;
                }
                for i in lo..=hi {
                    let j = d - i;
                    assert!((1..=m).contains(&i) && (1..=n).contains(&j));
                    cells += 1;
                }
            }
            assert_eq!(cells, m * n, "m={m} n={n}");
        }
    }

    #[test]
    fn census_counts_all_cells() {
        let (short, total) = segment_census(10, 20, 8);
        assert_eq!(total, 200);
        assert!(short > 0 && short < total);
    }

    #[test]
    fn census_short_fraction_shrinks_with_size() {
        let (s1, t1) = segment_census(50, 100, 16);
        let (s2, t2) = segment_census(500, 1000, 16);
        let f1 = s1 as f64 / t1 as f64;
        let f2 = s2 as f64 / t2 as f64;
        assert!(f2 < f1, "{f2} !< {f1}");
    }

    #[test]
    fn census_empty() {
        assert_eq!(segment_census(0, 5, 4), (0, 0));
    }
}
