#![allow(clippy::needless_range_loop)] // kernel loops index several parallel arrays by design
#![allow(clippy::too_many_arguments)] // kernel entry points mirror the paper's parameter lists
#![warn(missing_docs)]

//! # swsimd-core
//!
//! The paper's contribution: a deterministic, diagonal-vectorized
//! Smith-Waterman implementation with a diagonal-linearized memory
//! layout, reorganized-substitution-matrix scoring (gather and
//! LUT/profile paths), zero-padded variable-length segments, deferred
//! per-lane maxima, optional traceback, adaptive 8/16/32-bit precision,
//! and an inter-sequence batch kernel for database search.

pub mod adaptive;
pub mod api;
pub mod banded;
pub mod batch;
pub mod diag;
pub mod error;
pub mod govern;
pub mod modes;
pub mod params;
pub mod scalar_ref;
pub mod selftest;
pub mod stats;
pub mod trust;

pub use api::{Aligner, AlignerBuilder, Hit};
pub use error::{validate_encoded, AlignError};
// Re-exported so deployment layers can pin the reference engine for
// degraded retries without depending on `swsimd-simd` directly.
pub use banded::{banded_score, sw_banded_scalar};
pub use diag::dispatch::{diag_score, diag_traceback};
pub use diag::segment_census;
pub use govern::{
    CancelReason, CancelToken, GovernorScope, MemBudget, MemReservation, CANCEL_CHECK_PERIOD,
};
pub use modes::{
    adaptive_mode_score, diag_mode_score, sw_scalar_mode, sw_scalar_mode_traceback, AlignMode,
};
pub use params::{AlignResult, Alignment, GapModel, GapPenalties, Op, Precision, Scoring};
pub use scalar_ref::{sw_scalar, sw_scalar_traceback};
pub use selftest::{run_battery, SelftestReport};
pub use stats::KernelStats;
pub use swsimd_simd::EngineKind;
pub use trust::{TrustLadder, TrustState};

#[cfg(test)]
mod equivalence_tests;
