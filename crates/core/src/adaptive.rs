//! Adaptive 8→16→32-bit precision — contribution (iii), the "variable
//! (8/16) bit width implementation".
//!
//! Strategy: if a static bound proves 8-bit cannot saturate, or
//! optimistically otherwise, run the fast 8-bit kernel; on saturation
//! rerun the same pair at 16-bit, and (for pathological scores above
//! 32767) at 32-bit. Each promotion is counted in
//! [`KernelStats::promotions`]. Because scores are clamped, a saturated
//! run is detected with certainty — the promotion never misses.

use swsimd_simd::EngineKind;

use crate::diag::dispatch::{diag_score, diag_traceback};
use crate::diag::tb::TbOut;
use crate::params::{GapModel, Precision, Scoring};
use crate::stats::KernelStats;

/// Upper bound on the achievable local score for a pair: every aligned
/// position can gain at most `max_score`.
pub fn score_upper_bound(m: usize, n: usize, scoring: &Scoring) -> i64 {
    m.min(n) as i64 * scoring.max_score().max(1) as i64
}

/// Smallest precision whose range provably holds the score bound.
pub fn minimal_safe_precision(m: usize, n: usize, scoring: &Scoring) -> Precision {
    let bound = score_upper_bound(m, n, scoring);
    if bound < i8::MAX as i64 {
        Precision::I8
    } else if bound < i16::MAX as i64 {
        Precision::I16
    } else {
        Precision::I32
    }
}

/// Score-only alignment with adaptive precision. Returns the exact
/// score and the precision that finally produced it.
pub fn adaptive_score(
    engine: EngineKind,
    query: &[u8],
    target: &[u8],
    scoring: &Scoring,
    gaps: GapModel,
    scalar_threshold: usize,
    stats: &mut KernelStats,
) -> (i32, Precision) {
    let r8 = diag_score(
        engine,
        Precision::I8,
        query,
        target,
        scoring,
        gaps,
        scalar_threshold,
        stats,
    );
    if !r8.saturated {
        return (r8.score, Precision::I8);
    }
    stats.promotions += 1;
    swsimd_obs::event!(
        "precision_escalation",
        "from" => Precision::I8.name(),
        "to" => Precision::I16.name(),
        "reason" => "saturated",
    );
    let r16 = diag_score(
        engine,
        Precision::I16,
        query,
        target,
        scoring,
        gaps,
        scalar_threshold,
        stats,
    );
    if !r16.saturated {
        return (r16.score, Precision::I16);
    }
    stats.promotions += 1;
    swsimd_obs::event!(
        "precision_escalation",
        "from" => Precision::I16.name(),
        "to" => Precision::I32.name(),
        "reason" => "saturated",
    );
    let r32 = diag_score(
        engine,
        Precision::I32,
        query,
        target,
        scoring,
        gaps,
        scalar_threshold,
        stats,
    );
    (r32.score, Precision::I32)
}

/// Traceback alignment with adaptive precision.
pub fn adaptive_traceback(
    engine: EngineKind,
    query: &[u8],
    target: &[u8],
    scoring: &Scoring,
    gaps: GapModel,
    scalar_threshold: usize,
    stats: &mut KernelStats,
) -> (TbOut, Precision) {
    // Start at the provably-safe precision: rerunning a traceback kernel
    // costs O(mn) memory traffic twice, so the static bound is worth it.
    let start = minimal_safe_precision(query.len(), target.len(), scoring);
    let order: &[Precision] = match start {
        Precision::I8 => &[Precision::I8, Precision::I16, Precision::I32],
        Precision::I16 => &[Precision::I16, Precision::I32],
        _ => &[Precision::I32],
    };
    let mut last = None;
    for (k, &p) in order.iter().enumerate() {
        if k > 0 {
            stats.promotions += 1;
            swsimd_obs::event!(
                "precision_escalation",
                "from" => order[k - 1].name(),
                "to" => p.name(),
                "reason" => "saturated",
            );
        }
        let r = diag_traceback(
            engine,
            p,
            query,
            target,
            scoring,
            gaps,
            scalar_threshold,
            stats,
        );
        let saturated = r.saturated;
        last = Some((r, p));
        if !saturated {
            break;
        }
    }
    last.expect("order is never empty")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::GapPenalties;
    use crate::scalar_ref::sw_scalar;
    use swsimd_matrices::blosum62;

    #[test]
    fn bounds_and_minimal_precision() {
        let s = Scoring::matrix(blosum62());
        assert_eq!(minimal_safe_precision(5, 1000, &s), Precision::I8); // 5*11=55
        assert_eq!(minimal_safe_precision(100, 100, &s), Precision::I16); // 1100
        assert_eq!(minimal_safe_precision(5000, 5000, &s), Precision::I32); // 55000
    }

    #[test]
    fn adaptive_promotes_and_returns_exact_score() {
        let q = vec![17u8; 400]; // W x 400 → 4400 > 127
        let scoring = Scoring::matrix(blosum62());
        let gaps = GapModel::Affine(GapPenalties::new(11, 1));
        let mut stats = KernelStats::default();
        let (score, prec) =
            adaptive_score(EngineKind::best(), &q, &q, &scoring, gaps, 8, &mut stats);
        assert_eq!(score, 4400);
        assert_eq!(prec, Precision::I16);
        assert_eq!(stats.promotions, 1);
    }

    #[test]
    fn adaptive_stays_at_i8_when_possible() {
        let q = vec![0u8; 10]; // A x 10 → 40 < 127
        let scoring = Scoring::matrix(blosum62());
        let mut stats = KernelStats::default();
        let (score, prec) = adaptive_score(
            EngineKind::best(),
            &q,
            &q,
            &scoring,
            GapModel::default_affine(),
            8,
            &mut stats,
        );
        assert_eq!(score, 40);
        assert_eq!(prec, Precision::I8);
        assert_eq!(stats.promotions, 0);
    }

    /// True score exactly at the 8-bit ceiling (127): the clamped
    /// kernel cannot distinguish 127 from >127, so escalation must
    /// trigger and the 16-bit rerun must recover the exact score.
    #[test]
    fn escalation_boundary_exact_i8_ceiling() {
        let scoring = Scoring::Fixed {
            r#match: 127,
            mismatch: -1,
        };
        let gaps = GapModel::default_affine();
        let q = vec![0u8; 1];
        let want = sw_scalar(&q, &q, &scoring, gaps).score;
        assert_eq!(want, 127, "case must land exactly on i8::MAX");
        for engine in EngineKind::available() {
            let mut stats = KernelStats::default();
            let (score, prec) = adaptive_score(engine, &q, &q, &scoring, gaps, 0, &mut stats);
            assert_eq!(score, want, "{engine:?}");
            assert_eq!(prec, Precision::I16, "{engine:?} must escalate at 127");
            assert_eq!(stats.promotions, 1, "{engine:?}");
        }
    }

    /// One below the 8-bit ceiling (126): representable, must NOT
    /// escalate.
    #[test]
    fn escalation_boundary_one_below_i8_ceiling() {
        let scoring = Scoring::Fixed {
            r#match: 126,
            mismatch: -1,
        };
        let gaps = GapModel::default_affine();
        let q = vec![0u8; 1];
        for engine in EngineKind::available() {
            let mut stats = KernelStats::default();
            let (score, prec) = adaptive_score(engine, &q, &q, &scoring, gaps, 0, &mut stats);
            assert_eq!(score, 126, "{engine:?}");
            assert_eq!(prec, Precision::I8, "{engine:?} must stay 8-bit at 126");
            assert_eq!(stats.promotions, 0, "{engine:?}");
        }
    }

    /// Multi-lane variant of the 8-bit boundary: a homopolymer whose
    /// running score crosses 127 mid-sequence, not in the first cell.
    #[test]
    fn escalation_boundary_i8_ceiling_multilane() {
        let scoring = Scoring::Fixed {
            r#match: 1,
            mismatch: -1,
        };
        let gaps = GapModel::default_affine();
        let at = vec![0u8; 127]; // score 127 == i8::MAX → escalates
        let below = vec![0u8; 126]; // score 126 → stays 8-bit
        for engine in EngineKind::available() {
            let mut stats = KernelStats::default();
            let (score, prec) = adaptive_score(engine, &at, &at, &scoring, gaps, 0, &mut stats);
            assert_eq!(score, 127, "{engine:?}");
            assert_eq!(prec, Precision::I16, "{engine:?}");

            let mut stats = KernelStats::default();
            let (score, prec) =
                adaptive_score(engine, &below, &below, &scoring, gaps, 0, &mut stats);
            assert_eq!(score, 126, "{engine:?}");
            assert_eq!(prec, Precision::I8, "{engine:?}");
        }
    }

    /// True score exactly at the 16-bit ceiling (32767 = 217 × 151):
    /// both the 8→16 and 16→32 escalations must fire, and the 32-bit
    /// rerun must match the scalar reference exactly.
    #[test]
    fn escalation_boundary_exact_i16_ceiling() {
        let scoring = Scoring::Fixed {
            r#match: 217,
            mismatch: -1,
        };
        let gaps = GapModel::default_affine();
        let q = vec![0u8; 151];
        let want = sw_scalar(&q, &q, &scoring, gaps).score;
        assert_eq!(want, 32767, "case must land exactly on i16::MAX");
        for engine in EngineKind::available() {
            let mut stats = KernelStats::default();
            let (score, prec) = adaptive_score(engine, &q, &q, &scoring, gaps, 0, &mut stats);
            assert_eq!(score, want, "{engine:?}");
            assert_eq!(prec, Precision::I32, "{engine:?} must escalate at 32767");
            assert_eq!(stats.promotions, 2, "{engine:?} escalates twice from I8");
        }
    }

    /// One below the 16-bit ceiling (32766 = 16383 × 2): the 8-bit run
    /// saturates, but 16-bit must hold it without a second escalation.
    #[test]
    fn escalation_boundary_one_below_i16_ceiling() {
        let scoring = Scoring::Fixed {
            r#match: 16383,
            mismatch: -1,
        };
        let gaps = GapModel::default_affine();
        let q = vec![0u8; 2];
        let want = sw_scalar(&q, &q, &scoring, gaps).score;
        assert_eq!(want, 32766);
        for engine in EngineKind::available() {
            let mut stats = KernelStats::default();
            let (score, prec) = adaptive_score(engine, &q, &q, &scoring, gaps, 0, &mut stats);
            assert_eq!(score, want, "{engine:?}");
            assert_eq!(
                prec,
                Precision::I16,
                "{engine:?} must stop at 16-bit for 32766"
            );
            assert_eq!(stats.promotions, 1, "{engine:?}");
        }
    }

    #[test]
    fn adaptive_traceback_promotes() {
        let q = vec![17u8; 400];
        let scoring = Scoring::matrix(blosum62());
        let gaps = GapModel::default_affine();
        let mut stats = KernelStats::default();
        let (out, prec) =
            adaptive_traceback(EngineKind::best(), &q, &q, &scoring, gaps, 8, &mut stats);
        assert_eq!(out.score, sw_scalar(&q, &q, &scoring, gaps).score);
        assert_eq!(prec, Precision::I16);
        let aln = out.alignment.unwrap();
        assert_eq!(aln.rescore(&q, &q, &scoring, gaps), out.score);
    }
}
