//! High-level alignment API: the [`Aligner`].
//!
//! ```
//! use swsimd_core::{Aligner, GapPenalties};
//! use swsimd_matrices::blosum62;
//!
//! let mut aligner = Aligner::builder()
//!     .matrix(blosum62())
//!     .gaps(GapPenalties::new(11, 1))
//!     .traceback(true)
//!     .build();
//! let r = aligner.align_ascii(b"MKVLAADTW", b"MKVLADTWGG");
//! assert!(r.score > 0);
//! println!("{}", r.alignment.unwrap().cigar());
//! ```

use std::borrow::Cow;

use swsimd_matrices::{blosum62, Alphabet, SubstitutionMatrix, PADDED_ALPHABET};
use swsimd_seq::{BatchedDatabase, Database};
use swsimd_simd::EngineKind;

use crate::adaptive::{adaptive_score, adaptive_traceback, minimal_safe_precision};
use crate::batch::{batch_score, lanes_for, LaneScore};
use crate::diag::dispatch::{diag_score, diag_traceback};
use crate::error::{validate_encoded, AlignError};
use crate::govern::{self, CancelToken, GovernorScope, MemBudget};
use crate::modes::{adaptive_mode_score, diag_mode_score, sw_scalar_mode_traceback, AlignMode};
use crate::params::{AlignResult, GapModel, GapPenalties, Precision, Scoring};
use crate::stats::KernelStats;

/// One database hit from [`Aligner::search`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Hit {
    /// Index of the sequence in the searched database.
    pub db_index: usize,
    /// Exact local alignment score.
    pub score: i32,
    /// Precision that produced the final score.
    pub precision: Precision,
}

/// Builder for [`Aligner`].
pub struct AlignerBuilder {
    scoring: Scoring,
    gaps: GapModel,
    engine: EngineKind,
    precision: Precision,
    scalar_threshold: Option<usize>,
    traceback: bool,
    mode: AlignMode,
}

impl Default for AlignerBuilder {
    fn default() -> Self {
        Self {
            scoring: Scoring::matrix(blosum62()),
            gaps: GapModel::default_affine(),
            engine: EngineKind::best(),
            precision: Precision::Adaptive,
            scalar_threshold: None,
            traceback: false,
            mode: AlignMode::Local,
        }
    }
}

impl AlignerBuilder {
    /// Use a substitution matrix (reorganized internally).
    pub fn matrix(mut self, m: &SubstitutionMatrix) -> Self {
        self.scoring = Scoring::matrix(m);
        self
    }

    /// Use fixed match/mismatch scores instead of a matrix (Fig 9's
    /// "without substitution matrix" configuration).
    pub fn fixed_scores(mut self, r#match: i32, mismatch: i32) -> Self {
        self.scoring = Scoring::Fixed { r#match, mismatch };
        self
    }

    /// Arbitrary scoring.
    pub fn scoring(mut self, s: Scoring) -> Self {
        self.scoring = s;
        self
    }

    /// Affine gap penalties.
    pub fn gaps(mut self, g: GapPenalties) -> Self {
        self.gaps = GapModel::Affine(g);
        self
    }

    /// Linear gap penalty (Fig 7's "without affine" configuration).
    pub fn linear_gap(mut self, gap: i32) -> Self {
        self.gaps = GapModel::Linear { gap };
        self
    }

    /// Arbitrary gap model.
    pub fn gap_model(mut self, g: GapModel) -> Self {
        self.gaps = g;
        self
    }

    /// Pin the SIMD engine (default: widest available).
    pub fn engine(mut self, e: EngineKind) -> Self {
        self.engine = e;
        self
    }

    /// Pin the lane precision (default: adaptive 8→16→32).
    pub fn precision(mut self, p: Precision) -> Self {
        self.precision = p;
        self
    }

    /// Segments shorter than this run on the scalar unit (default: the
    /// engine's 8-bit lane count; a GA-tunable knob, see `swsimd-tune`).
    pub fn scalar_threshold(mut self, t: usize) -> Self {
        self.scalar_threshold = Some(t);
        self
    }

    /// Record tracebacks (Fig 8 configuration).
    pub fn traceback(mut self, on: bool) -> Self {
        self.traceback = on;
        self
    }

    /// Alignment class: local (default), global, or semi-global.
    pub fn mode(mut self, mode: AlignMode) -> Self {
        self.mode = mode;
        self
    }

    /// Finish, but refuse an engine that cannot actually serve: not
    /// present on this CPU, or demoted by the kernel trust breaker
    /// (failed boot self-test / shadow verification). [`Self::build`]
    /// silently degrades instead; serving layers and the CLI use this
    /// so a forced `--engine` is honored or rejected, never faked.
    pub fn try_build(self) -> Result<Aligner, AlignError> {
        crate::trust::check_engine_usable(self.engine)?;
        Ok(self.build())
    }

    /// Finish.
    pub fn build(self) -> Aligner {
        let threshold = self
            .scalar_threshold
            .unwrap_or_else(|| lanes_for(self.engine));
        // `align_ascii` must encode with the same alphabet the scoring
        // matrix is indexed by (protein vs DNA differ).
        let alphabet = match &self.scoring {
            Scoring::Matrix(m) => m.alphabet().clone(),
            Scoring::Fixed { .. } => Alphabet::protein(),
        };
        Aligner {
            scoring: self.scoring,
            gaps: self.gaps,
            engine: self.engine,
            precision: self.precision,
            scalar_threshold: threshold,
            traceback: self.traceback,
            mode: self.mode,
            alphabet,
            stats: KernelStats::default(),
        }
    }
}

/// A configured Smith-Waterman aligner (the paper's kernel behind a
/// stable API). Accumulates [`KernelStats`] across calls.
pub struct Aligner {
    scoring: Scoring,
    gaps: GapModel,
    engine: EngineKind,
    precision: Precision,
    scalar_threshold: usize,
    traceback: bool,
    mode: AlignMode,
    alphabet: Alphabet,
    stats: KernelStats,
}

impl Aligner {
    /// Start building an aligner.
    pub fn builder() -> AlignerBuilder {
        AlignerBuilder::default()
    }

    /// An aligner with all defaults (BLOSUM62, affine 11/1, adaptive
    /// precision, best engine).
    pub fn new() -> Self {
        Self::builder().build()
    }

    /// The configured scoring.
    pub fn scoring(&self) -> &Scoring {
        &self.scoring
    }

    /// The configured gap model.
    pub fn gap_model(&self) -> GapModel {
        self.gaps
    }

    /// The engine actually used.
    pub fn engine(&self) -> EngineKind {
        self.engine
    }

    /// Accumulated kernel statistics.
    pub fn stats(&self) -> &KernelStats {
        &self.stats
    }

    /// Reset accumulated statistics.
    pub fn reset_stats(&mut self) {
        self.stats = KernelStats::default();
    }

    /// The configured alignment mode.
    pub fn mode(&self) -> AlignMode {
        self.mode
    }

    /// Align two **encoded** sequences (residue indices `< 32`).
    ///
    /// Bytes outside the encoded range are clamped to the alphabet's
    /// unknown residue (`X` for protein) in **all** builds: an
    /// unencoded byte would otherwise index out of the reorganized
    /// substitution matrix. Use [`Aligner::try_align`] to reject such
    /// input instead of clamping.
    pub fn align(&mut self, query: &[u8], target: &[u8]) -> AlignResult {
        let query = self.sanitize(query);
        let target = self.sanitize(target);
        self.align_clean(&query, &target)
    }

    /// Like [`Aligner::align`], but returns a typed error on bytes that
    /// are not encoded residues instead of clamping them to unknown.
    pub fn try_align(&mut self, query: &[u8], target: &[u8]) -> Result<AlignResult, AlignError> {
        validate_encoded(query)?;
        validate_encoded(target)?;
        Ok(self.align_clean(query, target))
    }

    /// Governed alignment: validates input, reserves the estimated
    /// DP/traceback bytes against `budget`, installs `token` as the
    /// thread's governor scope, and maps mid-compute cancellation to
    /// [`AlignError::Cancelled`].
    ///
    /// When the traceback direction store would overrun the budget and
    /// `allow_degrade` is set (local mode only), the call falls back to
    /// the score-only banded kernel at full width — the score stays
    /// exact, `alignment` is `None`, and the O(m·n) store is never
    /// allocated. Without `allow_degrade` the caller gets the typed
    /// [`AlignError::BudgetExceeded`].
    pub fn try_align_governed(
        &mut self,
        query: &[u8],
        target: &[u8],
        token: Option<&CancelToken>,
        budget: Option<&MemBudget>,
        allow_degrade: bool,
    ) -> Result<AlignResult, AlignError> {
        validate_encoded(query)?;
        validate_encoded(target)?;
        let lanes = lanes_for(self.engine);
        let elem_bytes = match self.precision {
            Precision::I8 => 1,
            Precision::I16 => 2,
            _ => 4, // I32 and Adaptive's worst case
        };
        let _reservation = match budget {
            None => None,
            Some(b) => {
                let need = if self.traceback {
                    govern::traceback_bytes(query.len(), target.len(), lanes)
                } else {
                    govern::score_bytes(query.len(), elem_bytes)
                };
                match b.try_reserve(need) {
                    Ok(r) => Some(r),
                    Err(err @ AlignError::BudgetExceeded { .. })
                        if self.traceback && allow_degrade && self.mode == AlignMode::Local =>
                    {
                        // Score-only fallback: rolling buffers only.
                        let r = b.try_reserve(govern::score_bytes(query.len(), 4))?;
                        swsimd_obs::event!(
                            "budget_fallback",
                            "qlen" => query.len(),
                            "tlen" => target.len(),
                            "needed" => need,
                            "limit" => b.limit(),
                        );
                        let _keep = r;
                        let _scope = token.map(|t| GovernorScope::install(t.clone()));
                        govern::check_cancelled()?;
                        let width = query.len().max(target.len());
                        let result = self.align_banded(query, target, width);
                        govern::check_cancelled()?;
                        let _ = err;
                        return Ok(result);
                    }
                    Err(err) => return Err(err),
                }
            }
        };
        let _scope = token.map(|t| GovernorScope::install(t.clone()));
        govern::check_cancelled()?;
        let result = self.align_clean(query, target);
        govern::check_cancelled()?;
        Ok(result)
    }

    /// Clamp bytes `>= 32` to the alphabet's unknown residue. The
    /// common (valid) case borrows; only malformed input allocates.
    fn sanitize<'s>(&self, seq: &'s [u8]) -> Cow<'s, [u8]> {
        if validate_encoded(seq).is_ok() {
            Cow::Borrowed(seq)
        } else {
            let unknown = self.alphabet.unknown();
            Cow::Owned(
                seq.iter()
                    .map(|&b| {
                        if b < PADDED_ALPHABET as u8 {
                            b
                        } else {
                            unknown
                        }
                    })
                    .collect(),
            )
        }
    }

    fn align_clean(&mut self, query: &[u8], target: &[u8]) -> AlignResult {
        let mut sp = swsimd_obs::span!(
            "query",
            "qlen" => query.len(),
            "tlen" => target.len(),
            "traceback" => self.traceback,
            "precision" => self.precision.name(),
        );
        let result = self.align_clean_traced(query, target);
        if sp.active() {
            sp.record("score", i64::from(result.score));
            sp.record("precision_used", result.precision_used.name());
        }
        result
    }

    fn align_clean_traced(&mut self, query: &[u8], target: &[u8]) -> AlignResult {
        if self.mode != AlignMode::Local {
            return self.align_mode(query, target);
        }
        if self.traceback {
            let (out, prec) = match self.precision {
                Precision::Adaptive => adaptive_traceback(
                    self.engine,
                    query,
                    target,
                    &self.scoring,
                    self.gaps,
                    self.scalar_threshold,
                    &mut self.stats,
                ),
                p => (
                    diag_traceback(
                        self.engine,
                        p,
                        query,
                        target,
                        &self.scoring,
                        self.gaps,
                        self.scalar_threshold,
                        &mut self.stats,
                    ),
                    p,
                ),
            };
            AlignResult {
                score: out.score,
                end: out.end,
                alignment: out.alignment,
                precision_used: prec,
            }
        } else {
            let (score, prec) = match self.precision {
                Precision::Adaptive => adaptive_score(
                    self.engine,
                    query,
                    target,
                    &self.scoring,
                    self.gaps,
                    self.scalar_threshold,
                    &mut self.stats,
                ),
                p => (
                    diag_score(
                        self.engine,
                        p,
                        query,
                        target,
                        &self.scoring,
                        self.gaps,
                        self.scalar_threshold,
                        &mut self.stats,
                    )
                    .score,
                    p,
                ),
            };
            AlignResult::score_only(score, prec)
        }
    }

    /// Global / semi-global paths: vectorized scores with adaptive
    /// precision; tracebacks via the scalar reference implementation
    /// (global tracebacks must reach the matrix edges, so the local
    /// direction store cannot be reused).
    fn align_mode(&mut self, query: &[u8], target: &[u8]) -> AlignResult {
        if self.traceback {
            let mut r =
                sw_scalar_mode_traceback(query, target, &self.scoring, self.gaps, self.mode);
            self.stats.cells += (query.len() * target.len()) as u64;
            self.stats.traceback_cells += (query.len() * target.len()) as u64;
            r.precision_used = Precision::I32;
            return r;
        }
        let (score, prec) = match self.precision {
            Precision::Adaptive => adaptive_mode_score(
                self.engine,
                query,
                target,
                &self.scoring,
                self.gaps,
                self.mode,
                self.scalar_threshold,
                &mut self.stats,
            ),
            p => (
                diag_mode_score(
                    self.engine,
                    p,
                    query,
                    target,
                    &self.scoring,
                    self.gaps,
                    self.mode,
                    self.scalar_threshold,
                    &mut self.stats,
                )
                .score,
                p,
            ),
        };
        AlignResult::score_only(score, prec)
    }

    /// The alphabet `align_ascii` encodes with (the scoring matrix's
    /// own alphabet; protein for fixed scoring).
    pub fn alphabet(&self) -> &Alphabet {
        &self.alphabet
    }

    /// Banded local alignment of two encoded sequences: only cells with
    /// `|i - j| <= width` are computed (Scenario-3 subroutine use). The
    /// score is exact whenever the optimal alignment fits the band and
    /// never exceeds the unbanded score. Local mode only.
    pub fn align_banded(&mut self, query: &[u8], target: &[u8], width: usize) -> AlignResult {
        assert_eq!(
            self.mode,
            AlignMode::Local,
            "banded alignment is implemented for local mode"
        );
        let query = &*self.sanitize(query);
        let target = &*self.sanitize(target);
        swsimd_obs::event!(
            "band_decision",
            "width" => width,
            "qlen" => query.len(),
            "tlen" => target.len(),
            "precision" => self.precision.name(),
        );
        let (score, prec) = match self.precision {
            Precision::Adaptive => {
                let mut out = None;
                let ladder = [Precision::I8, Precision::I16, Precision::I32];
                for (k, p) in ladder.into_iter().enumerate() {
                    if k > 0 {
                        self.stats.promotions += 1;
                        swsimd_obs::event!(
                            "precision_escalation",
                            "from" => ladder[k - 1].name(),
                            "to" => p.name(),
                            "reason" => "saturated",
                        );
                    }
                    let r = crate::banded::banded_score(
                        self.engine,
                        p,
                        query,
                        target,
                        &self.scoring,
                        self.gaps,
                        width,
                        self.scalar_threshold,
                        &mut self.stats,
                    );
                    if !r.saturated {
                        out = Some((r.score, p));
                        break;
                    }
                }
                // The I32 kernel has no saturation path, so `out` is
                // always set — but a serving layer must never panic on
                // input shape, so the (unreachable) None case degrades
                // to the scalar reference band, which is i32-exact.
                out.unwrap_or_else(|| {
                    swsimd_obs::event!("band_scalar_fallback", "width" => width);
                    (
                        crate::banded::sw_banded_scalar(
                            query,
                            target,
                            &self.scoring,
                            self.gaps,
                            width,
                        ),
                        Precision::I32,
                    )
                })
            }
            p => (
                crate::banded::banded_score(
                    self.engine,
                    p,
                    query,
                    target,
                    &self.scoring,
                    self.gaps,
                    width,
                    self.scalar_threshold,
                    &mut self.stats,
                )
                .score,
                p,
            ),
        };
        AlignResult::score_only(score, prec)
    }

    /// Align two raw ASCII sequences (encoded with the scoring
    /// alphabet — see [`Aligner::alphabet`]).
    pub fn align_ascii(&mut self, query: &[u8], target: &[u8]) -> AlignResult {
        let q = self.alphabet.encode(query);
        let t = self.alphabet.encode(target);
        self.align(&q, &t)
    }

    /// Search an encoded query against a pre-batched database using the
    /// 8-bit inter-sequence kernel, promoting saturated lanes through
    /// the 16/32-bit diagonal kernel. Returns exact scores for every
    /// database sequence, unsorted.
    ///
    /// Infallible variant: under a cancelled governor scope this
    /// returns an empty list — governed callers use
    /// [`Aligner::try_search_batched`] to get the typed error instead.
    pub fn search_batched(
        &mut self,
        query: &[u8],
        db: &Database,
        batched: &BatchedDatabase,
    ) -> Vec<Hit> {
        self.search_batched_checked(query, db, batched)
            .unwrap_or_default()
    }

    /// Governed database search: installs `token` as the thread's
    /// governor scope for the duration of the call, checks it between
    /// batch kernel calls and promotion reruns, and returns
    /// [`AlignError::Cancelled`] the moment it fires (the kernels
    /// themselves poll every [`govern::CANCEL_CHECK_PERIOD`] strips).
    /// No partial hit list escapes a cancelled run.
    pub fn try_search_batched(
        &mut self,
        query: &[u8],
        db: &Database,
        batched: &BatchedDatabase,
        token: Option<&CancelToken>,
    ) -> Result<Vec<Hit>, AlignError> {
        let _scope = token.map(|t| GovernorScope::install(t.clone()));
        self.search_batched_checked(query, db, batched)
    }

    /// Fallible search body honoring the ambient governor scope.
    fn search_batched_checked(
        &mut self,
        query: &[u8],
        db: &Database,
        batched: &BatchedDatabase,
    ) -> Result<Vec<Hit>, AlignError> {
        govern::check_cancelled()?;
        let query = &*self.sanitize(query);
        let mut lane_scores: Vec<LaneScore> = Vec::with_capacity(db.len());
        if batched.lanes() == lanes_for(self.engine) {
            for b in batched.batches() {
                batch_score(
                    self.engine,
                    query,
                    b,
                    &self.scoring,
                    self.gaps,
                    &mut self.stats,
                    &mut lane_scores,
                );
                govern::check_cancelled()?;
            }
        } else {
            // Lane-count mismatch (batches built for another engine):
            // fall back to per-sequence diagonal alignment.
            for (i, e) in db.iter_encoded().enumerate() {
                let (score, _) = adaptive_score(
                    self.engine,
                    query,
                    &e.idx,
                    &self.scoring,
                    self.gaps,
                    self.scalar_threshold,
                    &mut self.stats,
                );
                govern::check_cancelled()?;
                lane_scores.push(LaneScore {
                    db_index: i as u32,
                    score,
                    saturated: false,
                });
            }
        }

        let mut hits = Vec::with_capacity(lane_scores.len());
        for ls in lane_scores {
            if ls.saturated {
                self.stats.promotions += 1;
                let target = &db.encoded(ls.db_index as usize).idx;
                let prec =
                    minimal_safe_precision(query.len(), target.len(), &self.scoring).max_with_i16();
                swsimd_obs::event!(
                    "precision_escalation",
                    "from" => Precision::I8.name(),
                    "to" => prec.name(),
                    "reason" => "batch_lane_saturated",
                    "db_index" => ls.db_index as u64,
                );
                let r = diag_score(
                    self.engine,
                    prec,
                    query,
                    target,
                    &self.scoring,
                    self.gaps,
                    self.scalar_threshold,
                    &mut self.stats,
                );
                govern::check_cancelled()?;
                let (score, prec) = if r.saturated {
                    self.stats.promotions += 1;
                    let wide = diag_score(
                        self.engine,
                        Precision::I32,
                        query,
                        target,
                        &self.scoring,
                        self.gaps,
                        self.scalar_threshold,
                        &mut self.stats,
                    );
                    govern::check_cancelled()?;
                    (wide.score, Precision::I32)
                } else {
                    (r.score, prec)
                };
                hits.push(Hit {
                    db_index: ls.db_index as usize,
                    score,
                    precision: prec,
                });
            } else {
                hits.push(Hit {
                    db_index: ls.db_index as usize,
                    score: ls.score,
                    precision: Precision::I8,
                });
            }
        }
        Ok(hits)
    }

    /// Search an encoded query against a database, batching on the fly.
    /// Returns the top `top_k` hits, best first (all hits if 0).
    pub fn search(&mut self, query: &[u8], db: &Database, top_k: usize) -> Vec<Hit> {
        let batched = BatchedDatabase::build(db, lanes_for(self.engine), true);
        let mut hits = self.search_batched(query, db, &batched);
        hits.sort_by(|a, b| b.score.cmp(&a.score).then(a.db_index.cmp(&b.db_index)));
        if top_k > 0 {
            hits.truncate(top_k);
        }
        hits
    }
}

impl Default for Aligner {
    fn default() -> Self {
        Self::new()
    }
}

impl Precision {
    /// Promote I8 to I16 (used when rerunning saturated 8-bit lanes).
    fn max_with_i16(self) -> Precision {
        match self {
            Precision::I8 => Precision::I16,
            other => other,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scalar_ref::sw_scalar;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use swsimd_matrices::PROTEIN_LETTERS;
    use swsimd_seq::SeqRecord;

    fn rand_ascii(rng: &mut StdRng, len: usize) -> Vec<u8> {
        (0..len)
            .map(|_| PROTEIN_LETTERS[rng.gen_range(0..20)])
            .collect()
    }

    #[test]
    fn align_ascii_smoke() {
        let mut a = Aligner::new();
        let r = a.align_ascii(b"MKVLAADTW", b"MKVLAADTW");
        assert!(r.score > 0);
        assert_eq!(r.precision_used, Precision::I8);
    }

    #[test]
    fn traceback_through_api() {
        let mut a = Aligner::builder().traceback(true).build();
        let r = a.align_ascii(b"MKVLAADTWGHK", b"MKVLADTWGHK");
        let aln = r.alignment.expect("traceback requested");
        assert!(!aln.cigar().is_empty());
    }

    #[test]
    fn search_returns_exact_scores() {
        let mut rng = StdRng::seed_from_u64(4);
        let records: Vec<SeqRecord> = (0..50)
            .map(|i| {
                let l = rng.gen_range(5..60);
                SeqRecord::new(format!("s{i}"), rand_ascii(&mut rng, l))
            })
            .collect();
        let alphabet = Alphabet::protein();
        let db = Database::from_records(records, &alphabet);
        let query = alphabet.encode(&rand_ascii(&mut rng, 30));

        let mut a = Aligner::new();
        let hits = a.search(&query, &db, 0);
        assert_eq!(hits.len(), 50);
        for h in &hits {
            let want = sw_scalar(
                &query,
                &db.encoded(h.db_index).idx,
                a.scoring(),
                a.gap_model(),
            )
            .score;
            assert_eq!(h.score, want, "hit {}", h.db_index);
        }
        // Sorted best-first.
        assert!(hits.windows(2).all(|w| w[0].score >= w[1].score));
    }

    #[test]
    fn search_promotes_saturated_lanes() {
        let mut rng = StdRng::seed_from_u64(6);
        let hot: Vec<u8> = vec![b'W'; 300];
        let mut records: Vec<SeqRecord> = (0..20)
            .map(|i| {
                let l = rng.gen_range(5..40);
                SeqRecord::new(format!("s{i}"), rand_ascii(&mut rng, l))
            })
            .collect();
        records.push(SeqRecord::new("hot", hot.clone()));
        let alphabet = Alphabet::protein();
        let db = Database::from_records(records, &alphabet);
        let query = alphabet.encode(&hot);

        let mut a = Aligner::new();
        let hits = a.search(&query, &db, 3);
        assert_eq!(hits[0].db_index, 20);
        assert_eq!(hits[0].score, 3300); // 300 × 11
        assert_ne!(hits[0].precision, Precision::I8);
        assert!(a.stats().promotions >= 1);
    }

    #[test]
    fn top_k_truncates() {
        let mut rng = StdRng::seed_from_u64(9);
        let records: Vec<SeqRecord> = (0..30)
            .map(|i| SeqRecord::new(format!("s{i}"), rand_ascii(&mut rng, 20)))
            .collect();
        let alphabet = Alphabet::protein();
        let db = Database::from_records(records, &alphabet);
        let query = alphabet.encode(&rand_ascii(&mut rng, 15));
        let mut a = Aligner::new();
        assert_eq!(a.search(&query, &db, 5).len(), 5);
    }

    #[test]
    fn fixed_precision_i16() {
        let mut a = Aligner::builder().precision(Precision::I16).build();
        let r = a.align_ascii(b"MKV", b"MKV");
        assert_eq!(r.precision_used, Precision::I16);
    }

    #[test]
    fn banded_through_api() {
        let mut a = Aligner::new();
        let alphabet = Alphabet::protein();
        let q = alphabet.encode(b"MKVLAADTWGHK");
        let full = a.align(&q, &q).score;
        let banded = a.align_banded(&q, &q, 2).score;
        assert_eq!(banded, full, "identical pair stays on the diagonal");
        let zero_band = a.align_banded(&q, &q, 0).score;
        assert_eq!(zero_band, full);
    }

    #[test]
    fn dna_matrix_uses_dna_alphabet() {
        let dna =
            swsimd_matrices::SubstitutionMatrix::match_mismatch("dna", Alphabet::dna(), 2, -3);
        let mut a = Aligner::builder().matrix(&dna).linear_gap(4).build();
        assert_eq!(a.alphabet().len(), 5);
        let r = a.align_ascii(b"ACGTACGT", b"ACGTACGT");
        assert_eq!(r.score, 16); // 8 matches x 2
        let r2 = a.align_ascii(b"ACGT", b"TGCA");
        assert!(r2.score <= 2);
    }

    #[test]
    fn unencoded_bytes_clamp_to_unknown_in_all_builds() {
        // Bytes >= 32 would index out of the reorganized matrix; they
        // must clamp to X (never panic, never read out of bounds) in
        // release builds too — this used to be a debug_assert only.
        let alphabet = Alphabet::protein();
        let clean = alphabet.encode(b"MKVXLAADTW");
        let mut dirty = clean.clone();
        dirty[3] = 200; // not an encoded residue
        let mut a = Aligner::new();
        let want = a.align(&clean, &clean).score;
        assert_eq!(a.align(&dirty, &clean).score, want);
        assert_eq!(a.align(&clean, &dirty).score, want);
    }

    #[test]
    fn try_align_rejects_unencoded_bytes() {
        use crate::error::AlignError;
        let mut a = Aligner::new();
        let r = a.try_align(&[1, 2, 77], &[3, 4]);
        assert_eq!(
            r.unwrap_err(),
            AlignError::InvalidResidue {
                position: 2,
                value: 77
            }
        );
        assert!(a.try_align(&[1, 2, 3], &[3, 4]).is_ok());
    }

    #[test]
    fn search_batched_sanitizes_query() {
        let alphabet = Alphabet::protein();
        let db =
            Database::from_records(vec![SeqRecord::new("s", b"MKVLAADTW".to_vec())], &alphabet);
        let mut dirty = alphabet.encode(b"MKVLAADTW");
        dirty[0] = 0xff;
        let mut a = Aligner::new();
        let hits = a.search(&dirty, &db, 0);
        assert_eq!(hits.len(), 1);
        let mut clean = alphabet.encode(b"MKVLAADTW");
        clean[0] = alphabet.unknown();
        let target = db.encoded(0).idx.clone();
        assert_eq!(hits[0].score, a.align(&clean, &target).score);
    }

    #[test]
    fn try_build_accepts_usable_engines() {
        // Scalar is always usable; every available engine is usable on
        // a fresh trust ladder (trust-mutation cases live in the
        // `trust_layer` integration test, which serializes them).
        assert!(Aligner::builder()
            .engine(EngineKind::Scalar)
            .try_build()
            .is_ok());
    }

    #[test]
    fn governed_align_cancelled_token_returns_typed_error() {
        use crate::govern::{CancelReason, CancelToken};
        let mut a = Aligner::new();
        let alphabet = Alphabet::protein();
        let q = alphabet.encode(b"MKVLAADTWGHK");
        let token = CancelToken::new();
        token.cancel(CancelReason::Shutdown);
        let err = a
            .try_align_governed(&q, &q, Some(&token), None, false)
            .unwrap_err();
        assert_eq!(
            err,
            AlignError::Cancelled {
                reason: CancelReason::Shutdown
            }
        );
        // Live token: same result as the ungoverned path.
        let live = CancelToken::new();
        let want = a.align(&q, &q).score;
        let got = a
            .try_align_governed(&q, &q, Some(&live), None, false)
            .unwrap();
        assert_eq!(got.score, want);
    }

    #[test]
    fn governed_traceback_budget_fallback_keeps_exact_score() {
        use crate::govern::MemBudget;
        let mut rng = StdRng::seed_from_u64(31);
        let alphabet = Alphabet::protein();
        let q = alphabet.encode(&rand_ascii(&mut rng, 300));
        let t = alphabet.encode(&rand_ascii(&mut rng, 300));
        let mut a = Aligner::builder().traceback(true).build();
        let want = sw_scalar(&q, &t, a.scoring(), a.gap_model()).score;

        // A budget too small for the 300×300 direction store but large
        // enough for rolling score buffers.
        let budget = MemBudget::new(64 * 1024);
        let err = a
            .try_align_governed(&q, &t, None, Some(&budget), false)
            .unwrap_err();
        assert!(matches!(err, AlignError::BudgetExceeded { .. }));
        assert_eq!(budget.used(), 0, "failed reservation must not leak");

        let r = a
            .try_align_governed(&q, &t, None, Some(&budget), true)
            .unwrap();
        assert_eq!(r.score, want, "degraded run must keep the exact score");
        assert!(r.alignment.is_none(), "score-only fallback has no path");
        assert_eq!(budget.used(), 0, "reservation released after the call");

        // A roomy budget serves the full traceback.
        let big = MemBudget::new(16 * 1024 * 1024);
        let r = a
            .try_align_governed(&q, &t, None, Some(&big), false)
            .unwrap();
        assert_eq!(r.score, want);
        assert!(r.alignment.is_some());
    }

    #[test]
    fn governed_search_cancels_and_matches_ungoverned() {
        use crate::govern::{CancelReason, CancelToken};
        let mut rng = StdRng::seed_from_u64(17);
        let records: Vec<SeqRecord> = (0..40)
            .map(|i| {
                let l = rng.gen_range(5..50);
                SeqRecord::new(format!("s{i}"), rand_ascii(&mut rng, l))
            })
            .collect();
        let alphabet = Alphabet::protein();
        let db = Database::from_records(records, &alphabet);
        let query = alphabet.encode(&rand_ascii(&mut rng, 30));
        let batched = BatchedDatabase::build(&db, lanes_for(EngineKind::best()), true);

        let mut a = Aligner::new();
        let want = a.search_batched(&query, &db, &batched);

        let live = CancelToken::new();
        let got = a
            .try_search_batched(&query, &db, &batched, Some(&live))
            .unwrap();
        assert_eq!(got, want);

        let dead = CancelToken::new();
        dead.cancel(CancelReason::Deadline);
        let err = a
            .try_search_batched(&query, &db, &batched, Some(&dead))
            .unwrap_err();
        assert_eq!(
            err,
            AlignError::Cancelled {
                reason: CancelReason::Deadline
            }
        );
    }

    #[test]
    fn stats_accumulate_and_reset() {
        let mut a = Aligner::new();
        a.align_ascii(b"MKVLLL", b"MKVLLL");
        assert!(a.stats().cells > 0);
        let c1 = a.stats().cells;
        a.align_ascii(b"MKVLLL", b"MKVLLL");
        assert!(a.stats().cells > c1);
        a.reset_stats();
        assert_eq!(a.stats().cells, 0);
    }
}
