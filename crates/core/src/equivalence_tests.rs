//! Cross-implementation equivalence: every (engine, precision) diagonal
//! kernel must return the scalar reference's score on random and
//! adversarial inputs, and traceback paths must rescore to the reported
//! score.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use swsimd_matrices::blosum62;
use swsimd_simd::EngineKind;

use crate::diag::dispatch::{diag_score, diag_traceback};
use crate::params::{GapModel, GapPenalties, Precision, Scoring};
use crate::scalar_ref::{sw_scalar, sw_scalar_traceback};
use crate::stats::KernelStats;

fn rand_seq(rng: &mut StdRng, len: usize) -> Vec<u8> {
    (0..len).map(|_| rng.gen_range(0..20u8)).collect()
}

fn engines() -> Vec<EngineKind> {
    EngineKind::available()
}

fn check_pair(
    q: &[u8],
    t: &[u8],
    scoring: &Scoring,
    gaps: GapModel,
    threshold: usize,
    label: &str,
) {
    let want = sw_scalar(q, t, scoring, gaps).score;
    for engine in engines() {
        for prec in [Precision::I16, Precision::I32] {
            let mut st = KernelStats::default();
            let got = diag_score(engine, prec, q, t, scoring, gaps, threshold, &mut st);
            assert!(
                !got.saturated,
                "{label}: {engine:?} {prec:?} saturated unexpectedly"
            );
            assert_eq!(
                got.score,
                want,
                "{label}: {engine:?} {prec:?} thr={threshold} m={} n={}",
                q.len(),
                t.len()
            );
        }
        // 8-bit agrees when it does not saturate.
        let mut st = KernelStats::default();
        let got = diag_score(
            engine,
            Precision::I8,
            q,
            t,
            scoring,
            gaps,
            threshold,
            &mut st,
        );
        if !got.saturated {
            assert_eq!(got.score, want, "{label}: {engine:?} I8");
        } else {
            assert!(
                want >= (i8::MAX as i32),
                "{label}: spurious saturation (want {want})"
            );
        }
    }
}

#[test]
fn random_pairs_match_reference() {
    let mut rng = StdRng::seed_from_u64(42);
    let scoring = Scoring::matrix(blosum62());
    let gaps = GapModel::Affine(GapPenalties::new(11, 1));
    for round in 0..40 {
        let m = rng.gen_range(1..120);
        let n = rng.gen_range(1..120);
        let q = rand_seq(&mut rng, m);
        let t = rand_seq(&mut rng, n);
        check_pair(&q, &t, &scoring, gaps, 8, &format!("round {round}"));
    }
}

#[test]
fn fixed_scoring_matches_reference() {
    let mut rng = StdRng::seed_from_u64(7);
    let scoring = Scoring::Fixed {
        r#match: 2,
        mismatch: -3,
    };
    let gaps = GapModel::Affine(GapPenalties::new(5, 2));
    for round in 0..25 {
        let (lm, ln) = (rng.gen_range(1..90), rng.gen_range(1..90));
        let q = rand_seq(&mut rng, lm);
        let t = rand_seq(&mut rng, ln);
        check_pair(&q, &t, &scoring, gaps, 4, &format!("fixed {round}"));
    }
}

#[test]
fn linear_gaps_match_reference() {
    let mut rng = StdRng::seed_from_u64(99);
    let scoring = Scoring::matrix(blosum62());
    let gaps = GapModel::Linear { gap: 4 };
    for round in 0..25 {
        let (lm, ln) = (rng.gen_range(1..90), rng.gen_range(1..90));
        let q = rand_seq(&mut rng, lm);
        let t = rand_seq(&mut rng, ln);
        check_pair(&q, &t, &scoring, gaps, 8, &format!("linear {round}"));
    }
}

#[test]
fn threshold_extremes_are_equivalent() {
    // threshold = 1 forces all-vector; a huge threshold forces all-scalar;
    // both must agree with the reference and each other.
    let mut rng = StdRng::seed_from_u64(5);
    let scoring = Scoring::matrix(blosum62());
    let gaps = GapModel::default_affine();
    for _ in 0..10 {
        let (lm, ln) = (rng.gen_range(1..70), rng.gen_range(1..70));
        let q = rand_seq(&mut rng, lm);
        let t = rand_seq(&mut rng, ln);
        for threshold in [1, 3, 17, 10_000] {
            check_pair(
                &q,
                &t,
                &scoring,
                gaps,
                threshold,
                &format!("thr {threshold}"),
            );
        }
    }
}

#[test]
fn degenerate_shapes() {
    let scoring = Scoring::matrix(blosum62());
    let gaps = GapModel::default_affine();
    let mut rng = StdRng::seed_from_u64(3);
    // 1xN, Nx1, tiny, query longer than target and vice versa.
    for (m, n) in [(1, 1), (1, 50), (50, 1), (2, 3), (3, 2), (200, 5), (5, 200)] {
        let q = rand_seq(&mut rng, m);
        let t = rand_seq(&mut rng, n);
        check_pair(&q, &t, &scoring, gaps, 8, &format!("shape {m}x{n}"));
    }
}

#[test]
fn empty_sequences_score_zero() {
    let scoring = Scoring::matrix(blosum62());
    let gaps = GapModel::default_affine();
    for engine in engines() {
        let mut st = KernelStats::default();
        let r = diag_score(
            engine,
            Precision::I16,
            &[],
            &[1, 2],
            &scoring,
            gaps,
            8,
            &mut st,
        );
        assert_eq!(r.score, 0);
        let r = diag_score(
            engine,
            Precision::I16,
            &[3],
            &[],
            &scoring,
            gaps,
            8,
            &mut st,
        );
        assert_eq!(r.score, 0);
    }
}

#[test]
fn identical_long_sequences_saturate_i8_not_i16() {
    // 500 tryptophans: score 500*11 = 5500 > 127, < 32767.
    let q = vec![17u8; 500]; // W
    let scoring = Scoring::matrix(blosum62());
    let gaps = GapModel::default_affine();
    for engine in engines() {
        let mut st = KernelStats::default();
        let r8 = diag_score(engine, Precision::I8, &q, &q, &scoring, gaps, 8, &mut st);
        assert!(r8.saturated, "{engine:?} I8 must saturate");
        let r16 = diag_score(engine, Precision::I16, &q, &q, &scoring, gaps, 8, &mut st);
        assert!(!r16.saturated);
        assert_eq!(r16.score, 5500);
        let r32 = diag_score(engine, Precision::I32, &q, &q, &scoring, gaps, 8, &mut st);
        assert_eq!(r32.score, 5500);
    }
}

#[test]
fn traceback_scores_and_paths_are_valid() {
    let mut rng = StdRng::seed_from_u64(31);
    let scoring = Scoring::matrix(blosum62());
    let gaps = GapModel::Affine(GapPenalties::new(11, 1));
    for round in 0..20 {
        let (lm, ln) = (rng.gen_range(2..80), rng.gen_range(2..80));
        let q = rand_seq(&mut rng, lm);
        let t = rand_seq(&mut rng, ln);
        let want = sw_scalar_traceback(&q, &t, &scoring, gaps);
        for engine in engines() {
            for prec in [Precision::I16, Precision::I32] {
                let mut st = KernelStats::default();
                let got = diag_traceback(engine, prec, &q, &t, &scoring, gaps, 8, &mut st);
                assert_eq!(got.score, want.score, "round {round} {engine:?} {prec:?}");
                if want.score > 0 {
                    let aln = got
                        .alignment
                        .as_ref()
                        .expect("alignment for positive score");
                    assert_eq!(
                        aln.rescore(&q, &t, &scoring, gaps),
                        got.score,
                        "round {round} {engine:?} {prec:?} path does not rescore"
                    );
                    // End cell must actually be the end of the path.
                    assert_eq!(aln.query_end, got.end.unwrap().0);
                    assert_eq!(aln.target_end, got.end.unwrap().1);
                } else {
                    assert!(got.alignment.is_none());
                }
            }
        }
    }
}

#[test]
fn traceback_linear_gap_paths() {
    let mut rng = StdRng::seed_from_u64(77);
    let scoring = Scoring::matrix(blosum62());
    let gaps = GapModel::Linear { gap: 3 };
    for _ in 0..10 {
        let (lm, ln) = (rng.gen_range(2..60), rng.gen_range(2..60));
        let q = rand_seq(&mut rng, lm);
        let t = rand_seq(&mut rng, ln);
        let want = sw_scalar(&q, &t, &scoring, gaps).score;
        for engine in engines() {
            let mut st = KernelStats::default();
            let got = diag_traceback(engine, Precision::I16, &q, &t, &scoring, gaps, 8, &mut st);
            assert_eq!(got.score, want);
            if let Some(aln) = &got.alignment {
                assert_eq!(aln.rescore(&q, &t, &scoring, gaps), want);
            }
        }
    }
}

#[test]
fn determinism_same_inputs_same_stats() {
    // The paper's determinism claim: identical inputs produce identical
    // instruction counts (stats), not just identical scores.
    let mut rng = StdRng::seed_from_u64(8);
    let q = rand_seq(&mut rng, 73);
    let t = rand_seq(&mut rng, 101);
    let scoring = Scoring::matrix(blosum62());
    let gaps = GapModel::default_affine();
    for engine in engines() {
        let mut s1 = KernelStats::default();
        let mut s2 = KernelStats::default();
        let r1 = diag_score(engine, Precision::I16, &q, &t, &scoring, gaps, 8, &mut s1);
        let r2 = diag_score(engine, Precision::I16, &q, &t, &scoring, gaps, 8, &mut s2);
        assert_eq!(r1, r2);
        assert_eq!(s1, s2, "{engine:?} stats differ between identical runs");
        assert_eq!(
            s1.correction_loops, 0,
            "diagonal kernel must have no correction loops"
        );
    }
}

#[test]
fn stats_cell_count_is_exact() {
    let q = vec![0u8; 37];
    let t = vec![1u8; 53];
    let scoring = Scoring::matrix(blosum62());
    for engine in engines() {
        let mut st = KernelStats::default();
        let _ = diag_score(
            engine,
            Precision::I16,
            &q,
            &t,
            &scoring,
            GapModel::default_affine(),
            8,
            &mut st,
        );
        assert_eq!(st.cells, 37 * 53, "{engine:?}");
        assert_eq!(st.diagonals, (37 + 53 - 1) as u64);
        assert_eq!(
            st.cells,
            st.scalar_cells + (st.vector_lane_slots - st.padded_lanes)
        );
    }
}
