//! Alignment parameters and result types.

use std::sync::Arc;

use swsimd_matrices::{ReorganizedMatrix, SubstitutionMatrix};

/// Affine gap penalties, Parasail convention: the first residue of a gap
/// costs `open`, each further residue `extend`; a gap of length `L`
/// costs `open + (L-1)·extend`. Both are positive costs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct GapPenalties {
    /// Cost of the first gap residue.
    pub open: i32,
    /// Cost of each subsequent gap residue.
    pub extend: i32,
}

impl GapPenalties {
    /// The BLOSUM62 community default (11, 1).
    pub const BLOSUM62_DEFAULT: GapPenalties = GapPenalties {
        open: 11,
        extend: 1,
    };

    /// Construct, validating positivity and `extend <= open`.
    pub fn new(open: i32, extend: i32) -> Self {
        assert!(
            open > 0 && extend > 0,
            "gap penalties must be positive costs"
        );
        assert!(extend <= open, "extend > open makes affine gaps incoherent");
        Self { open, extend }
    }
}

/// Gap model: linear (every gap residue costs the same) or affine
/// (opening is more expensive than extending) — the paper's Fig 7 axis.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum GapModel {
    /// Every gap residue costs `gap`.
    Linear {
        /// Per-residue gap cost (positive).
        gap: i32,
    },
    /// Affine open/extend penalties (Eq. 1 of the paper).
    Affine(GapPenalties),
}

impl GapModel {
    /// Default affine model.
    pub fn default_affine() -> Self {
        GapModel::Affine(GapPenalties::BLOSUM62_DEFAULT)
    }

    /// Worst single-step penalty, used for precision bounds.
    pub fn max_step_cost(&self) -> i32 {
        match *self {
            GapModel::Linear { gap } => gap,
            GapModel::Affine(g) => g.open.max(g.extend),
        }
    }
}

/// How cells are scored — the paper's Fig 9 axis.
#[derive(Clone)]
pub enum Scoring {
    /// Full substitution matrix (BLOSUM/PAM), reorganized for vector
    /// access. Exercises the gather / LUT machinery.
    Matrix(Arc<ReorganizedMatrix>),
    /// Fixed match/mismatch scores ("without substitution matrix"):
    /// scored with a vector compare + blend, no table traffic.
    Fixed {
        /// Score for identical residues (positive).
        r#match: i32,
        /// Score for differing residues (negative).
        mismatch: i32,
    },
}

impl Scoring {
    /// Wrap a substitution matrix.
    pub fn matrix(m: &SubstitutionMatrix) -> Self {
        Scoring::Matrix(Arc::new(m.reorganized()))
    }

    /// The reorganized matrix, if this is matrix scoring.
    pub fn as_matrix(&self) -> Option<&ReorganizedMatrix> {
        match self {
            Scoring::Matrix(m) => Some(m),
            Scoring::Fixed { .. } => None,
        }
    }

    /// Largest per-cell score gain, for 8-bit saturation bounds.
    pub fn max_score(&self) -> i32 {
        match self {
            Scoring::Matrix(m) => m.max_score() as i32,
            Scoring::Fixed { r#match, .. } => *r#match,
        }
    }

    /// Score a residue-index pair (scalar reference path).
    #[inline(always)]
    pub fn score(&self, q: u8, r: u8) -> i32 {
        match self {
            Scoring::Matrix(m) => m.score(q, r) as i32,
            Scoring::Fixed { r#match, mismatch } => {
                if q == r {
                    *r#match
                } else {
                    *mismatch
                }
            }
        }
    }
}

impl std::fmt::Debug for Scoring {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Scoring::Matrix(m) => write!(f, "Scoring::Matrix({})", m.name()),
            Scoring::Fixed { r#match, mismatch } => {
                write!(
                    f,
                    "Scoring::Fixed({match}, {mismatch})",
                    r#match = r#match,
                    mismatch = mismatch
                )
            }
        }
    }
}

/// Lane precision for the vector kernels — the paper's "variable (8/16)
/// bit width implementation" (contribution iii).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Precision {
    /// 8-bit saturating lanes; fastest, scores cap at 127.
    I8,
    /// 16-bit saturating lanes.
    I16,
    /// 32-bit lanes; effectively unbounded for real sequences.
    I32,
    /// Start at 8-bit; on saturation rerun the pair at 16-bit, then
    /// 32-bit (§IV-C: "the performance is now comparable").
    Adaptive,
}

impl Precision {
    /// Stable short name, used as a tracing/metrics label.
    pub fn name(self) -> &'static str {
        match self {
            Precision::I8 => "i8",
            Precision::I16 => "i16",
            Precision::I32 => "i32",
            Precision::Adaptive => "adaptive",
        }
    }
}

/// One alignment move for traceback paths.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Op {
    /// Diagonal move: query and target residue aligned (match or sub).
    Match,
    /// Vertical move: query residue against a gap (insertion in query).
    Insert,
    /// Horizontal move: target residue against a gap (deletion from query).
    Delete,
}

/// A full local alignment with path information.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Alignment {
    /// 0-based inclusive start in the query.
    pub query_start: usize,
    /// 0-based exclusive end in the query.
    pub query_end: usize,
    /// 0-based inclusive start in the target.
    pub target_start: usize,
    /// 0-based exclusive end in the target.
    pub target_end: usize,
    /// Alignment operations from start to end.
    pub ops: Vec<Op>,
}

impl Alignment {
    /// Compact CIGAR string (`M`/`I`/`D` with run-length counts).
    pub fn cigar(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let mut iter = self.ops.iter().peekable();
        while let Some(&op) = iter.next() {
            let mut run = 1usize;
            while iter.peek() == Some(&&op) {
                iter.next();
                run += 1;
            }
            let c = match op {
                Op::Match => 'M',
                Op::Insert => 'I',
                Op::Delete => 'D',
            };
            let _ = write!(out, "{run}{c}");
        }
        out
    }

    /// Number of aligned pairs (M ops).
    pub fn matches(&self) -> usize {
        self.ops.iter().filter(|&&o| o == Op::Match).count()
    }

    /// Total gap residues (I + D ops).
    pub fn gap_residues(&self) -> usize {
        self.ops.len() - self.matches()
    }

    /// Fraction of aligned pairs with identical residues, given the
    /// encoded sequences. 0.0 for empty alignments.
    pub fn identity(&self, query: &[u8], target: &[u8]) -> f64 {
        let mut same = 0usize;
        let mut pairs = 0usize;
        let (mut qi, mut ti) = (self.query_start, self.target_start);
        for &op in &self.ops {
            match op {
                Op::Match => {
                    if query[qi] == target[ti] {
                        same += 1;
                    }
                    pairs += 1;
                    qi += 1;
                    ti += 1;
                }
                Op::Insert => qi += 1,
                Op::Delete => ti += 1,
            }
        }
        if pairs == 0 {
            0.0
        } else {
            same as f64 / pairs as f64
        }
    }

    /// Recompute the alignment score against sequences and parameters —
    /// the traceback validity oracle used by tests.
    pub fn rescore(&self, query: &[u8], target: &[u8], scoring: &Scoring, gaps: GapModel) -> i32 {
        let mut score = 0i32;
        let mut qi = self.query_start;
        let mut ti = self.target_start;
        let mut prev: Option<Op> = None;
        for &op in &self.ops {
            match op {
                Op::Match => {
                    score += scoring.score(query[qi], target[ti]);
                    qi += 1;
                    ti += 1;
                }
                Op::Insert => {
                    score -= gap_step_cost(gaps, prev == Some(Op::Insert));
                    qi += 1;
                }
                Op::Delete => {
                    score -= gap_step_cost(gaps, prev == Some(Op::Delete));
                    ti += 1;
                }
            }
            prev = Some(op);
        }
        debug_assert_eq!(qi, self.query_end);
        debug_assert_eq!(ti, self.target_end);
        score
    }
}

fn gap_step_cost(gaps: GapModel, extending: bool) -> i32 {
    match gaps {
        GapModel::Linear { gap } => gap,
        GapModel::Affine(g) => {
            if extending {
                g.extend
            } else {
                g.open
            }
        }
    }
}

/// Result of one pairwise alignment.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AlignResult {
    /// The optimal local alignment score (≥ 0).
    pub score: i32,
    /// 0-based coordinates of the maximum cell (end of alignment), if
    /// the kernel tracks positions (traceback or scalar reference).
    pub end: Option<(usize, usize)>,
    /// Full path, if traceback was requested.
    pub alignment: Option<Alignment>,
    /// Lane precision that produced the result (after any adaptive
    /// promotion).
    pub precision_used: Precision,
}

impl AlignResult {
    /// A score-only result.
    pub fn score_only(score: i32, precision_used: Precision) -> Self {
        Self {
            score,
            end: None,
            alignment: None,
            precision_used,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use swsimd_matrices::blosum62;

    #[test]
    fn gap_penalties_validate() {
        let g = GapPenalties::new(11, 1);
        assert_eq!(g.open, 11);
    }

    #[test]
    #[should_panic]
    fn negative_gap_rejected() {
        GapPenalties::new(-1, 1);
    }

    #[test]
    #[should_panic]
    fn extend_above_open_rejected() {
        GapPenalties::new(1, 5);
    }

    #[test]
    fn scoring_matrix_lookup() {
        let s = Scoring::matrix(blosum62());
        assert_eq!(s.score(0, 0), 4); // A vs A
        assert_eq!(s.max_score(), 11);
    }

    #[test]
    fn scoring_fixed_lookup() {
        let s = Scoring::Fixed {
            r#match: 2,
            mismatch: -3,
        };
        assert_eq!(s.score(5, 5), 2);
        assert_eq!(s.score(5, 6), -3);
    }

    #[test]
    fn cigar_compaction() {
        let a = Alignment {
            query_start: 0,
            query_end: 4,
            target_start: 0,
            target_end: 3,
            ops: vec![Op::Match, Op::Match, Op::Insert, Op::Insert, Op::Match],
        };
        assert_eq!(a.cigar(), "2M2I1M");
    }

    #[test]
    fn rescore_affine_gap_run() {
        // 2 matches (A vs A = 4 each), then a 2-long delete run.
        let a = Alignment {
            query_start: 0,
            query_end: 2,
            target_start: 0,
            target_end: 4,
            ops: vec![Op::Match, Op::Match, Op::Delete, Op::Delete],
        };
        let s = Scoring::matrix(blosum62());
        let gaps = GapModel::Affine(GapPenalties::new(11, 1));
        // 4 + 4 - 11 - 1
        assert_eq!(a.rescore(&[0, 0], &[0, 0, 1, 1], &s, gaps), -4);
    }

    #[test]
    fn alignment_quality_helpers() {
        let a = Alignment {
            query_start: 0,
            query_end: 3,
            target_start: 0,
            target_end: 4,
            ops: vec![Op::Match, Op::Match, Op::Delete, Op::Match],
        };
        assert_eq!(a.matches(), 3);
        assert_eq!(a.gap_residues(), 1);
        // q = AAB, t = AAXB (delete skips X); identities: A=A, A=A, B=B.
        let id = a.identity(&[0, 0, 1], &[0, 0, 9, 1]);
        assert!((id - 1.0).abs() < 1e-12);
        let id2 = a.identity(&[0, 5, 1], &[0, 0, 9, 1]);
        assert!((id2 - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn max_step_cost() {
        assert_eq!(GapModel::Linear { gap: 4 }.max_step_cost(), 4);
        assert_eq!(GapModel::default_affine().max_step_cost(), 11);
    }
}
