//! Global (Needleman-Wunsch) and semi-global alignment on the same
//! diagonal-vectorized machinery.
//!
//! The paper's comparator, Parasail, is a "global, semi-global, and
//! local" library and §II-B discusses global tracebacks, so a usable
//! reproduction carries all three alignment classes. This module
//! generalizes the diagonal kernel:
//!
//! * **Global** — both sequences align end to end: gap-cost boundary
//!   conditions on row 0 and column 0, no zero clamp, answer at
//!   `H(m, n)`.
//! * **Semi-global** (query-global, target-free ends) — the query must
//!   align fully but leading/trailing target residues are free: row 0
//!   is zero, column 0 carries gap costs, answer is the best cell of
//!   the last query row. This is the read-mapping/glocal convention.
//!
//! Narrow-lane saturation differs from local alignment: global scores
//! can legitimately be very negative, so the kernel tracks whether any
//! `H` lane pinned at the representation limits and flags the run for
//! promotion, exactly like the 8-bit local path.

use swsimd_simd::{EngineKind, ScoreElem, SimdEngine, SimdVec};

use crate::diag::kernel::ScoreOut;
use crate::diag::{diag_bounds, gap_elems, KernelWidth, W16, W32, W8};
use crate::params::{AlignResult, Alignment, GapModel, Op, Precision, Scoring};
use crate::stats::KernelStats;

/// Alignment class.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Default)]
pub enum AlignMode {
    /// Smith-Waterman local alignment (the paper's subject).
    #[default]
    Local,
    /// Needleman-Wunsch global alignment.
    Global,
    /// Query-global, target-free-ends ("glocal") alignment.
    SemiGlobal,
}

const NEG32: i32 = i32::MIN / 4;

/// Cost of a leading gap of length `len` (boundary condition).
#[inline(always)]
fn boundary_cost(gaps: GapModel, len: usize) -> i32 {
    if len == 0 {
        return 0;
    }
    match gaps {
        GapModel::Linear { gap } => -(gap * len as i32),
        GapModel::Affine(g) => -(g.open + g.extend * (len as i32 - 1)),
    }
}

/// Scalar reference for global/semi-global modes (also the traceback
/// provider). Local mode delegates to [`crate::scalar_ref`].
pub fn sw_scalar_mode(
    query: &[u8],
    target: &[u8],
    scoring: &Scoring,
    gaps: GapModel,
    mode: AlignMode,
) -> AlignResult {
    if mode == AlignMode::Local {
        return crate::scalar_ref::sw_scalar(query, target, scoring, gaps);
    }
    let (m, n) = (query.len(), target.len());
    let (go, ge) = match gaps {
        GapModel::Linear { gap } => (gap, gap),
        GapModel::Affine(g) => (g.open, g.extend),
    };

    // Row 0 boundary.
    let mut h_row: Vec<i32> = (0..=n)
        .map(|j| match mode {
            AlignMode::Global => boundary_cost(gaps, j),
            _ => 0,
        })
        .collect();
    let mut f_row = vec![NEG32; n + 1];
    let mut best = NEG32;
    let mut best_cell = (m, n);

    if m == 0 || n == 0 {
        let score = match mode {
            AlignMode::Global => boundary_cost(gaps, m.max(n)),
            AlignMode::SemiGlobal => boundary_cost(gaps, m),
            AlignMode::Local => 0,
        };
        return AlignResult {
            score,
            end: Some((m, n)),
            alignment: None,
            precision_used: Precision::I32,
        };
    }

    for i in 1..=m {
        let mut h_diag = h_row[0];
        // Column 0 carries gap costs in both non-local modes (the query
        // must pay to start late).
        h_row[0] = boundary_cost(gaps, i);
        let mut h_left = h_row[0];
        let mut e = NEG32;
        let qi = query[i - 1];
        for j in 1..=n {
            let s = scoring.score(qi, target[j - 1]);
            e = (e - ge).max(h_left - go);
            let f = (f_row[j] - ge).max(h_row[j] - go);
            f_row[j] = f;
            let h = (h_diag + s).max(e).max(f);
            h_diag = h_row[j];
            h_row[j] = h;
            h_left = h;
        }
        if mode == AlignMode::SemiGlobal && i == m {
            for (j, &h) in h_row.iter().enumerate().skip(1) {
                if h > best {
                    best = h;
                    best_cell = (m, j);
                }
            }
        }
    }
    if mode == AlignMode::Global {
        best = h_row[n];
        best_cell = (m, n);
    }
    AlignResult {
        score: best,
        end: Some(best_cell),
        alignment: None,
        precision_used: Precision::I32,
    }
}

/// Scalar global/semi-global alignment **with traceback**.
pub fn sw_scalar_mode_traceback(
    query: &[u8],
    target: &[u8],
    scoring: &Scoring,
    gaps: GapModel,
    mode: AlignMode,
) -> AlignResult {
    if mode == AlignMode::Local {
        return crate::scalar_ref::sw_scalar_traceback(query, target, scoring, gaps);
    }
    let (m, n) = (query.len(), target.len());
    if m == 0 || n == 0 {
        let mut r = sw_scalar_mode(query, target, scoring, gaps, mode);
        r.alignment = Some(Alignment {
            query_start: 0,
            query_end: m,
            target_start: 0,
            target_end: if mode == AlignMode::Global { n } else { 0 },
            ops: match mode {
                AlignMode::Global => std::iter::repeat_n(Op::Insert, m)
                    .chain(std::iter::repeat_n(Op::Delete, n))
                    .collect(),
                _ => vec![Op::Insert; m],
            },
        });
        return r;
    }
    let (go, ge) = match gaps {
        GapModel::Linear { gap } => (gap, gap),
        GapModel::Affine(g) => (g.open, g.extend),
    };
    use crate::scalar_ref::dir;

    let mut h_row: Vec<i32> = (0..=n)
        .map(|j| match mode {
            AlignMode::Global => boundary_cost(gaps, j),
            _ => 0,
        })
        .collect();
    let mut f_row = vec![NEG32; n + 1];
    let mut dirs = vec![0u8; m * n];
    let mut best = NEG32;
    let mut best_cell = (m, n);

    for i in 1..=m {
        let mut h_diag = h_row[0];
        h_row[0] = boundary_cost(gaps, i);
        let mut h_left = h_row[0];
        let mut e = NEG32;
        let qi = query[i - 1];
        for j in 1..=n {
            let s = scoring.score(qi, target[j - 1]);
            let e_ext = e - ge;
            let e_open = h_left - go;
            e = e_ext.max(e_open);
            let f_ext = f_row[j] - ge;
            let f_open = h_row[j] - go;
            let f = f_ext.max(f_open);
            f_row[j] = f;
            let diag = h_diag + s;
            let h = diag.max(e).max(f);

            let mut code = dir::H_DIAG;
            if h == e {
                code = dir::H_E;
            }
            if h == f {
                code = dir::H_F;
            }
            if h == diag {
                // Prefer diagonal on ties for shorter, cleaner paths.
                code = dir::H_DIAG;
            }
            if e_ext > e_open {
                code |= dir::E_EXT;
            }
            if f_ext > f_open {
                code |= dir::F_EXT;
            }
            dirs[(i - 1) * n + (j - 1)] = code as u8;

            h_diag = h_row[j];
            h_row[j] = h;
            h_left = h;
        }
        if mode == AlignMode::SemiGlobal && i == m {
            for (j, &h) in h_row.iter().enumerate().skip(1) {
                if h > best {
                    best = h;
                    best_cell = (m, j);
                }
            }
        }
    }
    if mode == AlignMode::Global {
        best = h_row[n];
        best_cell = (m, n);
    }

    // Walk to (0, 0) for global; to row 0 for semi-global (free target
    // prefix); emit boundary gap runs when an edge is reached.
    let (mut i, mut j) = best_cell;
    let (ie, je) = (i, j);
    let mut ops = Vec::new();
    #[derive(Clone, Copy)]
    enum St {
        H,
        E,
        F,
    }
    let mut st = St::H;
    while i > 0 && j > 0 {
        let code = dirs[(i - 1) * n + (j - 1)] as i32;
        match st {
            St::H => match code & dir::H_MASK {
                dir::H_DIAG => {
                    ops.push(Op::Match);
                    i -= 1;
                    j -= 1;
                }
                dir::H_E => st = St::E,
                dir::H_F => st = St::F,
                _ => unreachable!("global modes never emit H_ZERO"),
            },
            St::E => {
                ops.push(Op::Delete);
                let ext = code & dir::E_EXT != 0;
                j -= 1;
                if !ext {
                    st = St::H;
                }
            }
            St::F => {
                ops.push(Op::Insert);
                let ext = code & dir::F_EXT != 0;
                i -= 1;
                if !ext {
                    st = St::H;
                }
            }
        }
    }
    // Boundary runs.
    for _ in 0..i {
        ops.push(Op::Insert);
    }
    let target_start = if mode == AlignMode::Global {
        for _ in 0..j {
            ops.push(Op::Delete);
        }
        0
    } else {
        j
    };
    ops.reverse();
    AlignResult {
        score: best,
        end: Some(best_cell),
        alignment: Some(Alignment {
            query_start: 0,
            query_end: ie,
            target_start,
            target_end: je,
            ops,
        }),
        precision_used: Precision::I32,
    }
}

/// Vectorized diagonal kernel for global/semi-global modes (scores
/// only; tracebacks route to the scalar implementation).
#[inline(always)]
fn sw_diag_mode<En: SimdEngine, W: KernelWidth<En>>(
    query: &[u8],
    target: &[u8],
    scoring: &Scoring,
    gaps: GapModel,
    mode: AlignMode,
    scalar_threshold: usize,
    stats: &mut KernelStats,
) -> ScoreOut {
    type Elem<En2, W2> = <<W2 as KernelWidth<En2>>::V as SimdVec>::Elem;

    debug_assert_ne!(mode, AlignMode::Local, "local mode uses the main kernel");
    let (m, n) = (query.len(), target.len());
    if m == 0 || n == 0 {
        let score = match mode {
            AlignMode::Global => boundary_cost(gaps, m.max(n)),
            _ => boundary_cost(gaps, m),
        };
        return ScoreOut {
            score,
            saturated: false,
        };
    }
    let lanes = <W::V as SimdVec>::LANES;
    let scalar_threshold = scalar_threshold.max(1);

    let vneg = W::V::splat(Elem::<En, W>::NEG_INF);
    let vlimit_lo = W::V::splat(Elem::<En, W>::MIN);
    let (go, ge, affine) = gap_elems::<Elem<En, W>>(gaps);
    let vgo = W::V::splat(go);
    let vge = W::V::splat(ge);
    let (go32, ge32) = (go.to_i32(), ge.to_i32());

    let blen = m + 2 + lanes;
    let bc = |len: usize| Elem::<En, W>::from_i32(boundary_cost(gaps, len));
    let row0 = |j: usize| match mode {
        AlignMode::Global => bc(j),
        _ => Elem::<En, W>::ZERO,
    };

    let mut hp = vec![Elem::<En, W>::ZERO; blen];
    let mut hpp = vec![Elem::<En, W>::ZERO; blen];
    let mut hc = vec![Elem::<En, W>::ZERO; blen];
    let mut ep = vec![Elem::<En, W>::NEG_INF; blen];
    let mut ec = vec![Elem::<En, W>::NEG_INF; blen];
    let mut fp = vec![Elem::<En, W>::NEG_INF; blen];
    let mut fc = vec![Elem::<En, W>::NEG_INF; blen];
    // d = 1 boundary: H(0,1) and H(1,0); d = 0: H(0,0) = 0.
    hp[0] = row0(1);
    hp[1] = bc(1);

    let mut qpad = vec![0u8; m + lanes];
    qpad[..m].copy_from_slice(query);
    let mut rrev = vec![0u8; n + lanes];
    for (t, slot) in rrev[..n].iter_mut().enumerate() {
        *slot = target[n - 1 - t];
    }
    let (qel, rrevel, vmatch, vmismatch) = match scoring {
        Scoring::Fixed { r#match, mismatch } => {
            let qel: Vec<_> = qpad
                .iter()
                .map(|&b| Elem::<En, W>::from_i32(b as i32))
                .collect();
            let rel: Vec<_> = rrev
                .iter()
                .map(|&b| Elem::<En, W>::from_i32(b as i32))
                .collect();
            (
                qel,
                rel,
                W::V::splat(Elem::<En, W>::from_i32(*r#match)),
                W::V::splat(Elem::<En, W>::from_i32(*mismatch)),
            )
        }
        Scoring::Matrix(_) => (Vec::new(), Vec::new(), vneg, vneg),
    };

    let mut sat = W::V::zero().cmpgt(W::V::zero()); // all-false mask
    let mut sg_best = NEG32; // semi-global: best of row m
    let mut final_h = NEG32; // global: H(m, n)

    for d in 2..=(m + n) {
        let (lo, hi) = diag_bounds(d, m, n);
        let len = hi - lo + 1;
        stats.diagonals += 1;
        stats.cells += len as u64;

        if len < scalar_threshold {
            for i in lo..=hi {
                let j = d - i;
                let s = scoring.score(query[i - 1], target[j - 1]);
                let h_l = hp[i].to_i32();
                let h_u = hp[i - 1].to_i32();
                let h_d = hpp[i - 1].to_i32();
                let (e_new, f_new) = if affine {
                    (
                        (ep[i].to_i32() - ge32).max(h_l - go32),
                        (fp[i - 1].to_i32() - ge32).max(h_u - go32),
                    )
                } else {
                    (h_l - go32, h_u - go32)
                };
                let h = Elem::<En, W>::from_i32((h_d + s).max(e_new).max(f_new));
                hc[i] = h;
                if affine {
                    ec[i] = Elem::<En, W>::from_i32(e_new);
                    fc[i] = Elem::<En, W>::from_i32(f_new);
                }
                if h == Elem::<En, W>::MIN || h == Elem::<En, W>::MAX {
                    sat = sat.or(W::V::mask_first(1));
                }
            }
            stats.scalar_cells += len as u64;
        } else {
            let mut base = lo;
            while base <= hi {
                let rem = hi + 1 - base;
                // SAFETY: same bounds invariants as the local kernel.
                unsafe {
                    let h_l = W::V::load(hp.as_ptr().add(base));
                    let h_u = W::V::load(hp.as_ptr().add(base - 1));
                    let h_d = W::V::load(hpp.as_ptr().add(base - 1));
                    let s = match scoring {
                        Scoring::Matrix(mat) => {
                            if W::HARDWARE_GATHER {
                                stats.gather_ops += 1;
                            } else {
                                stats.emulated_gathers += 1;
                            }
                            W::gather(
                                mat,
                                qpad.as_ptr().add(base - 1),
                                rrev.as_ptr().add(base + n - d),
                            )
                        }
                        Scoring::Fixed { .. } => {
                            let qv = W::V::load(qel.as_ptr().add(base - 1));
                            let rv = W::V::load(rrevel.as_ptr().add(base + n - d));
                            W::V::blend(qv.cmpeq(rv), vmatch, vmismatch)
                        }
                    };
                    let (e_new, f_new) = if affine {
                        let e_in = W::V::load(ep.as_ptr().add(base));
                        let f_in = W::V::load(fp.as_ptr().add(base - 1));
                        (
                            e_in.subs(vge).max(h_l.subs(vgo)),
                            f_in.subs(vge).max(h_u.subs(vgo)),
                        )
                    } else {
                        (h_l.subs(vgo), h_u.subs(vgo))
                    };
                    let mut h = h_d.adds(s).max(e_new).max(f_new);
                    let mut e_st = e_new;
                    let mut f_st = f_new;
                    if rem < lanes {
                        let mask = W::V::mask_first(rem);
                        h = W::V::blend(mask, h, vneg);
                        e_st = W::V::blend(mask, e_new, vneg);
                        f_st = W::V::blend(mask, f_new, vneg);
                        stats.padded_lanes += (lanes - rem) as u64;
                        sat = sat.or(mask.and(h.cmpeq(vlimit_lo)));
                    } else {
                        sat = sat.or(h.cmpeq(vlimit_lo));
                    }
                    h.store(hc.as_mut_ptr().add(base));
                    if affine {
                        e_st.store(ec.as_mut_ptr().add(base));
                        f_st.store(fc.as_mut_ptr().add(base));
                    }
                }
                stats.vector_steps += 1;
                stats.vector_lane_slots += lanes as u64;
                base += lanes;
            }
        }

        // Mode-dependent boundary guards.
        if lo == 1 {
            hc[0] = row0(d); // H(0, d)
            fc[0] = Elem::<En, W>::NEG_INF;
        }
        if hi < m {
            hc[hi + 1] = bc(d); // H(d, 0)
            ec[hi + 1] = Elem::<En, W>::NEG_INF;
        }

        if hi == m {
            let h = hc[m].to_i32();
            if mode == AlignMode::SemiGlobal && h > sg_best {
                sg_best = h;
            }
            if d == m + n {
                final_h = h;
            }
        }

        std::mem::swap(&mut hpp, &mut hp);
        std::mem::swap(&mut hp, &mut hc);
        std::mem::swap(&mut ep, &mut ec);
        std::mem::swap(&mut fp, &mut fc);
    }

    let score = match mode {
        AlignMode::Global => final_h,
        _ => sg_best,
    };
    let saturated = Elem::<En, W>::BITS < 32
        && (W::V::any(sat)
            || score >= Elem::<En, W>::MAX.to_i32()
            || score <= Elem::<En, W>::MIN.to_i32());
    ScoreOut { score, saturated }
}

macro_rules! mode_wrappers {
    ($mod_:ident, $en:ty, $($feat:literal)?) => {
        mod $mod_ {
            use super::*;
            $(#[target_feature(enable = $feat)])?
            pub(super) unsafe fn w8(
                q: &[u8], t: &[u8], sc: &Scoring, g: GapModel, m: AlignMode, th: usize,
                st: &mut KernelStats,
            ) -> ScoreOut {
                sw_diag_mode::<$en, W8>(q, t, sc, g, m, th, st)
            }
            $(#[target_feature(enable = $feat)])?
            pub(super) unsafe fn w16(
                q: &[u8], t: &[u8], sc: &Scoring, g: GapModel, m: AlignMode, th: usize,
                st: &mut KernelStats,
            ) -> ScoreOut {
                sw_diag_mode::<$en, W16>(q, t, sc, g, m, th, st)
            }
            $(#[target_feature(enable = $feat)])?
            pub(super) unsafe fn w32(
                q: &[u8], t: &[u8], sc: &Scoring, g: GapModel, m: AlignMode, th: usize,
                st: &mut KernelStats,
            ) -> ScoreOut {
                sw_diag_mode::<$en, W32>(q, t, sc, g, m, th, st)
            }
        }
    };
}

mode_wrappers!(scalar_w, swsimd_simd::Scalar,);
#[cfg(target_arch = "x86_64")]
mode_wrappers!(sse41_w, swsimd_simd::Sse41, "sse4.1,ssse3");
#[cfg(target_arch = "x86_64")]
mode_wrappers!(avx2_w, swsimd_simd::Avx2, "avx2");
#[cfg(target_arch = "x86_64")]
mode_wrappers!(
    avx512_w,
    swsimd_simd::Avx512,
    "avx512f,avx512bw,avx512vl,avx512vbmi"
);

/// Vectorized global/semi-global score on a chosen engine and precision
/// (falls back to scalar engine when unavailable; `Adaptive` resolved by
/// the caller).
pub fn diag_mode_score(
    engine: EngineKind,
    precision: Precision,
    query: &[u8],
    target: &[u8],
    scoring: &Scoring,
    gaps: GapModel,
    mode: AlignMode,
    scalar_threshold: usize,
    stats: &mut KernelStats,
) -> ScoreOut {
    if mode == AlignMode::Local {
        return crate::diag::dispatch::diag_score(
            engine,
            precision,
            query,
            target,
            scoring,
            gaps,
            scalar_threshold,
            stats,
        );
    }
    let engine = if engine.is_available() {
        engine
    } else {
        EngineKind::Scalar
    };
    // SAFETY: availability checked above.
    unsafe {
        macro_rules! call {
            ($m:ident) => {
                match precision {
                    Precision::I8 => {
                        $m::w8(query, target, scoring, gaps, mode, scalar_threshold, stats)
                    }
                    Precision::I16 => {
                        $m::w16(query, target, scoring, gaps, mode, scalar_threshold, stats)
                    }
                    _ => $m::w32(query, target, scoring, gaps, mode, scalar_threshold, stats),
                }
            };
        }
        match engine {
            EngineKind::Scalar => call!(scalar_w),
            #[cfg(target_arch = "x86_64")]
            EngineKind::Sse41 => call!(sse41_w),
            #[cfg(target_arch = "x86_64")]
            EngineKind::Avx2 => call!(avx2_w),
            #[cfg(target_arch = "x86_64")]
            EngineKind::Avx512 => call!(avx512_w),
            #[cfg(not(target_arch = "x86_64"))]
            _ => call!(scalar_w),
        }
    }
}

/// Adaptive-precision global/semi-global score.
pub fn adaptive_mode_score(
    engine: EngineKind,
    query: &[u8],
    target: &[u8],
    scoring: &Scoring,
    gaps: GapModel,
    mode: AlignMode,
    scalar_threshold: usize,
    stats: &mut KernelStats,
) -> (i32, Precision) {
    for (k, p) in [Precision::I8, Precision::I16, Precision::I32]
        .into_iter()
        .enumerate()
    {
        if k > 0 {
            stats.promotions += 1;
        }
        let r = diag_mode_score(
            engine,
            p,
            query,
            target,
            scoring,
            gaps,
            mode,
            scalar_threshold,
            stats,
        );
        if !r.saturated {
            return (r.score, p);
        }
    }
    unreachable!("I32 never reports saturation")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::GapPenalties;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use swsimd_matrices::{blosum62, Alphabet};

    fn enc(s: &[u8]) -> Vec<u8> {
        Alphabet::protein().encode(s)
    }

    fn b62() -> Scoring {
        Scoring::matrix(blosum62())
    }

    fn aff() -> GapModel {
        GapModel::Affine(GapPenalties::new(11, 1))
    }

    #[test]
    fn global_identical_is_diagonal_sum() {
        let q = enc(b"ARNDCQEGHILKMFPSTWYV");
        let want: i32 = q
            .iter()
            .map(|&a| blosum62().score_by_index(a, a) as i32)
            .sum();
        let r = sw_scalar_mode(&q, &q, &b62(), aff(), AlignMode::Global);
        assert_eq!(r.score, want);
    }

    #[test]
    fn global_forced_end_gap() {
        // q fully matches a prefix of t; global must pay for the tail.
        let q = enc(b"ARNDC");
        let t = enc(b"ARNDCQEG");
        let prefix: i32 = q
            .iter()
            .map(|&a| blosum62().score_by_index(a, a) as i32)
            .sum();
        let r = sw_scalar_mode(&q, &t, &b62(), aff(), AlignMode::Global);
        assert_eq!(r.score, prefix - (11 + 1 + 1)); // gap of 3
                                                    // Semi-global forgives the target tail entirely.
        let sg = sw_scalar_mode(&q, &t, &b62(), aff(), AlignMode::SemiGlobal);
        assert_eq!(sg.score, prefix);
    }

    #[test]
    fn mode_ordering_local_ge_semiglobal_ge_global() {
        let mut rng = StdRng::seed_from_u64(10);
        for _ in 0..20 {
            let (lm, ln) = (rng.gen_range(1..60), rng.gen_range(1..60));
            let q: Vec<u8> = (0..lm).map(|_| rng.gen_range(0..20)).collect();
            let t: Vec<u8> = (0..ln).map(|_| rng.gen_range(0..20)).collect();
            let local = crate::scalar_ref::sw_scalar(&q, &t, &b62(), aff()).score;
            let sg = sw_scalar_mode(&q, &t, &b62(), aff(), AlignMode::SemiGlobal).score;
            let global = sw_scalar_mode(&q, &t, &b62(), aff(), AlignMode::Global).score;
            assert!(local >= sg, "local {local} < semiglobal {sg}");
            assert!(sg >= global, "semiglobal {sg} < global {global}");
        }
    }

    #[test]
    fn vector_modes_match_scalar() {
        let mut rng = StdRng::seed_from_u64(77);
        for round in 0..25 {
            let (lm, ln) = (rng.gen_range(1..100), rng.gen_range(1..100));
            let q: Vec<u8> = (0..lm).map(|_| rng.gen_range(0..20)).collect();
            let t: Vec<u8> = (0..ln).map(|_| rng.gen_range(0..20)).collect();
            for mode in [AlignMode::Global, AlignMode::SemiGlobal] {
                let want = sw_scalar_mode(&q, &t, &b62(), aff(), mode).score;
                for engine in EngineKind::available() {
                    for prec in [Precision::I16, Precision::I32] {
                        let mut st = KernelStats::default();
                        let got =
                            diag_mode_score(engine, prec, &q, &t, &b62(), aff(), mode, 8, &mut st);
                        if got.saturated {
                            continue;
                        }
                        assert_eq!(
                            got.score, want,
                            "{mode:?} {engine:?} {prec:?} round {round} m={lm} n={ln}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn vector_modes_i8_saturates_or_matches() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10 {
            let (lm, ln) = (rng.gen_range(1..50), rng.gen_range(1..50));
            let q: Vec<u8> = (0..lm).map(|_| rng.gen_range(0..20)).collect();
            let t: Vec<u8> = (0..ln).map(|_| rng.gen_range(0..20)).collect();
            for mode in [AlignMode::Global, AlignMode::SemiGlobal] {
                let want = sw_scalar_mode(&q, &t, &b62(), aff(), mode).score;
                let mut st = KernelStats::default();
                let got = diag_mode_score(
                    EngineKind::best(),
                    Precision::I8,
                    &q,
                    &t,
                    &b62(),
                    aff(),
                    mode,
                    8,
                    &mut st,
                );
                if !got.saturated {
                    assert_eq!(got.score, want, "{mode:?}");
                }
            }
        }
    }

    #[test]
    fn adaptive_mode_score_is_exact() {
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..10 {
            let (lm, ln) = (rng.gen_range(50..200), rng.gen_range(50..200));
            let q: Vec<u8> = (0..lm).map(|_| rng.gen_range(0..20)).collect();
            let t: Vec<u8> = (0..ln).map(|_| rng.gen_range(0..20)).collect();
            for mode in [AlignMode::Global, AlignMode::SemiGlobal] {
                let want = sw_scalar_mode(&q, &t, &b62(), aff(), mode).score;
                let mut st = KernelStats::default();
                let (got, _) = adaptive_mode_score(
                    EngineKind::best(),
                    &q,
                    &t,
                    &b62(),
                    aff(),
                    mode,
                    8,
                    &mut st,
                );
                assert_eq!(got, want, "{mode:?}");
            }
        }
    }

    #[test]
    fn global_traceback_spans_everything() {
        let q = enc(b"ARNDCQEGHILKM");
        let t = enc(b"ARNDCEGHILKMF");
        let r = sw_scalar_mode_traceback(&q, &t, &b62(), aff(), AlignMode::Global);
        let aln = r.alignment.unwrap();
        assert_eq!(aln.query_start, 0);
        assert_eq!(aln.query_end, q.len());
        assert_eq!(aln.target_start, 0);
        assert_eq!(aln.target_end, t.len());
        assert_eq!(aln.rescore(&q, &t, &b62(), aff()), r.score);
    }

    #[test]
    fn semiglobal_traceback_covers_query() {
        let q = enc(b"CQEGHIL");
        let t = enc(b"ARNDCQEGHILKMFP"); // query sits inside the target
        let r = sw_scalar_mode_traceback(&q, &t, &b62(), aff(), AlignMode::SemiGlobal);
        let aln = r.alignment.unwrap();
        assert_eq!(aln.query_start, 0);
        assert_eq!(aln.query_end, q.len());
        assert!(aln.target_start > 0, "free leading target gap expected");
        assert_eq!(aln.rescore(&q, &t, &b62(), aff()), r.score);
        // Perfect interior match, no gap cost.
        let want: i32 = q
            .iter()
            .map(|&a| blosum62().score_by_index(a, a) as i32)
            .sum();
        assert_eq!(r.score, want);
    }

    #[test]
    fn empty_inputs_by_mode() {
        let q = enc(b"ARN");
        assert_eq!(
            sw_scalar_mode(&q, &[], &b62(), aff(), AlignMode::Global).score,
            -(11 + 1 + 1)
        );
        assert_eq!(
            sw_scalar_mode(&[], &q, &b62(), aff(), AlignMode::SemiGlobal).score,
            0
        );
        let mut st = KernelStats::default();
        assert_eq!(
            diag_mode_score(
                EngineKind::best(),
                Precision::I32,
                &q,
                &[],
                &b62(),
                aff(),
                AlignMode::Global,
                8,
                &mut st,
            )
            .score,
            -(11 + 1 + 1)
        );
    }
}
