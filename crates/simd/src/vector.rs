//! The `SimdVec` abstraction: one vector register of score lanes.
//!
//! Every operation is `#[inline(always)]` in each backend so that a
//! generic kernel, when instantiated inside a `#[target_feature]`
//! wrapper (see the `dispatch` module), compiles down to straight-line
//! vector code with the right ISA.

use crate::elem::ScoreElem;

/// One SIMD register holding `LANES` lanes of `Elem`.
///
/// # Safety-relevant conventions
///
/// * `load`/`store` are unaligned and read/write exactly
///   `LANES * size_of::<Elem>()` bytes.
/// * Comparison results are full-lane masks (all bits set in true lanes)
///   of the same type, as produced by `pcmpgt`/`pcmpeq`.
pub trait SimdVec: Copy + Send + Sync + 'static {
    /// Lane element type.
    type Elem: ScoreElem;
    /// Number of lanes.
    const LANES: usize;

    /// Broadcast one element to all lanes.
    fn splat(x: Self::Elem) -> Self;

    /// All-zero vector.
    #[inline(always)]
    fn zero() -> Self {
        Self::splat(Self::Elem::ZERO)
    }

    /// Unaligned load of `LANES` elements.
    ///
    /// # Safety
    /// `ptr` must be valid for reading `LANES` elements.
    unsafe fn load(ptr: *const Self::Elem) -> Self;

    /// Unaligned store of `LANES` elements.
    ///
    /// # Safety
    /// `ptr` must be valid for writing `LANES` elements.
    unsafe fn store(self, ptr: *mut Self::Elem);

    /// Checked load from a slice prefix.
    #[inline(always)]
    fn load_slice(s: &[Self::Elem]) -> Self {
        assert!(s.len() >= Self::LANES, "slice shorter than vector");
        // SAFETY: length checked above.
        unsafe { Self::load(s.as_ptr()) }
    }

    /// Checked store into a slice prefix.
    #[inline(always)]
    fn store_slice(self, s: &mut [Self::Elem]) {
        assert!(s.len() >= Self::LANES, "slice shorter than vector");
        // SAFETY: length checked above.
        unsafe { self.store(s.as_mut_ptr()) }
    }

    /// Saturating lane-wise add (`i32` lanes: wrapping).
    fn adds(self, o: Self) -> Self;
    /// Saturating lane-wise sub (`i32` lanes: wrapping).
    fn subs(self, o: Self) -> Self;
    /// Lane-wise signed max.
    fn max(self, o: Self) -> Self;
    /// Lane-wise signed min.
    fn min(self, o: Self) -> Self;
    /// Lane-wise `self > o` as a full-lane mask.
    fn cmpgt(self, o: Self) -> Self;
    /// Lane-wise `self == o` as a full-lane mask.
    fn cmpeq(self, o: Self) -> Self;
    /// Bitwise and.
    fn and(self, o: Self) -> Self;
    /// Bitwise or.
    fn or(self, o: Self) -> Self;
    /// Per-lane select: where `mask` lane is true take `t`, else `f`.
    fn blend(mask: Self, t: Self, f: Self) -> Self;
    /// True if any lane of a full-lane mask is set.
    fn any(mask: Self) -> bool;
    /// Horizontal maximum across lanes.
    fn hmax(self) -> Self::Elem;
    /// `[0, 1, 2, ...]` per lane (values clamp at `Elem::MAX`; all lane
    /// counts in this crate are ≤ 64 so no clamping occurs in practice).
    fn iota() -> Self;

    /// Shift lanes towards higher indices by one, inserting `first` into
    /// lane 0 (Farrar's `vshift`): `out[0] = first, out[k] = self[k-1]`.
    fn shift_in_first(self, first: Self::Elem) -> Self;

    /// Lane value by index (slow; for tests/debug and scalar tails).
    #[inline]
    fn extract(self, lane: usize) -> Self::Elem {
        assert!(lane < Self::LANES);
        let mut buf = vec![Self::Elem::ZERO; Self::LANES];
        self.store_slice(&mut buf);
        buf[lane]
    }

    /// Mask with lanes `< len` true, the paper's zero-padding helper for
    /// short diagonal segments (Fig 3).
    #[inline(always)]
    fn mask_first(len: usize) -> Self {
        Self::splat(Self::Elem::from_usize(len)).cmpgt(Self::iota())
    }

    /// Dump lanes to a `Vec` (tests/debug only).
    fn to_vec(self) -> Vec<Self::Elem> {
        let mut buf = vec![Self::Elem::ZERO; Self::LANES];
        self.store_slice(&mut buf);
        buf
    }
}
