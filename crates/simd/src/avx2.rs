//! AVX2 backend: 256-bit registers, 32×i8 / 16×i16 / 8×i32 lanes.
//!
//! Every operation maps to one or two instructions. The trait methods are
//! safe to *call* but the engine as a whole must only be selected after
//! [`crate::EngineKind::Avx2`] reports available — dispatchers enforce
//! this, and the generic kernels are instantiated inside
//! `#[target_feature(enable = "avx2")]` wrappers so LLVM emits real AVX2.

#![cfg(target_arch = "x86_64")]

use std::arch::x86_64::*;
use std::marker::PhantomData;

use crate::engine::{SimdEngine, FLAT16_LEN, FLAT_LEN};
use crate::vector::SimdVec;

/// A 256-bit register with a phantom lane type.
#[derive(Clone, Copy)]
pub struct V256<E>(pub(crate) __m256i, PhantomData<E>);

impl<E> V256<E> {
    #[inline(always)]
    fn new(v: __m256i) -> Self {
        Self(v, PhantomData)
    }
}

const IOTA8: [i8; 32] = {
    let mut a = [0i8; 32];
    let mut i = 0;
    while i < 32 {
        a[i] = i as i8;
        i += 1;
    }
    a
};
const IOTA16: [i16; 16] = {
    let mut a = [0i16; 16];
    let mut i = 0;
    while i < 16 {
        a[i] = i as i16;
        i += 1;
    }
    a
};
const IOTA32: [i32; 8] = [0, 1, 2, 3, 4, 5, 6, 7];

impl SimdVec for V256<i8> {
    type Elem = i8;
    const LANES: usize = 32;

    #[inline(always)]
    fn splat(x: i8) -> Self {
        unsafe { Self::new(_mm256_set1_epi8(x)) }
    }
    #[inline(always)]
    unsafe fn load(ptr: *const i8) -> Self {
        Self::new(_mm256_loadu_si256(ptr as *const __m256i))
    }
    #[inline(always)]
    unsafe fn store(self, ptr: *mut i8) {
        _mm256_storeu_si256(ptr as *mut __m256i, self.0)
    }
    #[inline(always)]
    fn adds(self, o: Self) -> Self {
        unsafe { Self::new(_mm256_adds_epi8(self.0, o.0)) }
    }
    #[inline(always)]
    fn subs(self, o: Self) -> Self {
        unsafe { Self::new(_mm256_subs_epi8(self.0, o.0)) }
    }
    #[inline(always)]
    fn max(self, o: Self) -> Self {
        unsafe { Self::new(_mm256_max_epi8(self.0, o.0)) }
    }
    #[inline(always)]
    fn min(self, o: Self) -> Self {
        unsafe { Self::new(_mm256_min_epi8(self.0, o.0)) }
    }
    #[inline(always)]
    fn cmpgt(self, o: Self) -> Self {
        unsafe { Self::new(_mm256_cmpgt_epi8(self.0, o.0)) }
    }
    #[inline(always)]
    fn cmpeq(self, o: Self) -> Self {
        unsafe { Self::new(_mm256_cmpeq_epi8(self.0, o.0)) }
    }
    #[inline(always)]
    fn and(self, o: Self) -> Self {
        unsafe { Self::new(_mm256_and_si256(self.0, o.0)) }
    }
    #[inline(always)]
    fn or(self, o: Self) -> Self {
        unsafe { Self::new(_mm256_or_si256(self.0, o.0)) }
    }
    #[inline(always)]
    fn blend(mask: Self, t: Self, f: Self) -> Self {
        unsafe { Self::new(_mm256_blendv_epi8(f.0, t.0, mask.0)) }
    }
    #[inline(always)]
    fn any(mask: Self) -> bool {
        unsafe { _mm256_movemask_epi8(mask.0) != 0 }
    }
    #[inline(always)]
    fn hmax(self) -> i8 {
        unsafe {
            let lo = _mm256_castsi256_si128(self.0);
            let hi = _mm256_extracti128_si256(self.0, 1);
            let mut m = _mm_max_epi8(lo, hi);
            m = _mm_max_epi8(m, _mm_srli_si128(m, 8));
            m = _mm_max_epi8(m, _mm_srli_si128(m, 4));
            m = _mm_max_epi8(m, _mm_srli_si128(m, 2));
            m = _mm_max_epi8(m, _mm_srli_si128(m, 1));
            _mm_extract_epi8(m, 0) as i8
        }
    }
    #[inline(always)]
    fn iota() -> Self {
        unsafe { Self::load(IOTA8.as_ptr()) }
    }
    #[inline(always)]
    fn shift_in_first(self, first: i8) -> Self {
        unsafe {
            // t = [0 | low 128 of self]; alignr stitches the two so the
            // byte shift crosses the 128-bit boundary.
            let t = _mm256_permute2x128_si256(self.0, self.0, 0x08);
            let shifted = _mm256_alignr_epi8(self.0, t, 15);
            Self::new(_mm256_insert_epi8(shifted, first, 0))
        }
    }
}

impl SimdVec for V256<i16> {
    type Elem = i16;
    const LANES: usize = 16;

    #[inline(always)]
    fn splat(x: i16) -> Self {
        unsafe { Self::new(_mm256_set1_epi16(x)) }
    }
    #[inline(always)]
    unsafe fn load(ptr: *const i16) -> Self {
        Self::new(_mm256_loadu_si256(ptr as *const __m256i))
    }
    #[inline(always)]
    unsafe fn store(self, ptr: *mut i16) {
        _mm256_storeu_si256(ptr as *mut __m256i, self.0)
    }
    #[inline(always)]
    fn adds(self, o: Self) -> Self {
        unsafe { Self::new(_mm256_adds_epi16(self.0, o.0)) }
    }
    #[inline(always)]
    fn subs(self, o: Self) -> Self {
        unsafe { Self::new(_mm256_subs_epi16(self.0, o.0)) }
    }
    #[inline(always)]
    fn max(self, o: Self) -> Self {
        unsafe { Self::new(_mm256_max_epi16(self.0, o.0)) }
    }
    #[inline(always)]
    fn min(self, o: Self) -> Self {
        unsafe { Self::new(_mm256_min_epi16(self.0, o.0)) }
    }
    #[inline(always)]
    fn cmpgt(self, o: Self) -> Self {
        unsafe { Self::new(_mm256_cmpgt_epi16(self.0, o.0)) }
    }
    #[inline(always)]
    fn cmpeq(self, o: Self) -> Self {
        unsafe { Self::new(_mm256_cmpeq_epi16(self.0, o.0)) }
    }
    #[inline(always)]
    fn and(self, o: Self) -> Self {
        unsafe { Self::new(_mm256_and_si256(self.0, o.0)) }
    }
    #[inline(always)]
    fn or(self, o: Self) -> Self {
        unsafe { Self::new(_mm256_or_si256(self.0, o.0)) }
    }
    #[inline(always)]
    fn blend(mask: Self, t: Self, f: Self) -> Self {
        // Full-lane masks make byte-granular blendv correct for i16.
        unsafe { Self::new(_mm256_blendv_epi8(f.0, t.0, mask.0)) }
    }
    #[inline(always)]
    fn any(mask: Self) -> bool {
        unsafe { _mm256_movemask_epi8(mask.0) != 0 }
    }
    #[inline(always)]
    fn hmax(self) -> i16 {
        unsafe {
            let lo = _mm256_castsi256_si128(self.0);
            let hi = _mm256_extracti128_si256(self.0, 1);
            let mut m = _mm_max_epi16(lo, hi);
            m = _mm_max_epi16(m, _mm_srli_si128(m, 8));
            m = _mm_max_epi16(m, _mm_srli_si128(m, 4));
            m = _mm_max_epi16(m, _mm_srli_si128(m, 2));
            _mm_extract_epi16(m, 0) as i16
        }
    }
    #[inline(always)]
    fn iota() -> Self {
        unsafe { Self::load(IOTA16.as_ptr()) }
    }
    #[inline(always)]
    fn shift_in_first(self, first: i16) -> Self {
        unsafe {
            let t = _mm256_permute2x128_si256(self.0, self.0, 0x08);
            let shifted = _mm256_alignr_epi8(self.0, t, 14);
            Self::new(_mm256_insert_epi16(shifted, first, 0))
        }
    }
}

impl SimdVec for V256<i32> {
    type Elem = i32;
    const LANES: usize = 8;

    #[inline(always)]
    fn splat(x: i32) -> Self {
        unsafe { Self::new(_mm256_set1_epi32(x)) }
    }
    #[inline(always)]
    unsafe fn load(ptr: *const i32) -> Self {
        Self::new(_mm256_loadu_si256(ptr as *const __m256i))
    }
    #[inline(always)]
    unsafe fn store(self, ptr: *mut i32) {
        _mm256_storeu_si256(ptr as *mut __m256i, self.0)
    }
    #[inline(always)]
    fn adds(self, o: Self) -> Self {
        // No 32-bit saturating add exists; kernels keep far from the rails.
        unsafe { Self::new(_mm256_add_epi32(self.0, o.0)) }
    }
    #[inline(always)]
    fn subs(self, o: Self) -> Self {
        unsafe { Self::new(_mm256_sub_epi32(self.0, o.0)) }
    }
    #[inline(always)]
    fn max(self, o: Self) -> Self {
        unsafe { Self::new(_mm256_max_epi32(self.0, o.0)) }
    }
    #[inline(always)]
    fn min(self, o: Self) -> Self {
        unsafe { Self::new(_mm256_min_epi32(self.0, o.0)) }
    }
    #[inline(always)]
    fn cmpgt(self, o: Self) -> Self {
        unsafe { Self::new(_mm256_cmpgt_epi32(self.0, o.0)) }
    }
    #[inline(always)]
    fn cmpeq(self, o: Self) -> Self {
        unsafe { Self::new(_mm256_cmpeq_epi32(self.0, o.0)) }
    }
    #[inline(always)]
    fn and(self, o: Self) -> Self {
        unsafe { Self::new(_mm256_and_si256(self.0, o.0)) }
    }
    #[inline(always)]
    fn or(self, o: Self) -> Self {
        unsafe { Self::new(_mm256_or_si256(self.0, o.0)) }
    }
    #[inline(always)]
    fn blend(mask: Self, t: Self, f: Self) -> Self {
        unsafe { Self::new(_mm256_blendv_epi8(f.0, t.0, mask.0)) }
    }
    #[inline(always)]
    fn any(mask: Self) -> bool {
        unsafe { _mm256_movemask_epi8(mask.0) != 0 }
    }
    #[inline(always)]
    fn hmax(self) -> i32 {
        unsafe {
            let lo = _mm256_castsi256_si128(self.0);
            let hi = _mm256_extracti128_si256(self.0, 1);
            let mut m = _mm_max_epi32(lo, hi);
            m = _mm_max_epi32(m, _mm_srli_si128(m, 8));
            m = _mm_max_epi32(m, _mm_srli_si128(m, 4));
            _mm_cvtsi128_si32(m)
        }
    }
    #[inline(always)]
    fn iota() -> Self {
        unsafe { Self::load(IOTA32.as_ptr()) }
    }
    #[inline(always)]
    fn shift_in_first(self, first: i32) -> Self {
        unsafe {
            let t = _mm256_permute2x128_si256(self.0, self.0, 0x08);
            let shifted = _mm256_alignr_epi8(self.0, t, 12);
            Self::new(_mm256_insert_epi32(shifted, first, 0))
        }
    }
}

/// The AVX2 engine.
#[derive(Clone, Copy, Debug, Default)]
pub struct Avx2;

impl SimdEngine for Avx2 {
    const NAME: &'static str = "AVX2";
    const WIDTH_BITS: usize = 256;
    type V8 = V256<i8>;
    type V16 = V256<i16>;
    type V32 = V256<i32>;

    #[inline]
    fn is_available() -> bool {
        std::arch::is_x86_feature_detected!("avx2")
    }

    #[inline(always)]
    fn lut32(table: &[i8; 32], idx: Self::V8) -> Self::V8 {
        unsafe {
            let row = _mm256_loadu_si256(table.as_ptr() as *const __m256i);
            // Duplicate each 16-entry half into both 128-bit lanes so
            // vpshufb (which shuffles per-lane) sees the full table.
            let lo = _mm256_permute2x128_si256(row, row, 0x00);
            let hi = _mm256_permute2x128_si256(row, row, 0x11);
            let use_hi = _mm256_cmpgt_epi8(idx.0, _mm256_set1_epi8(15));
            let vlo = _mm256_shuffle_epi8(lo, idx.0);
            let vhi = _mm256_shuffle_epi8(hi, idx.0);
            V256::new(_mm256_blendv_epi8(vlo, vhi, use_hi))
        }
    }

    #[inline(always)]
    unsafe fn gather_scores_i32(flat: &[i32; FLAT_LEN], q: *const u8, r: *const u8) -> Self::V32 {
        let qv = _mm_loadl_epi64(q as *const __m128i);
        let rv = _mm_loadl_epi64(r as *const __m128i);
        let q32 = _mm256_cvtepu8_epi32(qv);
        let r32 = _mm256_cvtepu8_epi32(rv);
        let idx = _mm256_or_si256(_mm256_slli_epi32(q32, 5), r32);
        V256::new(_mm256_i32gather_epi32::<4>(flat.as_ptr(), idx))
    }

    #[inline(always)]
    unsafe fn gather_scores_i16(flat: &[i16; FLAT16_LEN], q: *const u8, r: *const u8) -> Self::V16 {
        // No 16-bit gather on x86: two dword gathers at i16 granularity
        // (scale 2, each load grabs the target word plus its neighbour),
        // masked down to the low word and packed — the "gather is not
        // exceptionally fast" cost the paper measures. The table carries
        // two guard elements so the dword read at the last real index
        // (1023) stays in bounds.
        let qv = _mm_loadu_si128(q as *const __m128i); // 16 bytes
        let rv = _mm_loadu_si128(r as *const __m128i);
        let q_lo = _mm256_cvtepu8_epi32(qv);
        let q_hi = _mm256_cvtepu8_epi32(_mm_srli_si128(qv, 8));
        let r_lo = _mm256_cvtepu8_epi32(rv);
        let r_hi = _mm256_cvtepu8_epi32(_mm_srli_si128(rv, 8));
        let idx_lo = _mm256_or_si256(_mm256_slli_epi32(q_lo, 5), r_lo);
        let idx_hi = _mm256_or_si256(_mm256_slli_epi32(q_hi, 5), r_hi);
        let lo = _mm256_i32gather_epi32::<2>(flat.as_ptr() as *const i32, idx_lo);
        let hi = _mm256_i32gather_epi32::<2>(flat.as_ptr() as *const i32, idx_hi);
        // Keep the low word of each dword, sign-extended, so packs_epi32
        // saturation is a no-op; then undo the per-lane pack interleave.
        let lo16 = _mm256_srai_epi32(_mm256_slli_epi32(lo, 16), 16);
        let hi16 = _mm256_srai_epi32(_mm256_slli_epi32(hi, 16), 16);
        let packed = _mm256_packs_epi32(lo16, hi16);
        V256::new(_mm256_permute4x64_epi64(packed, 0b11011000))
    }

    #[inline(always)]
    unsafe fn gather_scores_i8(flat: &[i8; FLAT_LEN], q: *const u8, r: *const u8) -> Self::V8 {
        // There is no byte gather on x86 (the paper's point): emulate.
        let mut out = [0i8; 32];
        for (k, o) in out.iter_mut().enumerate() {
            let qi = *q.add(k) as usize;
            let ri = (*r.add(k) as usize) & 31;
            *o = flat[(qi << 5) | ri];
        }
        V256::load(out.as_ptr())
    }
}
