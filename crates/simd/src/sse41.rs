//! SSE4.1 backend: 128-bit registers, 16×i8 / 8×i16 / 4×i32 lanes.
//!
//! Present for the paper's portability analysis (§I contribution vi):
//! pre-AVX2 Intel/AMD machines still get vectorized kernels. SSE has no
//! gather at all, so the score gathers are scalar-emulated — exactly the
//! situation the reorganized-matrix + LUT path was designed to avoid.

#![cfg(target_arch = "x86_64")]

use std::arch::x86_64::*;
use std::marker::PhantomData;

use crate::engine::{SimdEngine, FLAT16_LEN, FLAT_LEN};
use crate::vector::SimdVec;

/// A 128-bit register with a phantom lane type.
#[derive(Clone, Copy)]
pub struct V128<E>(pub(crate) __m128i, PhantomData<E>);

impl<E> V128<E> {
    #[inline(always)]
    fn new(v: __m128i) -> Self {
        Self(v, PhantomData)
    }
}

const IOTA8: [i8; 16] = [0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15];
const IOTA16: [i16; 8] = [0, 1, 2, 3, 4, 5, 6, 7];
const IOTA32: [i32; 4] = [0, 1, 2, 3];

macro_rules! common_bitops {
    () => {
        #[inline(always)]
        fn and(self, o: Self) -> Self {
            unsafe { Self::new(_mm_and_si128(self.0, o.0)) }
        }
        #[inline(always)]
        fn or(self, o: Self) -> Self {
            unsafe { Self::new(_mm_or_si128(self.0, o.0)) }
        }
        #[inline(always)]
        fn blend(mask: Self, t: Self, f: Self) -> Self {
            unsafe { Self::new(_mm_blendv_epi8(f.0, t.0, mask.0)) }
        }
        #[inline(always)]
        fn any(mask: Self) -> bool {
            unsafe { _mm_movemask_epi8(mask.0) != 0 }
        }
    };
}

impl SimdVec for V128<i8> {
    type Elem = i8;
    const LANES: usize = 16;

    #[inline(always)]
    fn splat(x: i8) -> Self {
        unsafe { Self::new(_mm_set1_epi8(x)) }
    }
    #[inline(always)]
    unsafe fn load(ptr: *const i8) -> Self {
        Self::new(_mm_loadu_si128(ptr as *const __m128i))
    }
    #[inline(always)]
    unsafe fn store(self, ptr: *mut i8) {
        _mm_storeu_si128(ptr as *mut __m128i, self.0)
    }
    #[inline(always)]
    fn adds(self, o: Self) -> Self {
        unsafe { Self::new(_mm_adds_epi8(self.0, o.0)) }
    }
    #[inline(always)]
    fn subs(self, o: Self) -> Self {
        unsafe { Self::new(_mm_subs_epi8(self.0, o.0)) }
    }
    #[inline(always)]
    fn max(self, o: Self) -> Self {
        unsafe { Self::new(_mm_max_epi8(self.0, o.0)) }
    }
    #[inline(always)]
    fn min(self, o: Self) -> Self {
        unsafe { Self::new(_mm_min_epi8(self.0, o.0)) }
    }
    #[inline(always)]
    fn cmpgt(self, o: Self) -> Self {
        unsafe { Self::new(_mm_cmpgt_epi8(self.0, o.0)) }
    }
    #[inline(always)]
    fn cmpeq(self, o: Self) -> Self {
        unsafe { Self::new(_mm_cmpeq_epi8(self.0, o.0)) }
    }
    common_bitops!();
    #[inline(always)]
    fn hmax(self) -> i8 {
        unsafe {
            let mut m = self.0;
            m = _mm_max_epi8(m, _mm_srli_si128(m, 8));
            m = _mm_max_epi8(m, _mm_srli_si128(m, 4));
            m = _mm_max_epi8(m, _mm_srli_si128(m, 2));
            m = _mm_max_epi8(m, _mm_srli_si128(m, 1));
            _mm_extract_epi8(m, 0) as i8
        }
    }
    #[inline(always)]
    fn iota() -> Self {
        unsafe { Self::load(IOTA8.as_ptr()) }
    }
    #[inline(always)]
    fn shift_in_first(self, first: i8) -> Self {
        unsafe { Self::new(_mm_insert_epi8(_mm_slli_si128(self.0, 1), first as i32, 0)) }
    }
}

impl SimdVec for V128<i16> {
    type Elem = i16;
    const LANES: usize = 8;

    #[inline(always)]
    fn splat(x: i16) -> Self {
        unsafe { Self::new(_mm_set1_epi16(x)) }
    }
    #[inline(always)]
    unsafe fn load(ptr: *const i16) -> Self {
        Self::new(_mm_loadu_si128(ptr as *const __m128i))
    }
    #[inline(always)]
    unsafe fn store(self, ptr: *mut i16) {
        _mm_storeu_si128(ptr as *mut __m128i, self.0)
    }
    #[inline(always)]
    fn adds(self, o: Self) -> Self {
        unsafe { Self::new(_mm_adds_epi16(self.0, o.0)) }
    }
    #[inline(always)]
    fn subs(self, o: Self) -> Self {
        unsafe { Self::new(_mm_subs_epi16(self.0, o.0)) }
    }
    #[inline(always)]
    fn max(self, o: Self) -> Self {
        unsafe { Self::new(_mm_max_epi16(self.0, o.0)) }
    }
    #[inline(always)]
    fn min(self, o: Self) -> Self {
        unsafe { Self::new(_mm_min_epi16(self.0, o.0)) }
    }
    #[inline(always)]
    fn cmpgt(self, o: Self) -> Self {
        unsafe { Self::new(_mm_cmpgt_epi16(self.0, o.0)) }
    }
    #[inline(always)]
    fn cmpeq(self, o: Self) -> Self {
        unsafe { Self::new(_mm_cmpeq_epi16(self.0, o.0)) }
    }
    common_bitops!();
    #[inline(always)]
    fn hmax(self) -> i16 {
        unsafe {
            let mut m = self.0;
            m = _mm_max_epi16(m, _mm_srli_si128(m, 8));
            m = _mm_max_epi16(m, _mm_srli_si128(m, 4));
            m = _mm_max_epi16(m, _mm_srli_si128(m, 2));
            _mm_extract_epi16(m, 0) as i16
        }
    }
    #[inline(always)]
    fn iota() -> Self {
        unsafe { Self::load(IOTA16.as_ptr()) }
    }
    #[inline(always)]
    fn shift_in_first(self, first: i16) -> Self {
        unsafe { Self::new(_mm_insert_epi16(_mm_slli_si128(self.0, 2), first as i32, 0)) }
    }
}

impl SimdVec for V128<i32> {
    type Elem = i32;
    const LANES: usize = 4;

    #[inline(always)]
    fn splat(x: i32) -> Self {
        unsafe { Self::new(_mm_set1_epi32(x)) }
    }
    #[inline(always)]
    unsafe fn load(ptr: *const i32) -> Self {
        Self::new(_mm_loadu_si128(ptr as *const __m128i))
    }
    #[inline(always)]
    unsafe fn store(self, ptr: *mut i32) {
        _mm_storeu_si128(ptr as *mut __m128i, self.0)
    }
    #[inline(always)]
    fn adds(self, o: Self) -> Self {
        unsafe { Self::new(_mm_add_epi32(self.0, o.0)) }
    }
    #[inline(always)]
    fn subs(self, o: Self) -> Self {
        unsafe { Self::new(_mm_sub_epi32(self.0, o.0)) }
    }
    #[inline(always)]
    fn max(self, o: Self) -> Self {
        unsafe { Self::new(_mm_max_epi32(self.0, o.0)) }
    }
    #[inline(always)]
    fn min(self, o: Self) -> Self {
        unsafe { Self::new(_mm_min_epi32(self.0, o.0)) }
    }
    #[inline(always)]
    fn cmpgt(self, o: Self) -> Self {
        unsafe { Self::new(_mm_cmpgt_epi32(self.0, o.0)) }
    }
    #[inline(always)]
    fn cmpeq(self, o: Self) -> Self {
        unsafe { Self::new(_mm_cmpeq_epi32(self.0, o.0)) }
    }
    common_bitops!();
    #[inline(always)]
    fn hmax(self) -> i32 {
        unsafe {
            let mut m = self.0;
            m = _mm_max_epi32(m, _mm_srli_si128(m, 8));
            m = _mm_max_epi32(m, _mm_srli_si128(m, 4));
            _mm_cvtsi128_si32(m)
        }
    }
    #[inline(always)]
    fn iota() -> Self {
        unsafe { Self::load(IOTA32.as_ptr()) }
    }
    #[inline(always)]
    fn shift_in_first(self, first: i32) -> Self {
        unsafe { Self::new(_mm_insert_epi32(_mm_slli_si128(self.0, 4), first, 0)) }
    }
}

/// The SSE4.1 engine.
#[derive(Clone, Copy, Debug, Default)]
pub struct Sse41;

impl SimdEngine for Sse41 {
    const NAME: &'static str = "SSE4.1";
    const WIDTH_BITS: usize = 128;
    type V8 = V128<i8>;
    type V16 = V128<i16>;
    type V32 = V128<i32>;

    #[inline]
    fn is_available() -> bool {
        std::arch::is_x86_feature_detected!("sse4.1")
            && std::arch::is_x86_feature_detected!("ssse3")
    }

    #[inline(always)]
    fn lut32(table: &[i8; 32], idx: Self::V8) -> Self::V8 {
        unsafe {
            let lo = _mm_loadu_si128(table.as_ptr() as *const __m128i);
            let hi = _mm_loadu_si128(table.as_ptr().add(16) as *const __m128i);
            let use_hi = _mm_cmpgt_epi8(idx.0, _mm_set1_epi8(15));
            let vlo = _mm_shuffle_epi8(lo, idx.0);
            let vhi = _mm_shuffle_epi8(hi, idx.0);
            V128::new(_mm_blendv_epi8(vlo, vhi, use_hi))
        }
    }

    #[inline(always)]
    unsafe fn gather_scores_i32(flat: &[i32; FLAT_LEN], q: *const u8, r: *const u8) -> Self::V32 {
        // SSE has no gather instruction; scalar emulation.
        let mut out = [0i32; 4];
        for (k, o) in out.iter_mut().enumerate() {
            let qi = *q.add(k) as usize;
            let ri = (*r.add(k) as usize) & 31;
            *o = flat[(qi << 5) | ri];
        }
        V128::load(out.as_ptr())
    }

    #[inline(always)]
    unsafe fn gather_scores_i16(flat: &[i16; FLAT16_LEN], q: *const u8, r: *const u8) -> Self::V16 {
        let mut out = [0i16; 8];
        for (k, o) in out.iter_mut().enumerate() {
            let qi = *q.add(k) as usize;
            let ri = (*r.add(k) as usize) & 31;
            *o = flat[(qi << 5) | ri];
        }
        V128::load(out.as_ptr())
    }

    #[inline(always)]
    unsafe fn gather_scores_i8(flat: &[i8; FLAT_LEN], q: *const u8, r: *const u8) -> Self::V8 {
        let mut out = [0i8; 16];
        for (k, o) in out.iter_mut().enumerate() {
            let qi = *q.add(k) as usize;
            let ri = (*r.add(k) as usize) & 31;
            *o = flat[(qi << 5) | ri];
        }
        V128::load(out.as_ptr())
    }
}
