//! The `SimdEngine` abstraction and runtime dispatch.

use crate::vector::SimdVec;

/// Flat substitution table length: 32 query residues x 32 db residues.
pub const FLAT_LEN: usize = 1024;

/// The i16 flat table carries two guard elements because the synthesized
/// 16-bit gather reads dwords (see `gather_scores_i16`).
pub const FLAT16_LEN: usize = FLAT_LEN + 2;

/// A SIMD instruction-set backend: vector types at the three score
/// widths plus the table-lookup primitives the kernels need.
pub trait SimdEngine: Copy + Default + Send + Sync + 'static {
    /// Human-readable name ("AVX2", ...).
    const NAME: &'static str;
    /// Register width in bits.
    const WIDTH_BITS: usize;

    /// 8-bit lane vector.
    type V8: SimdVec<Elem = i8>;
    /// 16-bit lane vector.
    type V16: SimdVec<Elem = i16>;
    /// 32-bit lane vector.
    type V32: SimdVec<Elem = i32>;

    /// True if this engine's instructions are available on the running CPU.
    fn is_available() -> bool;

    /// 32-entry byte table lookup: `out[k] = table[idx[k] & 31]`.
    ///
    /// This is the paper's 8-bit gather replacement (§III-C): one
    /// reorganized matrix row (32 bytes) is the table, a vector of
    /// residue indices selects scores. AVX2 implements it with two
    /// `vpshufb` + blend; AVX-512 with a single `vpermb`.
    fn lut32(table: &[i8; 32], idx: Self::V8) -> Self::V8;

    /// Substitution-score gather at 32-bit width:
    /// `out[k] = flat[(q[k] << 5) | r[k]]` for `LANES` consecutive
    /// query-residue and (reversed) db-residue indices.
    ///
    /// # Safety
    /// `q` and `r` must each be valid for reading `V32::LANES` bytes,
    /// and every byte must be `< 32`.
    unsafe fn gather_scores_i32(flat: &[i32; FLAT_LEN], q: *const u8, r: *const u8) -> Self::V32;

    /// Substitution-score gather at 16-bit width. Intel has no 16-bit
    /// gather; backends synthesize it from two 32-bit gathers plus a
    /// pack (the cost the paper attributes to gather pressure).
    ///
    /// # Safety
    /// As [`Self::gather_scores_i32`], with `V16::LANES` bytes.
    unsafe fn gather_scores_i16(flat: &[i16; FLAT16_LEN], q: *const u8, r: *const u8) -> Self::V16;

    /// Substitution-score gather at 8-bit width. **Emulated** — there is
    /// no 8-bit gather on any x86 ISA (the paper's motivation for the
    /// query-profile path); backends fall back to scalar fills.
    ///
    /// # Safety
    /// As [`Self::gather_scores_i32`], with `V8::LANES` bytes.
    unsafe fn gather_scores_i8(flat: &[i8; FLAT_LEN], q: *const u8, r: *const u8) -> Self::V8;
}

/// The engines that may be available at runtime, in preference order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EngineKind {
    /// Portable scalar emulation (128-bit-equivalent lane counts).
    Scalar,
    /// SSE4.1, 128-bit registers.
    Sse41,
    /// AVX2, 256-bit registers.
    Avx2,
    /// AVX-512 (F+BW+VL+VBMI), 512-bit registers.
    Avx512,
}

impl EngineKind {
    /// All engine kinds, weakest first.
    pub const ALL: [EngineKind; 4] = [
        EngineKind::Scalar,
        EngineKind::Sse41,
        EngineKind::Avx2,
        EngineKind::Avx512,
    ];

    /// Engine name.
    pub fn name(self) -> &'static str {
        match self {
            EngineKind::Scalar => "scalar",
            EngineKind::Sse41 => "SSE4.1",
            EngineKind::Avx2 => "AVX2",
            EngineKind::Avx512 => "AVX-512",
        }
    }

    /// Register width in bits.
    pub fn width_bits(self) -> usize {
        match self {
            EngineKind::Scalar | EngineKind::Sse41 => 128,
            EngineKind::Avx2 => 256,
            EngineKind::Avx512 => 512,
        }
    }

    /// True if the running CPU supports this engine.
    pub fn is_available(self) -> bool {
        match self {
            EngineKind::Scalar => true,
            EngineKind::Sse41 => cfg!(target_arch = "x86_64") && is_x86_sse41(),
            EngineKind::Avx2 => cfg!(target_arch = "x86_64") && is_x86_avx2(),
            EngineKind::Avx512 => cfg!(target_arch = "x86_64") && is_x86_avx512(),
        }
    }

    /// Engines available on the running CPU, weakest first.
    pub fn available() -> Vec<EngineKind> {
        Self::ALL.into_iter().filter(|k| k.is_available()).collect()
    }

    /// The widest available engine.
    pub fn best() -> EngineKind {
        *Self::available()
            .last()
            .expect("scalar is always available")
    }
}

impl std::fmt::Display for EngineKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(target_arch = "x86_64")]
fn is_x86_sse41() -> bool {
    std::arch::is_x86_feature_detected!("sse4.1")
}
#[cfg(target_arch = "x86_64")]
fn is_x86_avx2() -> bool {
    std::arch::is_x86_feature_detected!("avx2")
}
#[cfg(target_arch = "x86_64")]
fn is_x86_avx512() -> bool {
    std::arch::is_x86_feature_detected!("avx512f")
        && std::arch::is_x86_feature_detected!("avx512bw")
        && std::arch::is_x86_feature_detected!("avx512vl")
        && std::arch::is_x86_feature_detected!("avx512vbmi")
}

#[cfg(not(target_arch = "x86_64"))]
fn is_x86_sse41() -> bool {
    false
}
#[cfg(not(target_arch = "x86_64"))]
fn is_x86_avx2() -> bool {
    false
}
#[cfg(not(target_arch = "x86_64"))]
fn is_x86_avx512() -> bool {
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_always_available() {
        assert!(EngineKind::Scalar.is_available());
        assert!(!EngineKind::available().is_empty());
    }

    #[test]
    fn best_is_last_available() {
        let avail = EngineKind::available();
        assert_eq!(EngineKind::best(), *avail.last().unwrap());
    }

    #[test]
    fn widths() {
        assert_eq!(EngineKind::Scalar.width_bits(), 128);
        assert_eq!(EngineKind::Avx2.width_bits(), 256);
        assert_eq!(EngineKind::Avx512.width_bits(), 512);
    }

    #[test]
    fn names() {
        assert_eq!(EngineKind::Avx2.to_string(), "AVX2");
    }
}
