//! Portable scalar emulation engine.
//!
//! Lane counts mirror a 128-bit register (16×i8, 8×i16, 4×i32) so the
//! segment/padding logic in kernels is exercised identically on machines
//! without vector extensions. The compiler frequently auto-vectorizes
//! these loops; correctness, not speed, is the contract.

use crate::elem::ScoreElem;
use crate::engine::{SimdEngine, FLAT16_LEN, FLAT_LEN};
use crate::vector::SimdVec;

/// A scalar-emulated vector of `N` lanes.
#[derive(Clone, Copy, Debug)]
pub struct ScalarVec<E: ScoreElem, const N: usize>(pub(crate) [E; N]);

impl<E: ScoreElem, const N: usize> SimdVec for ScalarVec<E, N> {
    type Elem = E;
    const LANES: usize = N;

    #[inline(always)]
    fn splat(x: E) -> Self {
        Self([x; N])
    }

    #[inline(always)]
    unsafe fn load(ptr: *const E) -> Self {
        let mut out = [E::ZERO; N];
        std::ptr::copy_nonoverlapping(ptr, out.as_mut_ptr(), N);
        Self(out)
    }

    #[inline(always)]
    unsafe fn store(self, ptr: *mut E) {
        std::ptr::copy_nonoverlapping(self.0.as_ptr(), ptr, N);
    }

    #[inline(always)]
    fn adds(self, o: Self) -> Self {
        let mut out = self.0;
        for (a, b) in out.iter_mut().zip(o.0) {
            *a = a.sat_add(b);
        }
        Self(out)
    }

    #[inline(always)]
    fn subs(self, o: Self) -> Self {
        let mut out = self.0;
        for (a, b) in out.iter_mut().zip(o.0) {
            *a = a.sat_sub(b);
        }
        Self(out)
    }

    #[inline(always)]
    fn max(self, o: Self) -> Self {
        let mut out = self.0;
        for (a, b) in out.iter_mut().zip(o.0) {
            *a = a.max_elem(b);
        }
        Self(out)
    }

    #[inline(always)]
    fn min(self, o: Self) -> Self {
        let mut out = self.0;
        for (a, b) in out.iter_mut().zip(o.0) {
            if b < *a {
                *a = b;
            }
        }
        Self(out)
    }

    #[inline(always)]
    fn cmpgt(self, o: Self) -> Self {
        let mut out = [E::ZERO; N];
        for (slot, (a, b)) in out.iter_mut().zip(self.0.iter().zip(o.0.iter())) {
            *slot = if a > b { E::from_i32(-1) } else { E::ZERO };
        }
        Self(out)
    }

    #[inline(always)]
    fn cmpeq(self, o: Self) -> Self {
        let mut out = [E::ZERO; N];
        for (slot, (a, b)) in out.iter_mut().zip(self.0.iter().zip(o.0.iter())) {
            *slot = if a == b { E::from_i32(-1) } else { E::ZERO };
        }
        Self(out)
    }

    #[inline(always)]
    fn and(self, o: Self) -> Self {
        let mut out = [E::ZERO; N];
        for (slot, (a, b)) in out.iter_mut().zip(self.0.iter().zip(o.0.iter())) {
            *slot = E::from_i32(a.to_i32() & b.to_i32());
        }
        Self(out)
    }

    #[inline(always)]
    fn or(self, o: Self) -> Self {
        let mut out = [E::ZERO; N];
        for (slot, (a, b)) in out.iter_mut().zip(self.0.iter().zip(o.0.iter())) {
            *slot = E::from_i32(a.to_i32() | b.to_i32());
        }
        Self(out)
    }

    #[inline(always)]
    fn blend(mask: Self, t: Self, f: Self) -> Self {
        let mut out = [E::ZERO; N];
        for (k, slot) in out.iter_mut().enumerate() {
            *slot = if mask.0[k] != E::ZERO { t.0[k] } else { f.0[k] };
        }
        Self(out)
    }

    #[inline(always)]
    fn any(mask: Self) -> bool {
        mask.0.iter().any(|&m| m != E::ZERO)
    }

    #[inline(always)]
    fn hmax(self) -> E {
        let mut m = self.0[0];
        for &v in &self.0[1..] {
            m = m.max_elem(v);
        }
        m
    }

    #[inline(always)]
    fn iota() -> Self {
        let mut out = [E::ZERO; N];
        for (k, o) in out.iter_mut().enumerate() {
            *o = E::from_usize(k);
        }
        Self(out)
    }

    #[inline(always)]
    fn shift_in_first(self, first: E) -> Self {
        let mut out = [first; N];
        out[1..N].copy_from_slice(&self.0[..N - 1]);
        Self(out)
    }
}

/// The portable scalar engine.
#[derive(Clone, Copy, Debug, Default)]
pub struct Scalar;

impl SimdEngine for Scalar {
    const NAME: &'static str = "scalar";
    const WIDTH_BITS: usize = 128;
    type V8 = ScalarVec<i8, 16>;
    type V16 = ScalarVec<i16, 8>;
    type V32 = ScalarVec<i32, 4>;

    #[inline]
    fn is_available() -> bool {
        true
    }

    #[inline(always)]
    fn lut32(table: &[i8; 32], idx: Self::V8) -> Self::V8 {
        let mut out = [0i8; 16];
        for (slot, &i) in out.iter_mut().zip(idx.0.iter()) {
            *slot = table[(i as usize) & 31];
        }
        ScalarVec(out)
    }

    #[inline(always)]
    unsafe fn gather_scores_i32(flat: &[i32; FLAT_LEN], q: *const u8, r: *const u8) -> Self::V32 {
        let mut out = [0i32; 4];
        for (k, o) in out.iter_mut().enumerate() {
            let qi = *q.add(k) as usize;
            let ri = *r.add(k) as usize;
            *o = flat[(qi << 5) | (ri & 31)];
        }
        ScalarVec(out)
    }

    #[inline(always)]
    unsafe fn gather_scores_i16(flat: &[i16; FLAT16_LEN], q: *const u8, r: *const u8) -> Self::V16 {
        let mut out = [0i16; 8];
        for (k, o) in out.iter_mut().enumerate() {
            let qi = *q.add(k) as usize;
            let ri = *r.add(k) as usize;
            *o = flat[(qi << 5) | (ri & 31)];
        }
        ScalarVec(out)
    }

    #[inline(always)]
    unsafe fn gather_scores_i8(flat: &[i8; FLAT_LEN], q: *const u8, r: *const u8) -> Self::V8 {
        let mut out = [0i8; 16];
        for (k, o) in out.iter_mut().enumerate() {
            let qi = *q.add(k) as usize;
            let ri = *r.add(k) as usize;
            *o = flat[(qi << 5) | (ri & 31)];
        }
        ScalarVec(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    type V8 = <Scalar as SimdEngine>::V8;
    type V16 = <Scalar as SimdEngine>::V16;

    #[test]
    fn splat_and_extract() {
        let v = V8::splat(7);
        assert_eq!(v.extract(0), 7);
        assert_eq!(v.extract(15), 7);
    }

    #[test]
    fn saturating_ops() {
        let a = V8::splat(100);
        let b = V8::splat(100);
        assert_eq!(a.adds(b).extract(3), i8::MAX);
        let c = V8::splat(-100);
        assert_eq!(c.subs(b).extract(3), i8::MIN);
    }

    #[test]
    fn hmax_finds_max() {
        let mut data = [0i8; 16];
        data[11] = 42;
        data[3] = -7;
        let v = V8::load_slice(&data);
        assert_eq!(v.hmax(), 42);
    }

    #[test]
    fn mask_first() {
        let m = V16::mask_first(3);
        let lanes = m.to_vec();
        for (k, &l) in lanes.iter().enumerate() {
            assert_eq!(l != 0, k < 3, "lane {k}");
        }
    }

    #[test]
    fn shift_in_first() {
        let v = V16::iota();
        let s = v.shift_in_first(-9);
        assert_eq!(s.extract(0), -9);
        assert_eq!(s.extract(1), 0);
        assert_eq!(s.extract(7), 6);
    }

    #[test]
    fn blend_selects() {
        let m = V8::mask_first(4);
        let r = V8::blend(m, V8::splat(1), V8::splat(2));
        assert_eq!(r.extract(0), 1);
        assert_eq!(r.extract(4), 2);
    }

    #[test]
    fn lut32_lookup() {
        let mut table = [0i8; 32];
        for (i, t) in table.iter_mut().enumerate() {
            *t = i as i8 - 16;
        }
        let idx = V8::iota();
        let out = Scalar::lut32(&table, idx);
        for k in 0..16 {
            assert_eq!(out.extract(k), k as i8 - 16);
        }
    }
}
