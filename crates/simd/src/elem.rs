//! Scalar score element types usable as vector lanes.

mod sealed {
    pub trait Sealed {}
    impl Sealed for i8 {}
    impl Sealed for i16 {}
    impl Sealed for i32 {}
}

/// A signed integer score element (`i8`, `i16` or `i32`).
///
/// Kernels are generic over the element so the same recurrence compiles
/// at every precision. `i8`/`i16` arithmetic is *saturating* (matching
/// the `padds`/`psubs` instruction families); `i32` wraps, and kernels
/// guarantee by construction that 32-bit scores never approach the limit.
pub trait ScoreElem:
    sealed::Sealed
    + Copy
    + Default
    + PartialEq
    + Eq
    + PartialOrd
    + Ord
    + std::fmt::Debug
    + std::fmt::Display
    + Send
    + Sync
    + 'static
{
    /// Largest representable score (saturation point).
    const MAX: Self;
    /// Smallest representable score (used as -infinity for gap states).
    const MIN: Self;
    /// Zero.
    const ZERO: Self;
    /// The value kernels use as "minus infinity" for gap states. For
    /// saturating widths this is `MIN`; for wrapping `i32` lanes it is
    /// `MIN / 4`, leaving headroom so repeated subtraction cannot wrap.
    const NEG_INF: Self;
    /// Lane width in bits.
    const BITS: u32;

    /// Saturating add (`i32`: wrapping).
    fn sat_add(self, o: Self) -> Self;
    /// Saturating sub (`i32`: wrapping).
    fn sat_sub(self, o: Self) -> Self;
    /// Lane-wise max.
    fn max_elem(self, o: Self) -> Self;
    /// Widen to i32.
    fn to_i32(self) -> i32;
    /// Narrow from i32 with clamping.
    fn from_i32(v: i32) -> Self;
    /// Widen an i8 matrix score.
    fn from_i8(v: i8) -> Self;
    /// Narrow from usize with clamping (for iota/mask construction).
    fn from_usize(v: usize) -> Self {
        Self::from_i32(v.min(i32::MAX as usize) as i32)
    }
}

macro_rules! impl_elem {
    ($t:ty, $bits:literal, sat) => {
        impl ScoreElem for $t {
            const MAX: Self = <$t>::MAX;
            const MIN: Self = <$t>::MIN;
            const ZERO: Self = 0;
            const NEG_INF: Self = <$t>::MIN;
            const BITS: u32 = $bits;
            #[inline(always)]
            fn sat_add(self, o: Self) -> Self {
                self.saturating_add(o)
            }
            #[inline(always)]
            fn sat_sub(self, o: Self) -> Self {
                self.saturating_sub(o)
            }
            #[inline(always)]
            fn max_elem(self, o: Self) -> Self {
                if self > o {
                    self
                } else {
                    o
                }
            }
            #[inline(always)]
            fn to_i32(self) -> i32 {
                self as i32
            }
            #[inline(always)]
            fn from_i32(v: i32) -> Self {
                v.clamp(<$t>::MIN as i32, <$t>::MAX as i32) as $t
            }
            #[inline(always)]
            fn from_i8(v: i8) -> Self {
                v as $t
            }
        }
    };
}

impl_elem!(i8, 8, sat);
impl_elem!(i16, 16, sat);

impl ScoreElem for i32 {
    const MAX: Self = i32::MAX;
    const MIN: Self = i32::MIN;
    const ZERO: Self = 0;
    const NEG_INF: Self = i32::MIN / 4;
    const BITS: u32 = 32;
    // x86 has no 32-bit saturating vector add; model i32 lanes as
    // wrapping and keep kernel scores far from the limits instead.
    #[inline(always)]
    fn sat_add(self, o: Self) -> Self {
        self.wrapping_add(o)
    }
    #[inline(always)]
    fn sat_sub(self, o: Self) -> Self {
        self.wrapping_sub(o)
    }
    #[inline(always)]
    fn max_elem(self, o: Self) -> Self {
        if self > o {
            self
        } else {
            o
        }
    }
    #[inline(always)]
    fn to_i32(self) -> i32 {
        self
    }
    #[inline(always)]
    fn from_i32(v: i32) -> Self {
        v
    }
    #[inline(always)]
    fn from_i8(v: i8) -> Self {
        v as i32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn i8_saturates() {
        assert_eq!(100i8.sat_add(100), i8::MAX);
        assert_eq!((-100i8).sat_sub(100), i8::MIN);
        assert_eq!(5i8.sat_add(3), 8);
    }

    #[test]
    fn i16_saturates() {
        assert_eq!(30_000i16.sat_add(30_000), i16::MAX);
        assert_eq!((-30_000i16).sat_sub(30_000), i16::MIN);
    }

    #[test]
    fn i32_wraps_by_design() {
        assert_eq!(i32::MAX.sat_add(1), i32::MIN);
    }

    #[test]
    fn conversions() {
        assert_eq!(i8::from_i32(1000), i8::MAX);
        assert_eq!(i8::from_i32(-1000), i8::MIN);
        assert_eq!(i16::from_i8(-64), -64i16);
        assert_eq!(i8::from_usize(300), i8::MAX);
        assert_eq!(i16::from_usize(300), 300i16);
    }

    #[test]
    fn max_elem() {
        assert_eq!(3i8.max_elem(-5), 3);
        assert_eq!((-7i32).max_elem(-5), -5);
    }
}
