//! AVX-512 backend: 512-bit registers, 64×i8 / 32×i16 / 16×i32 lanes.
//!
//! Requires F+BW+VL+VBMI (VBMI provides `vpermb`, the single-instruction
//! 32-entry byte LUT that replaces AVX2's shuffle+blend pair). The paper
//! found AVX-512 does **not** deliver 2× over AVX2 (Fig 6) — port fusion
//! and frequency offsets eat the width advantage; this backend lets the
//! benchmark reproduce that comparison on real hardware.

#![cfg(target_arch = "x86_64")]

use std::arch::x86_64::*;
use std::marker::PhantomData;

use crate::engine::{SimdEngine, FLAT16_LEN, FLAT_LEN};
use crate::vector::SimdVec;

/// A 512-bit register with a phantom lane type.
#[derive(Clone, Copy)]
pub struct V512<E>(pub(crate) __m512i, PhantomData<E>);

impl<E> V512<E> {
    #[inline(always)]
    fn new(v: __m512i) -> Self {
        Self(v, PhantomData)
    }
}

const IOTA8: [i8; 64] = {
    let mut a = [0i8; 64];
    let mut i = 0;
    while i < 64 {
        a[i] = i as i8;
        i += 1;
    }
    a
};
const IOTA16: [i16; 32] = {
    let mut a = [0i16; 32];
    let mut i = 0;
    while i < 32 {
        a[i] = i as i16;
        i += 1;
    }
    a
};
const IOTA32: [i32; 16] = {
    let mut a = [0i32; 16];
    let mut i = 0;
    while i < 16 {
        a[i] = i as i32;
        i += 1;
    }
    a
};

/// Permutation indices shifting bytes up by one across the full register.
const SHIFT1_8: [i8; 64] = {
    let mut a = [0i8; 64];
    let mut i = 1;
    while i < 64 {
        a[i] = (i - 1) as i8;
        i += 1;
    }
    a
};
const SHIFT1_16: [i16; 32] = {
    let mut a = [0i16; 32];
    let mut i = 1;
    while i < 32 {
        a[i] = (i - 1) as i16;
        i += 1;
    }
    a
};

impl SimdVec for V512<i8> {
    type Elem = i8;
    const LANES: usize = 64;

    #[inline(always)]
    fn splat(x: i8) -> Self {
        unsafe { Self::new(_mm512_set1_epi8(x)) }
    }
    #[inline(always)]
    unsafe fn load(ptr: *const i8) -> Self {
        Self::new(_mm512_loadu_si512(ptr as *const __m512i))
    }
    #[inline(always)]
    unsafe fn store(self, ptr: *mut i8) {
        _mm512_storeu_si512(ptr as *mut __m512i, self.0)
    }
    #[inline(always)]
    fn adds(self, o: Self) -> Self {
        unsafe { Self::new(_mm512_adds_epi8(self.0, o.0)) }
    }
    #[inline(always)]
    fn subs(self, o: Self) -> Self {
        unsafe { Self::new(_mm512_subs_epi8(self.0, o.0)) }
    }
    #[inline(always)]
    fn max(self, o: Self) -> Self {
        unsafe { Self::new(_mm512_max_epi8(self.0, o.0)) }
    }
    #[inline(always)]
    fn min(self, o: Self) -> Self {
        unsafe { Self::new(_mm512_min_epi8(self.0, o.0)) }
    }
    #[inline(always)]
    fn cmpgt(self, o: Self) -> Self {
        unsafe { Self::new(_mm512_movm_epi8(_mm512_cmpgt_epi8_mask(self.0, o.0))) }
    }
    #[inline(always)]
    fn cmpeq(self, o: Self) -> Self {
        unsafe { Self::new(_mm512_movm_epi8(_mm512_cmpeq_epi8_mask(self.0, o.0))) }
    }
    #[inline(always)]
    fn and(self, o: Self) -> Self {
        unsafe { Self::new(_mm512_and_si512(self.0, o.0)) }
    }
    #[inline(always)]
    fn or(self, o: Self) -> Self {
        unsafe { Self::new(_mm512_or_si512(self.0, o.0)) }
    }
    #[inline(always)]
    fn blend(mask: Self, t: Self, f: Self) -> Self {
        unsafe {
            let k = _mm512_movepi8_mask(mask.0);
            Self::new(_mm512_mask_blend_epi8(k, f.0, t.0))
        }
    }
    #[inline(always)]
    fn any(mask: Self) -> bool {
        unsafe { _mm512_movepi8_mask(mask.0) != 0 }
    }
    #[inline(always)]
    fn hmax(self) -> i8 {
        let mut buf = [0i8; 64];
        unsafe { self.store(buf.as_mut_ptr()) };
        buf.into_iter().max().unwrap()
    }
    #[inline(always)]
    fn iota() -> Self {
        unsafe { Self::load(IOTA8.as_ptr()) }
    }
    #[inline(always)]
    fn shift_in_first(self, first: i8) -> Self {
        unsafe {
            let idx = _mm512_loadu_si512(SHIFT1_8.as_ptr() as *const __m512i);
            let shifted = _mm512_permutexvar_epi8(idx, self.0);
            Self::new(_mm512_mask_mov_epi8(shifted, 1, _mm512_set1_epi8(first)))
        }
    }
}

impl SimdVec for V512<i16> {
    type Elem = i16;
    const LANES: usize = 32;

    #[inline(always)]
    fn splat(x: i16) -> Self {
        unsafe { Self::new(_mm512_set1_epi16(x)) }
    }
    #[inline(always)]
    unsafe fn load(ptr: *const i16) -> Self {
        Self::new(_mm512_loadu_si512(ptr as *const __m512i))
    }
    #[inline(always)]
    unsafe fn store(self, ptr: *mut i16) {
        _mm512_storeu_si512(ptr as *mut __m512i, self.0)
    }
    #[inline(always)]
    fn adds(self, o: Self) -> Self {
        unsafe { Self::new(_mm512_adds_epi16(self.0, o.0)) }
    }
    #[inline(always)]
    fn subs(self, o: Self) -> Self {
        unsafe { Self::new(_mm512_subs_epi16(self.0, o.0)) }
    }
    #[inline(always)]
    fn max(self, o: Self) -> Self {
        unsafe { Self::new(_mm512_max_epi16(self.0, o.0)) }
    }
    #[inline(always)]
    fn min(self, o: Self) -> Self {
        unsafe { Self::new(_mm512_min_epi16(self.0, o.0)) }
    }
    #[inline(always)]
    fn cmpgt(self, o: Self) -> Self {
        unsafe { Self::new(_mm512_movm_epi16(_mm512_cmpgt_epi16_mask(self.0, o.0))) }
    }
    #[inline(always)]
    fn cmpeq(self, o: Self) -> Self {
        unsafe { Self::new(_mm512_movm_epi16(_mm512_cmpeq_epi16_mask(self.0, o.0))) }
    }
    #[inline(always)]
    fn and(self, o: Self) -> Self {
        unsafe { Self::new(_mm512_and_si512(self.0, o.0)) }
    }
    #[inline(always)]
    fn or(self, o: Self) -> Self {
        unsafe { Self::new(_mm512_or_si512(self.0, o.0)) }
    }
    #[inline(always)]
    fn blend(mask: Self, t: Self, f: Self) -> Self {
        unsafe {
            let k = _mm512_movepi16_mask(mask.0);
            Self::new(_mm512_mask_blend_epi16(k, f.0, t.0))
        }
    }
    #[inline(always)]
    fn any(mask: Self) -> bool {
        unsafe { _mm512_movepi16_mask(mask.0) != 0 }
    }
    #[inline(always)]
    fn hmax(self) -> i16 {
        let mut buf = [0i16; 32];
        unsafe { self.store(buf.as_mut_ptr()) };
        buf.into_iter().max().unwrap()
    }
    #[inline(always)]
    fn iota() -> Self {
        unsafe { Self::load(IOTA16.as_ptr()) }
    }
    #[inline(always)]
    fn shift_in_first(self, first: i16) -> Self {
        unsafe {
            let idx = _mm512_loadu_si512(SHIFT1_16.as_ptr() as *const __m512i);
            let shifted = _mm512_permutexvar_epi16(idx, self.0);
            Self::new(_mm512_mask_mov_epi16(shifted, 1, _mm512_set1_epi16(first)))
        }
    }
}

impl SimdVec for V512<i32> {
    type Elem = i32;
    const LANES: usize = 16;

    #[inline(always)]
    fn splat(x: i32) -> Self {
        unsafe { Self::new(_mm512_set1_epi32(x)) }
    }
    #[inline(always)]
    unsafe fn load(ptr: *const i32) -> Self {
        Self::new(_mm512_loadu_si512(ptr as *const __m512i))
    }
    #[inline(always)]
    unsafe fn store(self, ptr: *mut i32) {
        _mm512_storeu_si512(ptr as *mut __m512i, self.0)
    }
    #[inline(always)]
    fn adds(self, o: Self) -> Self {
        unsafe { Self::new(_mm512_add_epi32(self.0, o.0)) }
    }
    #[inline(always)]
    fn subs(self, o: Self) -> Self {
        unsafe { Self::new(_mm512_sub_epi32(self.0, o.0)) }
    }
    #[inline(always)]
    fn max(self, o: Self) -> Self {
        unsafe { Self::new(_mm512_max_epi32(self.0, o.0)) }
    }
    #[inline(always)]
    fn min(self, o: Self) -> Self {
        unsafe { Self::new(_mm512_min_epi32(self.0, o.0)) }
    }
    #[inline(always)]
    fn cmpgt(self, o: Self) -> Self {
        unsafe { Self::new(_mm512_movm_epi32(_mm512_cmpgt_epi32_mask(self.0, o.0))) }
    }
    #[inline(always)]
    fn cmpeq(self, o: Self) -> Self {
        unsafe { Self::new(_mm512_movm_epi32(_mm512_cmpeq_epi32_mask(self.0, o.0))) }
    }
    #[inline(always)]
    fn and(self, o: Self) -> Self {
        unsafe { Self::new(_mm512_and_si512(self.0, o.0)) }
    }
    #[inline(always)]
    fn or(self, o: Self) -> Self {
        unsafe { Self::new(_mm512_or_si512(self.0, o.0)) }
    }
    #[inline(always)]
    fn blend(mask: Self, t: Self, f: Self) -> Self {
        unsafe {
            let k = _mm512_movepi32_mask(mask.0);
            Self::new(_mm512_mask_blend_epi32(k, f.0, t.0))
        }
    }
    #[inline(always)]
    fn any(mask: Self) -> bool {
        unsafe { _mm512_movepi32_mask(mask.0) != 0 }
    }
    #[inline(always)]
    fn hmax(self) -> i32 {
        unsafe { _mm512_reduce_max_epi32(self.0) }
    }
    #[inline(always)]
    fn iota() -> Self {
        unsafe { Self::load(IOTA32.as_ptr()) }
    }
    #[inline(always)]
    fn shift_in_first(self, first: i32) -> Self {
        unsafe {
            // valignd: concat(self, splat(first)) >> 15 dwords puts
            // `first` in lane 0 and self[k-1] in lane k.
            let f = _mm512_set1_epi32(first);
            Self::new(_mm512_alignr_epi32(self.0, f, 15))
        }
    }
}

/// The AVX-512 engine (F+BW+VL+VBMI).
#[derive(Clone, Copy, Debug, Default)]
pub struct Avx512;

impl SimdEngine for Avx512 {
    const NAME: &'static str = "AVX-512";
    const WIDTH_BITS: usize = 512;
    type V8 = V512<i8>;
    type V16 = V512<i16>;
    type V32 = V512<i32>;

    #[inline]
    fn is_available() -> bool {
        std::arch::is_x86_feature_detected!("avx512f")
            && std::arch::is_x86_feature_detected!("avx512bw")
            && std::arch::is_x86_feature_detected!("avx512vl")
            && std::arch::is_x86_feature_detected!("avx512vbmi")
    }

    #[inline(always)]
    fn lut32(table: &[i8; 32], idx: Self::V8) -> Self::V8 {
        unsafe {
            // Broadcast the 32-byte row into both halves; vpermb indexes
            // 64 entries, so duplicated halves make any 0..63 index safe
            // while 0..31 hits the real row.
            let row256 = _mm256_loadu_si256(table.as_ptr() as *const __m256i);
            let t = _mm512_broadcast_i64x4(row256);
            V512::new(_mm512_permutexvar_epi8(idx.0, t))
        }
    }

    #[inline(always)]
    unsafe fn gather_scores_i32(flat: &[i32; FLAT_LEN], q: *const u8, r: *const u8) -> Self::V32 {
        let qv = _mm_loadu_si128(q as *const __m128i);
        let rv = _mm_loadu_si128(r as *const __m128i);
        let q32 = _mm512_cvtepu8_epi32(qv);
        let r32 = _mm512_cvtepu8_epi32(rv);
        let idx = _mm512_or_si512(_mm512_slli_epi32(q32, 5), r32);
        V512::new(_mm512_i32gather_epi32::<4>(idx, flat.as_ptr()))
    }

    #[inline(always)]
    unsafe fn gather_scores_i16(flat: &[i16; FLAT16_LEN], q: *const u8, r: *const u8) -> Self::V16 {
        // Two dword gathers at word granularity, then truncate with
        // vpmovdw — no pack-order fixup needed on AVX-512.
        let qv = _mm256_loadu_si256(q as *const __m256i); // 32 bytes
        let rv = _mm256_loadu_si256(r as *const __m256i);
        let q_lo = _mm512_cvtepu8_epi32(_mm256_castsi256_si128(qv));
        let q_hi = _mm512_cvtepu8_epi32(_mm256_extracti128_si256(qv, 1));
        let r_lo = _mm512_cvtepu8_epi32(_mm256_castsi256_si128(rv));
        let r_hi = _mm512_cvtepu8_epi32(_mm256_extracti128_si256(rv, 1));
        let idx_lo = _mm512_or_si512(_mm512_slli_epi32(q_lo, 5), r_lo);
        let idx_hi = _mm512_or_si512(_mm512_slli_epi32(q_hi, 5), r_hi);
        let lo = _mm512_i32gather_epi32::<2>(idx_lo, flat.as_ptr() as *const i32);
        let hi = _mm512_i32gather_epi32::<2>(idx_hi, flat.as_ptr() as *const i32);
        let lo16 = _mm512_cvtepi32_epi16(lo);
        let hi16 = _mm512_cvtepi32_epi16(hi);
        let out = _mm512_inserti64x4(_mm512_castsi256_si512(lo16), hi16, 1);
        V512::new(out)
    }

    #[inline(always)]
    unsafe fn gather_scores_i8(flat: &[i8; FLAT_LEN], q: *const u8, r: *const u8) -> Self::V8 {
        // Still no byte gather in AVX-512; emulate.
        let mut out = [0i8; 64];
        for (k, o) in out.iter_mut().enumerate() {
            let qi = *q.add(k) as usize;
            let ri = (*r.add(k) as usize) & 31;
            *o = flat[(qi << 5) | ri];
        }
        V512::load(out.as_ptr())
    }
}
