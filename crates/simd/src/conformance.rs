//! Cross-engine conformance checks: every backend must agree with the
//! scalar reference on every operation, across random inputs.
//!
//! Hardware backends are skipped (not failed) on machines without the
//! ISA, so the suite is portable — but a skip must never be silent:
//! [`run_all`] returns a per-engine ran/skipped report that CI logs,
//! so a green run on a scalar-only box cannot masquerade as full
//! hardware coverage.

use std::panic::{catch_unwind, AssertUnwindSafe};

use crate::elem::ScoreElem;
use crate::engine::{EngineKind, SimdEngine, FLAT16_LEN, FLAT_LEN};
use crate::scalar::Scalar;
use crate::vector::SimdVec;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn rand_lanes<E: ScoreElem>(rng: &mut StdRng, n: usize) -> Vec<E> {
    (0..n)
        .map(|_| E::from_i32(rng.gen_range(i8::MIN as i32..=i8::MAX as i32)))
        .collect()
}

/// Exhaustive op check of one vector width of one engine against the
/// scalar semantics.
fn check_vec_ops<V: SimdVec>(seed: u64)
where
    V::Elem: ScoreElem,
{
    let mut rng = StdRng::seed_from_u64(seed);
    for round in 0..50 {
        let xs = rand_lanes::<V::Elem>(&mut rng, V::LANES);
        let ys = rand_lanes::<V::Elem>(&mut rng, V::LANES);
        let a = V::load_slice(&xs);
        let b = V::load_slice(&ys);

        let got_add = a.adds(b).to_vec();
        let got_sub = a.subs(b).to_vec();
        let got_max = a.max(b).to_vec();
        let got_min = a.min(b).to_vec();
        let got_gt = a.cmpgt(b).to_vec();
        let got_eq = a.cmpeq(b).to_vec();
        let got_blend = V::blend(a.cmpgt(b), a, b).to_vec();
        for k in 0..V::LANES {
            assert_eq!(
                got_add[k],
                xs[k].sat_add(ys[k]),
                "adds lane {k} round {round}"
            );
            assert_eq!(got_sub[k], xs[k].sat_sub(ys[k]), "subs lane {k}");
            assert_eq!(got_max[k], xs[k].max_elem(ys[k]), "max lane {k}");
            assert_eq!(
                got_min[k],
                if ys[k] < xs[k] { ys[k] } else { xs[k] },
                "min lane {k}"
            );
            assert_eq!(got_gt[k] != V::Elem::ZERO, xs[k] > ys[k], "cmpgt lane {k}");
            assert_eq!(got_eq[k] != V::Elem::ZERO, xs[k] == ys[k], "cmpeq lane {k}");
            assert_eq!(
                got_blend[k],
                if xs[k] > ys[k] { xs[k] } else { ys[k] },
                "blend lane {k}"
            );
        }

        // hmax
        assert_eq!(
            a.hmax(),
            xs.iter().copied().max().unwrap(),
            "hmax round {round}"
        );

        // any
        assert!(V::any(a.cmpeq(a)));
        assert!(!V::any(a.cmpgt(a)));

        // iota & mask_first
        let iota = V::iota().to_vec();
        for (k, &v) in iota.iter().enumerate() {
            assert_eq!(v.to_i32(), k as i32, "iota lane {k}");
        }
        for len in [0, 1, V::LANES / 2, V::LANES] {
            let m = V::mask_first(len).to_vec();
            for (k, &v) in m.iter().enumerate() {
                assert_eq!(v != V::Elem::ZERO, k < len, "mask_first({len}) lane {k}");
            }
        }

        // shift_in_first
        let first = V::Elem::from_i32(-42);
        let shifted = a.shift_in_first(first).to_vec();
        assert_eq!(shifted[0], first, "shift lane 0");
        for k in 1..V::LANES {
            assert_eq!(shifted[k], xs[k - 1], "shift lane {k}");
        }

        // splat / store roundtrip
        let s = V::splat(V::Elem::from_i32(round - 25)).to_vec();
        assert!(s.iter().all(|&v| v == V::Elem::from_i32(round - 25)));
    }
}

fn check_engine_tables<E: SimdEngine>(seed: u64) {
    let mut rng = StdRng::seed_from_u64(seed);

    // lut32 vs direct indexing.
    let mut table = [0i8; 32];
    for t in table.iter_mut() {
        *t = rng.gen_range(i8::MIN..=i8::MAX);
    }
    for _ in 0..20 {
        let idx: Vec<i8> = (0..E::V8::LANES)
            .map(|_| rng.gen_range(0..32i32) as i8)
            .collect();
        let v = E::V8::load_slice(&idx);
        let got = E::lut32(&table, v).to_vec();
        for (k, &i) in idx.iter().enumerate() {
            assert_eq!(got[k], table[i as usize], "lut32 lane {k} idx {i}");
        }
    }

    // gathers vs direct indexing.
    let mut flat8 = [0i8; FLAT_LEN];
    for v in flat8.iter_mut() {
        *v = rng.gen_range(-64..=64i32) as i8;
    }
    let mut flat16 = [0i16; FLAT16_LEN];
    let mut flat32 = [0i32; FLAT_LEN];
    for i in 0..FLAT_LEN {
        flat16[i] = flat8[i] as i16;
        flat32[i] = flat8[i] as i32;
    }

    let qs: Vec<u8> = (0..64).map(|_| rng.gen_range(0..32u8)).collect();
    let rs: Vec<u8> = (0..64).map(|_| rng.gen_range(0..32u8)).collect();

    // SAFETY: qs/rs are 64 bytes, enough for every lane count; all < 32.
    unsafe {
        let g32 = E::gather_scores_i32(&flat32, qs.as_ptr(), rs.as_ptr()).to_vec();
        for (k, g) in g32.iter().enumerate() {
            let want = flat32[((qs[k] as usize) << 5) | rs[k] as usize];
            assert_eq!(*g, want, "gather_i32 lane {k}");
        }
        let g16 = E::gather_scores_i16(&flat16, qs.as_ptr(), rs.as_ptr()).to_vec();
        for (k, g) in g16.iter().enumerate() {
            let want = flat16[((qs[k] as usize) << 5) | rs[k] as usize];
            assert_eq!(*g, want, "gather_i16 lane {k}");
        }
        let g8 = E::gather_scores_i8(&flat8, qs.as_ptr(), rs.as_ptr()).to_vec();
        for (k, g) in g8.iter().enumerate() {
            let want = flat8[((qs[k] as usize) << 5) | rs[k] as usize];
            assert_eq!(*g, want, "gather_i8 lane {k}");
        }
    }

    // The i16 gather at the extreme index (1023) must stay in bounds and
    // return the right value — the guard-element regression test.
    let qmax = [31u8; 64];
    let rmax = [31u8; 64];
    unsafe {
        let g16 = E::gather_scores_i16(&flat16, qmax.as_ptr(), rmax.as_ptr()).to_vec();
        for (k, g) in g16.iter().enumerate() {
            assert_eq!(*g, flat16[1023], "gather_i16 max-index lane {k}");
        }
    }
}

/// Ran/skipped outcome of the conformance suite for one engine.
#[derive(Clone, Debug)]
pub struct EngineReport {
    /// Engine the suite targeted.
    pub engine: EngineKind,
    /// True when the checks actually executed on this CPU; false means
    /// the ISA is missing and the engine was *skipped*, not validated.
    pub ran: bool,
    /// Checks executed (0 when skipped).
    pub checks: usize,
    /// Names of failed checks (empty on success or skip).
    pub failures: Vec<String>,
}

impl EngineReport {
    /// True when the engine ran and every check passed.
    pub fn passed(&self) -> bool {
        self.ran && self.failures.is_empty()
    }
}

impl std::fmt::Display for EngineReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if !self.ran {
            write!(f, "{:<8} SKIPPED (ISA not available)", self.engine.name())
        } else if self.failures.is_empty() {
            write!(
                f,
                "{:<8} ran {} checks, all passed",
                self.engine.name(),
                self.checks
            )
        } else {
            write!(
                f,
                "{:<8} ran {} checks, FAILED: {}",
                self.engine.name(),
                self.checks,
                self.failures.join(", ")
            )
        }
    }
}

fn run_engine<E: SimdEngine>(kind: EngineKind, seed: u64) -> EngineReport {
    let mut report = EngineReport {
        engine: kind,
        ran: false,
        checks: 0,
        failures: Vec::new(),
    };
    if !E::is_available() {
        return report;
    }
    report.ran = true;
    let mut check = |name: &str, f: &dyn Fn()| {
        report.checks += 1;
        if catch_unwind(AssertUnwindSafe(f)).is_err() {
            report.failures.push(name.to_string());
        }
    };
    check("v8_ops", &|| check_vec_ops::<E::V8>(seed));
    check("v16_ops", &|| check_vec_ops::<E::V16>(seed + 1));
    check("v32_ops", &|| check_vec_ops::<E::V32>(seed + 2));
    check("tables", &|| check_engine_tables::<E>(seed + 3));
    report
}

/// Run the conformance suite against all four engines and report which
/// ran, which were skipped, and any failures. Skips are explicit so
/// "all green" can be told apart from "nothing executed".
pub fn run_all() -> Vec<EngineReport> {
    let mut reports = vec![run_engine::<Scalar>(EngineKind::Scalar, 0xC0FFEE)];
    #[cfg(target_arch = "x86_64")]
    {
        reports.push(run_engine::<crate::sse41::Sse41>(EngineKind::Sse41, 0xBEEF));
        reports.push(run_engine::<crate::avx2::Avx2>(EngineKind::Avx2, 0xFACE));
        reports.push(run_engine::<crate::avx512::Avx512>(
            EngineKind::Avx512,
            0xF00D,
        ));
    }
    reports
}

#[cfg(test)]
macro_rules! engine_suite {
    ($modname:ident, $engine:ty, $seed:literal) => {
        mod $modname {
            use super::*;

            fn available() -> bool {
                <$engine as SimdEngine>::is_available()
            }

            #[test]
            fn v8_ops() {
                if !available() {
                    eprintln!("skipping: {} unavailable", <$engine as SimdEngine>::NAME);
                    return;
                }
                check_vec_ops::<<$engine as SimdEngine>::V8>($seed);
            }

            #[test]
            fn v16_ops() {
                if !available() {
                    return;
                }
                check_vec_ops::<<$engine as SimdEngine>::V16>($seed + 1);
            }

            #[test]
            fn v32_ops() {
                if !available() {
                    return;
                }
                check_vec_ops::<<$engine as SimdEngine>::V32>($seed + 2);
            }

            #[test]
            fn tables() {
                if !available() {
                    return;
                }
                check_engine_tables::<$engine>($seed + 3);
            }
        }
    };
}

#[cfg(test)]
engine_suite!(scalar_engine, Scalar, 0xC0FFEE);
#[cfg(all(test, target_arch = "x86_64"))]
engine_suite!(sse41_engine, crate::sse41::Sse41, 0xBEEF);
#[cfg(all(test, target_arch = "x86_64"))]
engine_suite!(avx2_engine, crate::avx2::Avx2, 0xFACE);
#[cfg(all(test, target_arch = "x86_64"))]
engine_suite!(avx512_engine, crate::avx512::Avx512, 0xF00D);

#[cfg(test)]
mod report_tests {
    use super::*;

    #[test]
    fn report_covers_every_engine_and_marks_skips() {
        let reports = run_all();
        #[cfg(target_arch = "x86_64")]
        assert_eq!(reports.len(), 4);
        for r in &reports {
            assert_eq!(r.ran, r.engine.is_available(), "{}", r.engine.name());
            if r.ran {
                assert!(r.passed(), "{r}");
                assert_eq!(r.checks, 4, "{}", r.engine.name());
            } else {
                assert_eq!(r.checks, 0);
                assert!(r.to_string().contains("SKIPPED"), "{r}");
            }
        }
        // Scalar always runs, so "green" can never mean "nothing ran".
        assert!(reports[0].ran);
    }
}
