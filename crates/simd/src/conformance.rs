//! Cross-engine conformance tests: every backend must agree with the
//! scalar reference on every operation, across random inputs.
//!
//! Hardware backends are skipped (not failed) on machines without the
//! ISA, so the suite is portable.

use crate::elem::ScoreElem;
use crate::engine::{SimdEngine, FLAT16_LEN, FLAT_LEN};
use crate::scalar::Scalar;
use crate::vector::SimdVec;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn rand_lanes<E: ScoreElem>(rng: &mut StdRng, n: usize) -> Vec<E> {
    (0..n)
        .map(|_| E::from_i32(rng.gen_range(i8::MIN as i32..=i8::MAX as i32)))
        .collect()
}

/// Exhaustive op check of one vector width of one engine against the
/// scalar semantics.
fn check_vec_ops<V: SimdVec>(seed: u64)
where
    V::Elem: ScoreElem,
{
    let mut rng = StdRng::seed_from_u64(seed);
    for round in 0..50 {
        let xs = rand_lanes::<V::Elem>(&mut rng, V::LANES);
        let ys = rand_lanes::<V::Elem>(&mut rng, V::LANES);
        let a = V::load_slice(&xs);
        let b = V::load_slice(&ys);

        let got_add = a.adds(b).to_vec();
        let got_sub = a.subs(b).to_vec();
        let got_max = a.max(b).to_vec();
        let got_min = a.min(b).to_vec();
        let got_gt = a.cmpgt(b).to_vec();
        let got_eq = a.cmpeq(b).to_vec();
        let got_blend = V::blend(a.cmpgt(b), a, b).to_vec();
        for k in 0..V::LANES {
            assert_eq!(
                got_add[k],
                xs[k].sat_add(ys[k]),
                "adds lane {k} round {round}"
            );
            assert_eq!(got_sub[k], xs[k].sat_sub(ys[k]), "subs lane {k}");
            assert_eq!(got_max[k], xs[k].max_elem(ys[k]), "max lane {k}");
            assert_eq!(
                got_min[k],
                if ys[k] < xs[k] { ys[k] } else { xs[k] },
                "min lane {k}"
            );
            assert_eq!(got_gt[k] != V::Elem::ZERO, xs[k] > ys[k], "cmpgt lane {k}");
            assert_eq!(got_eq[k] != V::Elem::ZERO, xs[k] == ys[k], "cmpeq lane {k}");
            assert_eq!(
                got_blend[k],
                if xs[k] > ys[k] { xs[k] } else { ys[k] },
                "blend lane {k}"
            );
        }

        // hmax
        assert_eq!(
            a.hmax(),
            xs.iter().copied().max().unwrap(),
            "hmax round {round}"
        );

        // any
        assert!(V::any(a.cmpeq(a)));
        assert!(!V::any(a.cmpgt(a)));

        // iota & mask_first
        let iota = V::iota().to_vec();
        for (k, &v) in iota.iter().enumerate() {
            assert_eq!(v.to_i32(), k as i32, "iota lane {k}");
        }
        for len in [0, 1, V::LANES / 2, V::LANES] {
            let m = V::mask_first(len).to_vec();
            for (k, &v) in m.iter().enumerate() {
                assert_eq!(v != V::Elem::ZERO, k < len, "mask_first({len}) lane {k}");
            }
        }

        // shift_in_first
        let first = V::Elem::from_i32(-42);
        let shifted = a.shift_in_first(first).to_vec();
        assert_eq!(shifted[0], first, "shift lane 0");
        for k in 1..V::LANES {
            assert_eq!(shifted[k], xs[k - 1], "shift lane {k}");
        }

        // splat / store roundtrip
        let s = V::splat(V::Elem::from_i32(round - 25)).to_vec();
        assert!(s.iter().all(|&v| v == V::Elem::from_i32(round - 25)));
    }
}

fn check_engine_tables<E: SimdEngine>(seed: u64) {
    let mut rng = StdRng::seed_from_u64(seed);

    // lut32 vs direct indexing.
    let mut table = [0i8; 32];
    for t in table.iter_mut() {
        *t = rng.gen_range(i8::MIN..=i8::MAX);
    }
    for _ in 0..20 {
        let idx: Vec<i8> = (0..E::V8::LANES)
            .map(|_| rng.gen_range(0..32i32) as i8)
            .collect();
        let v = E::V8::load_slice(&idx);
        let got = E::lut32(&table, v).to_vec();
        for (k, &i) in idx.iter().enumerate() {
            assert_eq!(got[k], table[i as usize], "lut32 lane {k} idx {i}");
        }
    }

    // gathers vs direct indexing.
    let mut flat8 = [0i8; FLAT_LEN];
    for v in flat8.iter_mut() {
        *v = rng.gen_range(-64..=64i32) as i8;
    }
    let mut flat16 = [0i16; FLAT16_LEN];
    let mut flat32 = [0i32; FLAT_LEN];
    for i in 0..FLAT_LEN {
        flat16[i] = flat8[i] as i16;
        flat32[i] = flat8[i] as i32;
    }

    let qs: Vec<u8> = (0..64).map(|_| rng.gen_range(0..32u8)).collect();
    let rs: Vec<u8> = (0..64).map(|_| rng.gen_range(0..32u8)).collect();

    // SAFETY: qs/rs are 64 bytes, enough for every lane count; all < 32.
    unsafe {
        let g32 = E::gather_scores_i32(&flat32, qs.as_ptr(), rs.as_ptr()).to_vec();
        for (k, g) in g32.iter().enumerate() {
            let want = flat32[((qs[k] as usize) << 5) | rs[k] as usize];
            assert_eq!(*g, want, "gather_i32 lane {k}");
        }
        let g16 = E::gather_scores_i16(&flat16, qs.as_ptr(), rs.as_ptr()).to_vec();
        for (k, g) in g16.iter().enumerate() {
            let want = flat16[((qs[k] as usize) << 5) | rs[k] as usize];
            assert_eq!(*g, want, "gather_i16 lane {k}");
        }
        let g8 = E::gather_scores_i8(&flat8, qs.as_ptr(), rs.as_ptr()).to_vec();
        for (k, g) in g8.iter().enumerate() {
            let want = flat8[((qs[k] as usize) << 5) | rs[k] as usize];
            assert_eq!(*g, want, "gather_i8 lane {k}");
        }
    }

    // The i16 gather at the extreme index (1023) must stay in bounds and
    // return the right value — the guard-element regression test.
    let qmax = [31u8; 64];
    let rmax = [31u8; 64];
    unsafe {
        let g16 = E::gather_scores_i16(&flat16, qmax.as_ptr(), rmax.as_ptr()).to_vec();
        for (k, g) in g16.iter().enumerate() {
            assert_eq!(*g, flat16[1023], "gather_i16 max-index lane {k}");
        }
    }
}

macro_rules! engine_suite {
    ($modname:ident, $engine:ty, $seed:literal) => {
        mod $modname {
            use super::*;

            fn available() -> bool {
                <$engine as SimdEngine>::is_available()
            }

            #[test]
            fn v8_ops() {
                if !available() {
                    eprintln!("skipping: {} unavailable", <$engine as SimdEngine>::NAME);
                    return;
                }
                check_vec_ops::<<$engine as SimdEngine>::V8>($seed);
            }

            #[test]
            fn v16_ops() {
                if !available() {
                    return;
                }
                check_vec_ops::<<$engine as SimdEngine>::V16>($seed + 1);
            }

            #[test]
            fn v32_ops() {
                if !available() {
                    return;
                }
                check_vec_ops::<<$engine as SimdEngine>::V32>($seed + 2);
            }

            #[test]
            fn tables() {
                if !available() {
                    return;
                }
                check_engine_tables::<$engine>($seed + 3);
            }
        }
    };
}

engine_suite!(scalar_engine, Scalar, 0xC0FFEE);
#[cfg(target_arch = "x86_64")]
engine_suite!(sse41_engine, crate::sse41::Sse41, 0xBEEF);
#[cfg(target_arch = "x86_64")]
engine_suite!(avx2_engine, crate::avx2::Avx2, 0xFACE);
#[cfg(target_arch = "x86_64")]
engine_suite!(avx512_engine, crate::avx512::Avx512, 0xF00D);
