#![warn(missing_docs)]

//! # swsimd-simd
//!
//! The SIMD engine substrate for the swsimd workspace: a small, kernel-
//! oriented abstraction over x86 vector extensions with four backends —
//! scalar emulation (portable), SSE4.1, AVX2 and AVX-512 — plus the two
//! table-lookup primitives Smith-Waterman kernels need: a 32-entry byte
//! LUT (`vpshufb`/`vpermb`, the paper's 8-bit gather replacement) and
//! substitution-score gathers at 16/32-bit widths (`vpgatherdd`).
//!
//! Kernels are written once, generic over [`SimdEngine`], and
//! instantiated inside `#[target_feature]` wrappers; every vector op is
//! `#[inline(always)]` so the generic body compiles to straight-line
//! vector code for each ISA (the `memchr` dispatch pattern).
//!
//! ```
//! use swsimd_simd::{EngineKind, Scalar, SimdEngine, SimdVec};
//!
//! // Runtime detection:
//! let best = EngineKind::best();
//! assert!(best.is_available());
//!
//! // Generic vector code:
//! fn saturating_row_max<E: SimdEngine>(a: &[i8], b: &[i8]) -> i8 {
//!     let va = <E::V8 as SimdVec>::load_slice(a);
//!     let vb = <E::V8 as SimdVec>::load_slice(b);
//!     va.adds(vb).hmax()
//! }
//! let xs = [1i8; 16];
//! let ys = [2i8; 16];
//! assert_eq!(saturating_row_max::<Scalar>(&xs, &ys), 3);
//! ```

pub mod conformance;
pub mod elem;
pub mod engine;
pub mod scalar;
pub mod vector;

#[cfg(target_arch = "x86_64")]
pub mod avx2;
#[cfg(target_arch = "x86_64")]
pub mod avx512;
#[cfg(target_arch = "x86_64")]
pub mod sse41;

pub use elem::ScoreElem;
pub use engine::{EngineKind, SimdEngine, FLAT16_LEN, FLAT_LEN};
pub use scalar::Scalar;
pub use vector::SimdVec;

#[cfg(target_arch = "x86_64")]
pub use avx2::Avx2;
#[cfg(target_arch = "x86_64")]
pub use avx512::Avx512;
#[cfg(target_arch = "x86_64")]
pub use sse41::Sse41;

pub use conformance::{run_all as run_conformance, EngineReport};
