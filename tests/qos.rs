//! Multi-tenant QoS end-to-end: deterministic overload tests of the
//! fair-share scheduler, token-bucket admission, and the brownout
//! degradation ladder — all driven by [`FaultPlan`] compute delays,
//! not sleeps-and-hope. Every answer returned under pressure is
//! checked exact against the unsharded oracle: overload may shed,
//! slow, or degrade *auxiliary* work, but never scores.

use std::sync::Arc;
use std::time::{Duration, Instant};

use swsimd::matrices::{blosum62, Alphabet};
use swsimd::obs::TraceCtx;
use swsimd::runner::{
    parallel_search, rank_hits, BatchServer, BrownoutConfig, Fidelity, PoolConfig, QosConfig,
    RateConfig, ServerConfig, TenantPolicy,
};
use swsimd::seq::{generate_database, generate_exact, SynthConfig};
use swsimd::{Aligner, Database, FaultPlan, Hit, ServeError, ShadowConfig};

fn db(n: usize, seed: u64) -> Database {
    generate_database(&SynthConfig {
        n_seqs: n,
        seed,
        median_len: 50.0,
        max_len: 120,
        ..Default::default()
    })
}

fn enc(len: usize, seed: u64) -> Vec<u8> {
    Alphabet::protein().encode(&generate_exact(len, seed).seq)
}

fn builder() -> swsimd::AlignerBuilder {
    Aligner::builder().matrix(blosum62())
}

/// The unsharded oracle: exact ranked hits over the full database.
fn reference_hits(query: &[u8], db: &Database, top_k: usize) -> Vec<Hit> {
    let out = parallel_search(
        query,
        db,
        &PoolConfig {
            threads: 2,
            sort_batches: true,
            ..Default::default()
        },
        builder,
    );
    rank_hits(out.hits, top_k)
}

/// Sum every sample of a metric family in the global scrape.
fn scrape_sum(family: &str) -> u64 {
    swsimd::obs::global()
        .prometheus_text()
        .lines()
        .filter(|l| l.starts_with(family) && !l.starts_with('#'))
        .filter_map(|l| l.rsplit(' ').next()?.parse::<f64>().ok())
        .sum::<f64>() as u64
}

fn scrape_labelled(family: &str, label: &str) -> u64 {
    swsimd::obs::global()
        .prometheus_text()
        .lines()
        .filter(|l| l.starts_with(family) && l.contains(label))
        .filter_map(|l| l.rsplit(' ').next()?.parse::<f64>().ok())
        .sum::<f64>() as u64
}

/// Block until `pending` resolves, in small steps.
fn wait(
    pending: &swsimd::runner::PendingQuery,
) -> Result<swsimd::runner::QueryOutcome, ServeError> {
    loop {
        if let Some(result) = pending.poll(Duration::from_millis(5)) {
            return result;
        }
    }
}

/// Acceptance headline: two tenants offer load 10:1 into a saturated
/// queue with equal weights. The aggressor's overflow is shed with
/// typed errors carrying backoff hints, the well-behaved tenant keeps
/// admitting, DRR drains both lanes at parity (the good tenant's jobs
/// complete within 2x its fair share of the drain order), and every
/// answer matches the oracle exactly.
#[test]
fn fair_share_protects_the_well_behaved_tenant_under_overload() {
    let database = Arc::new(db(12, 71));
    let q = enc(40, 72);
    let want = reference_hits(&q, &database, 5);
    assert!(!want.is_empty());
    let cost = q.len() as u64 * database.total_residues() as u64;

    let server = BatchServer::start(
        database.clone(),
        ServerConfig {
            batch_size: 1,
            max_wait: Duration::from_millis(1),
            queue_depth: 64,
            // Every job's compute sleeps 60ms: the first job plugs the
            // worker while the burst below is enqueued, and the drain
            // is slow enough that queue waits dominate submit jitter.
            fault_plan: FaultPlan::new().delay_at(0, Duration::from_millis(60)),
            qos: QosConfig {
                lane_depth: 8,
                // One job's cost per DRR visit: strict lane alternation.
                quantum: cost,
                ..Default::default()
            },
            ..Default::default()
        },
        builder,
    );
    let client = server.client();

    // Plug the worker, then burst while it computes.
    let plug = client.submit(q.clone(), 5, None).expect("plug admitted");

    let mut aggressor = Vec::new();
    let mut shed = 0u32;
    for _ in 0..20 {
        match client.submit_traced_for("aggressor", q.clone(), 5, None, TraceCtx::default()) {
            Ok(p) => aggressor.push(p),
            Err(ServeError::QueueFull { retry_after_ms }) => {
                assert!(retry_after_ms >= 1, "shed without a usable hint");
                shed += 1;
            }
            Err(other) => panic!("unexpected admission error: {other}"),
        }
    }
    assert_eq!(aggressor.len(), 8, "lane bound did not hold");
    assert_eq!(shed, 12, "overflow was not shed");

    // The aggressor's full lane must not block the other tenant.
    let good: Vec<_> = (0..2)
        .map(|_| {
            client
                .submit_traced_for("good", q.clone(), 5, None, TraceCtx::default())
                .expect("well-behaved tenant starved at admission")
        })
        .collect();

    let plug_out = wait(&plug).expect("plug job");
    assert_eq!(plug_out.hits, want);

    // Drain everything; a job's queue wait is its dequeue order (the
    // 60ms per-job compute dwarfs submission jitter).
    let mut finished: Vec<(&str, u64)> = Vec::new();
    for p in &aggressor {
        let out = wait(p).expect("aggressor job");
        assert_eq!(out.hits, want, "aggressor answer diverged from oracle");
        assert_eq!(out.fidelity, Fidelity::Full);
        finished.push(("aggressor", out.queue_ns));
    }
    for p in &good {
        let out = wait(p).expect("good job");
        assert_eq!(out.hits, want, "good-tenant answer diverged from oracle");
        assert_eq!(out.fidelity, Fidelity::Full);
        finished.push(("good", out.queue_ns));
    }
    finished.sort_by_key(|(_, queue_ns)| *queue_ns);

    // Equal weights, equal costs: DRR alternates lanes, so the good
    // tenant's 2 jobs sit in the first ~4 dequeues. "Within 2x fair
    // share" allows them as late as positions 4 and 8 of the 10-job
    // drain.
    let ranks: Vec<usize> = finished
        .iter()
        .enumerate()
        .filter(|(_, (t, _))| *t == "good")
        .map(|(i, _)| i + 1)
        .collect();
    assert_eq!(ranks.len(), 2);
    assert!(
        ranks[0] <= 4 && ranks[1] <= 8,
        "good tenant starved: drained at positions {ranks:?} of {}",
        finished.len()
    );

    let stats = server.shutdown();
    assert!(stats.shed >= 12, "shed not accounted: {}", stats.shed);
}

/// Token-bucket admission: a metered tenant gets its burst, then a
/// typed [`ServeError::RateLimited`] whose `retry_after_ms` names the
/// refill time; unmetered tenants are untouched. Rejections are
/// visible in the per-tenant scrape.
#[test]
fn token_bucket_rate_limits_with_typed_retry_hints() {
    let database = Arc::new(db(12, 81));
    let q = enc(40, 82);
    let want = reference_hits(&q, &database, 5);
    let cost = q.len() as u64 * database.total_residues() as u64;

    let mut qos = QosConfig::default();
    qos.tenants.insert(
        "metered".into(),
        TenantPolicy {
            weight: 1,
            // Exactly one query of burst; a trickle of a refill rate.
            rate: Some(RateConfig {
                rate: 100,
                burst: cost,
            }),
        },
    );
    let server = BatchServer::start(
        database.clone(),
        ServerConfig {
            batch_size: 1,
            max_wait: Duration::from_millis(1),
            qos,
            ..Default::default()
        },
        builder,
    );
    let client = server.client();

    // The burst is admitted and answered exactly.
    let hits = client
        .query_for("metered", q.clone(), 5)
        .expect("burst admitted");
    assert_eq!(hits, want);

    // The next query exceeds the drained bucket: typed, hinted, and
    // counted under the tenant's label.
    let before = scrape_labelled("swsimd_rate_limited_total", "tenant=\"metered\"");
    match client.query_for("metered", q.clone(), 5) {
        Err(ServeError::RateLimited { retry_after_ms }) => {
            assert!(retry_after_ms >= 1, "rate limit without a refill hint");
        }
        other => panic!("expected RateLimited, got {other:?}"),
    }
    assert!(
        scrape_labelled("swsimd_rate_limited_total", "tenant=\"metered\"") > before,
        "tenant-labelled rate-limit counter did not move"
    );

    // An unmetered tenant is unaffected by the metered tenant's limit.
    let hits = client
        .query_for("unmetered", q.clone(), 5)
        .expect("unmetered tenant refused");
    assert_eq!(hits, want);

    let stats = server.shutdown();
    assert!(stats.rate_limited >= 1);
}

/// Brownout ladder: sustained queue delay steps the level up (typed,
/// never silent — results carry a non-Full [`Fidelity`]), shadow
/// sampling is provably suspended (scrape counter freezes) and resumes
/// on recovery, the level steps back down once the queue drains, and
/// scores stay exact at every level.
#[test]
fn brownout_degrades_stepwise_and_recovers_with_exact_scores() {
    let database = Arc::new(db(12, 91));
    let q = enc(40, 92);
    let want = reference_hits(&q, &database, 5);

    let server = BatchServer::start(
        database.clone(),
        ServerConfig {
            batch_size: 1,
            max_wait: Duration::from_millis(1),
            queue_depth: 64,
            // Every job computes for 40ms, so a burst of queued jobs
            // observes queue delays far above the high watermark.
            fault_plan: FaultPlan::new().delay_at(0, Duration::from_millis(40)),
            shadow: ShadowConfig::full(),
            brownout: Some(BrownoutConfig {
                high: Duration::from_millis(10),
                low: Duration::from_millis(3),
                dwell: Duration::from_millis(50),
                max_level: 3,
            }),
            ..Default::default()
        },
        builder,
    );
    let client = server.client();

    // Healthy phase: full fidelity, shadow verification running.
    let checks_healthy = scrape_sum("swsimd_server_shadow_checks_total");
    let out = wait(&client.submit(q.clone(), 5, None).expect("submit")).expect("healthy job");
    assert_eq!(out.hits, want);
    assert_eq!(out.fidelity, Fidelity::Full);
    assert!(
        scrape_sum("swsimd_server_shadow_checks_total") > checks_healthy,
        "shadow verification not running while healthy"
    );
    assert_eq!(server.brownout_level(), 0);

    // Overload: plug the worker and pile up a burst. Queued jobs wait
    // multiples of 40ms — far over the 10ms high watermark.
    let checks_before = scrape_sum("swsimd_server_shadow_checks_total");
    let pending: Vec<_> = (0..7)
        .map(|_| client.submit(q.clone(), 5, None).expect("burst admitted"))
        .collect();
    let outcomes: Vec<_> = pending
        .iter()
        .map(|p| wait(p).expect("burst job"))
        .collect();
    for out in &outcomes {
        assert_eq!(out.hits, want, "brownout changed scores");
    }
    let degraded = outcomes
        .iter()
        .filter(|o| o.fidelity != Fidelity::Full)
        .count();
    assert!(
        degraded >= 1,
        "sustained overload never declared a fidelity reduction"
    );
    // The fidelity marker is the ground truth for what was suspended:
    // the scrape delta must equal the checks of the full-fidelity jobs
    // alone (shadow verifies every database hit, pre-ranking) — shadow
    // sampling provably did not run for the rest.
    let full_jobs = outcomes
        .iter()
        .filter(|o| o.fidelity == Fidelity::Full)
        .count() as u64;
    let expected = full_jobs * database.len() as u64;
    assert_eq!(
        scrape_sum("swsimd_server_shadow_checks_total") - checks_before,
        expected,
        "shadow counter moved while suspended"
    );
    assert!(
        scrape_sum("swsimd_brownout_level") >= 1,
        "brownout level gauge not raised"
    );

    // Recovery: idle queue delays decay the EWMA below the low
    // watermark; the ladder steps back down (one dwell per step).
    let recovered = Instant::now();
    loop {
        let hits = client.query(q.clone(), 5).expect("recovery query");
        assert_eq!(hits, want, "wrong scores during recovery");
        if server.brownout_level() == 0 {
            break;
        }
        assert!(
            recovered.elapsed() < Duration::from_secs(20),
            "brownout level stuck at {} after drain",
            server.brownout_level()
        );
    }
    assert_eq!(scrape_sum("swsimd_brownout_level"), 0);

    // Shadow sampling resumed: the counter moves again at full
    // fidelity.
    let checks_after = scrape_sum("swsimd_server_shadow_checks_total");
    let out = wait(&client.submit(q.clone(), 5, None).expect("submit")).expect("recovered job");
    assert_eq!(out.hits, want);
    assert_eq!(out.fidelity, Fidelity::Full);
    assert_eq!(
        scrape_sum("swsimd_server_shadow_checks_total") - checks_after,
        database.len() as u64,
        "shadow verification did not resume"
    );

    server.shutdown();
}

/// Gauge balance audit: every admission path — served, lane-shed,
/// rate-limited, deadline-expired — must settle the queue-depth gauge
/// back to zero once the queue drains. An unbalanced inc/dec pair
/// would drift the gauge permanently and lie to the autoscaler.
#[test]
fn queue_depth_gauge_drains_to_zero_across_every_path() {
    let database = Arc::new(db(12, 61));
    let q = enc(40, 62);
    let cost = q.len() as u64 * database.total_residues() as u64;

    let mut qos = QosConfig {
        lane_depth: 2,
        ..Default::default()
    };
    qos.tenants.insert(
        "metered".into(),
        TenantPolicy {
            weight: 1,
            // Burst below one query's cost: always rate-limited.
            rate: Some(RateConfig {
                rate: 1,
                burst: cost / 2,
            }),
        },
    );
    let server = BatchServer::start(
        database.clone(),
        ServerConfig {
            batch_size: 1,
            max_wait: Duration::from_millis(1),
            queue_depth: 16,
            fault_plan: FaultPlan::new().delay_at(0, Duration::from_millis(50)),
            qos,
            ..Default::default()
        },
        builder,
    );
    let client = server.client();

    // Plug the worker so the paths below all race a busy queue.
    let plug = client.submit(q.clone(), 5, None).expect("plug admitted");

    // Path 1: lane shed. Depth-2 lane, three submissions.
    let mut bursty = Vec::new();
    let mut shed = 0;
    for _ in 0..3 {
        match client.submit_traced_for("bursty", q.clone(), 5, None, TraceCtx::default()) {
            Ok(p) => bursty.push(p),
            Err(ServeError::QueueFull { .. }) => shed += 1,
            Err(other) => panic!("unexpected error: {other}"),
        }
    }
    assert_eq!(shed, 1);

    // Path 2: rate-limited before buffering (gauge must not move).
    let depth_before = server.queue_depth();
    assert!(matches!(
        client.query_for("metered", q.clone(), 5),
        Err(ServeError::RateLimited { .. })
    ));
    assert_eq!(server.queue_depth(), depth_before);

    // Path 3: deadline expiry while queued behind the plug.
    assert_eq!(
        client.query_with_deadline(q.clone(), 5, Duration::from_millis(10)),
        Err(ServeError::DeadlineExceeded)
    );

    // Path 4: normal service.
    wait(&plug).expect("plug job");
    for p in &bursty {
        wait(p).expect("bursty job");
    }

    // The expired job is discarded when the worker reaches it; give
    // the drain a bounded moment, then the gauge must balance.
    let deadline = Instant::now() + Duration::from_secs(5);
    while server.queue_depth() != 0 && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(5));
    }
    assert_eq!(server.queue_depth(), 0, "queue-depth gauge leaked");

    let stats = server.shutdown();
    assert!(stats.shed >= 1);
    assert!(stats.rate_limited >= 1);
    assert!(stats.timeouts >= 1);
}
