//! End-to-end tests of the deployment layer: scenarios, threading, and
//! the batch server, checked for result consistency (not speed).

use std::sync::Arc;
use std::time::Duration;

use swsimd::matrices::{blosum62, Alphabet};
use swsimd::runner::{
    parallel_search, scenario1, scenario2, scenario3, BatchServer, PoolConfig, ServerConfig,
};
use swsimd::seq::{generate_database, generate_exact, SynthConfig};
use swsimd::Aligner;

fn db(n: usize, seed: u64) -> swsimd::Database {
    generate_database(&SynthConfig {
        n_seqs: n,
        seed,
        median_len: 70.0,
        max_len: 250,
        ..Default::default()
    })
}

fn enc(len: usize, seed: u64) -> Vec<u8> {
    Alphabet::protein().encode(&generate_exact(len, seed).seq)
}

fn builder() -> swsimd::AlignerBuilder {
    Aligner::builder().matrix(blosum62())
}

#[test]
fn thread_count_does_not_change_results() {
    let db = db(80, 1);
    let q = enc(90, 2);
    let reference = parallel_search(
        &q,
        &db,
        &PoolConfig {
            threads: 1,
            sort_batches: true,
            ..PoolConfig::default()
        },
        builder,
    );
    for threads in [2, 4, 8] {
        let out = parallel_search(
            &q,
            &db,
            &PoolConfig {
                threads,
                sort_batches: true,
                ..PoolConfig::default()
            },
            builder,
        );
        assert_eq!(out.hits, reference.hits, "threads={threads}");
    }
}

#[test]
fn all_three_scenarios_agree_on_best_hit() {
    let db = db(48, 3);
    let q = enc(60, 4);
    let s1 = scenario1(&q, &db, 2, builder);
    let s2 = scenario2(std::slice::from_ref(&q), &db, 2, builder);
    let s3 = scenario3(std::slice::from_ref(&q), &db, builder);
    assert_eq!(s1.best_hits[0].score, s2.best_hits[0].score);
    assert_eq!(s1.best_hits[0].score, s3.best_hits[0].score);
    assert_eq!(s1.best_hits[0].db_index, s3.best_hits[0].db_index);
}

#[test]
fn server_matches_direct_search_under_concurrency() {
    let database = Arc::new(db(40, 5));
    let server = BatchServer::start(
        database.clone(),
        ServerConfig {
            batch_size: 4,
            max_wait: Duration::from_millis(50),
            ..Default::default()
        },
        builder,
    );
    let client = server.client();

    let queries: Vec<Vec<u8>> = (0..10).map(|i| enc(40 + i * 5, 100 + i as u64)).collect();
    let mut server_results = Vec::new();
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for q in &queries {
            let c = client.clone();
            handles.push(scope.spawn(move || c.query(q.clone(), 5).expect("server is up")));
        }
        for h in handles {
            server_results.push(h.join().unwrap());
        }
    });
    let stats = server.shutdown();
    assert_eq!(stats.queries, 10);

    let mut direct = builder().build();
    for (q, got) in queries.iter().zip(&server_results) {
        let want = direct.search(q, &database, 5);
        assert_eq!(got, &want);
    }
}

#[test]
fn scenario_reports_count_cells() {
    let db = db(20, 7);
    let q = enc(30, 8);
    let r = scenario1(&q, &db, 1, builder);
    assert_eq!(
        r.throughput.cells,
        q.len() as u64 * db.total_residues() as u64
    );
    assert!(r.throughput.seconds > 0.0);
}

#[test]
fn empty_database_yields_no_hits() {
    let empty = swsimd::Database::from_records(Vec::new(), &Alphabet::protein());
    let q = enc(20, 9);
    let out = parallel_search(
        &q,
        &empty,
        &PoolConfig {
            threads: 2,
            sort_batches: true,
            ..PoolConfig::default()
        },
        builder,
    );
    assert!(out.hits.is_empty());
}
