//! End-to-end observability: the span tree a traced query emits, span
//! balance when workers panic under `catch_unwind`, histogram
//! percentile fidelity against a sorted-vector oracle, and the
//! Prometheus/JSON exposition formats the serving layer scrapes.

use swsimd::matrices::{blosum62, Alphabet};
use swsimd::obs::{Event, EventKind, Registry};
use swsimd::seq::{generate_database, generate_exact, SynthConfig};
use swsimd::Aligner;

fn enc(len: usize, seed: u64) -> Vec<u8> {
    Alphabet::protein().encode(&generate_exact(len, seed).seq)
}

fn enter<'a>(events: &'a [Event], name: &str) -> &'a Event {
    events
        .iter()
        .find(|e| e.kind == EventKind::Enter && e.name == name)
        .unwrap_or_else(|| panic!("no enter event named {name:?} in {events:#?}"))
}

fn exit_of(events: &[Event], id: u64) -> &Event {
    events
        .iter()
        .find(|e| e.kind == EventKind::Exit && e.id == id)
        .unwrap_or_else(|| panic!("no exit event for span {id}"))
}

/// A single traced `query` emits the complete span tree
/// `query → dispatch → kernel → traceback`, and the kernel span
/// carries ISA, precision and lane-utilization attributes.
#[cfg(feature = "trace")]
#[test]
fn one_query_emits_complete_span_tree() {
    let rec = swsimd::obs::Recorder::install();
    let mut aligner = Aligner::builder()
        .matrix(blosum62())
        .traceback(true)
        .build();
    // Long enough that anti-diagonals exceed the scalar threshold on
    // every engine (short pairs run fully scalar and record no lane
    // slots, so no utilization attribute would appear).
    let q = enc(200, 1);
    let t = enc(240, 2);
    let result = aligner.align(&q, &t);
    let events = rec.events();

    // The tree: each child's Enter has its parent's span id.
    let query = enter(&events, "query");
    let dispatch = enter(&events, "dispatch");
    let kernel = enter(&events, "kernel");
    let traceback = enter(&events, "traceback");
    assert_eq!(dispatch.parent, query.id, "dispatch under query");
    assert_eq!(kernel.parent, dispatch.id, "kernel under dispatch");
    assert_eq!(traceback.parent, kernel.id, "traceback under kernel");

    // Enter attributes: the dispatch decision and kernel identity.
    assert!(query.attr("qlen").is_some() && query.attr("tlen").is_some());
    let isa = kernel.attr("isa").expect("kernel span names its ISA");
    assert!(!isa.to_string().is_empty());
    let precision = kernel.attr("precision").expect("kernel names precision");
    assert!(
        ["i8", "i16", "i32"].contains(&precision.to_string().as_str()),
        "fixed precision on the kernel, got {precision}"
    );

    // Exit attributes: per-call stats deltas, utilization, and timing.
    let kexit = exit_of(&events, kernel.id);
    assert!(kexit.elapsed_ns.is_some(), "spans time themselves");
    assert!(kexit.attr("cells").is_some(), "kernel reports cell count");
    assert!(
        kexit.attr("lane_utilization").is_some(),
        "kernel reports lane utilization: {kexit:?}"
    );
    let score = kexit.attr("score").expect("kernel reports its score");
    assert_eq!(score.to_string(), result.score.to_string());

    let qexit = exit_of(&events, query.id);
    assert!(qexit.attr("precision_used").is_some());

    // Every span that entered also exited (the tree is balanced).
    for e in events.iter().filter(|e| e.kind == EventKind::Enter) {
        exit_of(&events, e.id);
    }
}

/// A worker panic isolated by `catch_unwind` must not unbalance the
/// span stream: every span entered before the panic still exits
/// (RAII drop during unwind), the degradation emits its event, and the
/// retry's kernel spans appear with the scalar engine.
#[cfg(feature = "trace")]
#[test]
fn spans_stay_balanced_across_worker_panics() {
    use swsimd::runner::{parallel_search, FaultPlan, PoolConfig};

    let rec = swsimd::obs::Recorder::install();
    let db = generate_database(&SynthConfig {
        n_seqs: 12,
        max_len: 80,
        median_len: 40.0,
        ..Default::default()
    });
    let q = enc(25, 3);
    let out = parallel_search(
        &q,
        &db,
        &PoolConfig {
            threads: 1,
            sort_batches: true,
            fault_plan: FaultPlan::new().panic_at(0, 1),
            ..PoolConfig::default()
        },
        || Aligner::builder().matrix(blosum62()),
    );
    assert_eq!(out.faults.worker_panics, 1, "the fault fired");
    let events = rec.events();

    // Balance: every Enter has a matching Exit, even on the panicked
    // path.
    let mut open: Vec<u64> = Vec::new();
    for e in &events {
        match e.kind {
            EventKind::Enter => open.push(e.id),
            EventKind::Exit => {
                assert!(
                    open.contains(&e.id),
                    "exit without enter for span {} ({})",
                    e.id,
                    e.name
                );
                open.retain(|&id| id != e.id);
            }
            EventKind::Instant => {}
        }
    }
    assert!(open.is_empty(), "unclosed spans after panic: {open:?}");

    // The degradation decision is visible in the event stream.
    let degraded = events
        .iter()
        .find(|e| e.name == "partition_degraded")
        .expect("degraded retry emits its event");
    assert_eq!(
        degraded
            .attr("panicked")
            .map(ToString::to_string)
            .as_deref(),
        Some("true")
    );
}

/// Histogram quantiles agree with a sorted-vector nearest-rank oracle
/// to within the log-linear bucket resolution (2^-5 ≈ 3.2% relative).
#[test]
fn histogram_percentiles_match_sorted_oracle() {
    let hist = swsimd::obs::Histogram::new();
    // Deterministic skewed values: mostly small with a heavy tail,
    // like real latencies.
    let mut state = 0x2545F4914F6CDD1Du64;
    let mut values: Vec<u64> = (0..10_000)
        .map(|_| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            let tail = if state.is_multiple_of(50) {
                state % 900_000
            } else {
                0
            };
            1 + state % 1_000 + tail
        })
        .collect();
    for &v in &values {
        hist.record(v);
    }
    values.sort_unstable();
    let oracle = |p: f64| -> u64 {
        let rank = ((p * values.len() as f64).ceil() as usize).clamp(1, values.len());
        values[rank - 1]
    };
    let s = hist.snapshot();
    assert_eq!(s.count, values.len() as u64);
    assert_eq!(s.min, values[0]);
    assert_eq!(s.max, *values.last().unwrap());
    for (got, want, name) in [
        (s.p50, oracle(0.50), "p50"),
        (s.p95, oracle(0.95), "p95"),
        (s.p99, oracle(0.99), "p99"),
    ] {
        let err = (got as f64 - want as f64).abs() / want as f64;
        assert!(err <= 0.04, "{name}: got {got}, oracle {want}, err {err}");
    }
}

/// Golden test for the Prometheus text exposition a scrape returns.
#[test]
fn prometheus_exposition_golden() {
    let r = Registry::new();
    r.counter(
        "swsimd_server_queries_total",
        "Queries served.",
        &[("instance", "0")],
    )
    .add(7);
    r.gauge("swsimd_queue_depth", "Jobs queued.", &[("instance", "0")])
        .set(2);
    let h = r.histogram_scaled(
        "swsimd_query_latency_seconds",
        "End-to-end query latency.",
        1e-9,
        &[("scenario", "server")],
    );
    for s in 1..=20u64 {
        h.record(s * 1_000_000_000);
    }
    // Quantiles are log-linear bucket midpoints (p50 ≈ 10s, p95 ≈ 19s);
    // p99 clamps to the recorded max, and the sum is exact. The exact
    // midpoints are deterministic, so they can be golden-tested.
    let expected = "\
# HELP swsimd_query_latency_seconds End-to-end query latency.
# TYPE swsimd_query_latency_seconds summary
swsimd_query_latency_seconds{scenario=\"server\",quantile=\"0.5\"} 10.066329599000001
swsimd_query_latency_seconds{scenario=\"server\",quantile=\"0.95\"} 19.058917375
swsimd_query_latency_seconds{scenario=\"server\",quantile=\"0.99\"} 20
swsimd_query_latency_seconds_sum{scenario=\"server\"} 210
swsimd_query_latency_seconds_count{scenario=\"server\"} 20
# HELP swsimd_queue_depth Jobs queued.
# TYPE swsimd_queue_depth gauge
swsimd_queue_depth{instance=\"0\"} 2
# HELP swsimd_server_queries_total Queries served.
# TYPE swsimd_server_queries_total counter
swsimd_server_queries_total{instance=\"0\"} 7
";
    assert_eq!(r.prometheus_text(), expected);

    let json = r.json();
    assert!(json.starts_with('{') && json.ends_with('}'));
    assert!(json.contains("\"swsimd_query_latency_seconds\""), "{json}");
    assert!(json.contains("\"p99\":20}"), "{json}");
}

/// The server-side exposition path end to end: queries through a
/// `BatchServer` land in the scraped latency summary.
#[test]
fn server_scrape_includes_query_latency() {
    use std::sync::Arc;
    use swsimd::runner::{BatchServer, ServerConfig};

    let db = Arc::new(generate_database(&SynthConfig {
        n_seqs: 16,
        max_len: 90,
        median_len: 45.0,
        ..Default::default()
    }));
    let server = BatchServer::start(db, ServerConfig::default(), || {
        Aligner::builder().matrix(blosum62())
    });
    let client = server.client();
    for i in 0..4 {
        client.query(enc(22, 10 + i), 1).expect("server is up");
    }
    assert_eq!(server.latency().count, 4);
    let text = server.prometheus_text();
    assert!(
        text.contains("# TYPE swsimd_query_latency_seconds summary"),
        "{text}"
    );
    assert!(text.contains("scenario=\"server\""), "{text}");
    let stats = server.shutdown();
    assert_eq!(stats.queries, 4);
    assert!(stats.to_string().contains("queries=4"), "{stats}");
}
