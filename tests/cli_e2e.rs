//! End-to-end tests of the `swsimd` command-line binary.

use std::io::Write;
use std::process::Command;

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_swsimd"))
}

fn write_fasta(name: &str, text: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("swsimd_cli_e2e");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(name);
    let mut f = std::fs::File::create(&path).unwrap();
    f.write_all(text.as_bytes()).unwrap();
    path
}

const QUERY: &str =
    ">q1 kinase fragment\nMKTAYIAKQRQISFVKSHFSRQLEERLGLIEVQAPILSRVGDGTQDNLSGAEKAVQ\n";
const DB: &str = "\
>close homolog
MKTAYIAKQRQISFVKSHFSRQLEERLGLIEVQAPILSRVGDGTQDNLSGAEKAVQAAAA
>fragment
MKTAYIAKQRQISFVKSHFSRQLEERLGLIEV
>junk
PPPPWWWWGGGG
";

#[test]
fn info_lists_engines_and_matrices() {
    let out = bin().arg("info").output().unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("scalar"), "{text}");
    assert!(text.contains("BLOSUM62"));
    assert!(text.contains("(selected)"));
}

#[test]
fn align_reports_scores_and_cigars() {
    let q = write_fasta("q.fa", QUERY);
    let d = write_fasta("d.fa", DB);
    let out = bin().arg("align").arg(&q).arg(&d).output().unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("q1\tclose"), "{text}");
    assert!(text.contains("cigar=56M"), "{text}");
    // Three targets, three result lines with scores.
    assert_eq!(text.matches("score=").count(), 3);
}

#[test]
fn search_ranks_homolog_first() {
    let q = write_fasta("q2.fa", QUERY);
    let d = write_fasta("d2.fa", DB);
    let out = bin()
        .args(["search"])
        .arg(&q)
        .arg(&d)
        .args(["--top", "2", "--threads", "2"])
        .output()
        .unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    let first = text.lines().next().expect("at least one hit");
    assert!(first.contains("close"), "best hit wrong: {first}");
}

#[test]
fn global_mode_flag_changes_scores() {
    let q = write_fasta("q3.fa", QUERY);
    let d = write_fasta("d3.fa", DB);
    let local = bin()
        .arg("align")
        .arg(&q)
        .arg(&d)
        .arg("--no-traceback")
        .output()
        .unwrap();
    let global = bin()
        .arg("align")
        .arg(&q)
        .arg(&d)
        .args(["--mode", "global", "--no-traceback"])
        .output()
        .unwrap();
    let lt = String::from_utf8_lossy(&local.stdout);
    let gt = String::from_utf8_lossy(&global.stdout);
    let score = |text: &str, key: &str| -> i32 {
        text.lines()
            .find(|l| l.contains(key))
            .and_then(|l| l.split("score=").nth(1))
            .and_then(|s| s.split_whitespace().next())
            .and_then(|s| s.parse().ok())
            .unwrap()
    };
    // Junk target: local clamps at a small positive, global goes negative.
    assert!(score(&lt, "junk") >= 0);
    assert!(score(&gt, "junk") < 0);
}

#[test]
fn bad_usage_fails_cleanly() {
    let out = bin().arg("align").arg("/nonexistent.fa").output().unwrap();
    assert!(!out.status.success());
    let out = bin()
        .args(["align", "/a.fa", "/b.fa", "--engine", "quantum"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown engine"));
    let out = bin().arg("frobnicate").output().unwrap();
    assert!(!out.status.success());
}

#[test]
fn matrix_selection_changes_results() {
    let q = write_fasta("q4.fa", QUERY);
    let d = write_fasta("d4.fa", DB);
    let b62 = bin()
        .arg("align")
        .arg(&q)
        .arg(&d)
        .arg("--no-traceback")
        .output()
        .unwrap();
    let p250 = bin()
        .arg("align")
        .arg(&q)
        .arg(&d)
        .args(["--matrix", "PAM250", "--no-traceback"])
        .output()
        .unwrap();
    assert!(b62.status.success() && p250.status.success());
    assert_ne!(b62.stdout, p250.stdout);
}
