//! Streaming-path soak: a real 3-shard cluster behind an in-process
//! gateway front, chaos-interrupted mid-stream and resumed from its
//! token.
//!
//! The flow mirrors an operator's worst day: a client opens a streamed
//! query with a tiny credit window and stalls (never grants), one
//! shard is SIGKILLed mid-stream, then the client connection drops.
//! The shard is restarted over the same journal directory, and a new
//! client resumes from the token the first session minted. The test
//! asserts the tier's three streaming invariants:
//!
//! 1. **Exactness across the seam**: the pre-interrupt chunks plus the
//!    post-resume chunks fold to a ranking byte-identical to the
//!    unsharded oracle, and the resumed stream's `Fin` digest proves
//!    it end-to-end.
//! 2. **Bounded buffering**: the gateway never holds more than the
//!    credit window's worth of merged-but-undelivered chunk bytes per
//!    client (`swsimd_stream_buffered_peak_bytes`).
//! 3. **Observability**: the interruption and recovery are visible in
//!    `swsimd_stream_resumes_total`, `swsimd_stream_chunks_total`,
//!    `swsimd_stream_credit_stalls_total`, and the abandon ledger.

use std::io::{BufRead, BufReader, Write};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use swsimd::matrices::Alphabet;
use swsimd::net::{
    ranking_digest, Gateway, GatewayConfig, GatewayServer, NetClient, RetryPolicy, StreamEvent,
    Supervisor,
};
use swsimd::runner::{parallel_search, rank_hits, PoolConfig};
use swsimd::seq::{generate_database, generate_exact, SynthConfig};
use swsimd::{Aligner, Database, Hit};

const TOP_K: usize = 6;
const SLICES: u32 = 3;
/// Journal chunks per shard (= shard worker threads): enough that a
/// 2-chunk client window is guaranteed to stall mid-stream.
const SHARD_THREADS: u32 = 4;
/// Session 1's deliberately tiny window: exactly this many chunks are
/// forwarded before the front stalls on credit.
const STALL_CREDIT: u32 = 2;
/// Session 2's window, generous enough to drain without grants
/// mattering much (grants are still exercised per chunk).
const RESUME_CREDIT: u32 = 64;
/// Wire size of one chunk as the gateway ledger accounts it.
const CHUNK_BYTES_MAX: u64 = 24 + TOP_K as u64 * 16;

fn bin() -> &'static str {
    env!("CARGO_BIN_EXE_swsimd")
}

fn test_dir() -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("swsimd-stream-soak-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn write_fasta(path: &std::path::Path, records: &[(String, Vec<u8>)]) {
    let mut f = std::fs::File::create(path).unwrap();
    for (id, seq) in records {
        writeln!(f, ">{id}").unwrap();
        f.write_all(seq).unwrap();
        writeln!(f).unwrap();
    }
}

fn as_pairs(hits: &[Hit]) -> Vec<(usize, i32)> {
    hits.iter().map(|h| (h.db_index, h.score)).collect()
}

/// Spawn one durable shard on a fixed (SO_REUSEADDR) address so a
/// respawn can rebind it, journaling into `journal_dir`.
fn spawn_shard(db_path: &str, addr: &str, slice: u32, journal_dir: &std::path::Path) -> Child {
    let mut child = Command::new(bin())
        .args([
            "shard",
            db_path,
            "--listen",
            addr,
            "--shard-index",
            &slice.to_string(),
            "--shards",
            &SLICES.to_string(),
            "--threads",
            &SHARD_THREADS.to_string(),
            "--journal",
            journal_dir.to_str().unwrap(),
        ])
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn shard");
    let stdout = child.stdout.take().expect("stdout piped");
    let mut line = String::new();
    BufReader::new(stdout)
        .read_line(&mut line)
        .expect("read bound address");
    assert!(
        line.trim().strip_prefix("listening on ").is_some(),
        "unexpected first line: {line:?}"
    );
    child
}

fn wait_pingable(addr: &str, what: &str) {
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        if let Ok(mut c) = NetClient::connect(addr, Duration::from_millis(300)) {
            if c.ping().is_ok() {
                return;
            }
        }
        assert!(Instant::now() < deadline, "{what} never became pingable");
        std::thread::sleep(Duration::from_millis(50));
    }
}

fn wait_exit(child: &mut Child, what: &str) {
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        if child.try_wait().unwrap().is_some() {
            return;
        }
        assert!(Instant::now() < deadline, "{what} did not exit in time");
        std::thread::sleep(Duration::from_millis(50));
    }
}

/// Value of an unlabelled counter/gauge family in a Prometheus scrape.
fn scrape_value(scrape: &str, family: &str) -> u64 {
    scrape
        .lines()
        .find_map(|l| {
            let rest = l.strip_prefix(family)?;
            rest.trim().parse::<f64>().ok()
        })
        .unwrap_or_else(|| panic!("{family} missing from scrape")) as u64
}

#[test]
fn interrupted_stream_resumes_to_oracle_exact_ranking() {
    let dir = test_dir();
    let db: Database = generate_database(&SynthConfig {
        n_seqs: 24,
        seed: 1001,
        median_len: 40.0,
        max_len: 90,
        ..Default::default()
    });
    let query_rec = generate_exact(40, 1002);
    let db_path = dir.join("db.fasta");
    write_fasta(
        &db_path,
        &(0..db.len())
            .map(|i| (db.record(i).id.clone(), db.record(i).seq.clone()))
            .collect::<Vec<_>>(),
    );

    // Unsharded oracle: the ranking every stitched stream must equal.
    let qe = Alphabet::protein().encode(&query_rec.seq);
    let oracle = rank_hits(
        parallel_search(
            &qe,
            &db,
            &PoolConfig {
                threads: 2,
                sort_batches: true,
                ..Default::default()
            },
            || Aligner::builder().matrix(swsimd::matrices::blosum62()),
        )
        .hits,
        TOP_K,
    );
    let oracle_digest = ranking_digest(&oracle);

    // Three durable shard processes on pre-picked rebindable ports.
    let db_str = db_path.to_str().unwrap().to_string();
    let addrs: Vec<String> = (0..SLICES)
        .map(|_| Supervisor::pick_addr().unwrap())
        .collect();
    let journals: Vec<std::path::PathBuf> = (0..SLICES)
        .map(|s| dir.join(format!("journal-{s}")))
        .collect();
    for j in &journals {
        std::fs::create_dir_all(j).unwrap();
    }
    let mut shards: Vec<Child> = (0..SLICES)
        .map(|s| spawn_shard(&db_str, &addrs[s as usize], s, &journals[s as usize]))
        .collect();
    for (s, addr) in addrs.iter().enumerate() {
        wait_pingable(addr, &format!("shard {s}"));
    }

    // Gateway + front in-process so the scrape (and the buffered-bytes
    // ledger) are assertable directly. Breakers are configured lenient:
    // the mid-soak kill must not quarantine the slice past its restart.
    let gateway = Gateway::new(GatewayConfig {
        shards: addrs.iter().map(|a| vec![a.clone()]).collect(),
        retry: RetryPolicy {
            budget: 3,
            ..Default::default()
        },
        connect_timeout: Duration::from_millis(500),
        request_timeout: Duration::from_secs(10),
        strike_threshold: 32,
        readmit_after: 1,
        ..Default::default()
    });
    let front = GatewayServer::start_with_idle_timeout(
        gateway,
        "127.0.0.1:0",
        Duration::from_secs(2),
        Duration::from_secs(30),
    )
    .expect("front binds");
    let front_addr = front.local_addr().to_string();

    // ---- Session 1: stream with a tiny window, stall, get killed. ----
    let mut client = NetClient::connect(&front_addr, Duration::from_secs(5)).unwrap();
    let mut handle = client
        .stream_query(&qe, TOP_K, 0, STALL_CREDIT)
        .expect("open stream");
    let mut chunks_seen = 0u32;
    while chunks_seen < STALL_CREDIT {
        match handle.next().expect("session 1 stream event") {
            StreamEvent::Chunk { .. } => chunks_seen += 1, // never grant
            StreamEvent::Progress { .. } => {}
            StreamEvent::Fin(fin) => panic!(
                "stream finished before the window closed: {fin:?} \
                 ({SLICES} shards x {SHARD_THREADS} chunks must exceed {STALL_CREDIT})"
            ),
        }
    }
    assert!(!handle.finished(), "window exhausted, stream must be live");
    let pre_ranking = handle.ranking().to_vec();
    let token = handle.token();
    assert!(
        !token.cursors.is_empty(),
        "a mid-stream token must carry per-slice cursors"
    );
    assert_eq!(token.top_k, TOP_K as u32);

    // The stalled window is the per-client buffering bound: session 1
    // buffered at most its window plus one in-flight chunk per reader.
    let stall_deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let scrape = swsimd::obs::global().prometheus_text();
        if scrape_value(&scrape, "swsimd_stream_credit_stalls_total") >= 1 {
            break;
        }
        assert!(
            Instant::now() < stall_deadline,
            "front never recorded the credit stall"
        );
        std::thread::sleep(Duration::from_millis(50));
    }
    let peak_stalled = scrape_value(
        &swsimd::obs::global().prometheus_text(),
        "swsimd_stream_buffered_peak_bytes",
    );
    let session1_bound = (STALL_CREDIT as u64 + SLICES as u64 + 1) * CHUNK_BYTES_MAX;
    assert!(
        peak_stalled <= session1_bound,
        "stalled-session buffered peak {peak_stalled}B exceeds the \
         credit-window bound {session1_bound}B"
    );

    // Chaos: SIGKILL one shard mid-stream, then drop the client
    // connection without draining or granting.
    shards[1].kill().expect("SIGKILL shard 1");
    wait_exit(&mut shards[1], "killed shard");
    drop(handle);
    drop(client);

    // Restart the dead shard over the same journal directory and the
    // same address.
    shards[1] = spawn_shard(&db_str, &addrs[1], 1, &journals[1]);
    wait_pingable(&addrs[1], "restarted shard 1");

    // ---- Session 2: resume from the token, drain to Fin. ----
    // The restarted shard may need a breaker readmission attempt or
    // two, so a degraded Fin is retried rather than failed instantly;
    // a *wrong* ranking still fails on the spot.
    let resume_deadline = Instant::now() + Duration::from_secs(60);
    let (post_ranking, fin) = loop {
        let mut client = NetClient::connect(&front_addr, Duration::from_secs(5)).unwrap();
        let mut resumed = client
            .resume_stream(&token, &qe, 0, RESUME_CREDIT)
            .expect("resume stream");
        let fin = loop {
            match resumed.next().expect("session 2 stream event") {
                StreamEvent::Chunk { cursor, shard, .. } => {
                    // The front must not re-send what the token covers.
                    if let Some(&(_, seen)) = token.cursors.iter().find(|&&(s, _)| s == shard) {
                        assert!(
                            cursor > seen,
                            "slice {shard} chunk {cursor} was already delivered \
                             (token cursor {seen})"
                        );
                    }
                    resumed.grant(1).expect("grant credit");
                }
                StreamEvent::Progress { .. } => {}
                StreamEvent::Fin(fin) => break fin,
            }
        };
        if !fin.degraded {
            break (resumed.ranking().to_vec(), fin);
        }
        assert!(
            Instant::now() < resume_deadline,
            "resumed stream stayed degraded past the deadline: {fin:?}"
        );
        std::thread::sleep(Duration::from_millis(250));
    };

    // Invariant 1: the stitched ranking is byte-identical to the
    // oracle, and the Fin digest proves it without trusting the test's
    // own fold.
    let stitched = rank_hits(
        pre_ranking
            .iter()
            .chain(post_ranking.iter())
            .cloned()
            .collect(),
        TOP_K,
    );
    assert_eq!(
        as_pairs(&stitched),
        as_pairs(&oracle),
        "stitched stream diverged from the unsharded oracle"
    );
    assert_eq!(
        fin.digest, oracle_digest,
        "Fin digest must describe the complete oracle ranking"
    );
    assert_eq!(
        ranking_digest(&stitched),
        fin.digest,
        "client-side stitched digest must match the server's Fin digest"
    );

    // Invariants 2 + 3: bounded buffering, observable recovery.
    let scrape = swsimd::obs::global().prometheus_text();
    assert!(
        scrape_value(&scrape, "swsimd_stream_resumes_total") >= 1,
        "the token resume must be counted"
    );
    assert!(
        scrape_value(&scrape, "swsimd_stream_chunks_total") > 0,
        "forwarded chunks must be counted"
    );
    assert!(
        scrape_value(&scrape, "swsimd_stream_credit_stalls_total") >= 1,
        "session 1's stall must be counted"
    );
    let peak = scrape_value(&scrape, "swsimd_stream_buffered_peak_bytes");
    let session2_bound = (RESUME_CREDIT as u64 + SLICES as u64 + 1) * CHUNK_BYTES_MAX;
    assert!(
        peak <= session2_bound,
        "buffered peak {peak}B exceeds the credit-window bound {session2_bound}B"
    );
    assert!(
        scrape.contains("swsimd_stream_abandoned_total"),
        "abandon ledger missing from scrape"
    );

    eprintln!(
        "soak: {} pre-interrupt chunks, fin digest {:08x}, buffered peak {peak}B",
        chunks_seen, fin.digest
    );

    // Clean teardown: SIGTERM-equivalent drain via kill, then exits.
    front.shutdown();
    for (i, shard) in shards.iter_mut().enumerate() {
        let _ = shard.kill();
        wait_exit(shard, &format!("shard {i}"));
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// A resume whose query bytes do not hash to the token's `query_crc`
/// must be refused with `BadResumeToken` before any shard work starts.
#[test]
fn resume_with_mismatched_query_is_refused() {
    let dir = test_dir();
    let db: Database = generate_database(&SynthConfig {
        n_seqs: 8,
        seed: 1003,
        median_len: 30.0,
        max_len: 60,
        ..Default::default()
    });
    let db_path = dir.join("db.fasta");
    write_fasta(
        &db_path,
        &(0..db.len())
            .map(|i| (db.record(i).id.clone(), db.record(i).seq.clone()))
            .collect::<Vec<_>>(),
    );
    let addr = Supervisor::pick_addr().unwrap();
    let journal = dir.join("journal-0");
    std::fs::create_dir_all(&journal).unwrap();
    let db_str = db_path.to_str().unwrap().to_string();
    let mut shard = Command::new(bin())
        .args([
            "shard",
            &db_str,
            "--listen",
            &addr,
            "--shard-index",
            "0",
            "--shards",
            "1",
            "--threads",
            "2",
            "--journal",
            journal.to_str().unwrap(),
        ])
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn shard");
    {
        let stdout = shard.stdout.take().expect("stdout piped");
        let mut line = String::new();
        BufReader::new(stdout).read_line(&mut line).unwrap();
    }
    wait_pingable(&addr, "shard");

    let gateway = Gateway::new(GatewayConfig {
        shards: vec![vec![addr.clone()]],
        connect_timeout: Duration::from_millis(500),
        request_timeout: Duration::from_secs(10),
        ..Default::default()
    });
    let front = GatewayServer::start_with_idle_timeout(
        gateway,
        "127.0.0.1:0",
        Duration::from_secs(2),
        Duration::from_secs(30),
    )
    .expect("front binds");
    let front_addr = front.local_addr().to_string();

    let query = Alphabet::protein().encode(&generate_exact(30, 1004).seq);
    let mut client = NetClient::connect(&front_addr, Duration::from_secs(5)).unwrap();
    let mut handle = client.stream_query(&query, 3, 0, 1).expect("open stream");
    // Pull at least one event so the stream is real, then mint a token.
    let _ = handle.next().expect("first stream event");
    let token = handle.token();
    drop(handle);
    drop(client);

    let wrong_query = Alphabet::protein().encode(&generate_exact(30, 1005).seq);
    assert_ne!(wrong_query, query);
    let mut client = NetClient::connect(&front_addr, Duration::from_secs(5)).unwrap();
    let mut resumed = client
        .resume_stream(&token, &wrong_query, 0, 4)
        .expect("resume frame writes");
    match resumed.next() {
        Err(swsimd::net::NetError::Remote(swsimd::net::wire::RemoteError::BadResumeToken)) => {}
        other => panic!("mismatched resume must be BadResumeToken, got {other:?}"),
    }

    front.shutdown();
    let _ = shard.kill();
    wait_exit(&mut shard, "shard");
    let _ = std::fs::remove_dir_all(&dir);
}
