//! Cross-implementation agreement at the workspace level: the paper's
//! kernel, every baseline, and the batch path must produce identical
//! scores for identical inputs.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use swsimd::baselines::{sw_diag_classic_i16, sw_scan_i16, sw_striped_i16, sw_striped_i32};
use swsimd::core::{diag_score, sw_scalar, KernelStats};
use swsimd::matrices::{blosum45, blosum62, pam250, Alphabet};
use swsimd::seq::{generate_database, SynthConfig};
use swsimd::{Aligner, EngineKind, GapModel, GapPenalties, Precision, Scoring};

fn rand_seq(rng: &mut StdRng, len: usize) -> Vec<u8> {
    (0..len).map(|_| rng.gen_range(0..20u8)).collect()
}

#[test]
fn every_implementation_agrees() {
    let mut rng = StdRng::seed_from_u64(0xD00D);
    let engine = EngineKind::best();
    for (mi, matrix) in [blosum62(), blosum45(), pam250()].into_iter().enumerate() {
        let scoring = Scoring::matrix(matrix);
        let gaps = GapModel::Affine(GapPenalties::new(11, 1));
        for round in 0..8 {
            let (lm, ln) = (rng.gen_range(2..150), rng.gen_range(2..150));
            let q = rand_seq(&mut rng, lm);
            let t = rand_seq(&mut rng, ln);
            let want = sw_scalar(&q, &t, &scoring, gaps).score;
            let mut st = KernelStats::default();

            let ours = diag_score(engine, Precision::I16, &q, &t, &scoring, gaps, 8, &mut st);
            assert_eq!(ours.score, want, "ours m{mi} r{round}");

            let striped = sw_striped_i16(engine, &q, &t, &scoring, gaps, &mut st);
            assert_eq!(striped.score, want, "striped m{mi} r{round}");

            let scan = sw_scan_i16(engine, &q, &t, &scoring, gaps, &mut st);
            assert_eq!(scan.score, want, "scan m{mi} r{round}");

            let classic = sw_diag_classic_i16(engine, &q, &t, &scoring, gaps, &mut st);
            assert_eq!(classic.score, want, "classic diag m{mi} r{round}");
        }
    }
}

/// Regression: the striped lazy-F loop used to break as soon as a
/// correction pass improved no H cell. That is not a fixpoint — a
/// vertical gap chain can pass *under* higher H values and only
/// surface an improvement several lanes later — and the loop dropped
/// the chain's tail, under-scoring the scalar reference by 1 (the
/// ROADMAP open item: 31 vs 32, BLOSUM62 affine 11/1). These inputs
/// were found by brute-force search against `sw_scalar` and failed on
/// wide-lane engines (AVX2/AVX-512) before the fixpoint test was
/// extended to cover F as well as H.
#[test]
fn striped_lazy_f_carries_chains_under_higher_cells() {
    let cases: [(&[u8], &[u8], i32, i32); 3] = [
        // Failed on AVX-512 i16 (32 lanes, one segment), affine 11/1.
        (
            &[
                2, 0, 15, 13, 8, 18, 7, 1, 0, 14, 18, 15, 2, 16, 8, 2, 19, 8, 12, 8, 14, 11, 1, 13,
                17, 5, 2, 18, 10, 19, 8, 11,
            ],
            &[
                4, 15, 3, 5, 18, 16, 14, 5, 3, 5, 14, 7, 19, 9, 11, 4, 18, 17, 8, 18, 14, 13, 12,
                14, 8, 8, 2, 17, 11, 16, 13, 17, 16, 9, 13,
            ],
            11,
            1,
        ),
        // Failed on AVX2 i16 and AVX-512 i16/i32, affine 2/1.
        (
            &[
                18, 5, 1, 1, 4, 18, 12, 15, 11, 12, 10, 0, 19, 2, 3, 1, 6, 1, 16, 14, 7, 0, 8, 4,
                8, 2, 19,
            ],
            &[
                16, 12, 18, 2, 12, 19, 17, 9, 13, 2, 13, 0, 15, 18, 0, 18, 3, 16, 16, 14, 9, 14,
                10, 4, 4, 3, 11, 2, 15, 11, 9, 14, 10, 16, 2, 18, 12, 16, 16, 2, 6, 5, 5, 19, 18,
                4, 3, 18, 2, 0, 15, 9, 2, 19, 16, 3, 2, 7, 6, 8, 9, 2, 12, 3, 14, 10, 17, 8, 16, 5,
                9, 1, 15,
            ],
            2,
            1,
        ),
        // Failed on AVX-512 i16, affine 11/1.
        (
            &[
                18, 8, 0, 4, 6, 8, 11, 9, 10, 12, 0, 10, 5, 3, 19, 1, 18, 18, 8, 13, 14, 3, 8, 16,
                17, 0, 17, 15, 15, 15,
            ],
            &[
                10, 6, 11, 5, 4, 11, 7, 13, 3, 5, 8, 17, 12, 16, 4, 16, 0, 7, 16, 13, 13, 7, 12, 3,
                9, 11, 1, 5, 12, 16, 10, 8, 16, 1, 15, 19, 11, 16, 5, 6, 8, 14, 9, 3, 12, 1, 5, 10,
                2, 1, 10, 11, 18, 18, 14, 3,
            ],
            11,
            1,
        ),
    ];
    let scoring = Scoring::matrix(blosum62());
    for (ci, (q, t, open, extend)) in cases.into_iter().enumerate() {
        let gaps = GapModel::Affine(GapPenalties::new(open, extend));
        let want = sw_scalar(q, t, &scoring, gaps).score;
        // Every available engine, both widths: the bug was lane-count
        // dependent (it needed chains crossing many lane boundaries).
        for engine in [
            EngineKind::Scalar,
            EngineKind::Sse41,
            EngineKind::Avx2,
            EngineKind::Avx512,
        ] {
            if !engine.is_available() {
                continue;
            }
            let mut st = KernelStats::default();
            let got16 = sw_striped_i16(engine, q, t, &scoring, gaps, &mut st).score;
            assert_eq!(got16, want, "case {ci} i16 {}", engine.name());
            let got32 = sw_striped_i32(engine, q, t, &scoring, gaps, &mut st).score;
            assert_eq!(got32, want, "case {ci} i32 {}", engine.name());
        }
    }
}

/// Nightly-scale differential fuzz: every available backend against
/// the scalar reference over seeded random pairs (mixed matrices and
/// gap penalties, adaptive precision, periodic CIGAR rescoring).
///
/// `SWSIMD_FUZZ_CASES` scales the per-backend case count — 500 by
/// default so local `cargo test` stays fast; the CI nightly job sets
/// 20000. Seeds are fixed per backend, so any failure message
/// identifies a reproducible case.
#[test]
fn differential_fuzz_all_backends_vs_scalar() {
    let cases: usize = std::env::var("SWSIMD_FUZZ_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(500);
    let matrices = [blosum62(), blosum45(), pam250()];
    let penalties = [(11, 1), (2, 1), (5, 2)];
    for (ei, engine) in EngineKind::available().into_iter().enumerate() {
        let mut rng = StdRng::seed_from_u64(0xFA22_0000 + ei as u64);
        for case in 0..cases {
            let matrix = matrices[case % matrices.len()];
            let (open, extend) = penalties[case % penalties.len()];
            let scoring = Scoring::matrix(matrix);
            let gaps = GapModel::Affine(GapPenalties::new(open, extend));
            let (lq, lt) = (rng.gen_range(1..120), rng.gen_range(1..120));
            let q = rand_seq(&mut rng, lq);
            let t = rand_seq(&mut rng, lt);
            let want = sw_scalar(&q, &t, &scoring, gaps).score;
            let mut aligner = Aligner::builder()
                .matrix(matrix)
                .gaps(GapPenalties::new(open, extend))
                .engine(engine)
                .traceback(case % 16 == 0)
                .build();
            let r = aligner.align(&q, &t);
            assert_eq!(
                r.score,
                want,
                "{} case {case} (qlen {lq} tlen {lt}, seed 0x{:x})",
                engine.name(),
                0xFA22_0000u64 + ei as u64
            );
            if let Some(aln) = &r.alignment {
                assert_eq!(
                    aln.rescore(&q, &t, &scoring, gaps),
                    want,
                    "{} case {case}: CIGAR disagrees with its own score",
                    engine.name()
                );
            }
        }
    }
}

#[test]
fn database_search_agrees_with_pairwise() {
    let db = generate_database(&SynthConfig {
        n_seqs: 64,
        max_len: 200,
        median_len: 80.0,
        ..Default::default()
    });
    let alphabet = Alphabet::protein();
    let q = alphabet.encode(&swsimd::seq::generate_exact(60, 1).seq);
    let mut aligner = Aligner::builder().matrix(blosum62()).build();
    let hits = aligner.search(&q, &db, 0);
    for h in hits.iter().step_by(7) {
        let want = sw_scalar(
            &q,
            &db.encoded(h.db_index).idx,
            aligner.scoring(),
            aligner.gap_model(),
        )
        .score;
        assert_eq!(h.score, want, "hit {}", h.db_index);
    }
}

#[test]
fn baseline_32bit_handles_huge_scores() {
    // Long identical homopolymers exceed i16 range.
    let q = vec![17u8; 4_000]; // W, 11 each → 44k > 32767
    let scoring = Scoring::matrix(blosum62());
    let gaps = GapModel::default_affine();
    let mut st = KernelStats::default();
    let r = sw_striped_i32(EngineKind::best(), &q, &q, &scoring, gaps, &mut st);
    assert_eq!(r.score, 44_000);
    let mut a = Aligner::builder()
        .matrix(blosum62())
        .precision(Precision::I32)
        .build();
    assert_eq!(a.align(&q, &q).score, 44_000);
}

#[test]
fn adaptive_equals_i32_on_mixed_magnitudes() {
    let mut rng = StdRng::seed_from_u64(5);
    let alphabet = Alphabet::protein();
    let _ = alphabet;
    for len in [10usize, 60, 300, 1200] {
        let q = rand_seq(&mut rng, len);
        let t = {
            // Related target: keeps scores growing with length.
            let mut t = q.clone();
            for k in (0..t.len()).step_by(7) {
                t[k] = (t[k] + 1) % 20;
            }
            t
        };
        let mut adaptive = Aligner::builder().matrix(blosum62()).build();
        let mut wide = Aligner::builder()
            .matrix(blosum62())
            .precision(Precision::I32)
            .build();
        assert_eq!(
            adaptive.align(&q, &t).score,
            wide.align(&q, &t).score,
            "len {len}"
        );
    }
}
