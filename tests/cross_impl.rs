//! Cross-implementation agreement at the workspace level: the paper's
//! kernel, every baseline, and the batch path must produce identical
//! scores for identical inputs.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use swsimd::baselines::{sw_diag_classic_i16, sw_scan_i16, sw_striped_i16, sw_striped_i32};
use swsimd::core::{diag_score, sw_scalar, KernelStats};
use swsimd::matrices::{blosum45, blosum62, pam250, Alphabet};
use swsimd::seq::{generate_database, SynthConfig};
use swsimd::{Aligner, EngineKind, GapModel, GapPenalties, Precision, Scoring};

fn rand_seq(rng: &mut StdRng, len: usize) -> Vec<u8> {
    (0..len).map(|_| rng.gen_range(0..20u8)).collect()
}

#[test]
fn every_implementation_agrees() {
    let mut rng = StdRng::seed_from_u64(0xD00D);
    let engine = EngineKind::best();
    for (mi, matrix) in [blosum62(), blosum45(), pam250()].into_iter().enumerate() {
        let scoring = Scoring::matrix(matrix);
        let gaps = GapModel::Affine(GapPenalties::new(11, 1));
        for round in 0..8 {
            let (lm, ln) = (rng.gen_range(2..150), rng.gen_range(2..150));
            let q = rand_seq(&mut rng, lm);
            let t = rand_seq(&mut rng, ln);
            let want = sw_scalar(&q, &t, &scoring, gaps).score;
            let mut st = KernelStats::default();

            let ours = diag_score(engine, Precision::I16, &q, &t, &scoring, gaps, 8, &mut st);
            assert_eq!(ours.score, want, "ours m{mi} r{round}");

            let striped = sw_striped_i16(engine, &q, &t, &scoring, gaps, &mut st);
            assert_eq!(striped.score, want, "striped m{mi} r{round}");

            let scan = sw_scan_i16(engine, &q, &t, &scoring, gaps, &mut st);
            assert_eq!(scan.score, want, "scan m{mi} r{round}");

            let classic = sw_diag_classic_i16(engine, &q, &t, &scoring, gaps, &mut st);
            assert_eq!(classic.score, want, "classic diag m{mi} r{round}");
        }
    }
}

#[test]
fn database_search_agrees_with_pairwise() {
    let db = generate_database(&SynthConfig {
        n_seqs: 64,
        max_len: 200,
        median_len: 80.0,
        ..Default::default()
    });
    let alphabet = Alphabet::protein();
    let q = alphabet.encode(&swsimd::seq::generate_exact(60, 1).seq);
    let mut aligner = Aligner::builder().matrix(blosum62()).build();
    let hits = aligner.search(&q, &db, 0);
    for h in hits.iter().step_by(7) {
        let want = sw_scalar(
            &q,
            &db.encoded(h.db_index).idx,
            aligner.scoring(),
            aligner.gap_model(),
        )
        .score;
        assert_eq!(h.score, want, "hit {}", h.db_index);
    }
}

#[test]
fn baseline_32bit_handles_huge_scores() {
    // Long identical homopolymers exceed i16 range.
    let q = vec![17u8; 4_000]; // W, 11 each → 44k > 32767
    let scoring = Scoring::matrix(blosum62());
    let gaps = GapModel::default_affine();
    let mut st = KernelStats::default();
    let r = sw_striped_i32(EngineKind::best(), &q, &q, &scoring, gaps, &mut st);
    assert_eq!(r.score, 44_000);
    let mut a = Aligner::builder()
        .matrix(blosum62())
        .precision(Precision::I32)
        .build();
    assert_eq!(a.align(&q, &q).score, 44_000);
}

#[test]
fn adaptive_equals_i32_on_mixed_magnitudes() {
    let mut rng = StdRng::seed_from_u64(5);
    let alphabet = Alphabet::protein();
    let _ = alphabet;
    for len in [10usize, 60, 300, 1200] {
        let q = rand_seq(&mut rng, len);
        let t = {
            // Related target: keeps scores growing with length.
            let mut t = q.clone();
            for k in (0..t.len()).step_by(7) {
                t[k] = (t[k] + 1) % 20;
            }
            t
        };
        let mut adaptive = Aligner::builder().matrix(blosum62()).build();
        let mut wide = Aligner::builder()
            .matrix(blosum62())
            .precision(Precision::I32)
            .build();
        assert_eq!(
            adaptive.align(&q, &t).score,
            wide.align(&q, &t).score,
            "len {len}"
        );
    }
}
