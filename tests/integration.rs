//! End-to-end integration: FASTA in → hits out through the public API.

use swsimd::matrices::{blosum62, Alphabet};
use swsimd::seq::{parse_fasta, to_fasta_string, Database};
use swsimd::{Aligner, GapPenalties, Precision};

const FASTA: &str = "\
>sp|Q1 test query kinase-like
MKTAYIAKQRQISFVKSHFSRQLEERLGLIEVQAPILSRVGDGTQDNLSGAEKAVQ
>db|A distant
PPPPWWWWGGGGHHHHKKKKLLLL
>db|B close homolog
MKTAYIAKQRQISFVKSHFSRQLEERLGLIEV
>db|C same family, gapped
MKTAYIAKQRQISFVKSHFSRQLEERLGLIEVQAPILSRVGDGTQDNLSGAEKAVQAAAA
>db|D reversed junk
QVAKEAGSLNDQTGDGVRSLIPAQVEILGLREE
";

#[test]
fn fasta_to_hits_pipeline() {
    let records = parse_fasta(FASTA).unwrap();
    assert_eq!(records.len(), 5);
    let query = records[0].clone();
    let alphabet = Alphabet::protein();
    let db = Database::from_records(records[1..].to_vec(), &alphabet);

    let mut aligner = Aligner::builder()
        .matrix(blosum62())
        .gaps(GapPenalties::new(11, 1))
        .build();
    let q = alphabet.encode(&query.seq);
    let hits = aligner.search(&q, &db, 0);
    assert_eq!(hits.len(), 4);

    // The full-length homolog (db|C) must beat the fragment (db|B),
    // which must beat the junk.
    let rank_of = |id: &str| {
        hits.iter()
            .position(|h| db.record(h.db_index).id == id)
            .unwrap()
    };
    assert_eq!(rank_of("db|C"), 0);
    assert_eq!(rank_of("db|B"), 1);
    assert!(rank_of("db|A") >= 2);
}

#[test]
fn fasta_roundtrip_preserves_database() {
    let records = parse_fasta(FASTA).unwrap();
    let text = to_fasta_string(&records, 60);
    let back = parse_fasta(&text).unwrap();
    assert_eq!(records, back);
}

#[test]
fn traceback_end_to_end() {
    let records = parse_fasta(FASTA).unwrap();
    let alphabet = Alphabet::protein();
    let q = alphabet.encode(&records[0].seq);
    let t = alphabet.encode(&records[3].seq); // db|C

    let mut aligner = Aligner::builder()
        .matrix(blosum62())
        .traceback(true)
        .build();
    let r = aligner.align(&q, &t);
    let aln = r.alignment.expect("homologs must align");
    // Query aligns fully.
    assert_eq!(aln.query_end - aln.query_start, records[0].seq.len());
    assert_eq!(
        aln.rescore(&q, &t, aligner.scoring(), aligner.gap_model()),
        r.score
    );
    assert!(aln.cigar().ends_with('M'));
}

#[test]
fn engine_selection_is_consistent() {
    let alphabet = Alphabet::protein();
    let q = alphabet.encode(b"MKVLAADTWGHKRNDECQ");
    let t = alphabet.encode(b"MKVLADTWGHKRNDECQWW");
    let mut scores = Vec::new();
    for engine in swsimd::EngineKind::available() {
        let mut a = Aligner::builder().matrix(blosum62()).engine(engine).build();
        scores.push(a.align(&q, &t).score);
    }
    assert!(
        scores.windows(2).all(|w| w[0] == w[1]),
        "engines disagree: {scores:?}"
    );
}

#[test]
fn precision_modes_agree_when_in_range() {
    let alphabet = Alphabet::protein();
    let q = alphabet.encode(b"MKVLAADTWGHK");
    let t = alphabet.encode(b"MKVLAADTWGHK");
    let mut results = Vec::new();
    for p in [
        Precision::I8,
        Precision::I16,
        Precision::I32,
        Precision::Adaptive,
    ] {
        let mut a = Aligner::builder().matrix(blosum62()).precision(p).build();
        results.push(a.align(&q, &t).score);
    }
    assert!(results.windows(2).all(|w| w[0] == w[1]), "{results:?}");
}

#[test]
fn builder_options_compose() {
    let mut a = Aligner::builder()
        .fixed_scores(2, -3)
        .linear_gap(4)
        .scalar_threshold(4)
        .precision(Precision::I16)
        .build();
    let alphabet = Alphabet::protein();
    let q = alphabet.encode(b"AAAA");
    let r = a.align(&q, &q);
    assert_eq!(r.score, 8);
}
