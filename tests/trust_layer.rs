//! End-to-end kernel trust layer: the boot self-test battery, sampled
//! shadow verification, and the circuit-breaker demotion ladder.
//!
//! The headline scenario: a fault plan poisons the best backend's
//! scores, full-rate shadow verification catches every lie, the
//! breaker opens after `threshold` strikes and demotes the backend —
//! and the server keeps serving *exact* answers throughout, with the
//! whole episode visible in `health_line()` and a Prometheus scrape.
//!
//! Tests that mutate the process-global [`trust`] ladder serialize on
//! a mutex and reset the ladder on both entry and exit, so they cannot
//! contaminate each other (or the rest of this binary) regardless of
//! interleaving or panics.

use std::sync::{Arc, Mutex, MutexGuard};

use proptest::prelude::*;
use swsimd::core::{selftest, trust};
use swsimd::matrices::blosum62;
use swsimd::runner::{
    parallel_search, BatchServer, FaultPlan, PoolConfig, Sampler, ServeError, ServerConfig,
};
use swsimd::seq::{generate_database, generate_exact, SynthConfig};
use swsimd::{
    run_battery, AlignError, Aligner, EngineKind, OnMismatch, ShadowConfig, TrustLadder, TrustState,
};

static GATE: Mutex<()> = Mutex::new(());

/// Exclusive access to the global trust ladder, reset on entry and
/// again on drop (even if the test panics mid-way).
struct LadderGuard(#[allow(dead_code)] MutexGuard<'static, ()>);

impl Drop for LadderGuard {
    fn drop(&mut self) {
        trust::global().reset();
    }
}

fn exclusive_ladder() -> LadderGuard {
    let guard = GATE.lock().unwrap_or_else(|poison| poison.into_inner());
    trust::global().reset();
    LadderGuard(guard)
}

/// The widest available non-scalar engine — the natural victim for
/// demotion tests. `None` on a scalar-only host (nothing can demote).
fn widest_simd_engine() -> Option<EngineKind> {
    EngineKind::available()
        .into_iter()
        .rev()
        .find(|&e| e != EngineKind::Scalar)
}

fn small_db(n_seqs: usize) -> Arc<swsimd::seq::Database> {
    Arc::new(generate_database(&SynthConfig {
        n_seqs,
        median_len: 45.0,
        max_len: 90,
        ..Default::default()
    }))
}

fn query(len: usize, seed: u64) -> Vec<u8> {
    blosum62().alphabet().encode(&generate_exact(len, seed).seq)
}

/// (db_index, score) pairs in a canonical order, so server replies can
/// be compared against a reference search without depending on
/// tie-breaking in hit ordering.
fn canonical(hits: &[swsimd::Hit]) -> Vec<(usize, i32)> {
    let mut v: Vec<_> = hits.iter().map(|h| (h.db_index, h.score)).collect();
    v.sort_unstable();
    v
}

// ---------------------------------------------------------------- boot

/// The battery covers every engine the CPU offers, runs a non-trivial
/// number of checks per engine, and passes on healthy kernels.
#[test]
fn battery_covers_every_available_engine_and_passes() {
    let report = run_battery();
    assert!(
        report.all_passed(),
        "self-test failures on a healthy host: {:?}",
        report.failed_engines()
    );
    let covered: Vec<_> = report.outcomes.iter().map(|o| o.engine).collect();
    for e in EngineKind::available() {
        assert!(covered.contains(&e), "battery skipped available {e:?}");
    }
    assert_eq!(
        report.outcomes.len() + report.skipped.len(),
        EngineKind::ALL.len(),
        "every engine is either exercised or declared skipped"
    );
    for o in &report.outcomes {
        assert!(
            o.checks >= 20,
            "{:?} ran only {} checks",
            o.engine,
            o.checks
        );
    }
}

/// `boot()` runs the battery exactly once per process and hands every
/// caller the same cached report.
#[test]
fn boot_is_cached_and_idempotent() {
    let first = selftest::boot();
    let second = selftest::boot();
    assert!(std::ptr::eq(first, second), "boot re-ran the battery");
    assert!(first.all_passed());
}

// ----------------------------------------------------- breaker e2e

/// A poisoned backend trips the breaker; the server answers every
/// query exactly (shadow repair + demotion), and the episode shows up
/// in `health_line()` and the Prometheus scrape.
#[test]
fn poisoned_backend_trips_breaker_and_server_stays_exact() {
    let _gate = exclusive_ladder();
    let threshold = trust::global().threshold();
    let db = small_db(24);

    let server = BatchServer::start(
        Arc::clone(&db),
        ServerConfig {
            batch_size: 1,
            // Verify every served hit against the scalar reference.
            shadow: ShadowConfig {
                sample_rate: 1.0,
                on_mismatch: OnMismatch::Demote,
            },
            // Poison the top hit of the first `threshold` batches.
            fault_plan: FaultPlan::new().wrong_score_at(0, threshold),
            ..ServerConfig::default()
        },
        || Aligner::builder().matrix(blosum62()),
    );
    let client = server.client();

    let n_queries = u64::from(threshold) + 2;
    for i in 0..n_queries {
        let q = query(40, 0xB00 + i);
        let served = client.query(q.clone(), db.len()).expect("server is up");
        // Scores are engine-independent, so a clean scalar search is
        // the exact expected answer even while the server degrades.
        let reference = parallel_search(
            &q,
            &db,
            &PoolConfig {
                threads: 1,
                ..PoolConfig::default()
            },
            || {
                Aligner::builder()
                    .matrix(blosum62())
                    .engine(EngineKind::Scalar)
            },
        );
        assert_eq!(
            canonical(&served),
            canonical(&reference.hits),
            "query {i} served a wrong score despite shadow verification"
        );
    }

    let stats = server.stats();
    assert_eq!(stats.queries, n_queries);
    assert_eq!(
        stats.shadow_mismatches,
        u64::from(threshold),
        "each poisoned batch is one mismatch"
    );
    assert!(stats.shadow_checks >= n_queries * db.len() as u64);
    assert_eq!(stats.degraded_batches, 0, "shadow repair is not a retry");

    let health = server.health_line();
    assert!(
        health.contains(&format!("shadow_mismatches={threshold}")),
        "{health}"
    );
    let scrape = server.prometheus_text();
    assert!(
        scrape.contains("swsimd_server_shadow_mismatches_total"),
        "{scrape}"
    );
    assert!(
        scrape.contains("swsimd_server_shadow_checks_total"),
        "{scrape}"
    );

    // Demotion itself needs a demotable (non-scalar) engine.
    if EngineKind::best() != EngineKind::Scalar {
        assert_eq!(stats.backend_demotions, 1, "breaker opened exactly once");
        assert_eq!(
            trust::global().state(EngineKind::best()),
            TrustState::Demoted
        );
        assert_ne!(
            trust::effective_engine(EngineKind::best()),
            EngineKind::best(),
            "dispatch routes around the demoted backend"
        );
        assert!(health.contains("backend_demotions=1"), "{health}");
        assert!(
            scrape.contains("swsimd_server_backend_demotions_total"),
            "{scrape}"
        );
        assert!(
            scrape.contains("swsimd_backend_demotions_total"),
            "{scrape}"
        );
    }
    server.shutdown();
}

/// A mismatch under `OnMismatch::Record` counts but never demotes:
/// observe-only mode for cautious rollouts.
#[test]
fn record_mode_observes_without_demoting() {
    let _gate = exclusive_ladder();
    let db = small_db(12);
    let server = BatchServer::start(
        Arc::clone(&db),
        ServerConfig {
            batch_size: 1,
            shadow: ShadowConfig {
                sample_rate: 1.0,
                on_mismatch: OnMismatch::Record,
            },
            fault_plan: FaultPlan::new().wrong_score_at(0, 10),
            ..ServerConfig::default()
        },
        || Aligner::builder().matrix(blosum62()),
    );
    let client = server.client();
    for i in 0..5u64 {
        client
            .query(query(30, 0xCAFE + i), 3)
            .expect("server is up");
    }
    let stats = server.shutdown();
    assert_eq!(stats.shadow_mismatches, 5);
    assert_eq!(stats.backend_demotions, 0, "Record mode never demotes");
    assert_eq!(
        trust::global().state(EngineKind::best()),
        TrustState::Trusted
    );
}

// ------------------------------------------------------- probation

/// A demoted-but-actually-healthy engine re-earns trust through the
/// probation battery; dispatch resumes using it.
#[test]
fn probation_retest_repromotes_a_healthy_engine() {
    let _gate = exclusive_ladder();
    let Some(victim) = widest_simd_engine() else {
        return; // scalar-only host: nothing can demote
    };
    let ladder = trust::global();
    assert!(ladder.mark_failed(victim, "injected"));
    assert_eq!(ladder.state(victim), TrustState::Demoted);
    assert_ne!(trust::effective_engine(victim), victim);

    // The silicon is fine, so the battery passes and trust returns.
    assert!(
        selftest::probation_retest(victim),
        "healthy engine re-promotes"
    );
    assert_eq!(ladder.state(victim), TrustState::Trusted);
    assert_eq!(ladder.strikes(victim), 0, "strikes reset on re-promotion");
    assert_eq!(trust::effective_engine(victim), victim);
    assert!(ladder.repromotions() >= 1);
}

// ----------------------------------------------------- typed errors

/// Forcing an unusable engine is a typed refusal — missing ISA and
/// trust-demoted both — at the builder, and at server admission.
#[test]
fn forced_engine_gets_typed_refusal_not_silent_fallback() {
    let _gate = exclusive_ladder();

    for e in EngineKind::ALL {
        if e.is_available() {
            continue;
        }
        let err = Aligner::builder()
            .matrix(blosum62())
            .engine(e)
            .try_build()
            .map(|_| ())
            .expect_err("missing ISA must not silently fall back");
        assert!(
            matches!(err, AlignError::EngineUnavailable { requested, .. } if requested == e),
            "{err}"
        );
    }

    let Some(victim) = widest_simd_engine() else {
        return;
    };
    trust::global().mark_failed(victim, "injected");
    let err = Aligner::builder()
        .matrix(blosum62())
        .engine(victim)
        .try_build()
        .map(|_| ())
        .expect_err("demoted engine must not silently fall back");
    assert!(
        matches!(err, AlignError::EngineUnavailable { requested, .. } if requested == victim),
        "{err}"
    );
    assert!(err.to_string().contains("demoted"), "{err}");

    let err = BatchServer::try_start(small_db(4), ServerConfig::default(), move || {
        Aligner::builder().matrix(blosum62()).engine(victim)
    })
    .err()
    .expect("server admission refuses a demoted engine");
    assert!(
        matches!(err, ServeError::EngineUnavailable { requested, .. } if requested == victim),
        "{err}"
    );
}

// ------------------------------------------------- ladder invariants

fn ladder_invariants_hold(l: &TrustLadder) {
    assert!(l.usable(EngineKind::Scalar), "scalar is the floor");
    assert!(!l.trusted_engines().is_empty(), "never zero backends");
    for r in EngineKind::ALL {
        let eff = l.effective(r);
        assert!(l.usable(eff), "effective({r:?}) = {eff:?} must be usable");
    }
}

/// Deterministic hammer: demote everything demotable, repeatedly —
/// the ladder still terminates at scalar and never goes empty.
/// (The proptest below explores the same invariants over random op
/// sequences; this twin guarantees coverage even where the property
/// runner is unavailable.)
#[test]
fn hammered_ladder_terminates_at_scalar() {
    let l = TrustLadder::with_threshold(1);
    for round in 0..3 {
        for e in EngineKind::ALL {
            for _ in 0..5 {
                l.record_strike(e);
            }
            l.mark_failed(e, "hammer");
            ladder_invariants_hold(&l);
        }
        assert_eq!(l.trusted_engines(), vec![EngineKind::Scalar]);
        for e in EngineKind::ALL {
            assert_eq!(l.effective(e), EngineKind::Scalar);
        }
        // Failed probation keeps it demoted; invariants still hold.
        l.probation_outcome(EngineKind::Avx2, round == 2);
        ladder_invariants_hold(&l);
    }
}

proptest! {
    /// Any sequence of strikes / hard failures / probation outcomes
    /// leaves at least one usable backend, keeps scalar usable, and
    /// keeps `effective()` pointing at a usable engine — after every
    /// single step, not just at the end.
    #[test]
    fn prop_demotion_ladder_never_disables_all_backends(
        threshold in 1u32..5,
        ops in proptest::collection::vec((0usize..4, 0u8..3, 0u8..2), 0..80),
    ) {
        let l = TrustLadder::with_threshold(threshold);
        for (engine_idx, op, pass) in ops {
            let e = EngineKind::ALL[engine_idx];
            match op {
                0 => { l.record_strike(e); }
                1 => { l.mark_failed(e, "prop"); }
                _ => { l.probation_outcome(e, pass == 1); }
            }
            prop_assert!(l.usable(EngineKind::Scalar));
            prop_assert!(!l.trusted_engines().is_empty());
            for r in EngineKind::ALL {
                prop_assert!(l.usable(l.effective(r)));
            }
        }
    }
}

// ---------------------------------------------------------- sampler

/// The shadow sampler is a deterministic stride, not a coin flip:
/// exactly ⌊n·rate⌋ or ⌈n·rate⌉ of any n calls sample, and rate 0
/// never samples (the zero-overhead configuration).
#[test]
fn shadow_sampler_strides_deterministically() {
    let zero = Sampler::new(0.0);
    assert_eq!((0..10_000).filter(|_| zero.should_sample()).count(), 0);

    let full = Sampler::new(1.0);
    assert_eq!((0..10_000).filter(|_| full.should_sample()).count(), 10_000);

    for rate in [0.5, 0.25, 0.1, 0.01] {
        let s = Sampler::new(rate);
        let n = 10_000usize;
        let hits = (0..n).filter(|_| s.should_sample()).count();
        let expected = (n as f64 * rate) as usize;
        assert!(
            hits.abs_diff(expected) <= 1,
            "rate {rate}: {hits} of {n} sampled, expected ~{expected}"
        );
    }
}
