//! Process-level cluster test: real `swsimd shard` / `swsimd serve`
//! processes wired over TCP. Launches a 3-shard cluster behind a
//! gateway, proves the merged ranking matches the in-process
//! reference, SIGKILLs one shard, and asserts the cluster degrades to
//! a correct partial result (typed, counted in the Prometheus scrape)
//! instead of failing — then drains the survivors with SIGTERM and
//! expects clean zero exits.

use std::io::{BufRead, BufReader, Write};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use swsimd::matrices::{blosum62, Alphabet};
use swsimd::runner::{parallel_search, rank_hits, PoolConfig};
use swsimd::seq::{generate_database, generate_exact, SynthConfig};
use swsimd::{Aligner, Database, Hit};

const TOP_K: usize = 6;

fn bin() -> &'static str {
    env!("CARGO_BIN_EXE_swsimd")
}

fn cluster_dir() -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("swsimd-net-cluster-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn write_fasta(path: &std::path::Path, records: &[(String, Vec<u8>)]) {
    let mut f = std::fs::File::create(path).unwrap();
    for (id, seq) in records {
        writeln!(f, ">{id}").unwrap();
        f.write_all(seq).unwrap();
        writeln!(f).unwrap();
    }
}

/// Spawn a swsimd subcommand and wait for its `listening on <addr>`
/// line (printed after bind, before serving).
fn spawn_listener(args: &[&str]) -> (Child, String) {
    let mut child = Command::new(bin())
        .args(args)
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn swsimd");
    let stdout = child.stdout.take().expect("stdout piped");
    let mut line = String::new();
    BufReader::new(stdout)
        .read_line(&mut line)
        .expect("read bound address");
    let addr = line
        .trim()
        .strip_prefix("listening on ")
        .unwrap_or_else(|| panic!("unexpected first line: {line:?}"))
        .to_string();
    (child, addr)
}

/// `id \t db#<idx> \t score=<s>` lines from `swsimd query`.
fn parse_hits(stdout: &str) -> Vec<(usize, i32)> {
    stdout
        .lines()
        .filter_map(|l| {
            let mut parts = l.split('\t');
            let _id = parts.next()?;
            let idx = parts.next()?.strip_prefix("db#")?.parse().ok()?;
            let score = parts.next()?.strip_prefix("score=")?.parse().ok()?;
            Some((idx, score))
        })
        .collect()
}

fn as_pairs(hits: &[Hit]) -> Vec<(usize, i32)> {
    hits.iter().map(|h| (h.db_index, h.score)).collect()
}

fn sigterm(child: &Child) {
    let _ = Command::new("kill")
        .args(["-TERM", &child.id().to_string()])
        .status();
}

fn wait_exit(child: &mut Child, what: &str) -> std::process::ExitStatus {
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        if let Some(status) = child.try_wait().unwrap() {
            return status;
        }
        assert!(Instant::now() < deadline, "{what} did not exit in time");
        std::thread::sleep(Duration::from_millis(50));
    }
}

#[test]
fn three_shard_cluster_survives_a_killed_shard() {
    let dir = cluster_dir();
    let db: Database = generate_database(&SynthConfig {
        n_seqs: 24,
        seed: 901,
        median_len: 40.0,
        max_len: 90,
        ..Default::default()
    });
    let query_rec = generate_exact(40, 902);
    let db_path = dir.join("db.fasta");
    let q_path = dir.join("query.fasta");
    write_fasta(
        &db_path,
        &(0..db.len())
            .map(|i| (db.record(i).id.clone(), db.record(i).seq.clone()))
            .collect::<Vec<_>>(),
    );
    write_fasta(&q_path, &[(query_rec.id.clone(), query_rec.seq.clone())]);

    let qe = Alphabet::protein().encode(&query_rec.seq);
    let reference = |top_k: usize, exclude: Option<&std::ops::Range<usize>>| -> Vec<(usize, i32)> {
        let out = parallel_search(
            &qe,
            &db,
            &PoolConfig {
                threads: 2,
                sort_batches: true,
                ..Default::default()
            },
            || Aligner::builder().matrix(blosum62()),
        );
        let hits: Vec<Hit> = out
            .hits
            .into_iter()
            .filter(|h| exclude.is_none_or(|r| !r.contains(&h.db_index)))
            .collect();
        as_pairs(&rank_hits(hits, top_k))
    };

    // Boot the cluster: three shard workers plus the gateway.
    let db_str = db_path.to_str().unwrap();
    let mut shards = Vec::new();
    let mut shard_addrs = Vec::new();
    for i in 0..3 {
        let idx = i.to_string();
        let (child, addr) = spawn_listener(&[
            "shard",
            db_str,
            "--listen",
            "127.0.0.1:0",
            "--shard-index",
            &idx,
            "--shards",
            "3",
            "--threads",
            "1",
        ]);
        shards.push(child);
        shard_addrs.push(addr);
    }
    let topology = shard_addrs.join(";");
    let (mut gateway, gw_addr) = spawn_listener(&[
        "serve",
        "--shards",
        &topology,
        "--listen",
        "127.0.0.1:0",
        "--retry-budget",
        "2",
        "--strike-threshold",
        "1",
        "--connect-timeout",
        "500",
        "--probe-interval",
        "200",
    ]);

    // Healthy cluster: the merged ranking equals the unsharded oracle.
    let q_str = q_path.to_str().unwrap();
    let top = TOP_K.to_string();
    let healthy = Command::new(bin())
        .args(["query", &gw_addr, q_str, "--top", &top])
        .output()
        .unwrap();
    assert!(
        healthy.status.success(),
        "healthy query failed: {healthy:?}"
    );
    assert_eq!(
        parse_hits(&String::from_utf8_lossy(&healthy.stdout)),
        reference(TOP_K, None),
        "sharded cluster must reproduce the unsharded ranking"
    );

    // SIGKILL shard 1: no drain, no goodbye — the gateway must absorb
    // it within its retry budget and typed-degrade.
    shards[1].kill().unwrap();
    let _ = shards[1].wait();
    let killed_range = db.partition(3)[1].clone();

    let degraded = Command::new(bin())
        .args([
            "query",
            &gw_addr,
            q_str,
            "--top",
            &top,
            "--deadline",
            "20000",
        ])
        .output()
        .unwrap();
    assert!(
        degraded.status.success(),
        "degraded query must still succeed: {degraded:?}"
    );
    let stderr = String::from_utf8_lossy(&degraded.stderr);
    assert!(
        stderr.contains("degraded") && stderr.contains('1'),
        "degradation must be surfaced with the missing slice: {stderr}"
    );
    assert_eq!(
        parse_hits(&String::from_utf8_lossy(&degraded.stdout)),
        reference(TOP_K, Some(&killed_range)),
        "surviving slices must stay exact"
    );

    // The gateway's scrape records the failure story.
    let scrape = Command::new(bin())
        .args(["net-metrics", &gw_addr])
        .output()
        .unwrap();
    assert!(scrape.status.success());
    let text = String::from_utf8_lossy(&scrape.stdout);
    for family in [
        "swsimd_gateway_requests_total",
        "swsimd_shard_down_total",
        "swsimd_degraded_responses_total",
        "swsimd_hedged_requests_total",
        "swsimd_net_retries_total",
        "swsimd_shard_up",
    ] {
        assert!(
            text.contains(family),
            "{family} missing from scrape:\n{text}"
        );
    }
    let counted = |family: &str| -> f64 {
        text.lines()
            .filter(|l| l.starts_with(family))
            .filter_map(|l| l.rsplit(' ').next()?.parse::<f64>().ok())
            .sum()
    };
    assert!(counted("swsimd_degraded_responses_total") >= 1.0);
    assert!(counted("swsimd_shard_down_total") >= 1.0);

    // SIGTERM the survivors: graceful drain, exit code 0.
    sigterm(&gateway);
    assert!(
        wait_exit(&mut gateway, "gateway").success(),
        "gateway must drain clean on SIGTERM"
    );
    for (i, shard) in shards.iter_mut().enumerate() {
        if i == 1 {
            continue; // already SIGKILLed
        }
        sigterm(shard);
        assert!(
            wait_exit(shard, "shard").success(),
            "shard {i} must drain clean on SIGTERM"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}
