//! Property-based tests (proptest) on core invariants.

use proptest::prelude::*;
use swsimd::core::modes::sw_scalar_mode;
use swsimd::core::{
    banded_score, diag_score, sw_scalar, sw_scalar_traceback, AlignMode, KernelStats,
};
use swsimd::matrices::blosum62;
use swsimd::{EngineKind, GapModel, GapPenalties, Precision, Scoring};

fn seq_strategy(max_len: usize) -> impl Strategy<Value = Vec<u8>> {
    prop::collection::vec(0u8..20, 1..max_len)
}

fn gap_strategy() -> impl Strategy<Value = GapModel> {
    prop_oneof![
        (1i32..12, 1i32..4).prop_map(|(o, e)| {
            let e = e.min(o);
            GapModel::Affine(GapPenalties::new(o, e))
        }),
        (1i32..8).prop_map(|g| GapModel::Linear { gap: g }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// The vector kernel equals the scalar reference on arbitrary
    /// inputs, gap models and thresholds.
    #[test]
    fn kernel_matches_reference(
        q in seq_strategy(100),
        t in seq_strategy(100),
        gaps in gap_strategy(),
        threshold in 1usize..64,
    ) {
        let scoring = Scoring::matrix(blosum62());
        let want = sw_scalar(&q, &t, &scoring, gaps).score;
        let mut st = KernelStats::default();
        let got = diag_score(
            EngineKind::best(), Precision::I32, &q, &t, &scoring, gaps, threshold, &mut st,
        );
        prop_assert_eq!(got.score, want);
    }

    /// Local alignment scores are never negative and never exceed the
    /// perfect self-alignment of the shorter sequence.
    #[test]
    fn score_bounds(q in seq_strategy(80), t in seq_strategy(80)) {
        let scoring = Scoring::matrix(blosum62());
        let gaps = GapModel::default_affine();
        let s = sw_scalar(&q, &t, &scoring, gaps).score;
        prop_assert!(s >= 0);
        let bound: i32 = if q.len() <= t.len() {
            q.iter().map(|&a| blosum62().score_by_index(a, a) as i32).sum()
        } else {
            t.iter().map(|&a| blosum62().score_by_index(a, a) as i32).sum()
        };
        prop_assert!(s <= bound, "score {} exceeds bound {}", s, bound);
    }

    /// Symmetry: BLOSUM matrices are symmetric, so score(q,t) == score(t,q).
    #[test]
    fn alignment_is_symmetric(q in seq_strategy(60), t in seq_strategy(60)) {
        let scoring = Scoring::matrix(blosum62());
        let gaps = GapModel::default_affine();
        let a = sw_scalar(&q, &t, &scoring, gaps).score;
        let b = sw_scalar(&t, &q, &scoring, gaps).score;
        prop_assert_eq!(a, b);
    }

    /// Monotonicity: appending residues can never lower the optimal
    /// local score (the old alignment is still available).
    #[test]
    fn extension_monotone(q in seq_strategy(50), t in seq_strategy(50), extra in seq_strategy(10)) {
        let scoring = Scoring::matrix(blosum62());
        let gaps = GapModel::default_affine();
        let base = sw_scalar(&q, &t, &scoring, gaps).score;
        let mut t2 = t.clone();
        t2.extend_from_slice(&extra);
        let ext = sw_scalar(&q, &t2, &scoring, gaps).score;
        prop_assert!(ext >= base);
    }

    /// Traceback paths rescore exactly to the reported score and have
    /// consistent spans.
    #[test]
    fn traceback_is_valid(q in seq_strategy(60), t in seq_strategy(60), gaps in gap_strategy()) {
        let scoring = Scoring::matrix(blosum62());
        let r = sw_scalar_traceback(&q, &t, &scoring, gaps);
        if let Some(aln) = &r.alignment {
            prop_assert_eq!(aln.rescore(&q, &t, &scoring, gaps), r.score);
            let m: usize = aln.ops.iter().filter(|&&o| o != swsimd::Op::Delete).count();
            let d: usize = aln.ops.iter().filter(|&&o| o != swsimd::Op::Insert).count();
            prop_assert_eq!(aln.query_end - aln.query_start, m);
            prop_assert_eq!(aln.target_end - aln.target_start, d);
            // Local alignments must start and end on a match.
            if !aln.ops.is_empty() {
                prop_assert_eq!(aln.ops[0], swsimd::Op::Match);
                prop_assert_eq!(*aln.ops.last().unwrap(), swsimd::Op::Match);
            }
        } else {
            prop_assert_eq!(r.score, 0);
        }
    }

    /// Concatenation superadditivity: aligning q against t1++t2 is at
    /// least as good as the best of the parts.
    #[test]
    fn concat_superadditive(q in seq_strategy(40), t1 in seq_strategy(40), t2 in seq_strategy(40)) {
        let scoring = Scoring::matrix(blosum62());
        let gaps = GapModel::default_affine();
        let s1 = sw_scalar(&q, &t1, &scoring, gaps).score;
        let s2 = sw_scalar(&q, &t2, &scoring, gaps).score;
        let mut cat = t1.clone();
        cat.extend_from_slice(&t2);
        let sc = sw_scalar(&q, &cat, &scoring, gaps).score;
        prop_assert!(sc >= s1.max(s2));
    }

    /// The 8-bit kernel either reports the exact score or flags
    /// saturation — never a silently wrong value.
    #[test]
    fn i8_exact_or_saturated(q in seq_strategy(90), t in seq_strategy(90)) {
        let scoring = Scoring::matrix(blosum62());
        let gaps = GapModel::default_affine();
        let want = sw_scalar(&q, &t, &scoring, gaps).score;
        let mut st = KernelStats::default();
        let got = diag_score(
            EngineKind::best(), Precision::I8, &q, &t, &scoring, gaps, 8, &mut st,
        );
        if got.saturated {
            prop_assert!(want >= i8::MAX as i32);
        } else {
            prop_assert_eq!(got.score, want);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    /// Mode ordering: local >= semi-global >= global, always.
    #[test]
    fn mode_ordering(q in seq_strategy(70), t in seq_strategy(70), gaps in gap_strategy()) {
        let scoring = Scoring::matrix(blosum62());
        let local = sw_scalar(&q, &t, &scoring, gaps).score;
        let sg = sw_scalar_mode(&q, &t, &scoring, gaps, AlignMode::SemiGlobal).score;
        let global = sw_scalar_mode(&q, &t, &scoring, gaps, AlignMode::Global).score;
        prop_assert!(local >= sg);
        prop_assert!(sg >= global);
    }

    /// Global alignment is symmetric under argument swap for symmetric
    /// matrices.
    #[test]
    fn global_symmetric(q in seq_strategy(60), t in seq_strategy(60), gaps in gap_strategy()) {
        let scoring = Scoring::matrix(blosum62());
        let a = sw_scalar_mode(&q, &t, &scoring, gaps, AlignMode::Global).score;
        let b = sw_scalar_mode(&t, &q, &scoring, gaps, AlignMode::Global).score;
        prop_assert_eq!(a, b);
    }

    /// Banded scores are monotone in the width and reach the unbanded
    /// score once the band covers the matrix.
    #[test]
    fn banded_monotone(q in seq_strategy(60), t in seq_strategy(60), gaps in gap_strategy()) {
        let scoring = Scoring::matrix(blosum62());
        let full = sw_scalar(&q, &t, &scoring, gaps).score;
        let mut prev = 0i32;
        for width in [0usize, 3, 9, 27, 200] {
            let mut st = KernelStats::default();
            let got = banded_score(
                EngineKind::best(), Precision::I32, &q, &t, &scoring, gaps, width, 8, &mut st,
            ).score;
            prop_assert!(got >= prev, "width {} lowered score {} -> {}", width, prev, got);
            prop_assert!(got <= full);
            prev = got;
        }
        prop_assert_eq!(prev, full);
    }

    /// The batch kernel agrees with the scalar reference on whole
    /// mini-databases.
    #[test]
    fn batch_search_matches_reference(
        q in seq_strategy(40),
        targets in prop::collection::vec(seq_strategy(40), 1..12),
    ) {
        let alphabet = swsimd::matrices::Alphabet::protein();
        let records: Vec<swsimd::SeqRecord> = targets
            .iter()
            .enumerate()
            .map(|(i, t)| swsimd::SeqRecord::new(format!("s{i}"), alphabet.decode(t)))
            .collect();
        let db = swsimd::Database::from_records(records, &alphabet);
        let scoring = Scoring::matrix(blosum62());
        let gaps = GapModel::default_affine();
        let mut aligner = swsimd::Aligner::new();
        for hit in aligner.search(&q, &db, 0) {
            let want = sw_scalar(&q, &db.encoded(hit.db_index).idx, &scoring, gaps).score;
            prop_assert_eq!(hit.score, want);
        }
    }
}
