//! Property-based tests (proptest) on core invariants.

use proptest::prelude::*;
use swsimd::core::modes::sw_scalar_mode;
use swsimd::core::{
    banded_score, diag_score, sw_scalar, sw_scalar_traceback, AlignMode, KernelStats,
};
use swsimd::matrices::blosum62;
use swsimd::{EngineKind, GapModel, GapPenalties, Precision, Scoring};

fn seq_strategy(max_len: usize) -> impl Strategy<Value = Vec<u8>> {
    prop::collection::vec(0u8..20, 1..max_len)
}

fn gap_strategy() -> impl Strategy<Value = GapModel> {
    prop_oneof![
        (1i32..12, 1i32..4).prop_map(|(o, e)| {
            let e = e.min(o);
            GapModel::Affine(GapPenalties::new(o, e))
        }),
        (1i32..8).prop_map(|g| GapModel::Linear { gap: g }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// The vector kernel equals the scalar reference on arbitrary
    /// inputs, gap models and thresholds.
    #[test]
    fn kernel_matches_reference(
        q in seq_strategy(100),
        t in seq_strategy(100),
        gaps in gap_strategy(),
        threshold in 1usize..64,
    ) {
        let scoring = Scoring::matrix(blosum62());
        let want = sw_scalar(&q, &t, &scoring, gaps).score;
        let mut st = KernelStats::default();
        let got = diag_score(
            EngineKind::best(), Precision::I32, &q, &t, &scoring, gaps, threshold, &mut st,
        );
        prop_assert_eq!(got.score, want);
    }

    /// Local alignment scores are never negative and never exceed the
    /// perfect self-alignment of the shorter sequence.
    #[test]
    fn score_bounds(q in seq_strategy(80), t in seq_strategy(80)) {
        let scoring = Scoring::matrix(blosum62());
        let gaps = GapModel::default_affine();
        let s = sw_scalar(&q, &t, &scoring, gaps).score;
        prop_assert!(s >= 0);
        let bound: i32 = if q.len() <= t.len() {
            q.iter().map(|&a| blosum62().score_by_index(a, a) as i32).sum()
        } else {
            t.iter().map(|&a| blosum62().score_by_index(a, a) as i32).sum()
        };
        prop_assert!(s <= bound, "score {} exceeds bound {}", s, bound);
    }

    /// Symmetry: BLOSUM matrices are symmetric, so score(q,t) == score(t,q).
    #[test]
    fn alignment_is_symmetric(q in seq_strategy(60), t in seq_strategy(60)) {
        let scoring = Scoring::matrix(blosum62());
        let gaps = GapModel::default_affine();
        let a = sw_scalar(&q, &t, &scoring, gaps).score;
        let b = sw_scalar(&t, &q, &scoring, gaps).score;
        prop_assert_eq!(a, b);
    }

    /// Monotonicity: appending residues can never lower the optimal
    /// local score (the old alignment is still available).
    #[test]
    fn extension_monotone(q in seq_strategy(50), t in seq_strategy(50), extra in seq_strategy(10)) {
        let scoring = Scoring::matrix(blosum62());
        let gaps = GapModel::default_affine();
        let base = sw_scalar(&q, &t, &scoring, gaps).score;
        let mut t2 = t.clone();
        t2.extend_from_slice(&extra);
        let ext = sw_scalar(&q, &t2, &scoring, gaps).score;
        prop_assert!(ext >= base);
    }

    /// Traceback paths rescore exactly to the reported score and have
    /// consistent spans.
    #[test]
    fn traceback_is_valid(q in seq_strategy(60), t in seq_strategy(60), gaps in gap_strategy()) {
        let scoring = Scoring::matrix(blosum62());
        let r = sw_scalar_traceback(&q, &t, &scoring, gaps);
        if let Some(aln) = &r.alignment {
            prop_assert_eq!(aln.rescore(&q, &t, &scoring, gaps), r.score);
            let m: usize = aln.ops.iter().filter(|&&o| o != swsimd::Op::Delete).count();
            let d: usize = aln.ops.iter().filter(|&&o| o != swsimd::Op::Insert).count();
            prop_assert_eq!(aln.query_end - aln.query_start, m);
            prop_assert_eq!(aln.target_end - aln.target_start, d);
            // Local alignments must start and end on a match.
            if !aln.ops.is_empty() {
                prop_assert_eq!(aln.ops[0], swsimd::Op::Match);
                prop_assert_eq!(*aln.ops.last().unwrap(), swsimd::Op::Match);
            }
        } else {
            prop_assert_eq!(r.score, 0);
        }
    }

    /// Concatenation superadditivity: aligning q against t1++t2 is at
    /// least as good as the best of the parts.
    #[test]
    fn concat_superadditive(q in seq_strategy(40), t1 in seq_strategy(40), t2 in seq_strategy(40)) {
        let scoring = Scoring::matrix(blosum62());
        let gaps = GapModel::default_affine();
        let s1 = sw_scalar(&q, &t1, &scoring, gaps).score;
        let s2 = sw_scalar(&q, &t2, &scoring, gaps).score;
        let mut cat = t1.clone();
        cat.extend_from_slice(&t2);
        let sc = sw_scalar(&q, &cat, &scoring, gaps).score;
        prop_assert!(sc >= s1.max(s2));
    }

    /// The 8-bit kernel either reports the exact score or flags
    /// saturation — never a silently wrong value.
    #[test]
    fn i8_exact_or_saturated(q in seq_strategy(90), t in seq_strategy(90)) {
        let scoring = Scoring::matrix(blosum62());
        let gaps = GapModel::default_affine();
        let want = sw_scalar(&q, &t, &scoring, gaps).score;
        let mut st = KernelStats::default();
        let got = diag_score(
            EngineKind::best(), Precision::I8, &q, &t, &scoring, gaps, 8, &mut st,
        );
        if got.saturated {
            prop_assert!(want >= i8::MAX as i32);
        } else {
            prop_assert_eq!(got.score, want);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    /// Mode ordering: local >= semi-global >= global, always.
    #[test]
    fn mode_ordering(q in seq_strategy(70), t in seq_strategy(70), gaps in gap_strategy()) {
        let scoring = Scoring::matrix(blosum62());
        let local = sw_scalar(&q, &t, &scoring, gaps).score;
        let sg = sw_scalar_mode(&q, &t, &scoring, gaps, AlignMode::SemiGlobal).score;
        let global = sw_scalar_mode(&q, &t, &scoring, gaps, AlignMode::Global).score;
        prop_assert!(local >= sg);
        prop_assert!(sg >= global);
    }

    /// Global alignment is symmetric under argument swap for symmetric
    /// matrices.
    #[test]
    fn global_symmetric(q in seq_strategy(60), t in seq_strategy(60), gaps in gap_strategy()) {
        let scoring = Scoring::matrix(blosum62());
        let a = sw_scalar_mode(&q, &t, &scoring, gaps, AlignMode::Global).score;
        let b = sw_scalar_mode(&t, &q, &scoring, gaps, AlignMode::Global).score;
        prop_assert_eq!(a, b);
    }

    /// Banded scores are monotone in the width and reach the unbanded
    /// score once the band covers the matrix.
    #[test]
    fn banded_monotone(q in seq_strategy(60), t in seq_strategy(60), gaps in gap_strategy()) {
        let scoring = Scoring::matrix(blosum62());
        let full = sw_scalar(&q, &t, &scoring, gaps).score;
        let mut prev = 0i32;
        for width in [0usize, 3, 9, 27, 200] {
            let mut st = KernelStats::default();
            let got = banded_score(
                EngineKind::best(), Precision::I32, &q, &t, &scoring, gaps, width, 8, &mut st,
            ).score;
            prop_assert!(got >= prev, "width {} lowered score {} -> {}", width, prev, got);
            prop_assert!(got <= full);
            prev = got;
        }
        prop_assert_eq!(prev, full);
    }

    /// The batch kernel agrees with the scalar reference on whole
    /// mini-databases.
    #[test]
    fn batch_search_matches_reference(
        q in seq_strategy(40),
        targets in prop::collection::vec(seq_strategy(40), 1..12),
    ) {
        let alphabet = swsimd::matrices::Alphabet::protein();
        let records: Vec<swsimd::SeqRecord> = targets
            .iter()
            .enumerate()
            .map(|(i, t)| swsimd::SeqRecord::new(format!("s{i}"), alphabet.decode(t)))
            .collect();
        let db = swsimd::Database::from_records(records, &alphabet);
        let scoring = Scoring::matrix(blosum62());
        let gaps = GapModel::default_affine();
        let mut aligner = swsimd::Aligner::new();
        for hit in aligner.search(&q, &db, 0) {
            let want = sw_scalar(&q, &db.encoded(hit.db_index).idx, &scoring, gaps).score;
            prop_assert_eq!(hit.score, want);
        }
    }
}

// ---------------------------------------------------------------------
// Durability properties (DESIGN.md §10): random corruption of persisted
// artifacts — database images and search journals — is always detected.
// ---------------------------------------------------------------------

use std::sync::OnceLock;

fn synth_db(n_seqs: usize, seed: u64) -> swsimd::Database {
    swsimd::seq::generate_database(&swsimd::seq::SynthConfig {
        n_seqs,
        seed,
        median_len: 40.0,
        max_len: 90,
        ..Default::default()
    })
}

/// A valid v2 database image, built once.
fn image_fixture() -> &'static Vec<u8> {
    static IMAGE: OnceLock<Vec<u8>> = OnceLock::new();
    IMAGE.get_or_init(|| {
        let alphabet = swsimd::matrices::Alphabet::protein();
        let db = synth_db(10, 71);
        let batched = swsimd::seq::BatchedDatabase::build(&db, 16, true);
        swsimd::seq::save_database_image(&db, &batched, &alphabet).to_vec()
    })
}

/// A complete search journal plus its parsed clean form, built once.
fn journal_fixture() -> &'static (Vec<u8>, swsimd::Journal) {
    static JOURNAL: OnceLock<(Vec<u8>, swsimd::Journal)> = OnceLock::new();
    JOURNAL.get_or_init(|| {
        let db = synth_db(18, 72);
        let q: Vec<u8> = (0..36u8).map(|i| i % 20).collect();
        let cfg = swsimd::runner::PoolConfig {
            threads: 3,
            sort_batches: true,
            ..Default::default()
        };
        let mut jw = swsimd::JournalWriter::new(Vec::new()).expect("journal header");
        swsimd::checkpointed_search(
            &q,
            &db,
            &cfg,
            || swsimd::Aligner::builder().matrix(blosum62()),
            &mut jw,
        )
        .expect("clean checkpointed search");
        let bytes = jw.into_inner();
        let clean = swsimd::read_journal(&bytes).expect("clean journal parses");
        (bytes, clean)
    })
}

/// Apply an arbitrary truncation and/or bit flip. Returns `None` when
/// the mutation leaves the bytes unchanged.
fn corrupt(clean: &[u8], cut: Option<usize>, flip: Option<(usize, u8)>) -> Option<Vec<u8>> {
    let mut data = clean.to_vec();
    let mut changed = false;
    if let Some(cut) = cut {
        let cut = cut % (data.len() + 1);
        if cut < data.len() {
            data.truncate(cut);
            changed = true;
        }
    }
    if let Some((pos, mask)) = flip {
        if !data.is_empty() {
            let pos = pos % data.len();
            data[pos] ^= mask;
            changed = true;
        }
    }
    changed.then_some(data)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 192, ..ProptestConfig::default() })]

    /// Any truncation and/or bit flip of a v2 database image yields a
    /// typed error — never a panic, never a silently wrong database
    /// (every byte of the image is covered by a CRC32).
    #[test]
    fn corrupted_image_never_loads(
        cut in proptest::option::of(0usize..1 << 16),
        flip in proptest::option::of((0usize..1 << 16, 1u8..=255u8)),
    ) {
        let image = image_fixture();
        let bad = corrupt(image, cut, flip);
        prop_assume!(bad.is_some()); // skip no-op mutations
        let bad = bad.unwrap();
        let alphabet = swsimd::matrices::Alphabet::protein();
        prop_assert!(
            swsimd::seq::load_database_image(&bad, &alphabet).is_err(),
            "corrupted image of {} bytes (clean {}) loaded silently",
            bad.len(),
            image.len()
        );
    }

    /// Any truncation and/or bit flip of a search journal either fails
    /// to read, or replays a verified prefix of the clean journal —
    /// damage costs recomputed work, never wrong hits.
    #[test]
    fn corrupted_journal_never_replays_wrong(
        cut in proptest::option::of(0usize..1 << 16),
        flip in proptest::option::of((0usize..1 << 16, 1u8..=255u8)),
    ) {
        let (bytes, clean) = journal_fixture();
        let bad = corrupt(bytes, cut, flip);
        prop_assume!(bad.is_some()); // skip no-op mutations
        let bad = bad.unwrap();
        match swsimd::read_journal(&bad) {
            Err(_) => {} // CRC framing rejected the damage: fine
            Ok(journal) => {
                prop_assert_eq!(journal.meta, clean.meta);
                for entry in &journal.entries {
                    let reference = clean.entries.iter().find(|e| e.chunk == entry.chunk);
                    prop_assert_eq!(Some(entry), reference, "replayed frame drifted");
                }
            }
        }
    }
}
