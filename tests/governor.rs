//! End-to-end work-governor tests: stuck-worker reaping through the
//! batch server, mid-compute deadline cancellation at the kernel
//! check interval, and cancellation safety of the durable search
//! journal (a cancelled scan leaves a clean prefix that resumes
//! bit-identically).

use std::sync::Arc;
use std::time::{Duration, Instant};

use proptest::prelude::*;
use swsimd::core::{CancelReason, CancelToken, GovernorScope, CANCEL_CHECK_PERIOD};
use swsimd::matrices::{blosum62, Alphabet};
use swsimd::runner::{parallel_search, BatchServer, PoolConfig, ServerConfig};
use swsimd::seq::{generate_database, generate_exact, SynthConfig};
use swsimd::{checkpointed_search, read_journal, resume_search, JournalWriter};
use swsimd::{Aligner, FaultPlan};

fn small_db() -> swsimd::Database {
    generate_database(&SynthConfig {
        n_seqs: 32,
        max_len: 120,
        median_len: 60.0,
        ..Default::default()
    })
}

fn enc(len: usize, seed: u64) -> Vec<u8> {
    Alphabet::protein().encode(&generate_exact(len, seed).seq)
}

/// Acceptance path: a FaultPlan-hung worker is reaped by the stall
/// watchdog, the query is still answered exactly via the scalar
/// retry, and the fire shows up in `health_line()` and the Prometheus
/// scrape under `cancelled_total{reason="watchdog"}`.
#[test]
fn hung_worker_is_reaped_and_query_still_answered_exactly() {
    let db = Arc::new(small_db());
    let q = enc(40, 7);
    let mut direct = Aligner::builder().matrix(blosum62()).build();
    let want = direct.search(&q, &db, 5);

    let server = BatchServer::start(
        db,
        ServerConfig {
            batch_size: 1,
            max_wait: Duration::from_millis(1),
            // Wedge every slot-0 job far past the stall timeout.
            fault_plan: FaultPlan::new().delay_at(0, Duration::from_millis(400)),
            stall_timeout: Some(Duration::from_millis(50)),
            ..Default::default()
        },
        || Aligner::builder().matrix(blosum62()),
    );
    let client = server.client();
    let start = Instant::now();
    let hits = client.query(q, 5).expect("reaped and retried, not hung");
    assert_eq!(hits, want, "scalar retry after the reap stays exact");
    assert!(
        start.elapsed() < Duration::from_secs(5),
        "the watchdog must bound a wedged worker"
    );

    let line = server.health_line();
    assert!(line.contains("watchdog_fires=1"), "{line}");
    assert!(line.contains("cancelled_watchdog=1"), "{line}");
    let text = server.prometheus_text();
    assert!(
        text.contains("swsimd_server_watchdog_fires_total"),
        "{text}"
    );
    assert!(text.contains("swsimd_server_cancelled_total"), "{text}");
    assert!(text.contains("reason=\"watchdog\""), "{text}");

    let stats = server.shutdown();
    assert_eq!(stats.watchdog_fires, 1);
    assert_eq!(stats.cancelled_watchdog, 1);
    assert_eq!(stats.retries, 1);
    assert_eq!(stats.worker_panics, 0, "a stall is not a panic");
}

fn governor_cases() -> u32 {
    std::env::var("SWSIMD_FUZZ_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(32)
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: governor_cases(),
        ..ProptestConfig::default()
    })]

    /// A cancellation observed mid-compute stops the kernel within one
    /// check interval: with the token already cancelled, the DP loop
    /// must bail out after at most one `CANCEL_CHECK_PERIOD` of
    /// anti-diagonals per precision attempt, never walking the full
    /// `m + n - 1`.
    #[test]
    fn cancelled_alignment_stops_within_one_check_interval(
        m in 300usize..600,
        n in 300usize..600,
    ) {
        let qe = enc(m, m as u64);
        let te = enc(n, n as u64 + 1);
        let mut aligner = Aligner::builder()
            .matrix(blosum62())
            .traceback(false)
            .build();
        let token = CancelToken::new();
        token.cancel(CancelReason::Deadline);
        let _scope = GovernorScope::install(token);
        // The infallible API returns a garbage score under
        // cancellation; only the amount of work done matters here.
        let _ = aligner.align(&qe, &te);
        let d = aligner.stats().diagonals;
        let full = (m + n - 1) as u64;
        let bound = 3 * (CANCEL_CHECK_PERIOD as u64 + 1);
        prop_assert!(
            d <= bound && d < full,
            "cancelled kernel walked {d} diagonals (bound {bound}, full {full})"
        );
    }
}

/// Cancellation safety of the durable scan: killing a checkpointed
/// search mid-flight (cooperative cancel while one chunk is wedged)
/// must leave the journal a clean prefix of fully completed chunks,
/// and resuming it without the governor must produce hits
/// bit-identical to an uninterrupted run.
#[test]
fn cancel_mid_scan_leaves_clean_prefix_and_resume_is_bit_identical() {
    let db = small_db();
    let q = enc(40, 9);
    let make = || Aligner::builder().matrix(blosum62());
    let threads = 4;
    let plain = PoolConfig {
        threads,
        sort_batches: true,
        ..Default::default()
    };
    let want = parallel_search(&q, &db, &plain, make).hits;

    // Interrupted run: chunk 2 stalls, and the parent token is
    // cancelled while the scan is in flight.
    let token = CancelToken::new();
    let killer = {
        let t = token.clone();
        std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(40));
            t.cancel(CancelReason::ClientDrop);
        })
    };
    let cfg = PoolConfig {
        threads,
        sort_batches: true,
        fault_plan: FaultPlan::new().delay_at(2, Duration::from_millis(250)),
        cancel: Some(token),
        ..Default::default()
    };
    let mut journal = JournalWriter::new(Vec::new()).expect("in-memory journal header");
    let result = checkpointed_search(&q, &db, &cfg, make, &mut journal);
    killer.join().expect("killer thread");
    assert!(result.is_err(), "a cancelled scan must report failure");

    // The journal is a clean prefix: every record intact, fewer
    // chunks than a complete scan (the error surfaced before the
    // failed chunk could be appended).
    let bytes = journal.into_inner();
    let recovered = read_journal(&bytes).expect("cancelled journal stays readable");
    assert!(!recovered.truncated, "no torn frames from a cancel");
    assert!(
        recovered.entries.len() < threads,
        "cancel must interrupt the scan, got {} of {threads} chunks",
        recovered.entries.len()
    );

    // Resume without the cancelled governor: replays the completed
    // prefix, recomputes the rest, bit-identical to the clean run.
    let (out, stats) = resume_search(&recovered, &q, &db, &plain, make).expect("resume");
    assert_eq!(out.hits, want, "resume after cancellation is bit-identical");
    assert_eq!(
        stats.replayed_chunks + stats.recomputed_chunks,
        threads,
        "{stats:?}"
    );
    assert_eq!(stats.replayed_chunks, recovered.entries.len());
}
