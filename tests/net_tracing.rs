//! Distributed-tracing end-to-end test: real `swsimd shard` /
//! `swsimd serve` processes over TCP, one traced query, one stitched
//! request tree. Proves that the trace context minted at the gateway
//! rides the wire into every shard (same trace id everywhere), that
//! each shard's span tree hangs off the gateway request via the
//! per-shard `root_span` handed back on the reply, that the flight
//! recorder's stage breakdown partitions the observed end-to-end
//! latency, and that `swsimd trace <id>` / `swsimd slowlog` surface
//! all of it from a live cluster.

use std::io::{BufRead, BufReader, Write};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use swsimd::matrices::Alphabet;
use swsimd::net::NetClient;
use swsimd::obs::Stage;
use swsimd::seq::{generate_database, generate_exact, SynthConfig};
use swsimd::Database;

const TOP_K: usize = 6;

fn bin() -> &'static str {
    env!("CARGO_BIN_EXE_swsimd")
}

fn cluster_dir() -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("swsimd-net-tracing-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn write_fasta(path: &std::path::Path, records: &[(String, Vec<u8>)]) {
    let mut f = std::fs::File::create(path).unwrap();
    for (id, seq) in records {
        writeln!(f, ">{id}").unwrap();
        f.write_all(seq).unwrap();
        writeln!(f).unwrap();
    }
}

/// Spawn a swsimd subcommand with live tracing (`SWSIMD_TRACE=stderr`
/// installs a span sink, so span ids are nonzero and distributed
/// trees stitch) and wait for its `listening on <addr>` line.
fn spawn_listener(args: &[&str]) -> (Child, String) {
    let mut child = Command::new(bin())
        .args(args)
        .env("SWSIMD_TRACE", "stderr")
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn swsimd");
    let stdout = child.stdout.take().expect("stdout piped");
    let mut line = String::new();
    BufReader::new(stdout)
        .read_line(&mut line)
        .expect("read bound address");
    let addr = line
        .trim()
        .strip_prefix("listening on ")
        .unwrap_or_else(|| panic!("unexpected first line: {line:?}"))
        .to_string();
    (child, addr)
}

fn sigterm(child: &Child) {
    let _ = Command::new("kill")
        .args(["-TERM", &child.id().to_string()])
        .status();
}

fn wait_exit(child: &mut Child, what: &str) -> std::process::ExitStatus {
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        if let Some(status) = child.try_wait().unwrap() {
            return status;
        }
        assert!(Instant::now() < deadline, "{what} did not exit in time");
        std::thread::sleep(Duration::from_millis(50));
    }
}

fn stage_ns(stages: &[swsimd::obs::StageTiming], stage: Stage) -> Option<u64> {
    stages.iter().find(|s| s.stage == stage).map(|s| s.ns)
}

#[test]
fn one_query_through_a_real_cluster_stitches_one_trace() {
    let dir = cluster_dir();
    let db: Database = generate_database(&SynthConfig {
        n_seqs: 24,
        seed: 1401,
        median_len: 40.0,
        max_len: 90,
        ..Default::default()
    });
    let query_rec = generate_exact(40, 1402);
    let db_path = dir.join("db.fasta");
    let q_path = dir.join("query.fasta");
    write_fasta(
        &db_path,
        &(0..db.len())
            .map(|i| (db.record(i).id.clone(), db.record(i).seq.clone()))
            .collect::<Vec<_>>(),
    );
    write_fasta(&q_path, &[(query_rec.id.clone(), query_rec.seq.clone())]);
    assert!(!Alphabet::protein().encode(&query_rec.seq).is_empty());

    // Boot the cluster: three shard workers plus the gateway, all with
    // live tracing.
    let db_str = db_path.to_str().unwrap();
    let mut shards = Vec::new();
    let mut shard_addrs = Vec::new();
    for i in 0..3 {
        let idx = i.to_string();
        let (child, addr) = spawn_listener(&[
            "shard",
            db_str,
            "--listen",
            "127.0.0.1:0",
            "--shard-index",
            &idx,
            "--shards",
            "3",
            "--threads",
            "1",
        ]);
        shards.push(child);
        shard_addrs.push(addr);
    }
    let topology = shard_addrs.join(";");
    let (mut gateway, gw_addr) = spawn_listener(&[
        "serve",
        "--shards",
        &topology,
        "--listen",
        "127.0.0.1:0",
        "--hedge-after",
        "0",
    ]);

    // One query. The CLI prints the trace id the gateway minted.
    let q_str = q_path.to_str().unwrap();
    let top = TOP_K.to_string();
    let t0 = Instant::now();
    let out = Command::new(bin())
        .args([
            "query",
            &gw_addr,
            q_str,
            "--top",
            &top,
            "--deadline",
            "20000",
        ])
        .output()
        .unwrap();
    let observed_e2e = t0.elapsed();
    assert!(out.status.success(), "query failed: {out:?}");
    let stderr = String::from_utf8_lossy(&out.stderr);
    let trace_hex = stderr
        .lines()
        .find_map(|l| l.split("trace=0x").nth(1))
        .unwrap_or_else(|| panic!("no trace id in query stderr: {stderr}"))
        .trim()
        .to_string();
    let trace_id = u64::from_str_radix(&trace_hex, 16).expect("hex trace id");
    assert_ne!(trace_id, 0);

    // The gateway's flight record is the root of the stitched tree.
    let mut gw_client = NetClient::connect(&gw_addr, Duration::from_secs(5)).unwrap();
    let rec = gw_client
        .trace(trace_id)
        .expect("trace fetch")
        .expect("gateway filed a flight record for the query");
    assert_eq!(rec.trace_id, trace_id);
    assert!(rec.ok, "query should have succeeded: {rec:?}");
    assert!(!rec.degraded);
    assert!(rec.cost > 0, "cost admission estimate recorded");

    // Gateway stages partition the gateway's wall time by
    // construction: their sum must explain the recorded end-to-end
    // latency to within bookkeeping noise.
    for stage in [
        Stage::Admission,
        Stage::Dispatch,
        Stage::NetRtt,
        Stage::Merge,
    ] {
        assert!(
            stage_ns(&rec.stages, stage).is_some(),
            "gateway record missing {stage:?}: {:?}",
            rec.stages
        );
    }
    let sum = rec.stage_sum_ns();
    let slack = (rec.total_ns / 10).max(2_000_000); // 10% or 2ms
    assert!(
        sum.abs_diff(rec.total_ns) <= slack,
        "stage sum {sum}ns must explain e2e {}ns (±{slack}ns)",
        rec.total_ns
    );
    // And the recorder's e2e is bounded by what the client saw (which
    // additionally pays process spawn and two socket hops).
    assert!(
        rec.total_ns <= observed_e2e.as_nanos() as u64,
        "recorded total {}ns exceeds observed wall time {}ns",
        rec.total_ns,
        observed_e2e.as_nanos()
    );

    // Every shard contributed a timing summary carrying the root of
    // its own span tree, parented under this trace.
    assert_eq!(rec.shards.len(), 3, "all three shards in the tree: {rec:?}");
    for (i, t) in rec.shards.iter().enumerate() {
        assert_eq!(t.shard, i as u32, "timings sorted by slice");
        assert_ne!(t.root_span, 0, "live tracing must mint span ids");
        assert!(!t.engine.is_empty(), "shard reports its engine");
        assert!(t.rtt_ns > 0, "gateway stamps the observed rtt");
        assert!(
            stage_ns(&t.stages, Stage::Kernel).unwrap_or(0) > 0,
            "shard reports kernel time: {t:?}"
        );
        assert!(
            t.rtt_ns >= stage_ns(&t.stages, Stage::Kernel).unwrap(),
            "rtt includes the kernel stage"
        );
    }

    // The same trace id resolves on each shard: its flight record is
    // keyed by the propagated context, and its query id IS the span
    // the gateway knows as that shard's root — one stitched tree.
    for (i, addr) in shard_addrs.iter().enumerate() {
        let mut sc = NetClient::connect(addr, Duration::from_secs(5)).unwrap();
        let srec = sc
            .trace(trace_id)
            .expect("shard trace fetch")
            .unwrap_or_else(|| panic!("shard {i} has no record for trace {trace_id:#x}"));
        assert_eq!(srec.trace_id, trace_id, "one trace id across processes");
        assert!(srec.ok);
        assert_eq!(
            srec.query_id, rec.shards[i].root_span,
            "shard {i}'s record hangs off the span the gateway stitched"
        );
        assert!(
            stage_ns(&srec.stages, Stage::Kernel).unwrap_or(0) > 0,
            "shard record carries its own stage breakdown: {srec:?}"
        );
    }

    // `swsimd trace <id>` renders the same tree for operators.
    let cli = Command::new(bin())
        .args(["trace", &gw_addr, &format!("0x{trace_hex}")])
        .output()
        .unwrap();
    assert!(cli.status.success(), "swsimd trace failed: {cli:?}");
    let text = String::from_utf8_lossy(&cli.stdout);
    assert!(text.contains(&format!("trace=0x{trace_hex}")), "{text}");
    assert!(text.contains("stages:") && text.contains("e2e"), "{text}");
    for i in 0..3 {
        assert!(text.contains(&format!("shard={i}")), "{text}");
    }

    // The JSON endpoint serves machine-readable records too.
    let json = Command::new(bin())
        .args(["trace", &gw_addr, &format!("0x{trace_hex}"), "--json"])
        .output()
        .unwrap();
    assert!(json.status.success());
    let jtext = String::from_utf8_lossy(&json.stdout);
    assert!(
        jtext.contains("trace_id") && jtext.trim() != "null",
        "JSON flight record expected: {jtext}"
    );

    // `swsimd slowlog` answers from a live cluster (this query is
    // likely under the slow threshold, so empty is acceptable).
    let slow = Command::new(bin())
        .args(["slowlog", &gw_addr, "--limit", "8"])
        .output()
        .unwrap();
    assert!(slow.status.success(), "swsimd slowlog failed: {slow:?}");

    // Clean drain.
    sigterm(&gateway);
    assert!(wait_exit(&mut gateway, "gateway").success());
    for shard in shards.iter_mut() {
        sigterm(shard);
        assert!(wait_exit(shard, "shard").success());
    }
    let _ = std::fs::remove_dir_all(&dir);
}
