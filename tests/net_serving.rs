//! In-process end-to-end tests of the networked sharded serving tier:
//! scatter-gather correctness against the unsharded reference, and
//! every robustness headline — breaker opening and probe re-admission,
//! deterministic retry of injected network faults, hedging past a slow
//! replica, client-drop cancellation over a real TCP disconnect,
//! graceful drain, journal resume across a shard restart, and deadline
//! propagation — all driven by [`FaultPlan`], not sleeps-and-hope.

use std::net::{TcpListener, TcpStream};
use std::sync::Arc;
use std::time::{Duration, Instant};

use swsimd::matrices::{blosum62, Alphabet};
use swsimd::net::wire::{read_msg, write_msg, Msg};
use swsimd::net::{
    BreakerState, Gateway, GatewayConfig, GatewayMetrics, GatewayServer, NetClient, NetError,
    RemoteError, RetryPolicy, ShardConfig, ShardServer,
};
use swsimd::runner::{parallel_search, rank_hits, PoolConfig, ServeError, ServerConfig};
use swsimd::seq::{generate_database, generate_exact, SynthConfig};
use swsimd::{Aligner, Database, FaultPlan, Hit};

fn db(n: usize, seed: u64) -> Database {
    generate_database(&SynthConfig {
        n_seqs: n,
        seed,
        median_len: 50.0,
        max_len: 120,
        ..Default::default()
    })
}

fn enc(len: usize, seed: u64) -> Vec<u8> {
    Alphabet::protein().encode(&generate_exact(len, seed).seq)
}

fn builder() -> swsimd::AlignerBuilder {
    Aligner::builder().matrix(blosum62())
}

/// The unsharded oracle: exact ranked hits over the full database.
fn reference_hits(query: &[u8], db: &Database, top_k: usize) -> Vec<Hit> {
    let out = parallel_search(
        query,
        db,
        &PoolConfig {
            threads: 2,
            sort_batches: true,
            ..Default::default()
        },
        builder,
    );
    rank_hits(out.hits, top_k)
}

fn start_shard(db: &Database, index: u32, count: u32, fault: FaultPlan) -> ShardServer {
    start_shard_cfg(
        db,
        ShardConfig {
            shard_index: index,
            shard_count: count,
            fault,
            ..Default::default()
        },
    )
}

fn start_shard_cfg(db: &Database, cfg: ShardConfig) -> ShardServer {
    ShardServer::start(db, &Alphabet::protein(), cfg, builder).expect("shard start")
}

fn gateway_over(shards: &[&ShardServer], cfg: GatewayConfig) -> Gateway {
    let mut topo = Vec::new();
    for s in shards {
        topo.push(vec![s.local_addr().to_string()]);
    }
    Gateway::new(GatewayConfig {
        shards: topo,
        ..cfg
    })
}

fn fast_retry() -> RetryPolicy {
    RetryPolicy {
        base: Duration::from_millis(5),
        cap: Duration::from_millis(20),
        budget: 3,
        seed: 99,
    }
}

/// Sum every sample of a counter family in the global scrape
/// (families may be split across `instance`/`shard` labels).
fn scrape_sum(family: &str) -> u64 {
    swsimd::obs::global()
        .prometheus_text()
        .lines()
        .filter(|l| l.starts_with(family) && !l.starts_with('#'))
        .filter_map(|l| l.rsplit(' ').next()?.parse::<f64>().ok())
        .sum::<f64>() as u64
}

fn scrape_labelled(family: &str, label: &str) -> u64 {
    swsimd::obs::global()
        .prometheus_text()
        .lines()
        .filter(|l| l.starts_with(family) && l.contains(label))
        .filter_map(|l| l.rsplit(' ').next()?.parse::<f64>().ok())
        .sum::<f64>() as u64
}

#[test]
fn sharded_scatter_gather_matches_unsharded_reference() {
    let db = db(48, 401);
    let q = enc(60, 402);
    let want = reference_hits(&q, &db, 10);
    assert!(!want.is_empty());

    let shards: Vec<ShardServer> = (0..3)
        .map(|i| start_shard(&db, i, 3, FaultPlan::default()))
        .collect();
    let gw = gateway_over(
        &shards.iter().collect::<Vec<_>>(),
        GatewayConfig {
            retry: fast_retry(),
            ..Default::default()
        },
    );
    let resp = gw.query(&q, 10, None).expect("query");
    assert!(!resp.degraded);
    assert!(resp.missing_shards.is_empty());
    assert_eq!(resp.hits, want, "sharded merge must be bit-identical");

    // The same answer through the gateway front door over TCP.
    let front = GatewayServer::start(gw, "127.0.0.1:0", Duration::from_secs(2)).expect("front");
    let mut client =
        NetClient::connect(&front.local_addr().to_string(), Duration::from_secs(10)).unwrap();
    let reply = client.query(&q, 10, 0).expect("front query");
    assert!(!reply.degraded);
    assert_eq!(reply.hits, want);

    // And directly against one shard: its slice of the ranking, with
    // global indices.
    let mut direct =
        NetClient::connect(&shards[1].local_addr().to_string(), Duration::from_secs(10)).unwrap();
    let slice_reply = direct.query(&q, 10, 0).expect("direct shard query");
    let ranges = db.partition(3);
    assert!(slice_reply
        .hits
        .iter()
        .all(|h| ranges[1].contains(&h.db_index)));

    assert!(front.shutdown());
    for s in shards {
        assert!(s.shutdown());
    }
}

#[test]
fn dead_shard_degrades_then_breaker_readmits_after_probes() {
    let db = db(36, 403);
    let q = enc(50, 404);
    let want_full = reference_hits(&q, &db, 8);

    let s0 = start_shard(&db, 0, 3, FaultPlan::default());
    let s1 = start_shard(&db, 1, 3, FaultPlan::default());
    // Reserve a port for shard 2 but leave it dead for now.
    let reserved = {
        let l = TcpListener::bind("127.0.0.1:0").unwrap();
        l.local_addr().unwrap()
    };

    let gw = Gateway::new(GatewayConfig {
        shards: vec![
            vec![s0.local_addr().to_string()],
            vec![s1.local_addr().to_string()],
            vec![reserved.to_string()],
        ],
        retry: RetryPolicy {
            budget: 2,
            base: Duration::from_millis(2),
            cap: Duration::from_millis(10),
            seed: 7,
        },
        connect_timeout: Duration::from_millis(500),
        strike_threshold: 1,
        readmit_after: 2,
        ..Default::default()
    });

    let down_before = scrape_labelled("swsimd_shard_down_total", "shard=\"2\"");
    let degraded = GatewayMetrics::new().degraded.get();

    // Shard 2 is down past its retry budget: partial result, typed
    // degradation marker, breaker open.
    let resp = gw.query(&q, 8, None).expect("degraded query succeeds");
    assert!(resp.degraded);
    assert_eq!(resp.missing_shards, vec![2]);
    let ranges = db.partition(3);
    assert!(resp.hits.iter().all(|h| !ranges[2].contains(&h.db_index)));
    // The slices that answered are still exact.
    let want_partial: Vec<Hit> = {
        let partial: Vec<Hit> = reference_hits(&q, &db, 0)
            .into_iter()
            .filter(|h| !ranges[2].contains(&h.db_index))
            .collect();
        rank_hits(partial, 8)
    };
    assert_eq!(resp.hits, want_partial);
    assert_eq!(gw.replica_states()[2], BreakerState::Down);
    assert!(
        scrape_labelled("swsimd_shard_down_total", "shard=\"2\"") > down_before,
        "breaker opening must be counted"
    );
    assert!(GatewayMetrics::new().degraded.get() > degraded);

    // Probing a still-dead shard keeps the breaker open.
    assert_eq!(gw.probe_now(), 0);
    assert_eq!(gw.replica_states()[2], BreakerState::Down);

    // Bring shard 2 up on the reserved address; two probe passes
    // re-admit it and the next query is whole again.
    let s2 = start_shard_cfg(
        &db,
        ShardConfig {
            listen: reserved.to_string(),
            shard_index: 2,
            shard_count: 3,
            ..Default::default()
        },
    );
    assert_eq!(gw.probe_now(), 0, "first pass is probation");
    assert_eq!(gw.replica_states()[2], BreakerState::Probation);
    assert_eq!(gw.probe_now(), 1, "second pass re-admits");
    assert_eq!(gw.replica_states()[2], BreakerState::Healthy);

    let resp = gw.query(&q, 8, None).expect("recovered query");
    assert!(!resp.degraded);
    assert_eq!(resp.hits, want_full);

    assert!(s0.shutdown());
    assert!(s1.shutdown());
    assert!(s2.shutdown());
}

#[test]
fn refused_connects_retry_within_budget() {
    let db = db(24, 405);
    let q = enc(40, 406);
    let want = reference_hits(&q, &db, 5);

    let shard = start_shard(&db, 0, 1, FaultPlan::default());
    let retries_before = GatewayMetrics::new().retries.get();
    // Refuse the first two connects to replica ordinal 0: attempts 0
    // and 1 fail deterministically, attempt 2 succeeds.
    let gw = gateway_over(
        &[&shard],
        GatewayConfig {
            retry: fast_retry(),
            strike_threshold: 5, // stay under the breaker threshold
            fault: FaultPlan::new().refuse_connect(0, 2),
            ..Default::default()
        },
    );
    let resp = gw.query(&q, 5, None).expect("third attempt lands");
    assert!(!resp.degraded);
    assert_eq!(resp.hits, want);
    assert!(
        GatewayMetrics::new().retries.get() >= retries_before + 2,
        "both refused connects must be counted as retries"
    );
    assert!(shard.shutdown());
}

#[test]
fn torn_and_bit_flipped_replies_are_retried_not_trusted() {
    let db = db(24, 407);
    let q = enc(40, 408);
    let want = reference_hits(&q, &db, 5);

    // First reply torn mid-frame, second reply bit-flipped: the
    // gateway must burn two retries and succeed on the third attempt
    // with an uncorrupted answer.
    let shard = start_shard(
        &db,
        0,
        1,
        FaultPlan::new().torn_reply_at(0, 1).flip_reply_at(0, 1),
    );
    let retries_before = GatewayMetrics::new().retries.get();
    let gw = gateway_over(
        &[&shard],
        GatewayConfig {
            retry: fast_retry(),
            strike_threshold: 5,
            ..Default::default()
        },
    );
    let resp = gw.query(&q, 5, None).expect("retry past both faults");
    assert_eq!(resp.hits, want, "corrupt replies must never surface");
    assert!(GatewayMetrics::new().retries.get() >= retries_before + 2);
    assert!(shard.shutdown());
}

#[test]
fn hedged_request_overtakes_a_slow_replica() {
    let db = db(24, 409);
    let q = enc(40, 410);
    let want = reference_hits(&q, &db, 5);

    // Two replicas of the same (single) slice; the primary's replies
    // are delayed far beyond the hedge floor.
    let slow = start_shard(
        &db,
        0,
        1,
        FaultPlan::new().delay_reply_at(0, Duration::from_millis(1500)),
    );
    let fast = start_shard(&db, 0, 1, FaultPlan::default());
    let hedges_before = GatewayMetrics::new().hedges.get();
    let gw = Gateway::new(GatewayConfig {
        shards: vec![vec![
            slow.local_addr().to_string(),
            fast.local_addr().to_string(),
        ]],
        retry: fast_retry(),
        hedge_after: Some(Duration::from_millis(30)),
        ..Default::default()
    });
    let started = Instant::now();
    let resp = gw.query(&q, 5, None).expect("hedge wins");
    let elapsed = started.elapsed();
    assert_eq!(resp.hits, want);
    assert!(
        GatewayMetrics::new().hedges.get() > hedges_before,
        "the duplicate request must be counted"
    );
    assert!(
        elapsed < Duration::from_millis(1200),
        "hedge should beat the {elapsed:?} slow primary"
    );
    assert!(fast.shutdown());
    assert!(slow.shutdown());
}

#[test]
fn real_tcp_disconnect_cancels_with_client_drop() {
    let db = db(24, 411);
    let q = enc(40, 412);
    // Slow the batch server's only batch slot so the query is still
    // computing when the client vanishes.
    let shard = start_shard_cfg(
        &db,
        ShardConfig {
            server: ServerConfig {
                fault_plan: FaultPlan::new().delay_at(0, Duration::from_millis(400)),
                ..Default::default()
            },
            ..Default::default()
        },
    );
    let dropped_before = scrape_labelled("swsimd_net_cancelled_total", "reason=\"client_drop\"");

    // Raw connection: send a query frame, then vanish mid-compute.
    {
        let mut stream = TcpStream::connect(shard.local_addr()).unwrap();
        write_msg(
            &mut stream,
            &Msg::Query {
                id: 1,
                top_k: 5,
                deadline_ms: 0,
                slice_index: 0,
                slice_count: 0,
                query: q.clone(),
                trace: Default::default(),
                tenant: String::new(),
            },
        )
        .unwrap();
        std::thread::sleep(Duration::from_millis(50));
        // Dropping the stream closes the socket: this disconnect IS
        // the cancellation signal.
    }

    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        let dropped = scrape_labelled("swsimd_net_cancelled_total", "reason=\"client_drop\"");
        if dropped > dropped_before {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "client drop was never detected/counted"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
    assert!(shard.shutdown());
}

#[test]
fn drain_refuses_new_queries_and_finishes_in_flight() {
    let db = db(24, 413);
    let q = enc(40, 414);
    let want = reference_hits(&q, &db, 5);
    let shard = Arc::new(start_shard_cfg(
        &db,
        ShardConfig {
            server: ServerConfig {
                fault_plan: FaultPlan::new().delay_at(0, Duration::from_millis(300)),
                ..Default::default()
            },
            drain_timeout: Duration::from_secs(5),
            ..Default::default()
        },
    ));
    let addr = shard.local_addr().to_string();

    // In-flight query on its own thread.
    let q2 = q.clone();
    let addr2 = addr.clone();
    let inflight = std::thread::spawn(move || {
        let mut c = NetClient::connect(&addr2, Duration::from_secs(10)).unwrap();
        c.query(&q2, 5, 0)
    });
    let wait_deadline = Instant::now() + Duration::from_secs(5);
    while shard.in_flight() == 0 {
        assert!(Instant::now() < wait_deadline, "query never started");
        std::thread::sleep(Duration::from_millis(5));
    }

    // Drain: new queries refused with a typed error, probes still
    // answer and report draining.
    shard.drain();
    let mut late = NetClient::connect(&addr, Duration::from_secs(10)).unwrap();
    match late.query(&q, 5, 0) {
        Err(NetError::Remote(RemoteError::Draining)) => {}
        other => panic!("expected Draining, got {other:?}"),
    }
    let pong = late.ping().expect("probes still answer while draining");
    assert!(pong.draining);

    // The in-flight query still completes exactly.
    let got = inflight.join().unwrap().expect("in-flight query finishes");
    assert_eq!(got.hits, want);

    let shard = Arc::into_inner(shard).unwrap();
    assert!(shard.shutdown(), "drain finished with nothing in flight");
}

#[test]
fn journal_checkpoint_resumes_across_shard_restart() {
    let db = db(32, 415);
    let q = enc(40, 416);
    let want = reference_hits(&q, &db, 5);
    let dir = std::env::temp_dir().join(format!("swsimd-net-journal-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    // Run 1: the journal writer crashes after one checkpointed chunk.
    // The typed error reaches the client; the fsynced journal stays.
    let crashing = start_shard_cfg(
        &db,
        ShardConfig {
            journal_dir: Some(dir.clone()),
            threads: 4,
            fault: FaultPlan::new().crash_after_chunks(1),
            ..Default::default()
        },
    );
    let mut client =
        NetClient::connect(&crashing.local_addr().to_string(), Duration::from_secs(10)).unwrap();
    match client.query(&q, 5, 0) {
        Err(NetError::Remote(RemoteError::Serve(ServeError::WorkerPanicked))) => {}
        other => panic!("expected WorkerPanicked from the crash fault, got {other:?}"),
    }
    drop(client);
    assert!(crashing.shutdown());
    let journals: Vec<_> = std::fs::read_dir(&dir).unwrap().collect();
    assert_eq!(journals.len(), 1, "the interrupted journal must survive");

    // Run 2: a fresh shard process over the same journal directory
    // resumes the checkpoint instead of recomputing from scratch.
    let replays_before = scrape_sum("swsimd_server_journal_replays_total");
    let restarted = start_shard_cfg(
        &db,
        ShardConfig {
            journal_dir: Some(dir.clone()),
            threads: 4,
            ..Default::default()
        },
    );
    let mut client =
        NetClient::connect(&restarted.local_addr().to_string(), Duration::from_secs(10)).unwrap();
    let reply = client.query(&q, 5, 0).expect("resumed query succeeds");
    assert_eq!(reply.hits, want, "resume must be bit-identical");
    assert!(
        scrape_sum("swsimd_server_journal_replays_total") > replays_before,
        "the restart must resume via the journal, not recompute"
    );
    assert!(
        std::fs::read_dir(&dir).unwrap().next().is_none(),
        "journal removed after successful completion"
    );
    assert!(restarted.shutdown());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn deadline_propagates_across_the_wire_as_a_fatal_error() {
    let db = db(24, 417);
    let q = enc(40, 418);
    let shard = start_shard_cfg(
        &db,
        ShardConfig {
            server: ServerConfig {
                fault_plan: FaultPlan::new().delay_at(0, Duration::from_millis(800)),
                ..Default::default()
            },
            ..Default::default()
        },
    );
    // Direct: the shard times the query out with the wire deadline.
    let mut client =
        NetClient::connect(&shard.local_addr().to_string(), Duration::from_secs(10)).unwrap();
    match client.query(&q, 5, 50) {
        Err(NetError::Remote(RemoteError::Serve(ServeError::DeadlineExceeded))) => {}
        other => panic!("expected DeadlineExceeded, got {other:?}"),
    }

    // Through the gateway: deadline errors are fatal — no retry burn,
    // the whole query fails typed.
    let retries_before = GatewayMetrics::new().retries.get();
    let gw = gateway_over(
        &[&shard],
        GatewayConfig {
            retry: fast_retry(),
            ..Default::default()
        },
    );
    match gw.query(&q, 5, Some(Duration::from_millis(60))) {
        Err(RemoteError::Serve(ServeError::DeadlineExceeded)) => {}
        other => panic!("expected fatal DeadlineExceeded, got {other:?}"),
    }
    assert_eq!(
        GatewayMetrics::new().retries.get(),
        retries_before,
        "fatal errors must not be retried"
    );
    assert!(shard.shutdown());
}

/// The acceptance scenario: a shard that accepted the query and then
/// went silent (reply delayed far past the per-attempt timeout — the
/// deterministic stand-in for a kill mid-query). The gateway burns its
/// bounded retry budget against the stalled shard and returns the
/// exact partial ranking, typed `degraded`, well inside the query
/// deadline.
#[test]
fn shard_dying_mid_query_degrades_within_deadline() {
    let db = db(36, 421);
    let q = enc(50, 422);
    let ranges = db.partition(3);

    let s0 = start_shard(&db, 0, 3, FaultPlan::default());
    let s1 = start_shard(&db, 1, 3, FaultPlan::default());
    // Shard 2 receives the query, computes it, and never gets the
    // reply out: each attempt times out at the gateway.
    let s2 = start_shard(
        &db,
        2,
        3,
        FaultPlan::new().delay_reply_at(2, Duration::from_secs(2)),
    );
    let gw = Gateway::new(GatewayConfig {
        shards: vec![
            vec![s0.local_addr().to_string()],
            vec![s1.local_addr().to_string()],
            vec![s2.local_addr().to_string()],
        ],
        retry: RetryPolicy {
            budget: 2,
            base: Duration::from_millis(5),
            cap: Duration::from_millis(20),
            seed: 3,
        },
        request_timeout: Duration::from_millis(200),
        strike_threshold: 2,
        ..Default::default()
    });

    let started = Instant::now();
    let resp = gw
        .query(&q, 8, Some(Duration::from_secs(10)))
        .expect("degrade, not fail");
    let elapsed = started.elapsed();
    assert!(resp.degraded);
    assert_eq!(resp.missing_shards, vec![2]);
    let want_partial: Vec<Hit> = rank_hits(
        reference_hits(&q, &db, 0)
            .into_iter()
            .filter(|h| !ranges[2].contains(&h.db_index))
            .collect(),
        8,
    );
    assert_eq!(resp.hits, want_partial);
    assert!(
        elapsed < Duration::from_secs(10),
        "degradation must land inside the deadline, took {elapsed:?}"
    );

    assert!(s0.shutdown());
    assert!(s1.shutdown());
    // s2's connection threads are still sleeping out their injected
    // reply delays; its Drop waits them out (bounded by the delay).
    drop(s2);
}

#[test]
fn wrong_shard_coordinates_are_rejected_typed() {
    let db = db(16, 419);
    let shard = start_shard(&db, 1, 3, FaultPlan::default());
    let mut stream = TcpStream::connect(shard.local_addr()).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    write_msg(
        &mut stream,
        &Msg::Query {
            id: 9,
            top_k: 5,
            deadline_ms: 0,
            slice_index: 2, // addressed to the wrong slice
            slice_count: 3,
            query: enc(20, 420),
            trace: Default::default(),
            tenant: String::new(),
        },
    )
    .unwrap();
    match read_msg(&mut stream) {
        Ok(Msg::Error {
            err: RemoteError::WrongShard { got: 2, want: 1 },
            ..
        }) => {}
        other => panic!("expected WrongShard, got {other:?}"),
    }
    assert!(shard.shutdown());
}
