//! Wire-codec hardening: property-based round-trips for every frame
//! kind, plus a seeded fuzz sweep over truncated and bit-flipped
//! frames asserting the decoder returns typed errors and never
//! panics. `SWSIMD_FUZZ_CASES` scales the sweep (default 10_000).

use std::io::Cursor;

use proptest::prelude::*;
use swsimd::core::{AlignError, Hit, Precision};
use swsimd::net::wire::frame;
use swsimd::net::{read_msg, write_msg, Msg, RemoteError, StreamToken, WireError, MAX_FRAME};
use swsimd::obs::{ShardTiming, Stage, StageTiming, TraceCtx};
use swsimd::runner::{Fidelity, ServeError, MAX_TENANT_LEN};
use swsimd::EngineKind;

fn trace_strategy() -> impl Strategy<Value = TraceCtx> {
    // 0/0 is the untraced default; nonzero ids exercise the extension
    // tail. A zero trace id with a nonzero span id still encodes as
    // untraced (is_traced is keyed on trace_id alone).
    prop_oneof![
        Just(TraceCtx::default()),
        (1u64..u64::MAX, 0u64..u64::MAX)
            .prop_map(|(trace_id, span_id)| TraceCtx { trace_id, span_id }),
    ]
}

fn stage_strategy() -> impl Strategy<Value = StageTiming> {
    (
        prop_oneof![
            Just(Stage::Admission),
            Just(Stage::Queue),
            Just(Stage::Dispatch),
            Just(Stage::Kernel),
            Just(Stage::Traceback),
            Just(Stage::NetRtt),
            Just(Stage::Merge),
        ],
        0u64..u64::MAX,
    )
        .prop_map(|(stage, ns)| StageTiming { stage, ns })
}

fn timing_strategy() -> impl Strategy<Value = Option<ShardTiming>> {
    prop_oneof![
        Just(None),
        (
            (0u32..64, 0u64..u64::MAX, 0u64..u64::MAX),
            prop_oneof![Just(""), Just("scalar"), Just("AVX2"), Just("AVX-512")],
            prop::collection::vec(stage_strategy(), 0..7),
        )
            .prop_map(|((shard, root_span, rtt_ns), engine, stages)| {
                Some(ShardTiming {
                    shard,
                    root_span,
                    engine: engine.to_string(),
                    rtt_ns,
                    stages,
                })
            }),
    ]
}

fn tenant_strategy() -> impl Strategy<Value = String> {
    // Empty (the default tenant — encodes as ext absence), short ASCII
    // names, and a multibyte UTF-8 name near the byte cap.
    prop_oneof![
        Just(String::new()),
        prop::collection::vec(b'a'..=b'z', 1..=16)
            .prop_map(|bs| bs.into_iter().map(char::from).collect()),
        Just("équipe-β".to_string()),
    ]
}

fn fidelity_strategy() -> impl Strategy<Value = Fidelity> {
    prop_oneof![
        Just(Fidelity::Full),
        Just(Fidelity::NoShadow),
        Just(Fidelity::ScoreOnly),
        Just(Fidelity::TightDeadline),
    ]
}

fn roundtrip(msg: &Msg) -> Msg {
    let mut buf = Vec::new();
    write_msg(&mut buf, msg).expect("encode");
    let mut cur = Cursor::new(buf);
    let back = read_msg(&mut cur).expect("decode");
    // The stream must be fully consumed: a second read is a clean EOF.
    assert!(matches!(read_msg(&mut cur), Err(WireError::Eof)));
    back
}

fn precision_strategy() -> impl Strategy<Value = Precision> {
    prop_oneof![
        Just(Precision::I8),
        Just(Precision::I16),
        Just(Precision::I32),
        Just(Precision::Adaptive),
    ]
}

fn hit_strategy() -> impl Strategy<Value = Hit> {
    (0usize..1_000_000, -100i32..10_000, precision_strategy()).prop_map(
        |(db_index, score, precision)| Hit {
            db_index,
            score,
            precision,
        },
    )
}

fn serve_error_strategy() -> impl Strategy<Value = ServeError> {
    prop_oneof![
        Just(ServeError::ShutDown),
        Just(ServeError::DeadlineExceeded),
        (0u64..100_000).prop_map(|retry_after_ms| ServeError::QueueFull { retry_after_ms }),
        (0u64..100_000).prop_map(|retry_after_ms| ServeError::RateLimited { retry_after_ms }),
        Just(ServeError::WorkerPanicked),
        (0usize..10_000, 0u8..255).prop_map(|(position, value)| {
            ServeError::InvalidQuery(AlignError::InvalidResidue { position, value })
        }),
        precision_strategy()
            .prop_map(|precision| ServeError::InvalidQuery(AlignError::Saturated { precision })),
        (1usize..1_000_000, 1usize..1_000)
            .prop_map(|(len, limit)| ServeError::QueryTooLarge { len, limit }),
        prop_oneof![
            Just(EngineKind::Scalar),
            Just(EngineKind::Sse41),
            Just(EngineKind::Avx2),
            Just(EngineKind::Avx512),
        ]
        .prop_map(|requested| ServeError::EngineUnavailable {
            requested,
            reason: swsimd::core::error::REMOTE_UNAVAILABLE_REASON,
        }),
        (1u64..u64::MAX, 1u64..u64::MAX)
            .prop_map(|(cost, limit)| ServeError::CostTooHigh { cost, limit }),
        (1u64..u64::MAX, 1u64..u64::MAX)
            .prop_map(|(requested, limit)| ServeError::BudgetExceeded { requested, limit }),
    ]
}

fn remote_error_strategy() -> impl Strategy<Value = RemoteError> {
    prop_oneof![
        serve_error_strategy().prop_map(RemoteError::Serve),
        (0u32..64, 0u32..64).prop_map(|(got, want)| RemoteError::WrongShard { got, want }),
        Just(RemoteError::Draining),
        Just(RemoteError::Unavailable),
        Just(RemoteError::BadResumeToken),
    ]
}

fn token_strategy() -> impl Strategy<Value = StreamToken> {
    (
        0u64..u64::MAX,
        0u32..u32::MAX,
        0u32..10_000,
        prop::collection::vec((0u32..64, 0u64..u64::MAX), 0..8),
    )
        .prop_map(|(trace_id, query_crc, top_k, cursors)| StreamToken {
            trace_id,
            query_crc,
            top_k,
            cursors,
        })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 128, ..ProptestConfig::default() })]

    #[test]
    fn query_round_trips(
        id in 0u64..u64::MAX,
        top_k in 0u32..10_000,
        deadline_ms in 0u32..u32::MAX,
        slice_index in 0u32..64,
        slice_count in 0u32..64,
        query in prop::collection::vec(0u8..24, 0..512),
        trace in trace_strategy(),
        tenant in tenant_strategy(),
    ) {
        let msg = Msg::Query {
            id, top_k, deadline_ms, slice_index, slice_count, query, trace, tenant,
        };
        prop_assert_eq!(roundtrip(&msg), msg);
    }

    #[test]
    fn hits_round_trip(
        id in 0u64..u64::MAX,
        degraded in prop_oneof![Just(false), Just(true)],
        missing in prop::collection::vec(0u32..64, 0..8),
        hits in prop::collection::vec(hit_strategy(), 0..64),
        trace_id in 0u64..u64::MAX,
        timing in timing_strategy(),
        fidelity in fidelity_strategy(),
    ) {
        let msg = Msg::Hits {
            id, degraded, missing_shards: missing, hits, trace_id, timing, fidelity,
        };
        prop_assert_eq!(roundtrip(&msg), msg);
    }

    /// Forward compatibility over the extension tail: frames carrying
    /// unknown (future) extension records decode to the same message,
    /// for any record contents, in any position relative to the known
    /// extensions.
    #[test]
    fn unknown_extensions_fuzz(
        query in prop::collection::vec(0u8..24, 0..64),
        trace in trace_strategy(),
        tenant in tenant_strategy(),
        trace_id in 0u64..u64::MAX,
        timing in timing_strategy(),
        fidelity in fidelity_strategy(),
        exts in prop::collection::vec(
            // Kinds 0x10.. are unassigned today; bodies are arbitrary.
            (0x10u8..=0xFF, prop::collection::vec(any::<u8>(), 0..128)),
            1..4,
        ),
        prepend in prop_oneof![Just(false), Just(true)],
    ) {
        let push_unknown = |bytes: &mut Vec<u8>| {
            for (kind, body) in &exts {
                bytes.push(*kind);
                bytes.extend_from_slice(&(body.len() as u16).to_le_bytes());
                bytes.extend_from_slice(body);
            }
        };

        let msg = Msg::Query {
            id: 1, top_k: 5, deadline_ms: 0, slice_index: 0, slice_count: 0,
            query, trace, tenant,
        };
        let mut bytes = msg.encode();
        push_unknown(&mut bytes);
        prop_assert_eq!(Msg::decode(&bytes).expect("query decodes"), msg);

        let hits = Msg::Hits {
            id: 2, degraded: false, missing_shards: vec![], hits: vec![],
            trace_id, timing, fidelity,
        };
        let bytes = if prepend {
            // Splice the unknown records *before* the known tail: take
            // the fixed body (encode with no extensions), then append
            // unknown + known records by re-encoding the full message
            // and keeping only its tail.
            let bare = Msg::Hits {
                id: 2, degraded: false, missing_shards: vec![], hits: vec![],
                trace_id: 0, timing: None, fidelity: Fidelity::Full,
            }.encode();
            let full = hits.encode();
            let mut b = bare.clone();
            push_unknown(&mut b);
            b.extend_from_slice(&full[bare.len()..]);
            b
        } else {
            let mut b = hits.encode();
            push_unknown(&mut b);
            b
        };
        prop_assert_eq!(Msg::decode(&bytes).expect("hits decode"), hits);
    }

    #[test]
    fn error_round_trips(id in 0u64..u64::MAX, err in remote_error_strategy()) {
        let msg = Msg::Error { id, err };
        prop_assert_eq!(roundtrip(&msg), msg);
    }

    #[test]
    fn stream_query_round_trips(
        id in 0u64..u64::MAX,
        top_k in 0u32..10_000,
        deadline_ms in 0u32..u32::MAX,
        slice_index in 0u32..64,
        slice_count in 0u32..64,
        credit in 1u32..u32::MAX,
        cursor in 0u64..u64::MAX,
        query in prop::collection::vec(0u8..24, 0..512),
        trace in trace_strategy(),
        tenant in tenant_strategy(),
    ) {
        let msg = Msg::StreamQuery {
            id, top_k, deadline_ms, slice_index, slice_count, credit, cursor,
            query, trace, tenant,
        };
        prop_assert_eq!(roundtrip(&msg), msg);
    }

    #[test]
    fn stream_chunk_round_trips(
        id in 0u64..u64::MAX,
        shard in 0u32..u32::MAX,
        cursor in 1u64..u64::MAX,
        hits in prop::collection::vec(hit_strategy(), 0..64),
    ) {
        let msg = Msg::StreamChunk { id, shard, cursor, hits };
        prop_assert_eq!(roundtrip(&msg), msg);
    }

    #[test]
    fn progress_and_credit_round_trip(
        id in 0u64..u64::MAX,
        cells_done in 0u64..u64::MAX,
        cells_total in 0u64..u64::MAX,
        credits in 1u32..u32::MAX,
    ) {
        for msg in [
            Msg::Progress { id, cells_done, cells_total },
            Msg::Credit { id, credits },
        ] {
            prop_assert_eq!(roundtrip(&msg), msg);
        }
    }

    #[test]
    fn resume_round_trips(
        id in 0u64..u64::MAX,
        deadline_ms in 0u32..u32::MAX,
        credit in 1u32..u32::MAX,
        token in token_strategy(),
        query in prop::collection::vec(0u8..24, 0..512),
        trace in trace_strategy(),
        tenant in tenant_strategy(),
    ) {
        let msg = Msg::Resume { id, deadline_ms, credit, token, query, trace, tenant };
        prop_assert_eq!(roundtrip(&msg), msg);
    }

    #[test]
    fn fin_round_trips(
        id in 0u64..u64::MAX,
        digest in 0u32..u32::MAX,
        degraded in prop_oneof![Just(false), Just(true)],
        missing in prop::collection::vec(0u32..64, 0..8),
        trace_id in 0u64..u64::MAX,
        fidelity in fidelity_strategy(),
    ) {
        let msg = Msg::Fin {
            id, digest, degraded, missing_shards: missing, trace_id, fidelity,
        };
        prop_assert_eq!(roundtrip(&msg), msg);
    }

    /// The hex form a user pastes back on `--resume` is a faithful
    /// transport for any token, including the empty-cursor degenerate.
    #[test]
    fn stream_token_hex_round_trips(token in token_strategy()) {
        let hex = token.to_hex();
        prop_assert_eq!(StreamToken::from_hex(&hex).expect("hex decodes"), token);
    }

    #[test]
    fn control_frames_round_trip(
        nonce in 0u64..u64::MAX,
        shard in 0u32..u32::MAX,
        draining in prop_oneof![Just(false), Just(true)],
        text in prop::collection::vec(0u8..255, 0..2048),
    ) {
        for msg in [
            Msg::Ping { nonce },
            Msg::Pong { nonce, shard, draining },
            Msg::Drain,
            Msg::MetricsRequest,
            Msg::MetricsText { text },
            Msg::Activate,
        ] {
            prop_assert_eq!(roundtrip(&msg), msg);
        }
    }
}

/// splitmix64: the fuzz sweep's deterministic RNG.
fn splitmix64(x: &mut u64) -> u64 {
    *x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *x;
    z ^= z >> 30;
    z = z.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z ^= z >> 27;
    z = z.wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn fuzz_cases() -> u64 {
    std::env::var("SWSIMD_FUZZ_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(10_000)
}

/// A pseudo-random valid message to mutate.
fn arbitrary_msg(seed: &mut u64) -> Msg {
    match splitmix64(seed) % 15 {
        0 => Msg::Ping {
            nonce: splitmix64(seed),
        },
        8 => Msg::Activate,
        9 => Msg::StreamQuery {
            id: splitmix64(seed),
            top_k: (splitmix64(seed) % 100) as u32,
            deadline_ms: (splitmix64(seed) % 100_000) as u32,
            slice_index: (splitmix64(seed) % 8) as u32,
            slice_count: (splitmix64(seed) % 8) as u32,
            credit: 1 + (splitmix64(seed) % 64) as u32,
            cursor: splitmix64(seed) % 1024,
            query: (0..splitmix64(seed) % 256)
                .map(|_| (splitmix64(seed) % 24) as u8)
                .collect(),
            trace: TraceCtx {
                trace_id: splitmix64(seed) % 2 * splitmix64(seed),
                span_id: splitmix64(seed),
            },
            tenant: match splitmix64(seed) % 3 {
                0 => String::new(),
                1 => "acme".into(),
                _ => "free-tier".into(),
            },
        },
        10 => Msg::StreamChunk {
            id: splitmix64(seed),
            shard: (splitmix64(seed) % 64) as u32,
            cursor: 1 + splitmix64(seed) % 100_000,
            hits: (0..splitmix64(seed) % 16)
                .map(|_| Hit {
                    db_index: (splitmix64(seed) % 1_000_000) as usize,
                    score: (splitmix64(seed) % 10_000) as i32,
                    precision: Precision::I16,
                })
                .collect(),
        },
        11 => Msg::Progress {
            id: splitmix64(seed),
            cells_done: splitmix64(seed),
            cells_total: splitmix64(seed),
        },
        12 => Msg::Credit {
            id: splitmix64(seed),
            credits: 1 + (splitmix64(seed) % 1024) as u32,
        },
        13 => Msg::Resume {
            id: splitmix64(seed),
            deadline_ms: (splitmix64(seed) % 100_000) as u32,
            credit: 1 + (splitmix64(seed) % 64) as u32,
            token: StreamToken {
                trace_id: splitmix64(seed),
                query_crc: (splitmix64(seed) & 0xFFFF_FFFF) as u32,
                top_k: (splitmix64(seed) % 100) as u32,
                cursors: (0..splitmix64(seed) % 5)
                    .map(|i| (i as u32, splitmix64(seed) % 10_000))
                    .collect(),
            },
            query: (0..splitmix64(seed) % 128)
                .map(|_| (splitmix64(seed) % 24) as u8)
                .collect(),
            trace: TraceCtx::default(),
            tenant: String::new(),
        },
        14 => Msg::Fin {
            id: splitmix64(seed),
            digest: (splitmix64(seed) & 0xFFFF_FFFF) as u32,
            degraded: splitmix64(seed).is_multiple_of(2),
            missing_shards: (0..splitmix64(seed) % 4)
                .map(|_| (splitmix64(seed) % 64) as u32)
                .collect(),
            trace_id: splitmix64(seed) % 2 * splitmix64(seed),
            fidelity: Fidelity::from_u8((splitmix64(seed) % 4) as u8),
        },
        1 => Msg::Pong {
            nonce: splitmix64(seed),
            shard: (splitmix64(seed) % 64) as u32,
            draining: splitmix64(seed).is_multiple_of(2),
        },
        2 => Msg::Drain,
        3 => Msg::MetricsRequest,
        4 => Msg::MetricsText {
            text: (0..splitmix64(seed) % 256)
                .map(|_| (splitmix64(seed) & 0xFF) as u8)
                .collect(),
        },
        5 => Msg::Error {
            id: splitmix64(seed),
            err: RemoteError::WrongShard {
                got: (splitmix64(seed) % 64) as u32,
                want: (splitmix64(seed) % 64) as u32,
            },
        },
        6 => Msg::Hits {
            id: splitmix64(seed),
            degraded: splitmix64(seed).is_multiple_of(2),
            missing_shards: (0..splitmix64(seed) % 4)
                .map(|_| (splitmix64(seed) % 64) as u32)
                .collect(),
            hits: (0..splitmix64(seed) % 16)
                .map(|_| Hit {
                    db_index: (splitmix64(seed) % 1_000_000) as usize,
                    score: (splitmix64(seed) % 10_000) as i32,
                    precision: Precision::I16,
                })
                .collect(),
            trace_id: splitmix64(seed) % 2 * splitmix64(seed),
            timing: splitmix64(seed).is_multiple_of(2).then(|| ShardTiming {
                shard: (splitmix64(seed) % 64) as u32,
                root_span: splitmix64(seed),
                engine: "AVX2".into(),
                rtt_ns: splitmix64(seed) % 1_000_000_000,
                stages: vec![StageTiming {
                    stage: Stage::Kernel,
                    ns: splitmix64(seed) % 1_000_000_000,
                }],
            }),
            fidelity: Fidelity::from_u8((splitmix64(seed) % 4) as u8),
        },
        _ => Msg::Query {
            id: splitmix64(seed),
            top_k: (splitmix64(seed) % 100) as u32,
            deadline_ms: (splitmix64(seed) % 100_000) as u32,
            slice_index: (splitmix64(seed) % 8) as u32,
            slice_count: (splitmix64(seed) % 8) as u32,
            query: (0..splitmix64(seed) % 512)
                .map(|_| (splitmix64(seed) % 24) as u8)
                .collect(),
            trace: TraceCtx {
                trace_id: splitmix64(seed) % 2 * splitmix64(seed),
                span_id: splitmix64(seed),
            },
            tenant: match splitmix64(seed) % 3 {
                0 => String::new(),
                1 => "acme".into(),
                _ => "free-tier".into(),
            },
        },
    }
}

/// The decoder's contract under corruption: a typed result, never a
/// panic, never an allocation driven by a hostile length prefix.
fn decode_is_typed(bytes: &[u8]) {
    let mut cur = Cursor::new(bytes);
    loop {
        match read_msg(&mut cur) {
            Ok(_) => continue, // a prefix decoded cleanly; keep reading
            Err(WireError::Eof) => break,
            Err(
                WireError::Truncated
                | WireError::TooLarge(_)
                | WireError::BadCrc { .. }
                | WireError::UnknownKind(_)
                | WireError::Malformed(_)
                | WireError::Io(_),
            ) => break,
        }
    }
}

#[test]
fn fuzz_truncated_and_flipped_frames_never_panic() {
    let cases = fuzz_cases();
    let mut seed = 0x57495245_u64; // "WIRE"
    let mut truncations = 0u64;
    let mut flips = 0u64;
    for _ in 0..cases {
        let framed = frame(&arbitrary_msg(&mut seed).encode());
        match splitmix64(&mut seed) % 3 {
            0 => {
                // Truncate anywhere, including inside the prefix.
                let cut = (splitmix64(&mut seed) as usize) % framed.len();
                decode_is_typed(&framed[..cut]);
                truncations += 1;
            }
            1 => {
                // Flip one bit anywhere (prefix, payload, or CRC).
                let mut bytes = framed.clone();
                let bit = (splitmix64(&mut seed) as usize) % (bytes.len() * 8);
                bytes[bit / 8] ^= 1 << (bit % 8);
                decode_is_typed(&bytes);
                flips += 1;
            }
            _ => {
                // Garbage prefix of random bytes before a valid frame.
                let mut bytes: Vec<u8> = (0..splitmix64(&mut seed) % 16)
                    .map(|_| (splitmix64(&mut seed) & 0xFF) as u8)
                    .collect();
                bytes.extend_from_slice(&framed);
                decode_is_typed(&bytes);
            }
        }
    }
    assert!(
        truncations > cases / 5,
        "sweep skew: {truncations} truncations"
    );
    assert!(flips > cases / 5, "sweep skew: {flips} flips");
}

/// A payload-byte flip must surface as `BadCrc` specifically — the
/// frame arrives complete, so only the checksum can catch it.
#[test]
fn payload_bit_flip_is_bad_crc() {
    let msg = Msg::Query {
        id: 7,
        top_k: 10,
        deadline_ms: 0,
        slice_index: 0,
        slice_count: 0,
        query: vec![1, 2, 3, 4, 5],
        trace: TraceCtx {
            trace_id: 0xFACE,
            span_id: 0xB00C,
        },
        tenant: "acme".into(),
    };
    let framed = frame(&msg.encode());
    for i in 4..framed.len() - 4 {
        let mut bytes = framed.clone();
        bytes[i] ^= 0x01;
        match read_msg(&mut Cursor::new(&bytes)) {
            Err(WireError::BadCrc { .. }) => {}
            other => panic!("payload flip at {i} gave {other:?}"),
        }
    }
}

fn plain_query(tenant: &str) -> Msg {
    Msg::Query {
        id: 9,
        top_k: 3,
        deadline_ms: 0,
        slice_index: 0,
        slice_count: 0,
        query: vec![1, 2, 3],
        trace: TraceCtx::default(),
        tenant: tenant.to_string(),
    }
}

/// Append one raw extension record (kind, little-endian u16 length,
/// body) — the layout new peers use for the tenant ext.
fn push_raw_ext(bytes: &mut Vec<u8>, kind: u8, body: &[u8]) {
    bytes.push(kind);
    bytes.extend_from_slice(&(body.len() as u16).to_le_bytes());
    bytes.extend_from_slice(body);
}

const RAW_EXT_TENANT: u8 = 4;

/// Byte-level compatibility: the default tenant and full fidelity
/// encode as extension *absence*, so a new peer's frames are
/// byte-identical to an old peer's, and an old peer's (extension-free)
/// frames decode to the defaults.
#[test]
fn default_tenant_and_full_fidelity_are_byte_compatible_with_old_frames() {
    let bare = plain_query("").encode();
    let named = plain_query("acme").encode();
    // The tenant ext strictly appends to the old layout.
    assert_eq!(&named[..bare.len()], &bare[..]);
    assert_eq!(named.len(), bare.len() + 3 + 4); // header + "acme"
    match Msg::decode(&bare).expect("old frame decodes") {
        Msg::Query { tenant, .. } => assert_eq!(tenant, ""),
        other => panic!("{other:?}"),
    }

    let full = Msg::Hits {
        id: 9,
        degraded: false,
        missing_shards: vec![],
        hits: vec![],
        trace_id: 0,
        timing: None,
        fidelity: Fidelity::Full,
    };
    let full_bytes = full.encode();
    match Msg::decode(&full_bytes).expect("hits decode") {
        Msg::Hits { fidelity, .. } => assert_eq!(fidelity, Fidelity::Full),
        other => panic!("{other:?}"),
    }
}

/// Hostile tenant extensions are rejected with a typed error before
/// the name is materialised: oversized names and invalid UTF-8.
#[test]
fn hostile_tenant_extensions_are_typed_errors() {
    let mut oversized = plain_query("").encode();
    push_raw_ext(&mut oversized, RAW_EXT_TENANT, &[b'x'; MAX_TENANT_LEN + 1]);
    assert!(matches!(
        Msg::decode(&oversized),
        Err(WireError::Malformed(_))
    ));

    let mut bad_utf8 = plain_query("").encode();
    push_raw_ext(&mut bad_utf8, RAW_EXT_TENANT, &[0xC0, 0x80]);
    assert!(matches!(
        Msg::decode(&bad_utf8),
        Err(WireError::Malformed(_))
    ));

    // A name at exactly the cap is accepted.
    let mut at_cap = plain_query("").encode();
    push_raw_ext(&mut at_cap, RAW_EXT_TENANT, &[b'x'; MAX_TENANT_LEN]);
    match Msg::decode(&at_cap).expect("cap-length tenant decodes") {
        Msg::Query { tenant, .. } => assert_eq!(tenant.len(), MAX_TENANT_LEN),
        other => panic!("{other:?}"),
    }
}

/// Seeded fuzz over mangled tenant extensions: random bodies (any
/// bytes, any length up to past the cap) must decode to Ok or a typed
/// Malformed — never a panic, never an unbounded allocation.
#[test]
fn fuzz_tenant_extension_bodies_never_panic() {
    let mut seed = 0x54454E54_u64; // "TENT"
    let cases = fuzz_cases() / 10;
    for _ in 0..cases.max(100) {
        let mut bytes = plain_query("").encode();
        let len = (splitmix64(&mut seed) as usize) % (MAX_TENANT_LEN * 2);
        let body: Vec<u8> = (0..len)
            .map(|_| (splitmix64(&mut seed) & 0xFF) as u8)
            .collect();
        push_raw_ext(&mut bytes, RAW_EXT_TENANT, &body);
        match Msg::decode(&bytes) {
            Ok(Msg::Query { tenant, .. }) => assert!(tenant.len() <= MAX_TENANT_LEN),
            Ok(other) => panic!("query mutated into {other:?}"),
            Err(WireError::Malformed(_)) => {}
            Err(other) => panic!("unexpected error class {other:?}"),
        }
    }
}

#[test]
fn hostile_length_prefix_is_rejected() {
    let huge = (MAX_FRAME as u32 + 1).to_le_bytes();
    match read_msg(&mut Cursor::new(&huge[..])) {
        Err(WireError::TooLarge(n)) => assert_eq!(n as usize, MAX_FRAME + 1),
        other => panic!("expected TooLarge, got {other:?}"),
    }
}

/// Zero credit and a zero chunk cursor are protocol violations the
/// decoder rejects before the stream machinery ever sees them — a
/// zero-credit stream can never make progress, and cursors are 1-based
/// so 0 would defeat resume dedupe.
#[test]
fn zero_credit_and_zero_cursor_frames_are_typed_errors() {
    let mut sq = Msg::StreamQuery {
        id: 1,
        top_k: 5,
        deadline_ms: 0,
        slice_index: 0,
        slice_count: 0,
        credit: 1,
        cursor: 0,
        query: vec![1, 2, 3],
        trace: TraceCtx::default(),
        tenant: String::new(),
    }
    .encode();
    // Zero the credit field in place: kind(1) id(8) top_k(4)
    // deadline(4) slice_index(4) slice_count(4) → credit at 25.
    sq[25..29].fill(0);
    assert!(matches!(Msg::decode(&sq), Err(WireError::Malformed(_))));

    let mut chunk = Msg::StreamChunk {
        id: 1,
        shard: 0,
        cursor: 1,
        hits: vec![],
    }
    .encode();
    // kind(1) id(8) shard(4) → cursor at 13.
    chunk[13..21].fill(0);
    assert!(matches!(Msg::decode(&chunk), Err(WireError::Malformed(_))));

    let mut credit = Msg::Credit { id: 1, credits: 1 }.encode();
    credit[9..13].fill(0);
    assert!(matches!(Msg::decode(&credit), Err(WireError::Malformed(_))));

    let mut resume = Msg::Resume {
        id: 1,
        deadline_ms: 0,
        credit: 1,
        token: StreamToken::default(),
        query: vec![],
        trace: TraceCtx::default(),
        tenant: String::new(),
    }
    .encode();
    // kind(1) id(8) deadline(4) → credit at 13.
    resume[13..17].fill(0);
    assert!(matches!(Msg::decode(&resume), Err(WireError::Malformed(_))));
}

/// Seeded fuzz over resume-token bodies: random binary blobs through
/// `StreamToken::decode`, random strings through `from_hex`, and valid
/// tokens with a lying cursor-count field. All must yield Ok or a
/// typed Malformed — never a panic, never a count-driven allocation.
#[test]
fn fuzz_stream_token_bodies_never_panic() {
    let mut seed = 0x0054_4F4B_454E_u64; // "TOKEN"
    let cases = fuzz_cases() / 10;
    for _ in 0..cases.max(100) {
        match splitmix64(&mut seed) % 3 {
            0 => {
                // Arbitrary binary bodies.
                let len = (splitmix64(&mut seed) as usize) % 256;
                let bytes: Vec<u8> = (0..len)
                    .map(|_| (splitmix64(&mut seed) & 0xFF) as u8)
                    .collect();
                match StreamToken::decode(&bytes) {
                    Ok(t) => assert!(t.cursors.len() <= bytes.len() / 12),
                    Err(WireError::Malformed(_)) => {}
                    Err(other) => panic!("unexpected error class {other:?}"),
                }
            }
            1 => {
                // Arbitrary hex-ish strings, some with non-hex bytes.
                let len = (splitmix64(&mut seed) as usize) % 128;
                let s: String = (0..len)
                    .map(|_| {
                        let c = (splitmix64(&mut seed) % 20) as u8;
                        (b'0' + c.min(b'z' - b'0')) as char
                    })
                    .collect();
                match StreamToken::from_hex(&s) {
                    Ok(_) | Err(WireError::Malformed(_)) => {}
                    Err(other) => panic!("unexpected error class {other:?}"),
                }
            }
            _ => {
                // A valid token whose cursor-count field lies upward:
                // the decoder must bound-check against the remaining
                // bytes instead of allocating `count` entries.
                let token = StreamToken {
                    trace_id: splitmix64(&mut seed),
                    query_crc: (splitmix64(&mut seed) & 0xFFFF_FFFF) as u32,
                    top_k: 10,
                    cursors: vec![(0, 1 + splitmix64(&mut seed) % 100)],
                };
                let mut bytes = token.encode();
                let lie = (1 + splitmix64(&mut seed) % u16::MAX as u64) as u16;
                bytes[16..18].copy_from_slice(&lie.to_le_bytes());
                match StreamToken::decode(&bytes) {
                    Ok(t) => assert_eq!(t.cursors.len(), lie as usize),
                    Err(WireError::Malformed(_)) => {}
                    Err(other) => panic!("unexpected error class {other:?}"),
                }
            }
        }
    }
}

/// The stream frames are strictly *new* kind bytes: a pre-stream
/// decoder sees `UnknownKind` (typed, recoverable) — and, the other
/// way, the non-stream reply a current server sends to an old client
/// is byte-for-byte what a pre-stream server would have sent. The
/// golden vectors pin the encodings; changing them breaks rolling
/// restarts.
#[test]
fn non_stream_replies_are_byte_stable_for_old_clients() {
    // Stream kinds occupy 15..=20 — outside the pre-stream kind space.
    for (msg, kind) in [
        (
            Msg::StreamQuery {
                id: 1,
                top_k: 5,
                deadline_ms: 0,
                slice_index: 0,
                slice_count: 0,
                credit: 4,
                cursor: 0,
                query: vec![],
                trace: TraceCtx::default(),
                tenant: String::new(),
            },
            15u8,
        ),
        (
            Msg::StreamChunk {
                id: 1,
                shard: 0,
                cursor: 1,
                hits: vec![],
            },
            16,
        ),
        (
            Msg::Progress {
                id: 1,
                cells_done: 0,
                cells_total: 0,
            },
            17,
        ),
        (Msg::Credit { id: 1, credits: 1 }, 18),
        (
            Msg::Resume {
                id: 1,
                deadline_ms: 0,
                credit: 1,
                token: StreamToken::default(),
                query: vec![],
                trace: TraceCtx::default(),
                tenant: String::new(),
            },
            19,
        ),
        (
            Msg::Fin {
                id: 1,
                digest: 0,
                degraded: false,
                missing_shards: vec![],
                trace_id: 0,
                fidelity: Fidelity::Full,
            },
            20,
        ),
    ] {
        assert_eq!(msg.encode()[0], kind, "{msg:?} kind byte moved");
    }

    // Golden bytes for the one-shot reply path old clients decode.
    let hits = Msg::Hits {
        id: 0x0102_0304_0506_0708,
        degraded: false,
        missing_shards: vec![],
        hits: vec![Hit {
            db_index: 7,
            score: 42,
            precision: Precision::I16,
        }],
        trace_id: 0,
        timing: None,
        fidelity: Fidelity::Full,
    };
    let expect_hits: Vec<u8> = {
        let mut b = vec![2u8]; // KIND_HITS
        b.extend_from_slice(&0x0102_0304_0506_0708u64.to_le_bytes());
        b.push(0); // degraded
        b.extend_from_slice(&0u32.to_le_bytes()); // missing count
        b.extend_from_slice(&1u32.to_le_bytes()); // hit count
        b.extend_from_slice(&7u64.to_le_bytes()); // db_index
        b.extend_from_slice(&42i32.to_le_bytes()); // score
        b.push(1); // precision code I16
        b // no extension tail: untraced, untimed, full fidelity
    };
    assert_eq!(hits.encode(), expect_hits, "Hits reply encoding moved");

    let err = Msg::Error {
        id: 9,
        err: RemoteError::Draining,
    };
    let expect_err: Vec<u8> = {
        let mut b = vec![3u8]; // KIND_ERROR
        b.extend_from_slice(&9u64.to_le_bytes());
        b.push(11); // Draining error code
        b.extend_from_slice(&0u64.to_le_bytes()); // a field
        b.extend_from_slice(&0u64.to_le_bytes()); // b field
        b.extend_from_slice(&0u64.to_le_bytes()); // c field
        b
    };
    assert_eq!(err.encode(), expect_err, "Error reply encoding moved");
}
