//! Failure injection and hostile-input tests: the library must behave
//! sensibly on malformed FASTA, non-residue characters, degenerate
//! batches, and saturation edge cases.

use swsimd::matrices::{blosum62, Alphabet, PAD_INDEX, X_INDEX};
use swsimd::seq::{parse_fasta, BatchedDatabase, Database, FastaError, SeqRecord};
use swsimd::{Aligner, Precision};

#[test]
fn malformed_fasta_is_rejected_not_panicking() {
    assert!(matches!(parse_fasta("ACGT\n"), Err(FastaError::DataBeforeHeader { .. })));
    assert!(matches!(parse_fasta(">\nACGT\n"), Err(FastaError::EmptyHeader { .. })));
}

#[test]
fn non_residue_characters_map_to_x_and_align() {
    let alphabet = Alphabet::protein();
    // Digits, punctuation, unicode fragments (as bytes) all map to X.
    let messy = alphabet.encode("MKV1 2@LAADTW\u{00e9}".as_bytes());
    assert!(messy.iter().all(|&b| b < 24));
    assert!(messy.contains(&X_INDEX));
    let clean = alphabet.encode(b"MKVLAADTW");
    let mut a = Aligner::new();
    let r = a.align(&messy, &clean);
    // Still aligns the real residues around the Xs.
    assert!(r.score > 0);
}

#[test]
fn x_never_outscores_real_match() {
    // X vs anything is <= 0 in BLOSUM62, so an all-X query scores 0.
    let alphabet = Alphabet::protein();
    let xs = alphabet.encode(b"XXXXXXXX");
    let target = alphabet.encode(b"MKVLAADTW");
    let mut a = Aligner::new();
    assert_eq!(a.align(&xs, &target).score, 0);
}

#[test]
fn stop_codons_are_scored_like_ncbi() {
    let m = blosum62();
    assert_eq!(m.score(b'*', b'*'), 1);
    assert_eq!(m.score(b'A', b'*'), -4);
    let alphabet = m.alphabet();
    let q = alphabet.encode(b"MKV*LA");
    let mut a = Aligner::new();
    let r = a.align(&q, &q);
    assert!(r.score > 0);
}

#[test]
fn pad_index_poisoning_is_total() {
    let r = blosum62().reorganized();
    for other in 0..32u8 {
        assert!(r.score(PAD_INDEX, other) < -32);
        assert!(r.score(other, PAD_INDEX) < -32);
    }
}

#[test]
fn empty_and_single_residue_databases() {
    let alphabet = Alphabet::protein();
    let db = Database::from_records(
        vec![SeqRecord::new("one", b"W".to_vec()), SeqRecord::new("empty", b"".to_vec())],
        &alphabet,
    );
    let q = alphabet.encode(b"W");
    let mut a = Aligner::new();
    let hits = a.search(&q, &db, 0);
    assert_eq!(hits.len(), 2);
    assert_eq!(hits[0].score, 11); // W:W
    assert_eq!(hits[1].score, 0); // empty sequence
}

#[test]
fn batches_with_all_empty_sequences() {
    let alphabet = Alphabet::protein();
    let db = Database::from_records(
        (0..5).map(|i| SeqRecord::new(format!("e{i}"), Vec::new())).collect(),
        &alphabet,
    );
    let batched = BatchedDatabase::build(&db, 16, true);
    assert_eq!(batched.batches().len(), 1);
    assert_eq!(batched.batches()[0].max_len(), 0);
    let mut a = Aligner::new();
    let hits = a.search(&alphabet.encode(b"MKV"), &db, 0);
    assert!(hits.iter().all(|h| h.score == 0));
}

#[test]
fn saturation_cascade_i8_to_i16_to_i32() {
    // Score 44,000 overflows both i8 and i16; adaptive must cascade.
    let q = vec![17u8; 4_000];
    let mut a = Aligner::new(); // adaptive by default
    let r = a.align(&q, &q);
    assert_eq!(r.score, 44_000);
    assert_eq!(r.precision_used, Precision::I32);
    assert!(a.stats().promotions >= 2, "expected two promotions, got {}", a.stats().promotions);
}

#[test]
fn zero_length_query_against_large_db() {
    let alphabet = Alphabet::protein();
    let db = Database::from_records(
        (0..40).map(|i| SeqRecord::new(format!("s{i}"), vec![b'A'; 50])).collect(),
        &alphabet,
    );
    let mut a = Aligner::new();
    let hits = a.search(&[], &db, 0);
    assert_eq!(hits.len(), 40);
    assert!(hits.iter().all(|h| h.score == 0));
}

#[test]
fn lowercase_and_mixed_case_sequences() {
    let alphabet = Alphabet::protein();
    let upper = alphabet.encode(b"MKVLAADTW");
    let lower = alphabet.encode(b"mkvlaadtw");
    assert_eq!(upper, lower);
}

#[test]
fn huge_top_k_is_clamped() {
    let alphabet = Alphabet::protein();
    let db = Database::from_records(
        (0..7).map(|i| SeqRecord::new(format!("s{i}"), vec![b'A'; 10])).collect(),
        &alphabet,
    );
    let mut a = Aligner::new();
    assert_eq!(a.search(&alphabet.encode(b"AAA"), &db, 10_000).len(), 7);
}
