//! Failure injection and hostile-input tests: the library must behave
//! sensibly on malformed FASTA, non-residue characters, degenerate
//! batches, and saturation edge cases.

use swsimd::matrices::{blosum62, Alphabet, PAD_INDEX, X_INDEX};
use swsimd::seq::{parse_fasta, BatchedDatabase, Database, FastaError, SeqRecord};
use swsimd::{Aligner, Precision};

#[test]
fn malformed_fasta_is_rejected_not_panicking() {
    assert!(matches!(
        parse_fasta("ACGT\n"),
        Err(FastaError::DataBeforeHeader { .. })
    ));
    assert!(matches!(
        parse_fasta(">\nACGT\n"),
        Err(FastaError::EmptyHeader { .. })
    ));
}

#[test]
fn non_residue_characters_map_to_x_and_align() {
    let alphabet = Alphabet::protein();
    // Digits, punctuation, unicode fragments (as bytes) all map to X.
    let messy = alphabet.encode("MKV1 2@LAADTW\u{00e9}".as_bytes());
    assert!(messy.iter().all(|&b| b < 24));
    assert!(messy.contains(&X_INDEX));
    let clean = alphabet.encode(b"MKVLAADTW");
    let mut a = Aligner::new();
    let r = a.align(&messy, &clean);
    // Still aligns the real residues around the Xs.
    assert!(r.score > 0);
}

#[test]
fn x_never_outscores_real_match() {
    // X vs anything is <= 0 in BLOSUM62, so an all-X query scores 0.
    let alphabet = Alphabet::protein();
    let xs = alphabet.encode(b"XXXXXXXX");
    let target = alphabet.encode(b"MKVLAADTW");
    let mut a = Aligner::new();
    assert_eq!(a.align(&xs, &target).score, 0);
}

#[test]
fn stop_codons_are_scored_like_ncbi() {
    let m = blosum62();
    assert_eq!(m.score(b'*', b'*'), 1);
    assert_eq!(m.score(b'A', b'*'), -4);
    let alphabet = m.alphabet();
    let q = alphabet.encode(b"MKV*LA");
    let mut a = Aligner::new();
    let r = a.align(&q, &q);
    assert!(r.score > 0);
}

#[test]
fn pad_index_poisoning_is_total() {
    let r = blosum62().reorganized();
    for other in 0..32u8 {
        assert!(r.score(PAD_INDEX, other) < -32);
        assert!(r.score(other, PAD_INDEX) < -32);
    }
}

#[test]
fn empty_and_single_residue_databases() {
    let alphabet = Alphabet::protein();
    let db = Database::from_records(
        vec![
            SeqRecord::new("one", b"W".to_vec()),
            SeqRecord::new("empty", b"".to_vec()),
        ],
        &alphabet,
    );
    let q = alphabet.encode(b"W");
    let mut a = Aligner::new();
    let hits = a.search(&q, &db, 0);
    assert_eq!(hits.len(), 2);
    assert_eq!(hits[0].score, 11); // W:W
    assert_eq!(hits[1].score, 0); // empty sequence
}

#[test]
fn batches_with_all_empty_sequences() {
    let alphabet = Alphabet::protein();
    let db = Database::from_records(
        (0..5)
            .map(|i| SeqRecord::new(format!("e{i}"), Vec::new()))
            .collect(),
        &alphabet,
    );
    let batched = BatchedDatabase::build(&db, 16, true);
    assert_eq!(batched.batches().len(), 1);
    assert_eq!(batched.batches()[0].max_len(), 0);
    let mut a = Aligner::new();
    let hits = a.search(&alphabet.encode(b"MKV"), &db, 0);
    assert!(hits.iter().all(|h| h.score == 0));
}

#[test]
fn saturation_cascade_i8_to_i16_to_i32() {
    // Score 44,000 overflows both i8 and i16; adaptive must cascade.
    let q = vec![17u8; 4_000];
    let mut a = Aligner::new(); // adaptive by default
    let r = a.align(&q, &q);
    assert_eq!(r.score, 44_000);
    assert_eq!(r.precision_used, Precision::I32);
    assert!(
        a.stats().promotions >= 2,
        "expected two promotions, got {}",
        a.stats().promotions
    );
}

#[test]
fn zero_length_query_against_large_db() {
    let alphabet = Alphabet::protein();
    let db = Database::from_records(
        (0..40)
            .map(|i| SeqRecord::new(format!("s{i}"), vec![b'A'; 50]))
            .collect(),
        &alphabet,
    );
    let mut a = Aligner::new();
    let hits = a.search(&[], &db, 0);
    assert_eq!(hits.len(), 40);
    assert!(hits.iter().all(|h| h.score == 0));
}

#[test]
fn lowercase_and_mixed_case_sequences() {
    let alphabet = Alphabet::protein();
    let upper = alphabet.encode(b"MKVLAADTW");
    let lower = alphabet.encode(b"mkvlaadtw");
    assert_eq!(upper, lower);
}

#[test]
fn huge_top_k_is_clamped() {
    let alphabet = Alphabet::protein();
    let db = Database::from_records(
        (0..7)
            .map(|i| SeqRecord::new(format!("s{i}"), vec![b'A'; 10]))
            .collect(),
        &alphabet,
    );
    let mut a = Aligner::new();
    assert_eq!(a.search(&alphabet.encode(b"AAA"), &db, 10_000).len(), 7);
}

// ---------------------------------------------------------------------
// server_faults: the fault-tolerant serving layer under injected
// failures (FaultPlan), exercised end-to-end through the facade.
// ---------------------------------------------------------------------
mod server_faults {
    use std::sync::Arc;
    use std::time::{Duration, Instant};

    use swsimd::matrices::{blosum62, Alphabet};
    use swsimd::runner::{parallel_search, BatchServer, PoolConfig, ServerConfig};
    use swsimd::seq::{generate_database, generate_exact, SynthConfig};
    use swsimd::{AlignError, Aligner, FaultPlan, ServeError};

    fn db(n: usize, seed: u64) -> swsimd::Database {
        generate_database(&SynthConfig {
            n_seqs: n,
            seed,
            median_len: 60.0,
            max_len: 200,
            ..Default::default()
        })
    }

    fn enc(len: usize, seed: u64) -> Vec<u8> {
        Alphabet::protein().encode(&generate_exact(len, seed).seq)
    }

    fn builder() -> swsimd::AlignerBuilder {
        Aligner::builder().matrix(blosum62())
    }

    /// Acceptance criterion: a FaultPlan-injected worker panic during a
    /// multi-partition parallel search still yields the exact, sorted
    /// result set for ALL partitions, with the degradation counted.
    #[test]
    fn injected_partition_panic_keeps_parallel_search_exact() {
        let db = db(64, 11);
        let q = enc(70, 12);
        let clean = parallel_search(
            &q,
            &db,
            &PoolConfig {
                threads: 4,
                sort_batches: true,
                ..Default::default()
            },
            builder,
        );
        let faulty = parallel_search(
            &q,
            &db,
            &PoolConfig {
                threads: 4,
                sort_batches: true,
                fault_plan: FaultPlan::new().panic_at(2, 1),
                ..Default::default()
            },
            builder,
        );
        assert_eq!(faulty.hits, clean.hits, "degraded retry must stay exact");
        assert_eq!(faulty.faults.worker_panics, 1);
        assert_eq!(faulty.faults.degraded_batches, 1);
        assert_eq!(faulty.faults.retries, 1);
        assert!(!clean.faults.any());
    }

    #[test]
    fn server_worker_panic_degrades_and_counts() {
        let database = Arc::new(db(32, 13));
        let q = enc(50, 14);
        let mut direct = builder().build();
        let want = direct.search(&q, &database, 4);

        let server = BatchServer::start(
            database.clone(),
            ServerConfig {
                fault_plan: FaultPlan::new().panic_at(0, 1),
                ..Default::default()
            },
            builder,
        );
        let client = server.client();
        let hits = client.query(q, 4).expect("degraded, not dead");
        assert_eq!(hits, want);
        let stats = server.shutdown();
        assert_eq!(stats.worker_panics, 1);
        assert_eq!(stats.degraded_batches, 1);
        assert_eq!(stats.retries, 1);
    }

    #[test]
    fn deadline_expiry_is_typed_and_bounded() {
        let database = Arc::new(db(16, 15));
        let server = BatchServer::start(
            database,
            ServerConfig {
                batch_size: 1,
                max_wait: Duration::from_millis(1),
                fault_plan: FaultPlan::new().delay_at(0, Duration::from_millis(400)),
                ..Default::default()
            },
            builder,
        );
        let client = server.client();
        let start = Instant::now();
        let r = client.query_with_deadline(enc(30, 16), 1, Duration::from_millis(40));
        let elapsed = start.elapsed();
        assert_eq!(r, Err(ServeError::DeadlineExceeded));
        assert!(elapsed < Duration::from_millis(350), "took {elapsed:?}");
        let stats = server.shutdown();
        assert!(stats.timeouts >= 1);
    }

    #[test]
    fn queue_full_sheds_with_typed_error() {
        let database = Arc::new(db(16, 17));
        let server = BatchServer::start(
            database,
            ServerConfig {
                batch_size: 1,
                max_wait: Duration::from_millis(1),
                queue_depth: 1,
                fault_plan: FaultPlan::new().delay_at(0, Duration::from_millis(120)),
                ..Default::default()
            },
            builder,
        );
        let client = server.client();
        // Plug the worker (every job computes ≥120ms), wait for it to
        // pick the plug up, then occupy the single queue slot. The
        // queue is now provably full for the plug's whole compute.
        let plug = client.submit(enc(20, 30), 1, None).expect("plug admitted");
        let t0 = Instant::now();
        while server.queue_depth() > 0 {
            assert!(
                t0.elapsed() < Duration::from_secs(5),
                "plug never picked up"
            );
            std::thread::sleep(Duration::from_millis(1));
        }
        let filler = client
            .submit(enc(20, 31), 1, None)
            .expect("filler admitted");
        match client.try_query(enc(20, 60), 1) {
            Err(ServeError::QueueFull { .. }) => {}
            other => panic!("sustained load never shed: {other:?}"),
        }
        for p in [plug, filler] {
            loop {
                if let Some(r) = p.poll(Duration::from_millis(5)) {
                    r.expect("queued job served");
                    break;
                }
            }
        }
        let stats = server.shutdown();
        assert!(stats.shed >= 1);
    }

    #[test]
    fn shutdown_while_inflight_drains_then_rejects() {
        let database = Arc::new(db(24, 18));
        let server = BatchServer::start(database, ServerConfig::default(), builder);
        let client = server.client();
        let inflight = {
            let c = client.clone();
            std::thread::spawn(move || c.query(enc(25, 19), 1))
        };
        std::thread::sleep(Duration::from_millis(5));
        let stats = server.shutdown();
        // The in-flight query was drained, not dropped.
        let hits = inflight.join().expect("client thread").expect("drained");
        assert_eq!(hits.len(), 1);
        assert_eq!(stats.queries, 1);
        // Every entry point now reports ShutDown instead of panicking.
        assert_eq!(client.query(enc(10, 20), 1), Err(ServeError::ShutDown));
        assert_eq!(client.try_query(enc(10, 20), 1), Err(ServeError::ShutDown));
    }

    #[test]
    fn invalid_query_is_a_structured_error() {
        let database = Arc::new(db(8, 21));
        let server = BatchServer::start(database, ServerConfig::default(), builder);
        let client = server.client();
        match client.query(vec![0, 1, 77], 1) {
            Err(ServeError::InvalidQuery(AlignError::InvalidResidue { position, value })) => {
                assert_eq!((position, value), (2, 77));
            }
            other => panic!("expected InvalidQuery, got {other:?}"),
        }
        let _ = server.shutdown();
    }

    #[test]
    fn oversized_query_is_rejected_at_admission() {
        let database = Arc::new(db(8, 22));
        let server = BatchServer::start(
            database,
            ServerConfig {
                max_query_len: 16,
                ..Default::default()
            },
            builder,
        );
        let client = server.client();
        match client.query(enc(40, 23), 1) {
            Err(ServeError::QueryTooLarge { len, limit }) => {
                assert_eq!((len, limit), (40, 16));
            }
            other => panic!("expected QueryTooLarge, got {other:?}"),
        }
        assert!(
            client.query(enc(16, 24), 1).is_ok(),
            "at-limit query passes"
        );
        let _ = server.shutdown();
    }
}

// ---------------------------------------------------------------------
// durability: checkpoint/resume, torn writes, and the corruption fuzz —
// the recovery contract (DESIGN.md §10) exercised through the facade.
// ---------------------------------------------------------------------
mod durability {
    use swsimd::matrices::{blosum62, Alphabet};
    use swsimd::runner::{parallel_search, PoolConfig, SearchOutput};
    use swsimd::seq::{
        generate_database, generate_exact, load_database_image, save_database_image,
        BatchedDatabase, SynthConfig,
    };
    use swsimd::{
        checkpointed_search, read_journal, resume_search, Aligner, Database, FaultPlan,
        FaultyWriter, Journal, JournalWriter,
    };

    fn db(n: usize, seed: u64) -> Database {
        generate_database(&SynthConfig {
            n_seqs: n,
            seed,
            median_len: 50.0,
            max_len: 120,
            ..Default::default()
        })
    }

    fn enc(len: usize, seed: u64) -> Vec<u8> {
        Alphabet::protein().encode(&generate_exact(len, seed).seq)
    }

    fn builder() -> swsimd::AlignerBuilder {
        Aligner::builder().matrix(blosum62())
    }

    fn cfg(threads: usize) -> PoolConfig {
        PoolConfig {
            threads,
            sort_batches: true,
            ..Default::default()
        }
    }

    fn oracle(q: &[u8], database: &Database, threads: usize) -> SearchOutput {
        parallel_search(q, database, &cfg(threads), builder)
    }

    /// Number of fuzz cases per corpus; override with
    /// `SWSIMD_FUZZ_CASES` (e.g. for a longer CI soak).
    fn fuzz_cases() -> u64 {
        std::env::var("SWSIMD_FUZZ_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(6_000)
    }

    /// Small deterministic PRNG (splitmix64) so every fuzz case is
    /// reproducible from its index alone.
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Derive one corrupted variant of `clean` from a case seed:
    /// truncation, a bit flip, or both. Returns `None` when the
    /// mutation is a no-op (full-length cut with no flip).
    fn mutate(clean: &[u8], seed: u64) -> Option<Vec<u8>> {
        let mut s = seed.wrapping_mul(0x5851_F42D_4C95_7F2D).wrapping_add(1);
        let op = splitmix64(&mut s) % 3;
        let mut data = clean.to_vec();
        if op != 1 {
            let cut = (splitmix64(&mut s) as usize) % (clean.len() + 1);
            if op == 0 && cut == clean.len() {
                return None;
            }
            data.truncate(cut);
        }
        if op != 0 && !data.is_empty() {
            let pos = (splitmix64(&mut s) as usize) % data.len();
            let bit = 1u8 << (splitmix64(&mut s) % 8);
            data[pos] ^= bit;
        }
        Some(data)
    }

    /// Acceptance criterion: kill -9 after N completed chunks, then
    /// resume — bit-identical to the uninterrupted run at EVERY crash
    /// point, with exactly the surviving chunks replayed.
    #[test]
    fn kill_and_resume_is_bit_identical_at_every_crash_point() {
        let threads = 4;
        let database = db(30, 41);
        let q = enc(48, 42);
        let want = oracle(&q, &database, threads);

        for survive in 0..threads as u32 {
            let mut jw = JournalWriter::new(Vec::new()).expect("journal header");
            let crash_cfg = PoolConfig {
                fault_plan: FaultPlan::new().crash_after_chunks(survive),
                ..cfg(threads)
            };
            let err = checkpointed_search(&q, &database, &crash_cfg, builder, &mut jw)
                .expect_err("the injected crash must surface as an error");
            assert!(err.to_string().contains("fault-injected crash"));

            let journal = read_journal(&jw.into_inner()).expect("crash-point journal readable");
            assert!(!journal.truncated, "clean kill leaves whole frames");
            assert_eq!(journal.entries.len(), survive as usize);

            let (resumed, stats) = resume_search(&journal, &q, &database, &cfg(threads), builder)
                .expect("resume after crash");
            assert_eq!(resumed.hits, want.hits, "crash at {survive} chunks");
            assert_eq!(stats.replayed_chunks, survive as usize);
            assert_eq!(stats.recomputed_chunks, threads - survive as usize);
        }
    }

    /// A torn final frame (power loss mid-write) costs only the torn
    /// chunk: the journal reads back `truncated`, and resume recomputes
    /// the tail to the oracle answer.
    #[test]
    fn torn_final_frame_loses_work_not_correctness() {
        let threads = 3;
        let database = db(24, 43);
        let q = enc(40, 44);
        let want = oracle(&q, &database, threads);

        // Learn the clean journal length first.
        let mut clean = JournalWriter::new(Vec::new()).unwrap();
        checkpointed_search(&q, &database, &cfg(threads), builder, &mut clean).unwrap();
        let full_len = clean.into_inner().len() as u64;

        let sink = FaultyWriter::new(Vec::new()).torn_at(full_len - 5);
        let mut jw = JournalWriter::new(sink).unwrap();
        checkpointed_search(&q, &database, &cfg(threads), builder, &mut jw)
            .expect_err("the torn write must surface as an error");

        let bytes = jw.into_inner().into_inner();
        assert_eq!(bytes.len() as u64, full_len - 5);
        let journal = read_journal(&bytes).expect("prefix before the tear is readable");
        assert!(journal.truncated, "torn frame flags the journal truncated");
        assert!(journal.entries.len() < threads);

        let (resumed, stats) =
            resume_search(&journal, &q, &database, &cfg(threads), builder).unwrap();
        assert_eq!(resumed.hits, want.hits);
        assert_eq!(stats.replayed_chunks, journal.entries.len());
        assert!(stats.recomputed_chunks >= 1);
    }

    /// An in-flight bit flip (FaultyWriter) is caught by the frame CRC:
    /// replay stops at the flipped frame and resume still matches.
    #[test]
    fn in_flight_bit_flip_is_caught_by_frame_crc() {
        let threads = 3;
        let database = db(24, 45);
        let q = enc(40, 46);
        let want = oracle(&q, &database, threads);

        let mut clean = JournalWriter::new(Vec::new()).unwrap();
        checkpointed_search(&q, &database, &cfg(threads), builder, &mut clean).unwrap();
        let full_len = clean.into_inner().len() as u64;

        // Flip a byte two-thirds into the stream: inside a chunk frame.
        let sink = FaultyWriter::new(Vec::new()).flip_at(full_len * 2 / 3, 0x10);
        let mut jw = JournalWriter::new(sink).unwrap();
        checkpointed_search(&q, &database, &cfg(threads), builder, &mut jw).unwrap();
        let bytes = jw.into_inner().into_inner();
        assert_eq!(
            bytes.len() as u64,
            full_len,
            "flip corrupts, never shortens"
        );

        let journal = read_journal(&bytes).expect("prefix before the flip is readable");
        assert!(journal.truncated, "flipped frame stops replay");
        let (resumed, _) = resume_search(&journal, &q, &database, &cfg(threads), builder).unwrap();
        assert_eq!(resumed.hits, want.hits);
    }

    /// Fuzz half 1 — persist images: every truncation / bit flip of a
    /// v2 image is rejected with a typed error. Zero panics, zero
    /// silent acceptances (every byte is checksummed).
    #[test]
    fn image_corruption_fuzz_always_errors() {
        let alphabet = Alphabet::protein();
        let database = db(12, 47);
        let batched = BatchedDatabase::build(&database, 16, true);
        let image = save_database_image(&database, &batched, &alphabet);
        assert!(load_database_image(&image, &alphabet).is_ok());

        let mut tested = 0u64;
        for case in 0..fuzz_cases() {
            let Some(bad) = mutate(&image, 0x1111_0000 ^ case) else {
                continue;
            };
            tested += 1;
            let got = load_database_image(&bad, &alphabet);
            assert!(
                got.is_err(),
                "case {case}: corrupted image (len {} vs {}) loaded silently",
                bad.len(),
                image.len()
            );
        }
        assert!(tested > fuzz_cases() / 2, "mutator degenerated");
    }

    /// Fuzz half 2 — journals: every truncation / bit flip either
    /// fails to read or replays a verified prefix of the clean journal;
    /// a sampled subset is resumed fully and checked against the
    /// oracle. Zero panics, zero silently-wrong replays.
    #[test]
    fn journal_corruption_fuzz_never_silently_wrong() {
        let threads = 4;
        let database = db(26, 48);
        let q = enc(44, 49);
        let want = oracle(&q, &database, threads);

        let mut jw = JournalWriter::new(Vec::new()).unwrap();
        checkpointed_search(&q, &database, &cfg(threads), builder, &mut jw).unwrap();
        let bytes = jw.into_inner();
        let clean = read_journal(&bytes).unwrap();

        let check_prefix = |journal: &Journal, case: u64| {
            assert_eq!(journal.meta, clean.meta, "case {case}: meta drifted");
            for entry in &journal.entries {
                let reference = clean
                    .entries
                    .iter()
                    .find(|e| e.chunk == entry.chunk)
                    .unwrap_or_else(|| panic!("case {case}: phantom chunk {}", entry.chunk));
                assert_eq!(entry, reference, "case {case}: replayed frame drifted");
            }
        };

        let mut accepted = 0u64;
        for case in 0..fuzz_cases() {
            let Some(bad) = mutate(&bytes, 0x2222_0000 ^ case) else {
                continue;
            };
            match read_journal(&bad) {
                // CRC framing rejected the damage outright: fine.
                Err(_) => {}
                // Accepted: must be a verified prefix of the clean
                // journal — truncated replay loses work, never truth.
                Ok(journal) => {
                    check_prefix(&journal, case);
                    accepted += 1;
                    // Resume a deterministic sample end-to-end.
                    if case % 97 == 0 {
                        let (resumed, _) =
                            resume_search(&journal, &q, &database, &cfg(threads), builder)
                                .expect("validated prefix resumes");
                        assert_eq!(resumed.hits, want.hits, "case {case}");
                    }
                }
            }
        }
        assert!(accepted > 0, "no truncation ever hit a frame boundary");
    }
}
