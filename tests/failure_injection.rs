//! Failure injection and hostile-input tests: the library must behave
//! sensibly on malformed FASTA, non-residue characters, degenerate
//! batches, and saturation edge cases.

use swsimd::matrices::{blosum62, Alphabet, PAD_INDEX, X_INDEX};
use swsimd::seq::{parse_fasta, BatchedDatabase, Database, FastaError, SeqRecord};
use swsimd::{Aligner, Precision};

#[test]
fn malformed_fasta_is_rejected_not_panicking() {
    assert!(matches!(
        parse_fasta("ACGT\n"),
        Err(FastaError::DataBeforeHeader { .. })
    ));
    assert!(matches!(
        parse_fasta(">\nACGT\n"),
        Err(FastaError::EmptyHeader { .. })
    ));
}

#[test]
fn non_residue_characters_map_to_x_and_align() {
    let alphabet = Alphabet::protein();
    // Digits, punctuation, unicode fragments (as bytes) all map to X.
    let messy = alphabet.encode("MKV1 2@LAADTW\u{00e9}".as_bytes());
    assert!(messy.iter().all(|&b| b < 24));
    assert!(messy.contains(&X_INDEX));
    let clean = alphabet.encode(b"MKVLAADTW");
    let mut a = Aligner::new();
    let r = a.align(&messy, &clean);
    // Still aligns the real residues around the Xs.
    assert!(r.score > 0);
}

#[test]
fn x_never_outscores_real_match() {
    // X vs anything is <= 0 in BLOSUM62, so an all-X query scores 0.
    let alphabet = Alphabet::protein();
    let xs = alphabet.encode(b"XXXXXXXX");
    let target = alphabet.encode(b"MKVLAADTW");
    let mut a = Aligner::new();
    assert_eq!(a.align(&xs, &target).score, 0);
}

#[test]
fn stop_codons_are_scored_like_ncbi() {
    let m = blosum62();
    assert_eq!(m.score(b'*', b'*'), 1);
    assert_eq!(m.score(b'A', b'*'), -4);
    let alphabet = m.alphabet();
    let q = alphabet.encode(b"MKV*LA");
    let mut a = Aligner::new();
    let r = a.align(&q, &q);
    assert!(r.score > 0);
}

#[test]
fn pad_index_poisoning_is_total() {
    let r = blosum62().reorganized();
    for other in 0..32u8 {
        assert!(r.score(PAD_INDEX, other) < -32);
        assert!(r.score(other, PAD_INDEX) < -32);
    }
}

#[test]
fn empty_and_single_residue_databases() {
    let alphabet = Alphabet::protein();
    let db = Database::from_records(
        vec![
            SeqRecord::new("one", b"W".to_vec()),
            SeqRecord::new("empty", b"".to_vec()),
        ],
        &alphabet,
    );
    let q = alphabet.encode(b"W");
    let mut a = Aligner::new();
    let hits = a.search(&q, &db, 0);
    assert_eq!(hits.len(), 2);
    assert_eq!(hits[0].score, 11); // W:W
    assert_eq!(hits[1].score, 0); // empty sequence
}

#[test]
fn batches_with_all_empty_sequences() {
    let alphabet = Alphabet::protein();
    let db = Database::from_records(
        (0..5)
            .map(|i| SeqRecord::new(format!("e{i}"), Vec::new()))
            .collect(),
        &alphabet,
    );
    let batched = BatchedDatabase::build(&db, 16, true);
    assert_eq!(batched.batches().len(), 1);
    assert_eq!(batched.batches()[0].max_len(), 0);
    let mut a = Aligner::new();
    let hits = a.search(&alphabet.encode(b"MKV"), &db, 0);
    assert!(hits.iter().all(|h| h.score == 0));
}

#[test]
fn saturation_cascade_i8_to_i16_to_i32() {
    // Score 44,000 overflows both i8 and i16; adaptive must cascade.
    let q = vec![17u8; 4_000];
    let mut a = Aligner::new(); // adaptive by default
    let r = a.align(&q, &q);
    assert_eq!(r.score, 44_000);
    assert_eq!(r.precision_used, Precision::I32);
    assert!(
        a.stats().promotions >= 2,
        "expected two promotions, got {}",
        a.stats().promotions
    );
}

#[test]
fn zero_length_query_against_large_db() {
    let alphabet = Alphabet::protein();
    let db = Database::from_records(
        (0..40)
            .map(|i| SeqRecord::new(format!("s{i}"), vec![b'A'; 50]))
            .collect(),
        &alphabet,
    );
    let mut a = Aligner::new();
    let hits = a.search(&[], &db, 0);
    assert_eq!(hits.len(), 40);
    assert!(hits.iter().all(|h| h.score == 0));
}

#[test]
fn lowercase_and_mixed_case_sequences() {
    let alphabet = Alphabet::protein();
    let upper = alphabet.encode(b"MKVLAADTW");
    let lower = alphabet.encode(b"mkvlaadtw");
    assert_eq!(upper, lower);
}

#[test]
fn huge_top_k_is_clamped() {
    let alphabet = Alphabet::protein();
    let db = Database::from_records(
        (0..7)
            .map(|i| SeqRecord::new(format!("s{i}"), vec![b'A'; 10]))
            .collect(),
        &alphabet,
    );
    let mut a = Aligner::new();
    assert_eq!(a.search(&alphabet.encode(b"AAA"), &db, 10_000).len(), 7);
}

// ---------------------------------------------------------------------
// server_faults: the fault-tolerant serving layer under injected
// failures (FaultPlan), exercised end-to-end through the facade.
// ---------------------------------------------------------------------
mod server_faults {
    use std::sync::Arc;
    use std::time::{Duration, Instant};

    use swsimd::matrices::{blosum62, Alphabet};
    use swsimd::runner::{parallel_search, BatchServer, PoolConfig, ServerConfig};
    use swsimd::seq::{generate_database, generate_exact, SynthConfig};
    use swsimd::{AlignError, Aligner, FaultPlan, ServeError};

    fn db(n: usize, seed: u64) -> swsimd::Database {
        generate_database(&SynthConfig {
            n_seqs: n,
            seed,
            median_len: 60.0,
            max_len: 200,
            ..Default::default()
        })
    }

    fn enc(len: usize, seed: u64) -> Vec<u8> {
        Alphabet::protein().encode(&generate_exact(len, seed).seq)
    }

    fn builder() -> swsimd::AlignerBuilder {
        Aligner::builder().matrix(blosum62())
    }

    /// Acceptance criterion: a FaultPlan-injected worker panic during a
    /// multi-partition parallel search still yields the exact, sorted
    /// result set for ALL partitions, with the degradation counted.
    #[test]
    fn injected_partition_panic_keeps_parallel_search_exact() {
        let db = db(64, 11);
        let q = enc(70, 12);
        let clean = parallel_search(
            &q,
            &db,
            &PoolConfig {
                threads: 4,
                sort_batches: true,
                ..Default::default()
            },
            builder,
        );
        let faulty = parallel_search(
            &q,
            &db,
            &PoolConfig {
                threads: 4,
                sort_batches: true,
                fault_plan: FaultPlan::new().panic_at(2, 1),
            },
            builder,
        );
        assert_eq!(faulty.hits, clean.hits, "degraded retry must stay exact");
        assert_eq!(faulty.faults.worker_panics, 1);
        assert_eq!(faulty.faults.degraded_batches, 1);
        assert_eq!(faulty.faults.retries, 1);
        assert!(!clean.faults.any());
    }

    #[test]
    fn server_worker_panic_degrades_and_counts() {
        let database = Arc::new(db(32, 13));
        let q = enc(50, 14);
        let mut direct = builder().build();
        let want = direct.search(&q, &database, 4);

        let server = BatchServer::start(
            database.clone(),
            ServerConfig {
                fault_plan: FaultPlan::new().panic_at(0, 1),
                ..Default::default()
            },
            builder,
        );
        let client = server.client();
        let hits = client.query(q, 4).expect("degraded, not dead");
        assert_eq!(hits, want);
        let stats = server.shutdown();
        assert_eq!(stats.worker_panics, 1);
        assert_eq!(stats.degraded_batches, 1);
        assert_eq!(stats.retries, 1);
    }

    #[test]
    fn deadline_expiry_is_typed_and_bounded() {
        let database = Arc::new(db(16, 15));
        let server = BatchServer::start(
            database,
            ServerConfig {
                batch_size: 1,
                max_wait: Duration::from_millis(1),
                fault_plan: FaultPlan::new().delay_at(0, Duration::from_millis(400)),
                ..Default::default()
            },
            builder,
        );
        let client = server.client();
        let start = Instant::now();
        let r = client.query_with_deadline(enc(30, 16), 1, Duration::from_millis(40));
        let elapsed = start.elapsed();
        assert_eq!(r, Err(ServeError::DeadlineExceeded));
        assert!(elapsed < Duration::from_millis(350), "took {elapsed:?}");
        let stats = server.shutdown();
        assert!(stats.timeouts >= 1);
    }

    #[test]
    fn queue_full_sheds_with_typed_error() {
        let database = Arc::new(db(16, 17));
        let server = BatchServer::start(
            database,
            ServerConfig {
                batch_size: 1,
                max_wait: Duration::from_millis(1),
                queue_depth: 1,
                fault_plan: FaultPlan::new().delay_at(0, Duration::from_millis(120)),
                ..Default::default()
            },
            builder,
        );
        let client = server.client();
        let bg: Vec<_> = (0..3)
            .map(|i| {
                let c = client.clone();
                std::thread::spawn(move || c.query(enc(20, 30 + i), 1))
            })
            .collect();
        let mut shed = 0;
        for i in 0..60 {
            if client.try_query(enc(20, 60 + i), 1) == Err(ServeError::QueueFull) {
                shed += 1;
                break;
            }
        }
        assert!(shed >= 1, "sustained load never shed");
        for h in bg {
            let _ = h.join().expect("client thread");
        }
        let stats = server.shutdown();
        assert!(stats.shed >= 1);
    }

    #[test]
    fn shutdown_while_inflight_drains_then_rejects() {
        let database = Arc::new(db(24, 18));
        let server = BatchServer::start(database, ServerConfig::default(), builder);
        let client = server.client();
        let inflight = {
            let c = client.clone();
            std::thread::spawn(move || c.query(enc(25, 19), 1))
        };
        std::thread::sleep(Duration::from_millis(5));
        let stats = server.shutdown();
        // The in-flight query was drained, not dropped.
        let hits = inflight.join().expect("client thread").expect("drained");
        assert_eq!(hits.len(), 1);
        assert_eq!(stats.queries, 1);
        // Every entry point now reports ShutDown instead of panicking.
        assert_eq!(client.query(enc(10, 20), 1), Err(ServeError::ShutDown));
        assert_eq!(client.try_query(enc(10, 20), 1), Err(ServeError::ShutDown));
    }

    #[test]
    fn invalid_query_is_a_structured_error() {
        let database = Arc::new(db(8, 21));
        let server = BatchServer::start(database, ServerConfig::default(), builder);
        let client = server.client();
        match client.query(vec![0, 1, 77], 1) {
            Err(ServeError::InvalidQuery(AlignError::InvalidResidue { position, value })) => {
                assert_eq!((position, value), (2, 77));
            }
            other => panic!("expected InvalidQuery, got {other:?}"),
        }
        let _ = server.shutdown();
    }
}
