//! Seeded chaos soak over a real self-healing cluster.
//!
//! A [`swsimd::net::Supervisor`] owns three real `swsimd shard` child
//! processes while an in-process gateway (so the test can assert on
//! its typed responses) scatter-gathers across them. A deterministic
//! [`swsimd::net::ChaosSchedule`] kills, wedges, and partitions the
//! shards mid-soak; the test asserts the three cluster invariants the
//! supervisor exists to uphold:
//!
//! 1. **Zero wrong answers**: every response — healthy or degraded —
//!    ranks exactly like the unsharded oracle restricted to the slices
//!    it actually reached.
//! 2. **Bounded degradation**: every degraded window closes within the
//!    recovery SLO once the schedule ends.
//! 3. **Observable self-healing**: restarts show up in
//!    `swsimd_supervisor_restarts_total{shard}` and the recovery
//!    histogram, scrapeable like every other family.
//!
//! The soak seed comes from `SWSIMD_CHAOS_SEED` (decimal or 0x-hex)
//! with a fixed fallback, and is printed so any failure replays
//! bit-for-bit.

use std::io::Write;
use std::time::{Duration, Instant};

use swsimd::matrices::Alphabet;
use swsimd::net::{
    seed_from_env, ChaosFault, ChaosSchedule, ChildSpec, ChildState, Gateway, GatewayConfig,
    NetClient, RetryPolicy, Supervisor, SupervisorConfig,
};
use swsimd::runner::{parallel_search, rank_hits, FaultPlan, PoolConfig};
use swsimd::seq::{generate_database, generate_exact, SynthConfig};
use swsimd::{Aligner, Database, Hit};

const TOP_K: usize = 6;
const SLICES: u32 = 3;
/// Chaos fires inside this window; recovery is judged after it.
const HORIZON: Duration = Duration::from_secs(6);
/// Degraded windows must close within this budget once faults stop.
const RECOVERY_SLO: Duration = Duration::from_secs(15);
const CANARY: &[u8] = b"MKVLAADTW";

fn bin() -> &'static str {
    env!("CARGO_BIN_EXE_swsimd")
}

fn test_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("swsimd-chaos-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn write_fasta(path: &std::path::Path, records: &[(String, Vec<u8>)]) {
    let mut f = std::fs::File::create(path).unwrap();
    for (id, seq) in records {
        writeln!(f, ">{id}").unwrap();
        f.write_all(seq).unwrap();
        writeln!(f).unwrap();
    }
}

fn as_pairs(hits: &[Hit]) -> Vec<(usize, i32)> {
    hits.iter().map(|h| (h.db_index, h.score)).collect()
}

/// Shard child spec: a real `swsimd shard` process on a pre-picked
/// port (SO_REUSEADDR lets every respawn rebind the same address).
fn shard_spec(name: &str, db_path: &str, slice: u32, standby: bool) -> ChildSpec {
    let addr = Supervisor::pick_addr().unwrap();
    let mut args: Vec<String> = vec![
        "shard".into(),
        db_path.into(),
        "--listen".into(),
        addr.clone(),
        "--shard-index".into(),
        slice.to_string(),
        "--shards".into(),
        SLICES.to_string(),
        "--threads".into(),
        "1".into(),
    ];
    if standby {
        args.push("--standby".into());
    }
    ChildSpec {
        name: name.into(),
        slice: Some(slice),
        program: bin().into(),
        args,
        addr,
        standby,
    }
}

/// Drive ticks until every child reports `Up` (children need to load
/// the database and pass the readiness canary first).
fn wait_all_up(sup: &mut Supervisor, deadline: Duration) {
    let start = Instant::now();
    loop {
        sup.tick();
        if sup
            .states()
            .iter()
            .all(|(_, state)| *state == ChildState::Up)
        {
            return;
        }
        assert!(
            start.elapsed() < deadline,
            "cluster failed to come up: {:?}",
            sup.states()
        );
        std::thread::sleep(Duration::from_millis(25));
    }
}

#[test]
fn seeded_chaos_soak_zero_wrong_answers_and_bounded_recovery() {
    let dir = test_dir("soak");
    let db: Database = generate_database(&SynthConfig {
        n_seqs: 24,
        seed: 911,
        median_len: 40.0,
        max_len: 90,
        ..Default::default()
    });
    let query_rec = generate_exact(40, 912);
    let db_path = dir.join("db.fasta");
    write_fasta(
        &db_path,
        &(0..db.len())
            .map(|i| (db.record(i).id.clone(), db.record(i).seq.clone()))
            .collect::<Vec<_>>(),
    );

    // Unsharded oracle, restrictable to the slices a degraded response
    // actually reached.
    let qe = Alphabet::protein().encode(&query_rec.seq);
    let full_hits = parallel_search(
        &qe,
        &db,
        &PoolConfig {
            threads: 2,
            sort_batches: true,
            ..Default::default()
        },
        || Aligner::builder().matrix(swsimd::matrices::blosum62()),
    )
    .hits;
    let parts = db.partition(SLICES as usize);
    let reference = |missing: &[u32]| -> Vec<(usize, i32)> {
        let hits: Vec<Hit> = full_hits
            .iter()
            .filter(|h| {
                !missing
                    .iter()
                    .any(|&s| parts[s as usize].contains(&h.db_index))
            })
            .cloned()
            .collect();
        as_pairs(&rank_hits(hits, TOP_K))
    };

    // Topology: three real shard children under the supervisor, the
    // gateway in-process so responses are typed and assertable.
    let db_str = db_path.to_str().unwrap().to_string();
    let names = ["soak-s0", "soak-s1", "soak-s2"];
    let specs: Vec<ChildSpec> = (0..SLICES)
        .map(|s| shard_spec(names[s as usize], &db_str, s, false))
        .collect();
    let shard_addrs: Vec<String> = specs.iter().map(|s| s.addr.clone()).collect();

    let canary = Alphabet::protein().encode(CANARY);
    let mut sup = Supervisor::new(
        SupervisorConfig {
            probe_interval: Duration::from_millis(100),
            probe_timeout: Duration::from_millis(500),
            probe_misses: 5,
            backoff_base: Duration::from_millis(50),
            backoff_max: Duration::from_millis(500),
            // The soak is about restarts, not quarantine: a seed that
            // hammers one shard must keep getting respawns.
            crash_loop_threshold: 1000,
            canary: canary.clone(),
            ..Default::default()
        },
        specs,
    );
    sup.start().expect("spawn cluster");
    wait_all_up(&mut sup, Duration::from_secs(60));

    // Partitions arm the gateway's own FaultPlan (Arc-shared, so the
    // kept clone mutates the live plan) — the process stays healthy
    // while its connects are refused, exactly a network partition.
    let plan = FaultPlan::new();
    let gateway = Gateway::new(GatewayConfig {
        shards: shard_addrs.iter().map(|a| vec![a.clone()]).collect(),
        retry: RetryPolicy {
            budget: 2,
            ..Default::default()
        },
        connect_timeout: Duration::from_millis(300),
        request_timeout: Duration::from_secs(5),
        strike_threshold: 1,
        readmit_after: 1,
        canary: canary.clone(),
        fault: plan.clone(),
        ..Default::default()
    });
    let prober = gateway.start_prober(Duration::from_millis(100));

    let seed = seed_from_env(0xC0FFEE);
    let schedule = ChaosSchedule::generate(seed, names.len(), HORIZON, 12);
    eprintln!(
        "chaos seed: {seed} ({} events; override with SWSIMD_CHAOS_SEED)",
        schedule.events.len()
    );
    let kills_scheduled = schedule
        .events
        .iter()
        .filter(|e| e.fault == ChaosFault::Kill)
        .count();

    let restarts_before: u64 = names.iter().map(|n| sup.metrics().restarts(n).get()).sum();
    let soak_start = Instant::now();
    let mut last_poll = Duration::ZERO;
    let mut window_start: Option<Instant> = None;
    let mut max_window = Duration::ZERO;
    let mut samples = 0usize;
    let mut degraded_samples = 0usize;

    while soak_start.elapsed() < HORIZON {
        sup.tick();
        let now = soak_start.elapsed();
        for event in schedule.due(last_poll, now) {
            let name = names[event.target];
            match event.fault {
                ChaosFault::Kill => {
                    if let Some(pid) = sup.pid(name) {
                        swsimd::net::chaos::send_signal(pid, "KILL");
                    }
                }
                ChaosFault::Stop { ms } | ChaosFault::Delay { ms } => {
                    if let Some(pid) = sup.pid(name) {
                        if swsimd::net::chaos::send_signal(pid, "STOP") {
                            std::thread::spawn(move || {
                                std::thread::sleep(Duration::from_millis(ms));
                                swsimd::net::chaos::send_signal(pid, "CONT");
                            });
                        }
                    }
                }
                ChaosFault::Partition { attempts } => {
                    let _ = plan.clone().refuse_connect(event.target, attempts);
                }
            }
        }
        last_poll = now;

        samples += 1;
        match gateway.query(&qe, TOP_K, Some(Duration::from_secs(3))) {
            Ok(resp) => {
                // Invariant 1: whatever slices answered, the ranking
                // over them is exact. A wrong answer fails instantly.
                assert_eq!(
                    as_pairs(&resp.hits),
                    reference(&resp.missing_shards),
                    "wrong answer under chaos (seed {seed}, missing {:?})",
                    resp.missing_shards
                );
                if resp.degraded {
                    degraded_samples += 1;
                    window_start.get_or_insert_with(Instant::now);
                } else if let Some(opened) = window_start.take() {
                    max_window = max_window.max(opened.elapsed());
                }
            }
            Err(_) => {
                // Total refusal counts as a degraded moment, never as
                // a wrong answer.
                degraded_samples += 1;
                window_start.get_or_insert_with(Instant::now);
            }
        }
        std::thread::sleep(Duration::from_millis(50));
    }

    // Invariant 2: with the schedule exhausted, the cluster must heal
    // back to full, exact answers within the SLO.
    let recovery_deadline = Instant::now() + RECOVERY_SLO;
    loop {
        sup.tick();
        if let Ok(resp) = gateway.query(&qe, TOP_K, Some(Duration::from_secs(3))) {
            if !resp.degraded {
                assert_eq!(
                    as_pairs(&resp.hits),
                    reference(&[]),
                    "post-recovery ranking must match the unsharded oracle (seed {seed})"
                );
                if let Some(opened) = window_start.take() {
                    max_window = max_window.max(opened.elapsed());
                }
                break;
            }
        }
        assert!(
            Instant::now() < recovery_deadline,
            "degraded window failed to close within {RECOVERY_SLO:?} (seed {seed}, states {:?})",
            sup.states()
        );
        std::thread::sleep(Duration::from_millis(100));
    }
    assert!(
        max_window <= RECOVERY_SLO,
        "longest degraded window {max_window:?} exceeded the {RECOVERY_SLO:?} SLO (seed {seed})"
    );

    // Invariant 3: self-healing is observable. Every scheduled kill
    // (and every wedge-kill the stops provoked) became a respawn.
    let restarts_after: u64 = names.iter().map(|n| sup.metrics().restarts(n).get()).sum();
    if kills_scheduled > 0 {
        assert!(
            restarts_after > restarts_before,
            "schedule had {kills_scheduled} kills but restarts_total never moved (seed {seed})"
        );
    }
    let scrape = swsimd::obs::global().prometheus_text();
    for family in [
        "swsimd_supervisor_restarts_total",
        "swsimd_crash_loop_quarantines_total",
        "swsimd_standby_promotions_total",
        "swsimd_supervisor_recovery_seconds",
    ] {
        assert!(
            family_present(&scrape, family),
            "{family} missing from scrape"
        );
    }
    eprintln!(
        "soak: {samples} samples, {degraded_samples} degraded, \
         {} restarts, longest window {max_window:?}",
        restarts_after - restarts_before
    );

    prober.stop();
    sup.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

fn family_present(scrape: &str, family: &str) -> bool {
    scrape.lines().any(|l| l.starts_with(family))
}

/// A persistently-faulted primary must trip the crash-loop breaker —
/// quarantine, not an infinite respawn spin — and the warm standby on
/// the same slice must be promoted to live duty via the Activate
/// frame.
#[test]
fn crash_loop_quarantines_and_promotes_the_standby() {
    let dir = test_dir("loop");
    let db: Database = generate_database(&SynthConfig {
        n_seqs: 12,
        seed: 921,
        median_len: 30.0,
        max_len: 60,
        ..Default::default()
    });
    let db_path = dir.join("db.fasta");
    write_fasta(
        &db_path,
        &(0..db.len())
            .map(|i| (db.record(i).id.clone(), db.record(i).seq.clone()))
            .collect::<Vec<_>>(),
    );

    // The primary is a persistent fault: it exits 1 immediately, every
    // time. The standby is a real shard, hot but refusing queries.
    let primary = ChildSpec {
        name: "loop-primary".into(),
        slice: Some(0),
        program: "/bin/sh".into(),
        args: vec!["-c".into(), "exit 1".into()],
        addr: "127.0.0.1:1".into(),
        standby: false,
    };
    let mut standby = shard_spec("loop-standby", db_path.to_str().unwrap(), 0, true);
    standby.args[7] = "1".into(); // --shards 1: single-slice topology
    let standby_addr = standby.addr.clone();

    let mut sup = Supervisor::new(
        SupervisorConfig {
            probe_interval: Duration::from_millis(50),
            probe_timeout: Duration::from_millis(500),
            backoff_base: Duration::from_millis(1),
            backoff_max: Duration::from_millis(5),
            crash_loop_window: Duration::from_secs(30),
            crash_loop_threshold: 3,
            canary: Alphabet::protein().encode(CANARY),
            ..Default::default()
        },
        vec![primary, standby],
    );
    sup.start().expect("spawn primary + standby");

    // Let the standby finish booting before driving the crash loop:
    // promotion connects to it the moment quarantine trips, and death
    // timestamps are taken at reap time, so holding ticks is safe.
    let boot_deadline = Instant::now() + Duration::from_secs(60);
    loop {
        if let Ok(mut c) = NetClient::connect(&standby_addr, Duration::from_millis(200)) {
            if let Ok(pong) = c.ping() {
                assert!(pong.draining, "an unpromoted standby must pong draining");
                break;
            }
        }
        assert!(
            Instant::now() < boot_deadline,
            "standby never became pingable"
        );
        std::thread::sleep(Duration::from_millis(50));
    }
    // Pre-promotion, the standby refuses real work.
    let qe = Alphabet::protein().encode(CANARY);
    let refusal = NetClient::connect(&standby_addr, Duration::from_millis(500))
        .unwrap()
        .query(&qe, 3, 0);
    assert!(
        refusal.is_err(),
        "standby must refuse queries before promotion: {refusal:?}"
    );

    // Drive the supervisor until the breaker trips: death -> backoff
    // -> respawn -> death ... -> quarantine + promotion, never a spin.
    let deadline = Instant::now() + Duration::from_secs(30);
    while sup.metrics().quarantines.get() == 0 {
        sup.tick();
        assert!(
            Instant::now() < deadline,
            "crash loop never quarantined: {:?}",
            sup.states()
        );
        std::thread::sleep(Duration::from_millis(5));
    }
    assert_eq!(
        sup.state("loop-primary"),
        Some(ChildState::Quarantined),
        "a crash-looping child must be parked, not respawned forever"
    );
    assert!(
        sup.metrics().promotions.get() >= 1,
        "quarantining a slice with a warm standby must promote it"
    );

    // The promoted standby now answers: pong says live, queries land.
    let served_deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let mut c = NetClient::connect(&standby_addr, Duration::from_millis(500))
            .expect("promoted standby reachable");
        let pong = c.ping().expect("promoted standby pongs");
        assert!(!pong.draining, "promotion must clear the draining bit");
        if let Ok(reply) = c.query(&qe, 3, 0) {
            assert!(!reply.hits.is_empty(), "promoted standby must score hits");
            break;
        }
        assert!(
            Instant::now() < served_deadline,
            "promoted standby kept refusing queries"
        );
        std::thread::sleep(Duration::from_millis(100));
    }

    sup.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}
