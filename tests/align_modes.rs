//! Global / semi-global alignment through the public API.

use swsimd::matrices::{blosum62, Alphabet};
use swsimd::{AlignMode, Aligner, Op};

fn enc(s: &[u8]) -> Vec<u8> {
    Alphabet::protein().encode(s)
}

fn aligner(mode: AlignMode, traceback: bool) -> Aligner {
    Aligner::builder()
        .matrix(blosum62())
        .mode(mode)
        .traceback(traceback)
        .build()
}

#[test]
fn global_pays_for_end_gaps_semiglobal_does_not() {
    let q = enc(b"ARNDC");
    let t = enc(b"ARNDCQEGHI");
    let prefix: i32 = q
        .iter()
        .map(|&a| blosum62().score_by_index(a, a) as i32)
        .sum();

    let g = aligner(AlignMode::Global, false).align(&q, &t);
    let s = aligner(AlignMode::SemiGlobal, false).align(&q, &t);
    let l = aligner(AlignMode::Local, false).align(&q, &t);

    assert_eq!(s.score, prefix);
    assert_eq!(l.score, prefix);
    assert!(g.score < prefix, "global must pay the 5-residue tail gap");
}

#[test]
fn global_traceback_is_end_to_end() {
    let q = enc(b"MKVLAADTWGHK");
    let t = enc(b"MKVLADTWGHKR");
    let r = aligner(AlignMode::Global, true).align(&q, &t);
    let aln = r.alignment.unwrap();
    assert_eq!((aln.query_start, aln.query_end), (0, q.len()));
    assert_eq!((aln.target_start, aln.target_end), (0, t.len()));
    assert_eq!(
        aln.rescore(
            &q,
            &t,
            &swsimd::Scoring::matrix(blosum62()),
            swsimd::GapModel::default_affine()
        ),
        r.score
    );
}

#[test]
fn semiglobal_finds_query_inside_target() {
    let core = b"CQEGHILKM";
    let q = enc(core);
    let t = enc(&[b"AAAA".as_ref(), core, b"WWWW".as_ref()].concat());
    let r = aligner(AlignMode::SemiGlobal, true).align(&q, &t);
    let want: i32 = q
        .iter()
        .map(|&a| blosum62().score_by_index(a, a) as i32)
        .sum();
    assert_eq!(r.score, want);
    let aln = r.alignment.unwrap();
    assert_eq!(aln.target_start, 4);
    assert_eq!(aln.target_end, 4 + core.len());
    assert!(aln.ops.iter().all(|&o| o == Op::Match));
}

#[test]
fn modes_agree_across_engines() {
    let q = enc(b"MKVLAADTWGHKRNDE");
    let t = enc(b"MKVADTWGHKRNDECC");
    for mode in [AlignMode::Global, AlignMode::SemiGlobal] {
        let mut scores = Vec::new();
        for engine in swsimd::EngineKind::available() {
            let mut a = Aligner::builder()
                .matrix(blosum62())
                .mode(mode)
                .engine(engine)
                .build();
            scores.push(a.align(&q, &t).score);
        }
        assert!(
            scores.windows(2).all(|w| w[0] == w[1]),
            "{mode:?}: {scores:?}"
        );
    }
}

#[test]
fn global_can_be_negative() {
    let q = enc(b"WWWW");
    let t = enc(b"PPPP");
    let r = aligner(AlignMode::Global, false).align(&q, &t);
    assert!(
        r.score < 0,
        "all-mismatch global score must be negative, got {}",
        r.score
    );
    // Local alignment of the same pair is 0.
    assert_eq!(aligner(AlignMode::Local, false).align(&q, &t).score, 0);
}

#[test]
fn adaptive_promotion_in_global_mode() {
    // Long identical pair: global score = local score = 4400 > i8 range.
    let q = vec![17u8; 400];
    let mut a = aligner(AlignMode::Global, false);
    let r = a.align(&q, &q);
    assert_eq!(r.score, 4400);
    assert!(a.stats().promotions >= 1);
}
